package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/trace"
)

// liveRecord runs name/n under round-robin and captures the full record
// the way the engine's capture path does: Trace() + Changed() off a System.
func liveRecord(t *testing.T, name string, n int) (*mutex.Factory, trace.Record) {
	t.Helper()
	f, err := mutex.New(name, n)
	if err != nil {
		t.Fatal(err)
	}
	s := machine.NewSystem(f)
	exec, err := machine.Run(s, machine.NewRoundRobin(), machine.DefaultHorizon(n))
	if err != nil {
		t.Fatal(err)
	}
	return f, trace.Record{Algo: name, N: n, Exec: exec, Changed: s.Changed()}
}

func TestRecordRoundTrip(t *testing.T) {
	_, rec := liveRecord(t, mutex.NameYangAnderson, 3)
	blob, err := trace.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeRecord(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	// Deterministic: encoding the decoded record reproduces the bytes.
	blob2, err := trace.EncodeRecord(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding a decoded record changed the bytes")
	}
}

func TestRecordRoundTripAllKinds(t *testing.T) {
	// Synthetic record touching every step kind, crit kind, RMW kind, and
	// negative operands (zigzag path). Codec-only: no replay semantics.
	rec := trace.Record{
		Algo:    "synthetic",
		N:       4,
		Horizon: 123,
		Exec: model.Execution{
			{Proc: 0, Kind: model.KindRead, Reg: 7, Val: -5},
			{Proc: 1, Kind: model.KindWrite, Reg: 0, Val: 1 << 40},
			{Proc: 2, Kind: model.KindRMW, Reg: 3, Val: -1, RMW: model.RMWCompareAndSwap, Arg1: -7, Arg2: 9},
			{Proc: 3, Kind: model.KindCrit, Crit: model.CritEnter},
			{Proc: 3, Kind: model.KindCrit, Crit: model.CritExit},
		},
		Changed: []bool{true, false, true, true, false},
	}
	blob, err := trace.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeRecord(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	ok := trace.Record{Algo: "x", N: 1, Exec: model.Execution{{Proc: 0, Kind: model.KindCrit, Crit: model.CritTry}}, Changed: []bool{true}}
	if _, err := trace.EncodeRecord(ok); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string]trace.Record{
		"misaligned changed": {Algo: "x", N: 1, Exec: ok.Exec, Changed: nil},
		"bad n":              {Algo: "x", N: 0, Exec: nil, Changed: nil},
		"proc out of range":  {Algo: "x", N: 1, Exec: model.Execution{{Proc: 1, Kind: model.KindCrit}}, Changed: []bool{false}},
	}
	for name, rec := range cases {
		if _, err := trace.EncodeRecord(rec); err == nil {
			t.Errorf("%s: encode accepted", name)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, rec := liveRecord(t, mutex.NameBakery, 2)
	blob, err := trace.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix is truncated; every suffix addition is trailing
	// garbage; a flipped magic is a foreign blob.
	for _, cut := range []int{0, 1, 3, 4, 10, len(blob) / 2, len(blob) - 1} {
		if _, err := trace.DecodeRecord(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := trace.DecodeRecord(append(bytes.Clone(blob), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := bytes.Clone(blob)
	bad[0] ^= 0xff
	if _, err := trace.DecodeRecord(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestVerifyRecord(t *testing.T) {
	f, rec := liveRecord(t, mutex.NameYangAnderson, 3)
	sc, err := trace.VerifyRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	if sc <= 0 {
		t.Fatalf("verified replay charged %d shared steps, want > 0", sc)
	}

	// A tampered read result must be refused: replay fills the true value.
	tampered := rec
	tampered.Exec = append(model.Execution(nil), rec.Exec...)
	for i, s := range tampered.Exec {
		if s.Kind == model.KindRead {
			tampered.Exec[i].Val = s.Val + 99
			break
		}
	}
	if _, err := trace.VerifyRecord(f, tampered); err == nil {
		t.Error("tampered read value verified")
	}

	// A flipped charge flag on a shared step must be refused.
	flipped := rec
	flipped.Changed = append([]bool(nil), rec.Changed...)
	for i, s := range flipped.Exec {
		if s.IsShared() {
			flipped.Changed[i] = !flipped.Changed[i]
			break
		}
	}
	if _, err := trace.VerifyRecord(f, flipped); err == nil {
		t.Error("flipped changed flag verified")
	}

	// A wrong-size factory must be refused before replay starts.
	f2, err := mutex.New(mutex.NameYangAnderson, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.VerifyRecord(f2, rec); err == nil {
		t.Error("mismatched process count verified")
	}
}
