// Package trace renders executions for humans: a per-process timeline of
// the interleaving with critical-section intervals, state-change charging,
// and register activity — the fastest way to see *why* an algorithm costs
// what it costs, or to inspect a counterexample from the verifier.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/program"
)

// Options tunes the rendering.
type Options struct {
	// MaxSteps caps the number of rendered steps (0 = all).
	MaxSteps int
	// Registers annotates each write with the register name if non-nil.
	RegisterName func(model.RegID) string
	// ShowFree marks steps that the SC model does not charge.
	ShowFree bool
}

// Timeline renders the execution as one row per step with a column per
// process. Each row shows which process moved and what it did; the acting
// process's column carries a glyph:
//
//	T E X Q   try / enter / exit / rem
//	w         write (always charged)
//	r         charged read
//	·         free read (busywait re-read; SC cost 0)
//	*         RMW
//
// A '█' block in a column marks a process inside its critical section.
func Timeline(f program.Factory, exec model.Execution, opt Options) (string, error) {
	n := f.N()
	rep := machine.NewReplayer(f)
	var b strings.Builder

	// Header.
	b.WriteString("step  ")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p%-3d", i)
	}
	b.WriteString("  action\n")

	inCS := make([]bool, n)
	limit := len(exec)
	if opt.MaxSteps > 0 && opt.MaxSteps < limit {
		limit = opt.MaxSteps
	}
	for t := 0; t < limit; t++ {
		before := rep.SCCost()
		done, err := rep.Apply(exec[t])
		if err != nil {
			return b.String(), fmt.Errorf("trace: step %d: %w", t, err)
		}
		charged := rep.SCCost() != before

		glyph := ""
		switch done.Kind {
		case model.KindCrit:
			switch done.Crit {
			case model.CritTry:
				glyph = "T"
			case model.CritEnter:
				glyph = "E"
				inCS[done.Proc] = true
			case model.CritExit:
				glyph = "X"
				inCS[done.Proc] = false
			case model.CritRem:
				glyph = "Q"
			}
		case model.KindWrite:
			glyph = "w"
		case model.KindRead:
			if charged {
				glyph = "r"
			} else {
				glyph = "·"
			}
		case model.KindRMW:
			glyph = "*"
		}

		fmt.Fprintf(&b, "%5d ", t)
		for i := 0; i < n; i++ {
			cell := " "
			if inCS[i] && i != done.Proc {
				cell = "█"
			}
			if i == done.Proc {
				cell = glyph
			}
			fmt.Fprintf(&b, "%-4s", cell)
		}
		b.WriteString("  ")
		b.WriteString(describe(done, charged, opt))
		b.WriteByte('\n')
	}
	if limit < len(exec) {
		fmt.Fprintf(&b, "… %d more steps\n", len(exec)-limit)
	}
	return b.String(), nil
}

func describe(s model.Step, charged bool, opt Options) string {
	name := func(r model.RegID) string {
		if opt.RegisterName != nil {
			return opt.RegisterName(r)
		}
		return fmt.Sprintf("r%d", r)
	}
	var d string
	switch s.Kind {
	case model.KindCrit:
		d = fmt.Sprintf("%s_%d", s.Crit, s.Proc)
	case model.KindWrite:
		d = fmt.Sprintf("p%d writes %s := %d", s.Proc, name(s.Reg), s.Val)
	case model.KindRead:
		d = fmt.Sprintf("p%d reads %s = %d", s.Proc, name(s.Reg), s.Val)
	case model.KindRMW:
		d = fmt.Sprintf("p%d %s %s -> %d", s.Proc, s.RMW, name(s.Reg), s.Val)
	}
	if opt.ShowFree && s.Kind == model.KindRead && !charged {
		d += "  (free)"
	}
	return d
}

// Summary renders per-process totals: steps, charged steps, CS interval.
func Summary(f program.Factory, exec model.Execution) (string, error) {
	n := f.N()
	rep := machine.NewReplayer(f)
	steps := make([]int, n)
	charged := make([]int, n)
	enterAt := make([]int, n)
	exitAt := make([]int, n)
	for i := range enterAt {
		enterAt[i], exitAt[i] = -1, -1
	}
	for t, s := range exec {
		before := rep.SCCost()
		done, err := rep.Apply(s)
		if err != nil {
			return "", fmt.Errorf("trace: step %d: %w", t, err)
		}
		steps[done.Proc]++
		if rep.SCCost() != before {
			charged[done.Proc]++
		}
		if done.Kind == model.KindCrit {
			switch done.Crit {
			case model.CritEnter:
				enterAt[done.Proc] = t
			case model.CritExit:
				exitAt[done.Proc] = t
			}
		}
	}
	var b strings.Builder
	b.WriteString("proc  steps  SC-cost  CS-interval\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p%-4d %-6d %-8d [%d, %d]\n", i, steps[i], charged[i], enterAt[i], exitAt[i])
	}
	return b.String(), nil
}
