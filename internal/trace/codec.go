package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/program"
)

// Execution-record codec: the blob payload the capture path persists under
// a unit's content address, and replay/observe decode back. A Record is
// self-describing — algorithm name, process count, and horizon ride with
// the step log — so a stored key replays with zero re-simulation: the
// decoder rebuilds the factory from the record alone and drives a
// machine.Replayer, never a scheduler.
//
// The encoding is a compact varint framing, deliberately uncompressed:
// blob transports and file stores compress at their edges (the remote
// blob endpoints gzip bodies through the shared pools, FileBlobs gzips
// before logging), so the codec stays a pure, deterministic function of
// the record — identical records encode to identical bytes in every
// process, which is what lets CI compare replayed artifacts with cmp.
//
//	magic "RTB1"
//	uvarint len(algo), algo bytes
//	uvarint n, uvarint horizon, uvarint len(exec)
//	per step:
//	  uvarint proc
//	  flag byte: kind | changed<<2 | crit<<3 | rmw<<5
//	  KindRead/KindWrite: uvarint reg, varint val
//	  KindRMW:            uvarint reg, varint val, varint arg1, varint arg2
//	  KindCrit:           nothing further
const recordMagic = "RTB1"

// maxRecordSteps bounds a decoded execution so a corrupt length prefix
// cannot ask for an absurd allocation; the largest real horizon
// (machine.DefaultHorizon) is far below it.
const maxRecordSteps = 1 << 26

// Record is one captured execution: everything replay needs, keyed in the
// blob store by the executed unit's result cache key.
type Record struct {
	// Algo is the algorithm name runner.NewFactory resolves.
	Algo string
	// N is the process count.
	N int
	// Horizon is the step budget the run was driven under (0 = default).
	Horizon int
	// Exec is the recorded step log (System.Trace()), read results filled.
	Exec model.Execution
	// Changed holds the per-step state-change flags (System.Changed()),
	// aligned with Exec.
	Changed []bool
}

// EncodeRecord serializes rec. Changed must align with Exec.
func EncodeRecord(rec Record) ([]byte, error) {
	if len(rec.Changed) != len(rec.Exec) {
		return nil, fmt.Errorf("trace: encode: %d steps but %d changed flags", len(rec.Exec), len(rec.Changed))
	}
	if rec.N <= 0 {
		return nil, fmt.Errorf("trace: encode: bad process count %d", rec.N)
	}
	// ~6 bytes per step is the steady-state size; a short header on top.
	buf := make([]byte, 0, len(recordMagic)+len(rec.Algo)+16+6*len(rec.Exec))
	buf = append(buf, recordMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Algo)))
	buf = append(buf, rec.Algo...)
	buf = binary.AppendUvarint(buf, uint64(rec.N))
	buf = binary.AppendUvarint(buf, uint64(rec.Horizon))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Exec)))
	for t, s := range rec.Exec {
		if s.Proc < 0 || s.Proc >= rec.N {
			return nil, fmt.Errorf("trace: encode step %d: process %d out of range [0,%d)", t, s.Proc, rec.N)
		}
		flags := byte(s.Kind) & 0b11
		if rec.Changed[t] {
			flags |= 1 << 2
		}
		flags |= (byte(s.Crit) & 0b11) << 3
		flags |= (byte(s.RMW) & 0b11) << 5
		buf = binary.AppendUvarint(buf, uint64(s.Proc))
		buf = append(buf, flags)
		switch s.Kind {
		case model.KindRead, model.KindWrite:
			buf = binary.AppendUvarint(buf, uint64(s.Reg))
			buf = binary.AppendVarint(buf, s.Val)
		case model.KindRMW:
			buf = binary.AppendUvarint(buf, uint64(s.Reg))
			buf = binary.AppendVarint(buf, s.Val)
			buf = binary.AppendVarint(buf, s.Arg1)
			buf = binary.AppendVarint(buf, s.Arg2)
		case model.KindCrit:
			// Crit kind rode in the flag byte.
		default:
			return nil, fmt.Errorf("trace: encode step %d: unknown kind %d", t, s.Kind)
		}
	}
	return buf, nil
}

// recordReader decodes varints off a byte slice with one sticky error.
type recordReader struct {
	buf []byte
	err error
}

func (r *recordReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = errors.New("trace: truncated record")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *recordReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = errors.New("trace: truncated record")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *recordReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)) < n {
		r.err = errors.New("trace: truncated record")
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// DecodeRecord parses an encoded record. Any framing damage — wrong magic,
// truncation, out-of-range counts, trailing garbage — is an error: a blob
// that does not decode exactly is corrupt, and replay must refuse it
// rather than replay something else.
func DecodeRecord(b []byte) (Record, error) {
	var rec Record
	if len(b) < len(recordMagic) || string(b[:len(recordMagic)]) != recordMagic {
		return rec, errors.New("trace: blob lacks RTB1 magic")
	}
	r := &recordReader{buf: b[len(recordMagic):]}
	rec.Algo = string(r.bytes(r.uvarint()))
	rec.N = int(r.uvarint())
	rec.Horizon = int(r.uvarint())
	steps := r.uvarint()
	if r.err != nil {
		return rec, r.err
	}
	if rec.N <= 0 || steps > maxRecordSteps {
		return rec, fmt.Errorf("trace: implausible record header (n=%d, steps=%d)", rec.N, steps)
	}
	rec.Exec = make(model.Execution, 0, steps)
	rec.Changed = make([]bool, 0, steps)
	for t := uint64(0); t < steps; t++ {
		proc := r.uvarint()
		fb := r.bytes(1)
		if r.err != nil {
			return rec, r.err
		}
		flags := fb[0]
		s := model.Step{
			Proc: int(proc),
			Kind: model.Kind(flags & 0b11),
			Crit: model.CritKind((flags >> 3) & 0b11),
			RMW:  model.RMWKind((flags >> 5) & 0b11),
		}
		if flags&(1<<7) != 0 {
			return rec, fmt.Errorf("trace: step %d: reserved flag bit set", t)
		}
		switch s.Kind {
		case model.KindRead, model.KindWrite:
			s.Reg = model.RegID(r.uvarint())
			s.Val = r.varint()
		case model.KindRMW:
			s.Reg = model.RegID(r.uvarint())
			s.Val = r.varint()
			s.Arg1 = r.varint()
			s.Arg2 = r.varint()
		}
		if r.err != nil {
			return rec, r.err
		}
		if s.Proc >= rec.N {
			return rec, fmt.Errorf("trace: step %d: process %d out of range [0,%d)", t, s.Proc, rec.N)
		}
		rec.Exec = append(rec.Exec, s)
		rec.Changed = append(rec.Changed, flags&(1<<2) != 0)
	}
	if len(r.buf) != 0 {
		return rec, fmt.Errorf("trace: %d trailing bytes after record", len(r.buf))
	}
	return rec, nil
}

// VerifyRecord replays the record against fresh automata for its factory
// and asserts the stored execution is exactly what the algorithm does:
// every step must match the acting process's pending step (register, kind,
// operands, read result) and every shared step's recorded state-change
// flag must match the replayed charge. Returns the replayed SC cost.
// Critical steps carry no charge, so their Changed flags are recorded but
// not checkable from the cost stream.
func VerifyRecord(f program.Factory, rec Record) (sc int, err error) {
	if f.N() != rec.N {
		return 0, fmt.Errorf("trace: record says n=%d but factory has n=%d", rec.N, f.N())
	}
	rep := machine.NewReplayer(f)
	for t, s := range rec.Exec {
		before := rep.SCCost()
		done, err := rep.Apply(s)
		if err != nil {
			return rep.SCCost(), fmt.Errorf("trace: verify step %d: %w", t, err)
		}
		if done != s {
			return rep.SCCost(), fmt.Errorf("trace: verify step %d: recorded %v but replay produced %v", t, s, done)
		}
		if s.IsShared() {
			if charged := rep.SCCost() != before; charged != rec.Changed[t] {
				return rep.SCCost(), fmt.Errorf("trace: verify step %d: recorded changed=%v but replay charged=%v", t, rec.Changed[t], charged)
			}
		}
	}
	return rep.SCCost(), nil
}
