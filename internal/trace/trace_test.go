package trace_test

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/trace"
)

func canonical(t *testing.T, name string, n int) (*mutex.Factory, model.Execution) {
	t.Helper()
	f, err := mutex.New(name, n)
	if err != nil {
		t.Fatal(err)
	}
	e, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return f, e
}

func TestTimelineRenders(t *testing.T) {
	f, exec := canonical(t, mutex.NameYangAnderson, 3)
	out, err := trace.Timeline(f, exec, trace.Options{ShowFree: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"try_0", "enter_0", "rem_2", "writes", "reads"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	// Spinning under round-robin must produce at least one free read.
	if !strings.Contains(out, "(free)") {
		t.Error("no free (uncharged) reads rendered; expected spinning under round-robin")
	}
	if lines := strings.Count(out, "\n"); lines != len(exec)+1 {
		t.Errorf("timeline has %d lines, want %d steps + header", lines, len(exec))
	}
}

func TestTimelineMaxSteps(t *testing.T) {
	f, exec := canonical(t, mutex.NameBakery, 3)
	out, err := trace.Timeline(f, exec, trace.Options{MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "more steps") {
		t.Error("truncation marker missing")
	}
}

func TestTimelineRegisterNames(t *testing.T) {
	f, exec := canonical(t, mutex.NameYangAnderson, 2)
	lay := f.Layout()
	out, err := trace.Timeline(f, exec, trace.Options{
		RegisterName: func(r model.RegID) string { return lay.Name(r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "C[1][0]") {
		t.Errorf("register names not applied:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	f, exec := canonical(t, mutex.NameYangAnderson, 3)
	out, err := trace.Summary(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p0") || !strings.Contains(out, "CS-interval") {
		t.Errorf("summary malformed:\n%s", out)
	}
	// Every process entered and exited: no [-1, -1] rows.
	if strings.Contains(out, "[-1") {
		t.Errorf("summary shows missing CS interval:\n%s", out)
	}
}

func TestTimelineRejectsForeignExecution(t *testing.T) {
	f, _ := canonical(t, mutex.NameYangAnderson, 2)
	bad := model.Execution{{Proc: 0, Kind: model.KindWrite, Reg: 0, Val: 1}}
	if _, err := trace.Timeline(f, bad, trace.Options{}); err == nil {
		t.Fatal("foreign execution accepted")
	}
	if _, err := trace.Summary(f, bad); err == nil {
		t.Fatal("foreign execution accepted by Summary")
	}
}
