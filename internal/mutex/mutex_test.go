package mutex_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/verify"
)

// registerAlgos are the register-only algorithms that must solve
// livelock-free mutual exclusion.
var registerAlgos = []string{mutex.NameYangAnderson, mutex.NamePeterson, mutex.NameBakery, mutex.NameBakeryScribble}

func schedulers(n int) map[string]func() machine.Scheduler {
	return map[string]func() machine.Scheduler{
		"round-robin":    func() machine.Scheduler { return machine.NewRoundRobin() },
		"random-1":       func() machine.Scheduler { return machine.NewRandom(1) },
		"random-42":      func() machine.Scheduler { return machine.NewRandom(42) },
		"progress-first": func() machine.Scheduler { return machine.NewProgressFirst() },
		"solo":           func() machine.Scheduler { return machine.NewSolo(perm.Identity(n)) },
	}
}

func TestAlgorithmsSolveMutex(t *testing.T) {
	for _, name := range registerAlgos {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
			for schedName, mk := range schedulers(n) {
				t.Run(fmt.Sprintf("%s/n=%d/%s", name, n, schedName), func(t *testing.T) {
					f, err := mutex.New(name, n)
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					exec, err := machine.RunCanonical(f, mk(), 0)
					if err != nil {
						t.Fatalf("RunCanonical: %v", err)
					}
					if err := verify.MutexExecution(f, exec); err != nil {
						t.Fatalf("verification failed: %v", err)
					}
				})
			}
		}
	}
}

func TestNaiveLockViolatesMutualExclusion(t *testing.T) {
	// Under round-robin, both processes read the lock as free before
	// either writes: the checker must catch the double entry.
	f, err := mutex.New(mutex.NameNaive, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatalf("RunCanonical: %v", err)
	}
	if err := verify.MutualExclusion(exec); err == nil {
		t.Fatalf("naive lock produced a mutually exclusive execution under round-robin; checker or scheduler is wrong\n%s", exec)
	}
}

func TestNaiveLockSafeWhenSolo(t *testing.T) {
	f, err := mutex.New(mutex.NameNaive, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exec, err := machine.RunCanonical(f, machine.NewSolo(perm.Identity(3)), 0)
	if err != nil {
		t.Fatalf("RunCanonical: %v", err)
	}
	if err := verify.MutexExecution(f, exec); err != nil {
		t.Fatalf("solo execution should be clean: %v", err)
	}
}

func TestLivelockFreedom(t *testing.T) {
	for _, name := range registerAlgos {
		for _, n := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				f, err := mutex.New(name, n)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				prog, err := verify.LivelockFree(f, machine.NewRoundRobin(), 0)
				if err != nil {
					t.Fatalf("LivelockFree: %v", err)
				}
				if !prog.Completed {
					t.Fatalf("algorithm did not complete within horizon (%d steps)", prog.Steps)
				}
			})
		}
	}
}

func TestYangAndersonCostScaling(t *testing.T) {
	// Tightness witness: SC cost of canonical executions is O(n log n).
	// The ratio SC/(n log2 n) must stay below a fixed constant across n.
	const bound = 12.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		f, err := mutex.YangAnderson(n)
		if err != nil {
			t.Fatalf("YangAnderson(%d): %v", n, err)
		}
		exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
		if err != nil {
			t.Fatalf("RunCanonical: %v", err)
		}
		rep, err := cost.Measure(f, exec)
		if err != nil {
			t.Fatalf("Measure: %v", err)
		}
		ratio := float64(rep.SC) / perm.NLogN(n)
		t.Logf("n=%d %s ratio=%.2f", n, rep, ratio)
		if ratio > bound {
			t.Errorf("n=%d: SC=%d, SC/(n log n)=%.2f exceeds %v: not O(n log n)", n, rep.SC, ratio, bound)
		}
	}
}

func TestBakeryQuadraticCost(t *testing.T) {
	// The bakery's ticket scan is Θ(n) per passage: canonical SC cost must
	// grow quadratically (ratio to n^2 bounded, ratio to n log n growing).
	sc := map[int]int{}
	for _, n := range []int{4, 8, 16, 32} {
		f, err := mutex.Bakery(n)
		if err != nil {
			t.Fatalf("Bakery(%d): %v", n, err)
		}
		exec, err := machine.RunCanonical(f, machine.NewSolo(perm.Identity(n)), 0)
		if err != nil {
			t.Fatalf("RunCanonical: %v", err)
		}
		rep, err := cost.Measure(f, exec)
		if err != nil {
			t.Fatalf("Measure: %v", err)
		}
		sc[n] = rep.SC
		t.Logf("n=%d %s", n, rep)
	}
	// Doubling n must at least triple cost for a quadratic-growth shape
	// (4x asymptotically; 3x tolerates lower-order terms).
	for _, n := range []int{4, 8, 16} {
		if got, prev := sc[2*n], sc[n]; float64(got) < 3.0*float64(prev) {
			t.Errorf("bakery SC(%d)=%d vs SC(%d)=%d: growth %.2fx, want ≥3x (quadratic shape)", 2*n, got, n, prev, float64(got)/float64(prev))
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := mutex.New("no-such-algorithm", 4); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestRegistryNames(t *testing.T) {
	names := mutex.Names()
	want := map[string]bool{
		mutex.NameYangAnderson: true, mutex.NamePeterson: true,
		mutex.NameBakery: true, mutex.NameNaive: true,
	}
	for _, name := range names {
		delete(want, name)
	}
	if len(want) > 0 {
		t.Fatalf("registry missing %v (got %v)", want, names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestHorizonError(t *testing.T) {
	// Two naive processes that deadlock... the naive lock does not
	// deadlock; instead test that an unsatisfiable horizon surfaces as
	// ErrHorizon for a real algorithm given far too few steps.
	f, err := mutex.Bakery(8)
	if err != nil {
		t.Fatalf("Bakery: %v", err)
	}
	_, err = machine.RunCanonical(f, machine.NewRoundRobin(), 5)
	var h machine.ErrHorizon
	if !errors.As(err, &h) {
		t.Fatalf("want ErrHorizon, got %v", err)
	}
}
