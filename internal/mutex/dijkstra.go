package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Dijkstra builds Dijkstra's 1965 n-process mutual exclusion algorithm,
// the problem's original solution and the starting point of the literature
// the paper's Section 2 surveys.
//
// Register flag[i] ∈ {0, 1, 2} (0 = passive, 1 = wants in, 2 = in doorway)
// and a turn register. Entry:
//
//	start: flag[i] := 1
//	       while turn ≠ i:
//	           if flag[turn] = 0: turn := i
//	       flag[i] := 2
//	       for all j ≠ i: if flag[j] = 2 goto start
//	exit:  flag[i] := 0
//
// The algorithm is deadlock-free (some process always gets in — the
// paper's livelock freedom) but not starvation-free for individuals. The
// read of flag[turn] uses indirect register addressing. The doorway
// collision check is Θ(n) per attempt, so canonical SC cost is Ω(n²).
func Dijkstra(n int) (*Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: dijkstra: n must be ≥ 1, got %d", n)
	}
	layout := NewLayout()
	flagBase := model.RegID(layout.Len())
	for i := 0; i < n; i++ {
		layout.Reg(fmt.Sprintf("flag[%d]", i), 0, i)
	}
	// turn starts at 0, an arbitrary valid process index.
	turn := layout.Reg("turn", 0, -1)

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("dijkstra/%d", i))
		tv := b.Var("t")
		ft := b.Var("ft")
		x := b.Var("x")
		me := program.Const(int64(i))

		b.Try()
		b.Label("start")
		b.Write(flagBase+model.RegID(i), program.Const(1))
		b.Label("turnloop")
		b.Read(turn, tv)
		b.If(program.Eq(tv, me), "doorway")
		// flag[turn]: indirect read; claim the turn if its holder is passive.
		b.ReadX(program.Add(program.Const(int64(flagBase)), tv), ft)
		b.If(program.Ne(ft, program.Const(0)), "turnloop")
		b.Write(turn, me)
		b.Goto("turnloop")
		b.Label("doorway")
		b.Write(flagBase+model.RegID(i), program.Const(2))
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			next := fmt.Sprintf("ok%d", j)
			b.Read(flagBase+model.RegID(j), x)
			b.If(program.Ne(x, program.Const(2)), next)
			b.Goto("start") // collision in the doorway: retry
			b.Label(next)
		}
		b.Enter()
		b.Exit()
		b.Write(flagBase+model.RegID(i), program.Const(0))
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: dijkstra: %w", err)
		}
		progs[i] = p
	}
	return NewFactory(fmt.Sprintf("dijkstra(n=%d)", n), layout, progs), nil
}
