package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// YangAnderson builds the n-process local-spin tournament algorithm of
// Yang and Anderson ("A fast, scalable mutual exclusion algorithm",
// Distributed Computing 1995) — reference [13] of the paper and the witness
// that the Ω(n log n) lower bound is tight: every canonical execution has
// O(n log n) state change cost, because each of a process's O(log n) node
// acquisitions performs O(1) writes and busywaits only on its own spin
// flag (a single register, which the SC model charges once per value
// change).
//
// Each internal tree node v carries three registers C[v][0], C[v][1] (the
// two sides' announcements) and T[v] (the tie-breaker); process identities
// are stored as i+1 so that 0 means "nobody". Each process i owns one spin
// flag per tree level, P[i][lvl] (DSM home i), with values 0 (reset), 1
// (advance past the first await) and 2 (the rival has exited). The flags
// must be per level: a process's announcement at an already-won lower node
// remains visible while it competes higher up, so a newly arriving rival at
// the lower node may perform the wake-up write concurrently with the
// competition at the higher node. With a single flag that spurious wake
// both releases the first await prematurely and causes the genuine wake to
// be skipped (the waker sees P ≠ 0), deadlocking the node. Per-level flags
// make every wake land at the node it belongs to; both competitors at a
// node are at the same depth, so the waker knows the level.
//
// Per node at level lvl, entry for process i on side s runs:
//
//	C[v][s] := i;  T[v] := i;  P[i][lvl] := 0
//	rival := C[v][1-s]
//	if rival ≠ 0 and T[v] = i:
//	    if P[rival][lvl] = 0: P[rival][lvl] := 1   // release a rival stuck by the race on T
//	    await P[i][lvl] ≠ 0
//	    if T[v] = i: await P[i][lvl] > 1           // still the loser: wait for rival's exit
//
// and exit (top-down on the path, which keeps at most two processes
// competing at any node) runs:
//
//	C[v][s] := 0
//	rival := T[v]
//	if rival ≠ i: P[rival][lvl] := 2
func YangAnderson(n int) (*Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: yang-anderson: n must be ≥ 1, got %d", n)
	}
	layout := NewLayout()
	levels := len(pathToRoot(n, 0)) // identical for every process: the tree is complete
	// P[i][lvl] at pBase + i*levels + lvl, DSM-local to its owner: the
	// defining property of a local-spin algorithm.
	pBase := model.RegID(layout.Len())
	for i := 0; i < n; i++ {
		for lvl := 0; lvl < levels; lvl++ {
			layout.Reg(fmt.Sprintf("P[%d][%d]", i, lvl), 0, i)
		}
	}
	// C and T registers per internal node.
	type nodeRegs struct {
		c [2]model.RegID
		t model.RegID
	}
	nodes := make(map[int]nodeRegs, numInternal(n))
	for v := 1; v <= numInternal(n); v++ {
		nodes[v] = nodeRegs{
			c: [2]model.RegID{
				layout.Reg(fmt.Sprintf("C[%d][0]", v), 0, -1),
				layout.Reg(fmt.Sprintf("C[%d][1]", v), 0, -1),
			},
			t: layout.Reg(fmt.Sprintf("T[%d]", v), 0, -1),
		}
	}

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("yang-anderson/%d", i))
		me := program.Const(model.Value(i + 1))
		rival := b.Var("rival")
		t := b.Var("t")
		rp := b.Var("rp")
		w := b.Var("w")
		path := pathToRoot(n, i)

		// rivalFlag returns the register-index expression for
		// P[rival-1][lvl] = pBase + (rival-1)*levels + lvl.
		rivalFlag := func(lvl int) program.Expr {
			return program.Add(
				program.Mul(rival, program.Const(model.Value(levels))),
				program.Const(model.Value(pBase)+model.Value(lvl)-model.Value(levels)),
			)
		}
		myFlag := func(lvl int) model.RegID {
			return pBase + model.RegID(i*levels+lvl)
		}

		b.Try()
		for lvl, tn := range path {
			regs := nodes[tn.node]
			acquired := fmt.Sprintf("acquired%d", lvl)
			skipWake := fmt.Sprintf("skipwake%d", lvl)

			b.Write(regs.c[tn.side], me)
			b.Write(regs.t, me)
			b.Write(myFlag(lvl), program.Const(0))
			b.Read(regs.c[1-tn.side], rival)
			b.If(program.Eq(rival, program.Const(0)), acquired)
			b.Read(regs.t, t)
			b.If(program.Ne(t, me), acquired)
			b.ReadX(rivalFlag(lvl), rp)
			b.If(program.Ne(rp, program.Const(0)), skipWake)
			b.WriteX(rivalFlag(lvl), program.Const(1))
			b.Label(skipWake)
			b.Spin(myFlag(lvl), w, program.Ne(w, program.Const(0)))
			b.Read(regs.t, t)
			b.If(program.Ne(t, me), acquired)
			b.Spin(myFlag(lvl), w, program.Gt(w, program.Const(1)))
			b.Label(acquired)
			// Scrub scratch variables so the automaton state entering the
			// next level is independent of which branch ran.
			b.Let(rival, program.Const(0))
			b.Let(t, program.Const(0))
			b.Let(rp, program.Const(0))
			b.Let(w, program.Const(0))
		}
		b.Enter()
		b.Exit()
		// Release top-down: root first, then down toward the leaf. This
		// order guarantees a node's loser cannot advance (and re-enter a
		// higher node) until the winner has fully left that higher node.
		for lvl := len(path) - 1; lvl >= 0; lvl-- {
			tn := path[lvl]
			regs := nodes[tn.node]
			done := fmt.Sprintf("released%d", lvl)
			b.Write(regs.c[tn.side], program.Const(0))
			b.Read(regs.t, rival)
			b.If(program.Eq(rival, me), done)
			b.If(program.Eq(rival, program.Const(0)), done)
			b.WriteX(rivalFlag(lvl), program.Const(2))
			b.Label(done)
			b.Let(rival, program.Const(0))
		}
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: yang-anderson: %w", err)
		}
		progs[i] = p
	}
	return NewFactory(fmt.Sprintf("yang-anderson(n=%d)", n), layout, progs), nil
}
