package mutex

import (
	"fmt"

	"repro/internal/program"
)

// Naive builds a deliberately incorrect register lock: each process spins
// until a single lock register reads 0, then writes 1 and enters. Two
// processes that both read 0 before either writes will both enter — a
// mutual exclusion violation under interleaving schedulers.
//
// It exists to validate the checkers: internal/verify must catch the
// violation, and the test suite asserts it does. It also demonstrates why
// registers alone need cleverness (the reason test-and-set exists; see
// internal/rmw for the RMW version that is correct).
func Naive(n int) (*Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: naive: n must be ≥ 1, got %d", n)
	}
	layout := NewLayout()
	lock := layout.Reg("L", 0, -1)

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("naive/%d", i))
		x := b.Var("x")
		b.Try()
		b.Spin(lock, x, program.Eq(x, program.Const(0)))
		b.Write(lock, program.Const(1))
		b.Enter()
		b.Exit()
		b.Write(lock, program.Const(0))
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: naive: %w", err)
		}
		progs[i] = p
	}
	return NewFactory(fmt.Sprintf("naive(n=%d)", n), layout, progs), nil
}
