// Package mutex implements mutual exclusion algorithms as register programs
// for the paper's shared-memory model:
//
//   - Yang–Anderson's local-spin tournament algorithm [13], the witness
//     that the paper's Ω(n log n) bound is tight: it has O(n log n) state
//     change cost in every canonical execution;
//   - Peterson's algorithm (two-process and an n-process tournament), a
//     classic register algorithm that busywaits on two variables and is
//     therefore not local-spin;
//   - Lamport's bakery algorithm, with Θ(n) reads per passage and hence
//     Θ(n²) total cost — the contrast in experiment E7;
//   - a deliberately unsafe naive lock used to validate the safety checkers.
//
// All algorithms are expressed in the internal/program DSL, so every proof
// artifact of the paper (the construction, the SC oracle, the decoder) can
// run against them unchanged.
package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Layout assigns named shared registers, their initial values, and their
// DSM homes. Algorithm constructors build one layout per factory and then
// refer to registers by the returned IDs.
type Layout struct {
	names []string
	init  []model.Value
	homes []int
	index map[string]model.RegID
}

// NewLayout returns an empty register layout.
func NewLayout() *Layout {
	return &Layout{index: make(map[string]model.RegID)}
}

// Reg allocates a register with a unique name, an initial value, and a DSM
// home process (-1 for global memory). It panics on duplicate names: layout
// construction is static algorithm definition, so a duplicate is a bug.
func (l *Layout) Reg(name string, init model.Value, home int) model.RegID {
	if _, dup := l.index[name]; dup {
		panic(fmt.Sprintf("mutex: duplicate register %q", name))
	}
	id := model.RegID(len(l.names))
	l.names = append(l.names, name)
	l.init = append(l.init, init)
	l.homes = append(l.homes, home)
	l.index[name] = id
	return id
}

// Lookup returns the ID of a named register.
func (l *Layout) Lookup(name string) (model.RegID, bool) {
	id, ok := l.index[name]
	return id, ok
}

// Name returns the name of a register.
func (l *Layout) Name(id model.RegID) string { return l.names[id] }

// Len returns the number of registers allocated.
func (l *Layout) Len() int { return len(l.names) }

// Factory is the concrete program.Factory used by all algorithms here.
// It also implements cost.DSMLayout via the layout's homes.
type Factory struct {
	name    string
	n       int
	layout  *Layout
	progs   []*program.Program
	usesRMW bool
}

// NewFactory builds a factory from per-process programs and a layout.
func NewFactory(name string, layout *Layout, progs []*program.Program) *Factory {
	f := &Factory{name: name, n: len(progs), layout: layout, progs: progs}
	for _, p := range progs {
		if program.ProgramUsesRMW(p) {
			f.usesRMW = true
		}
	}
	return f
}

// Name implements program.Factory.
func (f *Factory) Name() string { return f.name }

// N implements program.Factory.
func (f *Factory) N() int { return f.n }

// NumRegisters implements program.Factory.
func (f *Factory) NumRegisters() int { return f.layout.Len() }

// InitialValues implements program.Factory.
func (f *Factory) InitialValues() []model.Value {
	out := make([]model.Value, len(f.layout.init))
	copy(out, f.layout.init)
	return out
}

// Program implements program.Factory.
func (f *Factory) Program(i int) *program.Program { return f.progs[i] }

// UsesRMW implements program.Factory.
func (f *Factory) UsesRMW() bool { return f.usesRMW }

// Home implements cost.DSMLayout.
func (f *Factory) Home(reg model.RegID) int { return f.layout.homes[reg] }

// Layout exposes the register layout for inspection and debugging.
func (f *Factory) Layout() *Layout { return f.layout }

// Builder is the constructor signature registered in the Registry: it
// builds an n-process instance of an algorithm.
type Builder func(n int) (*Factory, error)

// registry of algorithm constructors by name, populated in registry.go.
var registry = map[string]Builder{}

// Register adds an algorithm constructor under a unique name.
func Register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mutex: duplicate algorithm %q", name))
	}
	registry[name] = b
}

// New builds an n-process instance of the named algorithm.
func New(name string, n int) (*Factory, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mutex: unknown algorithm %q (known: %v)", name, Names())
	}
	return b(n)
}

// Names returns the registered algorithm names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	// Insertion sort: the list is tiny and this avoids an import.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
