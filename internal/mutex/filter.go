package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Filter builds the filter lock, Peterson's generalization of his
// two-process algorithm to n processes: n-1 levels, each filtering out at
// least one process. A process at level l waits until either no other
// process is at level ≥ l or it is no longer the level's victim.
//
//	for l = 1 .. n-1:
//	    level[i] := l
//	    victim[l] := i
//	    for all j ≠ i:
//	        while level[j] ≥ l and victim[l] = i: busywait
//	exit: level[i] := 0
//
// The wait alternates reads of level[j] and victim[l] — a two-register
// busywait, charged per read in the SC model like Peterson's — and scans
// all n-1 rivals at each of n-1 levels: Θ(n²) work per passage even
// without contention.
func Filter(n int) (*Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: filter: n must be ≥ 1, got %d", n)
	}
	layout := NewLayout()
	level := make([]model.RegID, n)
	for i := 0; i < n; i++ {
		level[i] = layout.Reg(fmt.Sprintf("level[%d]", i), 0, i)
	}
	victim := make([]model.RegID, n) // victim[1..n-1] used
	for l := 1; l < n; l++ {
		victim[l] = layout.Reg(fmt.Sprintf("victim[%d]", l), 0, -1)
	}

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("filter/%d", i))
		x := b.Var("x")
		v := b.Var("v")
		me := program.Const(int64(i))

		b.Try()
		for l := 1; l < n; l++ {
			b.Write(level[i], program.Const(int64(l)))
			b.Write(victim[l], me)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				wait := fmt.Sprintf("wait_l%d_j%d", l, j)
				pass := fmt.Sprintf("pass_l%d_j%d", l, j)
				b.Label(wait)
				b.Read(level[j], x)
				b.If(program.Lt(x, program.Const(int64(l))), pass)
				b.Read(victim[l], v)
				b.If(program.Eq(v, me), wait)
				// No longer the victim: the whole level's condition fails;
				// skip the remaining rivals at this level.
				b.Goto(fmt.Sprintf("level_done_%d", l))
				b.Label(pass)
			}
			b.Label(fmt.Sprintf("level_done_%d", l))
			b.Let(x, program.Const(0))
			b.Let(v, program.Const(0))
		}
		b.Enter()
		b.Exit()
		b.Write(level[i], program.Const(0))
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: filter: %w", err)
		}
		progs[i] = p
	}
	return NewFactory(fmt.Sprintf("filter(n=%d)", n), layout, progs), nil
}
