package mutex_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
)

// TestDebugYangAndersonHang reproduces a random-scheduler hang and dumps
// the stuck system state. Kept as a regression canary: it must complete.
func TestDebugYangAndersonHang(t *testing.T) {
	n := 16
	f, err := mutex.New(mutex.NameYangAnderson, n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := machine.NewSystem(f)
	_, err = machine.Run(s, machine.NewRandom(1), 200000)
	if err == nil {
		return
	}
	t.Logf("run error: %v", err)
	for i := 0; i < n; i++ {
		if s.Halted(i) {
			continue
		}
		a := s.Automaton(i)
		t.Logf("proc %2d section=%s pc=%d pending=%v env=%v", i, s.Section(i), a.PC(), s.PendingStep(i), a.Env())
	}
	lay := f.Layout()
	for r := 0; r < f.NumRegisters(); r++ {
		v := s.Registers().Read(model.RegID(r))
		if v != 0 {
			t.Logf("reg %-12s = %d", lay.Name(model.RegID(r)), v)
		}
	}
	t.Fatal("yang-anderson hung")
}
