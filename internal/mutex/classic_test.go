package mutex_test

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/mutex"
	"repro/internal/verify"
)

// TestDekker covers the 2-process-only constructor and its correctness.
func TestDekker(t *testing.T) {
	if _, err := mutex.Dekker(3); err == nil {
		t.Fatal("Dekker(3) accepted")
	}
	f, err := mutex.Dekker(2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		exec, err := machine.RunCanonical(f, machine.NewRandom(seed), 0)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := verify.MutexExecution(f, exec); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestDijkstraAndFilter run the classic n-process algorithms across sizes
// and schedulers.
func TestDijkstraAndFilter(t *testing.T) {
	for _, name := range []string{mutex.NameDijkstra, mutex.NameFilter} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			for seed := int64(0); seed < 10; seed++ {
				t.Run(fmt.Sprintf("%s/n=%d/seed=%d", name, n, seed), func(t *testing.T) {
					f, err := mutex.New(name, n)
					if err != nil {
						t.Fatal(err)
					}
					exec, err := machine.RunCanonical(f, machine.NewRandom(seed), 0)
					if err != nil {
						t.Fatal(err)
					}
					if err := verify.MutexExecution(f, exec); err != nil {
						t.Fatal(err)
					}
				})
			}
			t.Run(fmt.Sprintf("%s/n=%d/round-robin", name, n), func(t *testing.T) {
				f, err := mutex.New(name, n)
				if err != nil {
					t.Fatal(err)
				}
				exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := verify.MutexExecution(f, exec); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestTreeGeometry pins the tournament-tree helper functions (shared by
// Yang–Anderson and Peterson).
func TestTreeGeometry(t *testing.T) {
	// n=1: no internal nodes, empty paths.
	f, err := mutex.YangAnderson(1)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MutexExecution(f, exec); err != nil {
		t.Fatal(err)
	}
	// Non-power-of-two n exercise partially filled trees.
	for _, n := range []int{3, 5, 6, 7, 9, 12, 15} {
		f, err := mutex.YangAnderson(n)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := machine.RunCanonical(f, machine.NewRandom(int64(n)), 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := verify.MutexExecution(f, exec); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
