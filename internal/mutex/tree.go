package mutex

// Tournament-tree geometry shared by the Yang–Anderson and Peterson
// tournament algorithms. Internal nodes are numbered in heap order
// (root = 1); process i's leaf is node leafBase + i where leafBase is the
// smallest power of two ≥ n. A process climbs from its leaf's parent to the
// root, competing on one side (the low bit of the child it came from) at
// each internal node.

// leafBase returns the smallest power of two ≥ n (and ≥ 1).
func leafBase(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// treeNode is one internal node on a process's path.
type treeNode struct {
	node int // heap-order index of the internal node, in [1, leafBase)
	side int // 0 or 1: which child subtree the process arrives from
}

// pathToRoot returns the internal nodes process i traverses bottom-up
// (leaf's parent first, root last). For n = 1 the path is empty.
func pathToRoot(n, i int) []treeNode {
	base := leafBase(n)
	var path []treeNode
	cur := base + i
	for cur > 1 {
		path = append(path, treeNode{node: cur >> 1, side: cur & 1})
		cur >>= 1
	}
	return path
}

// numInternal returns the number of internal nodes allocated for n
// processes: leafBase(n) - 1.
func numInternal(n int) int { return leafBase(n) - 1 }
