package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Bakery builds Lamport's bakery algorithm for n processes.
//
// Each passage reads all n-1 other tickets to compute its own (Θ(n) plain
// reads, each a state change), then waits on each other process in turn.
// Both waits are single-register busywaits — on choosing[j] and on
// number[j] with the ticket-order predicate — so they are SC-bounded; the
// Θ(n) ticket scan nevertheless makes the canonical-execution cost Θ(n²),
// the quadratic baseline of experiment E7.
//
// Tickets are unbounded in general; int64 registers are ample for the
// finite executions measured here.
func Bakery(n int) (*Factory, error) {
	return bakery(n, false)
}

// BakeryScribble is the bakery algorithm plus one semantically inert write
// to a shared "scribble" register at the very end of each exit section,
// after the process's last read.
//
// It exists to exercise the construction's *hidden write* gadget (Figure 1,
// line 16: a higher-indexed process's write inserted into an existing write
// metastep, immediately overwritten by the winner). None of the classic
// algorithms ever trigger it: they all announce before they read, so the
// preread edges pull every rival write under m′ before a join could happen
// (and the bakery's per-process registers are single-writer outright). A
// write performed after a process's final read is exactly what the gadget
// needs: in any multi-stage construction the later processes' scribbles
// join the first process's scribble metastep and are hidden by its winning
// write. The trailing write changes neither safety nor liveness.
func BakeryScribble(n int) (*Factory, error) {
	return bakery(n, true)
}

func bakery(n int, scribble bool) (*Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: bakery: n must be ≥ 1, got %d", n)
	}
	layout := NewLayout()
	choosing := make([]model.RegID, n)
	number := make([]model.RegID, n)
	for i := 0; i < n; i++ {
		choosing[i] = layout.Reg(fmt.Sprintf("choosing[%d]", i), 0, i)
	}
	for i := 0; i < n; i++ {
		number[i] = layout.Reg(fmt.Sprintf("number[%d]", i), 0, i)
	}
	var scratch model.RegID
	if scribble {
		scratch = layout.Reg("scribble", 0, -1)
	}

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("bakery/%d", i))
		maxv := b.Var("max")
		x := b.Var("x")
		c := b.Var("c")
		mynum := b.Var("mynum")

		b.Try()
		b.Write(choosing[i], program.Const(1))
		b.Let(maxv, program.Const(0))
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			skip := fmt.Sprintf("scan%d", j)
			b.Read(number[j], x)
			b.If(program.Le(x, maxv), skip)
			b.Let(maxv, x)
			b.Label(skip)
			b.Let(x, program.Const(0))
		}
		b.Let(mynum, program.Add(maxv, program.Const(1)))
		b.Write(number[i], mynum)
		b.Write(choosing[i], program.Const(0))
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// Wait until p_j is not choosing.
			b.Spin(choosing[j], c, program.Eq(c, program.Const(0)))
			// Wait until p_j's ticket does not precede ours:
			// proceed when number[j]=0, number[j]>mynum, or ties broken by index.
			pred := program.Or(
				program.Eq(x, program.Const(0)),
				program.Or(
					program.Gt(x, mynum),
					program.And(program.Eq(x, mynum), program.Const(b2i(j > i))),
				),
			)
			b.Spin(number[j], x, pred)
		}
		b.Enter()
		b.Exit()
		b.Write(number[i], program.Const(0))
		if scribble {
			b.Write(scratch, program.Const(int64(i+1)))
		}
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: bakery: %w", err)
		}
		progs[i] = p
	}
	name := fmt.Sprintf("bakery(n=%d)", n)
	if scribble {
		name = fmt.Sprintf("bakery-scribble(n=%d)", n)
	}
	return NewFactory(name, layout, progs), nil
}

func b2i(b bool) model.Value {
	if b {
		return 1
	}
	return 0
}
