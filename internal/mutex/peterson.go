package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Peterson builds an n-process tournament of two-process Peterson locks.
// For n = 2 this is exactly Peterson's classic algorithm.
//
// Unlike Yang–Anderson, the Peterson entry protocol busywaits on a
// *condition over two registers* (the rival's flag and the victim
// register). The state change cost model permits bounded-cost busywaiting
// only on a single register at a time (§3.3): an automaton alternating
// reads of two registers changes state on every read (the program counter
// distinguishes "about to read F" from "about to read V"), so Peterson's
// waiting is charged per read. Its SC cost in canonical executions is
// therefore scheduler-dependent and unbounded under adversarial schedules —
// a measured illustration of why the paper's tight algorithms are
// local-spin.
//
// Per internal tree node v, the registers are F[v][0], F[v][1] (intent
// flags) and V[v] (the victim: the side that must yield). Entry at side s:
//
//	F[s] := 1;  V := s
//	while F[1-s] = 1 and V = s: busywait (alternating reads)
//
// Exit clears F[s], top-down along the path.
func Peterson(n int) (*Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("mutex: peterson: n must be ≥ 1, got %d", n)
	}
	layout := NewLayout()
	type nodeRegs struct {
		f [2]model.RegID
		v model.RegID
	}
	nodes := make(map[int]nodeRegs, numInternal(n))
	for v := 1; v <= numInternal(n); v++ {
		nodes[v] = nodeRegs{
			f: [2]model.RegID{
				layout.Reg(fmt.Sprintf("F[%d][0]", v), 0, -1),
				layout.Reg(fmt.Sprintf("F[%d][1]", v), 0, -1),
			},
			v: layout.Reg(fmt.Sprintf("V[%d]", v), 0, -1),
		}
	}

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("peterson/%d", i))
		f := b.Var("f")
		t := b.Var("t")
		path := pathToRoot(n, i)

		b.Try()
		for lvl, tn := range path {
			regs := nodes[tn.node]
			wait := fmt.Sprintf("wait%d", lvl)
			acquired := fmt.Sprintf("acquired%d", lvl)
			b.Write(regs.f[tn.side], program.Const(1))
			b.Write(regs.v, program.Const(model.Value(tn.side)))
			b.Label(wait)
			b.Read(regs.f[1-tn.side], f)
			b.If(program.Eq(f, program.Const(0)), acquired)
			b.Read(regs.v, t)
			b.If(program.Eq(t, program.Const(model.Value(tn.side))), wait)
			b.Label(acquired)
			b.Let(f, program.Const(0))
			b.Let(t, program.Const(0))
		}
		b.Enter()
		b.Exit()
		for lvl := len(path) - 1; lvl >= 0; lvl-- {
			tn := path[lvl]
			b.Write(nodes[tn.node].f[tn.side], program.Const(0))
		}
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: peterson: %w", err)
		}
		progs[i] = p
	}
	return NewFactory(fmt.Sprintf("peterson(n=%d)", n), layout, progs), nil
}
