package mutex

// Algorithm names for the register-only algorithms defined in this package.
// RMW-based algorithms (internal/rmw) are registered by the top-level repro
// package, which imports both.
const (
	// NameYangAnderson is the local-spin tournament algorithm [13].
	NameYangAnderson = "yang-anderson"
	// NamePeterson is the Peterson tournament.
	NamePeterson = "peterson"
	// NameBakery is Lamport's bakery.
	NameBakery = "bakery"
	// NameNaive is the intentionally unsafe single-register lock.
	NameNaive = "naive"
	// NameDekker is Dekker's two-process algorithm (n must be 2).
	NameDekker = "dekker"
	// NameDijkstra is Dijkstra's 1965 algorithm.
	NameDijkstra = "dijkstra"
	// NameFilter is Peterson's n-process filter lock.
	NameFilter = "filter"
	// NameBakeryScribble is the bakery plus a trailing inert shared write;
	// it exists to exercise the construction's hidden-write gadget.
	NameBakeryScribble = "bakery-scribble"
)

func init() {
	Register(NameYangAnderson, YangAnderson)
	Register(NamePeterson, Peterson)
	Register(NameBakery, Bakery)
	Register(NameNaive, Naive)
	Register(NameDekker, Dekker)
	Register(NameDijkstra, Dijkstra)
	Register(NameFilter, Filter)
	Register(NameBakeryScribble, BakeryScribble)
}
