package mutex

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Dekker builds Dekker's algorithm, the first known two-process mutual
// exclusion algorithm using only registers (n must be 2). It predates
// Peterson's and uses an explicit back-off: on conflict, the process that
// does not hold the turn retracts its flag and busywaits on the turn
// register (a single-register spin, SC-bounded) before retrying.
//
//	entry(i):  flag[i] := 1
//	           while flag[1-i] = 1:
//	               if turn ≠ i:
//	                   flag[i] := 0
//	                   await turn = i
//	                   flag[i] := 1
//	exit(i):   turn := 1-i;  flag[i] := 0
func Dekker(n int) (*Factory, error) {
	if n != 2 {
		return nil, fmt.Errorf("mutex: dekker: defined for exactly 2 processes, got %d", n)
	}
	layout := NewLayout()
	flags := [2]model.RegID{
		layout.Reg("flag[0]", 0, 0),
		layout.Reg("flag[1]", 0, 1),
	}
	turn := layout.Reg("turn", 0, -1)

	progs := make([]*program.Program, 2)
	for i := 0; i < 2; i++ {
		b := program.NewBuilder(fmt.Sprintf("dekker/%d", i))
		x := b.Var("x")
		tv := b.Var("t")
		mine, other := flags[i], flags[1-i]

		b.Try()
		b.Write(mine, program.Const(1))
		b.Label("check")
		b.Read(other, x)
		b.If(program.Eq(x, program.Const(0)), "enter")
		b.Read(turn, tv)
		b.If(program.Eq(tv, program.Const(int64(i))), "check")
		// Not our turn: back off, wait for the turn, retry.
		b.Write(mine, program.Const(0))
		b.Spin(turn, tv, program.Eq(tv, program.Const(int64(i))))
		b.Write(mine, program.Const(1))
		b.Goto("check")
		b.Label("enter")
		b.Enter()
		b.Exit()
		b.Write(turn, program.Const(int64(1-i)))
		b.Write(mine, program.Const(0))
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("mutex: dekker: %w", err)
		}
		progs[i] = p
	}
	return NewFactory("dekker(n=2)", layout, progs), nil
}
