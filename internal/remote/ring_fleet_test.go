package remote_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/remote"
	"repro/internal/store"
)

// newMember starts a stored service that knows its own ring name, and
// returns the usual handles.
func newMember(t *testing.T, name string) (*httptest.Server, *remote.Server, *store.Store) {
	t.Helper()
	ts, srv, st := newServer(t)
	srv.SetSelf(name)
	return ts, srv, st
}

// ringOf builds an epoch-stamped ring over live test servers, named in
// order.
func ringOf(t *testing.T, epoch uint64, names []string, urls []string) *store.Ring {
	t.Helper()
	members := make([]store.Member, len(names))
	for i := range names {
		members[i] = store.Member{Name: names[i], URL: urls[i]}
	}
	ring, err := store.NewRing(epoch, members...)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

// TestRingInstallFetchEpoch pins the placement-metadata protocol: a ring
// posted to one member is served back byte-equivalent, every subsequent
// reply echoes the installed epoch (and the client tracks the newest one
// seen), an older epoch is refused, and a conflicting membership at the
// installed epoch is refused — two rings at one epoch would split the
// fleet's placement brain.
func TestRingInstallFetchEpoch(t *testing.T) {
	ts, srv, _ := newMember(t, "a")
	c := newClient(t, ts.URL)

	// No ring installed: fetch reports "none" without error.
	if r, err := c.FetchRing(); r != nil || err != nil {
		t.Fatalf("fresh server served ring %v, err %v; want none", r, err)
	}

	ring := ringOf(t, 3, []string{"a", "b"}, []string{ts.URL, "http://b.invalid"})
	if err := c.InstallRing(ring); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchRing()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.String() != ring.String() {
		t.Fatalf("fetched %s, want %s", got, ring)
	}
	if e := c.SeenEpoch(); e != 3 {
		t.Fatalf("client saw epoch %d on replies, want 3", e)
	}
	if sr, err := c.Ping(); err != nil || sr.Epoch != 3 {
		t.Fatalf("stats epoch %d (err %v), want 3", sr.Epoch, err)
	}

	// An older epoch must not roll the fleet's placement back.
	old := ringOf(t, 2, []string{"a"}, []string{ts.URL})
	if err := c.InstallRing(old); err == nil {
		t.Fatal("server accepted an epoch rollback")
	}
	// Same epoch, same membership: an idempotent re-install (Rebalance
	// re-runs do this); same epoch, different membership: refused.
	if err := c.InstallRing(ring); err != nil {
		t.Fatalf("idempotent re-install refused: %v", err)
	}
	conflicting := ringOf(t, 3, []string{"a", "z"}, []string{ts.URL, "http://z.invalid"})
	if err := c.InstallRing(conflicting); err == nil {
		t.Fatal("server accepted a conflicting ring at the installed epoch")
	}
	if srv.Ring().String() != ring.String() {
		t.Fatalf("installed ring drifted to %s", srv.Ring())
	}
}

// TestFleetScaleOutRebalance is the acceptance path end to end: warm a
// routed 2-replica fleet, add a third replica, rebalance onto the epoch-2
// ring, and replay — every key must be served from exactly its new owner
// with zero misses and zero re-executions' worth of writes. Also pins that
// a mount naming only ONE member discovers and dials the whole fleet from
// the installed ring, and that rebalancing is idempotent.
func TestFleetScaleOutRebalance(t *testing.T) {
	tsA, _, authA := newMember(t, "a")
	tsB, _, authB := newMember(t, "b")

	ring1 := ringOf(t, 1, []string{"a", "b"}, []string{tsA.URL, tsB.URL})
	for _, u := range []string{tsA.URL, tsB.URL} {
		if err := newClient(t, u).InstallRing(ring1); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the 2-replica fleet, mounting it by naming a single member.
	st, cls, mounted, err := remote.MountFleet("", tsA.URL)
	if err != nil {
		t.Fatal(err)
	}
	if mounted == nil || mounted.Epoch != 1 || len(cls) != 2 {
		t.Fatalf("single-URL mount found ring %v with %d clients, want epoch 1 and 2 members", mounted, len(cls))
	}
	const n = 60
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("scale", i)
		st.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	if authA.Len()+authB.Len() != n {
		t.Fatalf("fleet holds %d+%d keys, want %d", authA.Len(), authB.Len(), n)
	}
	st.Close()

	// Scale out: start c, install the epoch-2 ring everywhere, drain each.
	tsC, _, authC := newMember(t, "c")
	ring2 := ringOf(t, 2, []string{"a", "b", "c"}, []string{tsA.URL, tsB.URL, tsC.URL})
	var diag strings.Builder
	if err := remote.Rebalance(ring2, &diag); err != nil {
		t.Fatal(err)
	}
	if authC.Len() == 0 {
		t.Fatal("no keys moved to the new replica")
	}
	if total := authA.Len() + authB.Len() + authC.Len(); total != n {
		t.Fatalf("fleet holds %d keys after rebalance, want %d (nothing lost, nothing doubled)", total, n)
	}
	for i, k := range keys {
		owner := ring2.Owner(k)
		if !([]*store.Store{authA, authB, authC})[owner].Has(k) {
			t.Fatalf("key %d not on its epoch-2 owner %s", i, ring2.Members[owner].Name)
		}
	}

	// Replay through a fresh mount (again naming one member): epoch 2 is
	// discovered, all three replicas are dialed, and the whole warm set is
	// served without a single miss or write.
	fresh, cls3, m2, err := remote.MountFleet("", tsB.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if m2 == nil || m2.Epoch != 2 || len(cls3) != 3 {
		t.Fatalf("post-rebalance mount found ring %v with %d clients, want epoch 2 and 3 members", m2, len(cls3))
	}
	fresh.Prefetch(keys)
	for i, k := range keys {
		if v, ok := fresh.Get(k); !ok || string(v) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("key %d after scale-out: %q ok=%v", i, v, ok)
		}
	}
	if s := fresh.Stats(); s.Misses != 0 || s.Puts != 0 {
		t.Fatalf("replay saw misses=%d puts=%d, want a fully warm fleet", s.Misses, s.Puts)
	}

	// Idempotent: a second rebalance onto the same ring moves nothing.
	if err := remote.Rebalance(ring2, nil); err != nil {
		t.Fatal(err)
	}
	if total := authA.Len() + authB.Len() + authC.Len(); total != n {
		t.Fatalf("settled fleet re-rebalanced to %d keys, want %d", total, n)
	}
}

// TestMidMigrationReads pins the property the whole design leans on: after
// the new ring is installed but BEFORE any key has moved, a client routed
// by the new placement still reads every key — a moved key's runner-up
// under rendezvous growth is exactly its previous owner, so failover reads
// bridge the migration window with zero misses.
func TestMidMigrationReads(t *testing.T) {
	tsA, _, _ := newMember(t, "a")
	tsB, _, _ := newMember(t, "b")

	ring1 := ringOf(t, 1, []string{"a", "b"}, []string{tsA.URL, tsB.URL})
	for _, u := range []string{tsA.URL, tsB.URL} {
		if err := newClient(t, u).InstallRing(ring1); err != nil {
			t.Fatal(err)
		}
	}
	st, _, _, err := remote.MountFleet("", tsA.URL)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("mid", i)
		st.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	st.Close()

	// Install epoch 2 on all three members and drain NOTHING: every key
	// still sits where epoch 1 put it.
	tsC, _, authC := newMember(t, "c")
	ring2 := ringOf(t, 2, []string{"a", "b", "c"}, []string{tsA.URL, tsB.URL, tsC.URL})
	for _, u := range []string{tsA.URL, tsB.URL, tsC.URL} {
		if err := newClient(t, u).InstallRing(ring2); err != nil {
			t.Fatal(err)
		}
	}
	if authC.Len() != 0 {
		t.Fatal("test premise broken: keys on c before any drain")
	}

	mid, _, m2, err := remote.MountFleet("", tsC.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	if m2 == nil || m2.Epoch != 2 {
		t.Fatalf("mid-migration mount found ring %v, want epoch 2", m2)
	}
	// Both read paths must bridge: batched (prefetch regroups unresolved
	// keys by runner-up) and point (per-key rank walk).
	present := mid.Prefetch(keys)
	if len(present) != n {
		t.Fatalf("mid-migration prefetch marked %d of %d present", len(present), n)
	}
	for i, k := range keys {
		if v, ok := mid.Get(k); !ok || string(v) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("key %d mid-migration: %q ok=%v", i, v, ok)
		}
	}
	if s := mid.Stats(); s.Misses != 0 {
		t.Fatalf("mid-migration replay saw %d misses, want 0 — failover reads must cover unmoved keys", s.Misses)
	}
}

// TestMergeRoutesToOwners pins the router-aware -merge: folding a local
// directory into a fleet mount pushes each entry straight to its owning
// replica in full per-replica batches — one mput per member for a
// sub-chunk merge, zero point puts, and every key lands on exactly its
// owner.
func TestMergeRoutesToOwners(t *testing.T) {
	tsA, srvA, authA := newMember(t, "a")
	tsB, srvB, authB := newMember(t, "b")
	ring := ringOf(t, 1, []string{"a", "b"}, []string{tsA.URL, tsB.URL})
	for _, u := range []string{tsA.URL, tsB.URL} {
		if err := newClient(t, u).InstallRing(ring); err != nil {
			t.Fatal(err)
		}
	}

	// A local shard directory with keys owned by both members.
	dir := t.TempDir()
	local, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("merge", i)
		local.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	if err := local.Close(); err != nil {
		t.Fatal(err)
	}

	st, _, _, err := remote.MountFleet("", tsA.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	added, err := st.Merge(dir)
	if err != nil {
		t.Fatal(err)
	}
	if added != n {
		t.Fatalf("merge added %d entries, want %d", added, n)
	}
	if authA.Len() == 0 || authB.Len() == 0 || authA.Len()+authB.Len() != n {
		t.Fatalf("merge placed %d+%d keys, want a disjoint split of %d", authA.Len(), authB.Len(), n)
	}
	for i, k := range keys {
		if !([]*store.Store{authA, authB})[ring.Owner(k)].Has(k) {
			t.Fatalf("merged key %d not on its owner", i)
		}
	}
	for _, srv := range []*remote.Server{srvA, srvB} {
		if r := srv.Requests(); r.Put != 0 || r.MPut != 1 {
			t.Fatalf("merge traffic put=%d mput=%d on a replica, want one full batch and no point puts", r.Put, r.MPut)
		}
	}
}

// TestMountRingDiscoveryEdges pins the mount's placement-discovery
// contract: a flag URL outside the installed ring is refused (writing
// through a non-member would split placement), and discovery is
// best-effort — a replica that 500s /v1/ring contributes no opinion
// instead of failing the mount.
func TestMountRingDiscoveryEdges(t *testing.T) {
	tsA, _, _ := newMember(t, "a")
	tsB, _, _ := newMember(t, "b")
	ring := ringOf(t, 1, []string{"a", "b"}, []string{tsA.URL, tsB.URL})
	if err := newClient(t, tsA.URL).InstallRing(ring); err != nil {
		t.Fatal(err)
	}
	if err := newClient(t, tsB.URL).InstallRing(ring); err != nil {
		t.Fatal(err)
	}

	// A stranger (live, protocol-speaking, but not a ring member) in the
	// flag list is refused by name.
	tsX, _, _ := newServer(t)
	if _, _, _, err := remote.MountFleet("", tsA.URL+","+tsX.URL); err == nil {
		t.Fatal("mount accepted a flag URL outside the fleet's ring")
	}

	// A half-alive replica (stats answers, everything else 500s) must not
	// fail discovery: the healthy member's ring wins and the mount proceeds,
	// degrading the sick member's keys to misses later instead of refusing
	// to start.
	tsSick, _, _ := newMember(t, "b")
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			tsSick.Config.Handler.ServeHTTP(w, r)
			return
		}
		http.Error(w, "sick replica", http.StatusInternalServerError)
	}))
	defer sick.Close()
	tsA2, _, _ := newMember(t, "a")
	ring2 := ringOf(t, 1, []string{"a", "b"}, []string{tsA2.URL, sick.URL})
	if err := newClient(t, tsA2.URL).InstallRing(ring2); err != nil {
		t.Fatal(err)
	}
	st, cls, m, err := remote.MountFleet("", tsA2.URL+","+sick.URL)
	if err != nil {
		t.Fatalf("half-alive replica failed the mount: %v", err)
	}
	defer st.Close()
	if m == nil || m.Epoch != 1 || len(cls) != 2 {
		t.Fatalf("discovery through the healthy member found ring %v with %d clients", m, len(cls))
	}
}
