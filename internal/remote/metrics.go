package remote

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Metrics surface: GET /v1/metrics renders the server's counters in the
// Prometheus text exposition format (version 0.0.4), stdlib-only per the
// zero-dependency policy. Everything here is deterministic in structure —
// endpoint names and bucket bounds are fixed arrays, never map iterations
// — so two scrapes differ only in the counter values.

// nowMetrics is the clock request latency is measured on; a variable so
// tests can pin it.
var nowMetrics = time.Now //repro:wallclock request latency feeds the metrics surface only, never canonical output

// metricEndpoints names the latency-histogram partitions, one per /v1
// path plus a catch-all. Order is the exposition order.
var metricEndpoints = [...]string{
	"get", "has", "put", "mget", "mhas", "mput", "stats", "compact",
	"ring", "drain", "blob_get", "blob_put", "blob_has", "metrics", "other",
}

// numMetricEndpoints sizes the server's histogram array.
const numMetricEndpoints = 15

// metricEndpointIndex classifies a request path into metricEndpoints.
func metricEndpointIndex(path string) int {
	switch path {
	case "/v1/get":
		return 0
	case "/v1/has":
		return 1
	case "/v1/put":
		return 2
	case "/v1/mget":
		return 3
	case "/v1/mhas":
		return 4
	case "/v1/mput":
		return 5
	case "/v1/stats":
		return 6
	case "/v1/compact":
		return 7
	case "/v1/ring":
		return 8
	case "/v1/drain":
		return 9
	case "/v1/blob/get":
		return 10
	case "/v1/blob/put":
		return 11
	case "/v1/blob/has":
		return 12
	case "/v1/metrics":
		return 13
	default:
		return 14
	}
}

// latencyBuckets are the histogram's upper bounds in seconds (an implicit
// +Inf bucket follows): 100µs to 2.5s, the span from an in-memory point
// get to a full compact on a cold disk.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// latencyHistogram is one endpoint's request-duration histogram: per-bin
// atomic counts (cumulated into Prometheus's le-labelled buckets at render
// time), total count, and summed nanoseconds.
type latencyHistogram struct {
	bins     [len(latencyBuckets) + 1]atomic.Int64 // last bin is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

// observe records one request duration.
func (h *latencyHistogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.bins[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// handleMetrics serves GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.req.metrics.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	b := bufio.NewWriter(w)
	defer b.Flush() //repro:degrade a response-write failure means the scraper hung up
	// bufio errors are sticky — after the first failed write every later
	// one is a no-op and the deferred Flush reports it — so each line's
	// individual result carries no extra signal.
	emit := func(format string, args ...any) {
		fmt.Fprintf(b, format, args...) //repro:degrade sticky bufio error, surfaced once by the deferred Flush
	}

	// Request totals come from the dispatch-time histograms, so every
	// endpoint — stats and metrics included — counts uniformly.
	emit("# HELP stored_requests_total Requests dispatched, by endpoint.\n")
	emit("# TYPE stored_requests_total counter\n")
	for i, name := range metricEndpoints {
		emit("stored_requests_total{endpoint=%q} %d\n", name, s.lat[i].count.Load())
	}

	emit("# HELP stored_request_duration_seconds Request latency, by endpoint.\n")
	emit("# TYPE stored_request_duration_seconds histogram\n")
	for i, name := range metricEndpoints {
		h := &s.lat[i]
		if h.count.Load() == 0 {
			continue // silent endpoints would quadruple the scrape for no signal
		}
		var cum int64
		for bi := range latencyBuckets {
			cum += h.bins[bi].Load()
			le := strconv.FormatFloat(latencyBuckets[bi], 'g', -1, 64)
			emit("stored_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", name, le, cum)
		}
		cum += h.bins[len(latencyBuckets)].Load()
		emit("stored_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		emit("stored_request_duration_seconds_sum{endpoint=%q} %g\n", name, float64(h.sumNanos.Load())/1e9)
		emit("stored_request_duration_seconds_count{endpoint=%q} %d\n", name, h.count.Load())
	}

	gauge := func(name, help string, v int64) {
		emit("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		emit("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("stored_entries", "Result entries in the durable tier.", int64(s.st.Len()))
	gauge("stored_blob_entries", "Trace blobs in the blob tier.", int64(s.st.BlobLen()))
	gauge("stored_ring_epoch", "Installed placement ring epoch (0 when ring-less).", int64(s.epoch()))
	counter("stored_conflicts_total", "Overwrites that changed a key's bytes (version skew or a writer bug).", s.conflicts.Load())

	st := s.st.Stats()
	counter("stored_store_hits_total", "Store reads served without re-execution.", st.Hits)
	counter("stored_store_misses_total", "Store reads that cost the caller an execution.", st.Misses)
	counter("stored_store_puts_total", "Values written to the store.", st.Puts)
	counter("stored_store_superseded_total", "Dead duplicate log lines (compact reclaims them).", st.Superseded)
	counter("stored_store_corrupt_total", "Entries that existed but could not be decoded.", st.Corrupt)
	counter("stored_store_put_errors_total", "Durable writes that failed (degraded to memory-only).", st.PutErrors)
	counter("stored_store_degraded_total", "Partial write placements across tiers or replicas.", st.Degraded)
	counter("stored_blob_stored_total", "Trace blobs captured into the blob tier.", st.BlobStored)
	counter("stored_blob_fetched_total", "Trace blobs served from the blob tier.", st.BlobFetched)
	counter("stored_blob_bytes_total", "Raw trace payload bytes moved through the blob tier.", st.BlobBytes)
}
