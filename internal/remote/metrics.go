package remote

import (
	"net/http"
)

// Metrics surface: GET /v1/metrics renders the server's counters through
// the shared exposition primitives of expo.go. The endpoint partition
// below is stored's own; cmd/experimentd carries its own partition over
// the same LatencySet machinery.

// metricEndpoints names the latency-histogram partitions, one per /v1
// path plus a catch-all. Order is the exposition order.
var metricEndpoints = [...]string{
	"get", "has", "put", "mget", "mhas", "mput", "stats", "compact",
	"ring", "drain", "blob_get", "blob_put", "blob_has", "metrics", "other",
}

// numMetricEndpoints sizes the server's histogram set.
const numMetricEndpoints = 15

// metricEndpointIndex classifies a request path into metricEndpoints.
func metricEndpointIndex(path string) int {
	switch path {
	case "/v1/get":
		return 0
	case "/v1/has":
		return 1
	case "/v1/put":
		return 2
	case "/v1/mget":
		return 3
	case "/v1/mhas":
		return 4
	case "/v1/mput":
		return 5
	case "/v1/stats":
		return 6
	case "/v1/compact":
		return 7
	case "/v1/ring":
		return 8
	case "/v1/drain":
		return 9
	case "/v1/blob/get":
		return 10
	case "/v1/blob/put":
		return 11
	case "/v1/blob/has":
		return 12
	case "/v1/metrics":
		return 13
	default:
		return 14
	}
}

// handleMetrics serves GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.req.metrics.Add(1)
	e := StartExposition(w)
	defer e.Flush() //repro:degrade a response-write failure means the scraper hung up

	// Request totals come from the dispatch-time histograms, so every
	// endpoint — stats and metrics included — counts uniformly.
	s.lat.Write(e)

	e.Gauge("stored_entries", "Result entries in the durable tier.", int64(s.st.Len()))
	e.Gauge("stored_blob_entries", "Trace blobs in the blob tier.", int64(s.st.BlobLen()))
	e.Gauge("stored_ring_epoch", "Installed placement ring epoch (0 when ring-less).", int64(s.epoch()))
	e.Counter("stored_conflicts_total", "Overwrites that changed a key's bytes (version skew or a writer bug).", s.conflicts.Load())
	e.StoreStats("stored", s.st.Stats())
}
