package remote

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestBinaryCodecRoundTrip pins the framing itself: what the encoder
// writes, the decoder returns verbatim — including key-only records and
// values large enough to span the buffered reader's internal buffer.
func TestBinaryCodecRoundTrip(t *testing.T) {
	records := []struct {
		k string
		v []byte
	}{
		{"a", []byte(`{"x":1}`)},
		{"key-only", nil},
		{"big", bytes.Repeat([]byte("v"), 1<<20)},
		{"after-big", []byte(`"tail"`)},
	}
	var buf bytes.Buffer
	enc := newBinaryEncoder(&buf)
	for _, r := range records {
		enc.Record(r.k, r.v)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := newBinaryDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	for _, want := range records {
		k, v, ok, err := dec.Next()
		if err != nil || !ok {
			t.Fatalf("Next() = %q, %v, %v; want record %q", k, ok, err, want.k)
		}
		if k != want.k || !bytes.Equal(v, want.v) {
			t.Fatalf("record %q decoded as %q with %d value bytes, want %d", want.k, k, len(v), len(want.v))
		}
	}
	if _, _, ok, err := dec.Next(); ok || err != nil {
		t.Fatalf("after last record: ok=%v err=%v, want clean end", ok, err)
	}
}

// TestBinaryDecoderRejectsGarbage pins the failure modes: a wrong magic is
// an immediate error, and a truncated record surfaces as an error rather
// than a silent short read.
func TestBinaryDecoderRejectsGarbage(t *testing.T) {
	if _, err := newBinaryDecoder(strings.NewReader(`{"k":"ndjson"}`)); err == nil {
		t.Fatal("NDJSON body accepted as binary")
	}
	var buf bytes.Buffer
	enc := newBinaryEncoder(&buf)
	enc.Record("k", []byte(`"value"`))
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := newBinaryDecoder(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	if _, _, _, err := dec.Next(); err == nil {
		t.Fatal("truncated record decoded without error")
	}
}

func openBinaryTestServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(NewServer(st))
	t.Cleanup(ts.Close)
	return ts, st
}

func testEntries(n int) []store.Entry {
	entries := make([]store.Entry, n)
	for i := range entries {
		entries[i] = store.Entry{
			Key: fmt.Sprintf("key-%03d", i),
			Val: []byte(fmt.Sprintf(`{"result":%d,"pad":%q}`, i, strings.Repeat("x", i))),
		}
	}
	return entries
}

// TestBinaryAndNDJSONBatchesAgree is the framing-equivalence check: a
// binary-speaking client and a client latched to NDJSON must observe the
// exact same store through every batch endpoint, byte for byte.
func TestBinaryAndNDJSONBatchesAgree(t *testing.T) {
	ts, _ := openBinaryTestServer(t)
	binClient, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	jsonClient, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	jsonClient.noBinary.Store(true)

	entries := testEntries(64)
	added, err := binClient.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(entries) {
		t.Fatalf("binary mput added %d, want %d", added, len(entries))
	}
	if binClient.noBinary.Load() {
		t.Fatal("server rejected the binary framing")
	}
	// Idempotent re-push through the NDJSON framing: same bytes, zero added.
	if added, err := jsonClient.PutBatch(entries); err != nil || added != 0 {
		t.Fatalf("NDJSON re-push: added=%d err=%v, want 0, nil", added, err)
	}

	keys := make([]string, 0, len(entries)+1)
	for _, e := range entries {
		keys = append(keys, e.Key)
	}
	keys = append(keys, "absent")
	binGot, err := binClient.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	jsonGot, err := jsonClient.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(binGot, jsonGot) {
		t.Fatal("binary and NDJSON mget disagree")
	}
	for _, e := range entries {
		if !bytes.Equal(binGot[e.Key], e.Val) {
			t.Fatalf("mget %s: got %s, want %s", e.Key, binGot[e.Key], e.Val)
		}
	}
	if _, ok := binGot["absent"]; ok {
		t.Fatal("mget invented a value for an absent key")
	}
	binHas, err := binClient.HasBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	jsonHas, err := jsonClient.HasBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(binHas, jsonHas) || len(binHas) != len(entries) {
		t.Fatalf("binary/NDJSON mhas disagree: %d vs %d present", len(binHas), len(jsonHas))
	}
}

// TestServerRepliesInAcceptedFraming pins the negotiation rule on the
// server side: the reply framing follows the request's Accept header, so
// plain-NDJSON peers (and curl) never see binary bytes.
func TestServerRepliesInAcceptedFraming(t *testing.T) {
	ts, st := openBinaryTestServer(t)
	st.Put("k", []byte(`{"v":1}`))

	for _, tc := range []struct {
		accept, wantCT string
	}{
		{binaryContentType, binaryContentType},
		{ndjsonContentType, ndjsonContentType},
		{"", ndjsonContentType},
	} {
		var body bytes.Buffer
		if err := encodeBatchBody(&body, false, encodeKeySet([]string{"k"})); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/mget", &body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ndjsonContentType)
		req.Header.Set("Content-Encoding", "gzip")
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		drainClose(resp)
		if resp.StatusCode != http.StatusOK || ct != tc.wantCT {
			t.Fatalf("Accept %q: got %s with Content-Type %q, want 200 %q", tc.accept, resp.Status, ct, tc.wantCT)
		}
	}
}

// TestServerRejectsUnknownBatchContentType pins the 415 that drives client
// fallback: a framing the server does not speak must be refused before any
// of the body is interpreted.
func TestServerRejectsUnknownBatchContentType(t *testing.T) {
	ts, _ := openBinaryTestServer(t)
	for _, path := range []string{"/v1/mget", "/v1/mhas", "/v1/mput"} {
		resp, err := http.Post(ts.URL+path, "application/x-futurebin", strings.NewReader("??"))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		drainClose(resp)
		if status != http.StatusUnsupportedMediaType {
			t.Fatalf("%s with unknown content type: got %d, want 415", path, status)
		}
	}
}

// TestClientFallsBackToNDJSON simulates servers that do not speak the
// binary framing — one that answers it with a proper 415, and a pre-binary
// one whose NDJSON parser chokes with a 400 — and requires the client to
// re-send the same batch as NDJSON, succeed, and stop offering binary.
func TestClientFallsBackToNDJSON(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
	}{
		{"415-unsupported", http.StatusUnsupportedMediaType},
		{"400-legacy-parse-error", http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			srv := NewServer(st)
			var binaryBodies, ndjsonBodies int
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.Header.Get("Content-Type"), binaryContentType) {
					binaryBodies++
					w.Header().Set(VersionHeader, ProtocolVersion)
					http.Error(w, "no binary here", tc.status)
					return
				}
				if r.Method == http.MethodPost {
					ndjsonBodies++
				}
				srv.ServeHTTP(w, r)
			}))
			defer ts.Close()

			c, err := NewClient(ts.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			entries := testEntries(8)
			if added, err := c.PutBatch(entries); err != nil || added != len(entries) {
				t.Fatalf("PutBatch through fallback: added=%d err=%v", added, err)
			}
			if !c.noBinary.Load() {
				t.Fatal("client did not latch NDJSON after the server refused binary")
			}
			got, err := c.GetBatch([]string{entries[0].Key})
			if err != nil || !bytes.Equal(got[entries[0].Key], entries[0].Val) {
				t.Fatalf("GetBatch after fallback: %v, %v", got, err)
			}
			if binaryBodies != 1 {
				t.Fatalf("client offered binary %d times after refusal, want exactly 1", binaryBodies)
			}
			if ndjsonBodies != 2 {
				t.Fatalf("saw %d NDJSON batch bodies, want 2 (re-sent mput + mget)", ndjsonBodies)
			}
		})
	}
}
