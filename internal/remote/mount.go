package remote

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/store"
)

// Mount assembles the result store a CLI asked for from its -cache DIR and
// -store URL[,URL…] flags:
//
//	cacheDir only   → the local NDJSON-backed store (PR-3 behaviour)
//	one store URL   → the fleet store, mounted through a Client
//	N store URLs    → a store.Router over N fleet instances: each key is
//	                  owned by exactly one instance (stable hash partition),
//	                  batches split per replica, a down replica degrades to
//	                  misses instead of failing the run
//	cacheDir + URLs → a store.Tiered: the local directory as a near tier in
//	                  front of the fleet tier, so each process pays one
//	                  remote round trip per key ever
//	neither         → no store (st is nil), plain uncached execution
//
// Every replica is pinged once so an unreachable address, a wrong port, or
// a non-stored endpoint fails fast and loudly here — once a run is
// underway the degrade-to-miss discipline would hide a typoed URL behind a
// silently cold (or silently half-cold) cache. The returned clients are in
// URL order, one per replica; empty when storeURL is empty. The URL list
// is order-sensitive: every process of a fleet must pass the same list in
// the same order, or they will disagree about which replica owns a key.
func Mount(cacheDir, storeURL string) (st *store.Store, cls []*Client, err error) {
	var be store.Backend
	if urls := splitList(storeURL); storeURL != "" && len(urls) == 0 {
		// "," or whitespace: the caller asked for a fleet store and named no
		// member (an unset env var in `-store "$A,$B"`); silently mounting
		// nothing would be the silently-cold cache this function fails fast on.
		return nil, nil, fmt.Errorf("remote: bad store URL list %q: no URLs", storeURL)
	} else if len(urls) > 0 {
		replicas := make([]store.Backend, len(urls))
		for i, u := range urls {
			cl, err := NewClient(u, nil)
			if err != nil {
				return nil, nil, err
			}
			sr, err := cl.Ping()
			if err != nil {
				return nil, nil, fmt.Errorf("store %s unreachable: %w", u, err)
			}
			if sr.Protocol != ProtocolVersion {
				return nil, nil, fmt.Errorf("store %s speaks protocol %q, this binary speaks %q", u, sr.Protocol, ProtocolVersion)
			}
			cls = append(cls, cl)
			replicas[i] = cl
		}
		if len(replicas) == 1 {
			be = replicas[0]
		} else {
			be = store.NewRouter(replicas...)
		}
	}
	if cacheDir != "" {
		local, err := store.OpenNDJSON(cacheDir)
		if err != nil {
			return nil, nil, err
		}
		if be != nil {
			be = store.NewTiered(local, be)
		} else {
			be = local
		}
	}
	if be == nil {
		return nil, nil, nil
	}
	return store.New(0, be), cls, nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// CLIStore is the mounted result store of one CLI invocation plus its
// shard assignment — everything the -cache/-store/-shard/-merge flag
// quartet resolves to, validated in one place so the binaries cannot
// drift.
type CLIStore struct {
	Store          *store.Store // nil when no store flags were given
	Clients        []*Client    // one per -store replica URL; empty when -store was not given
	ShardI, ShardM int          // 0,0 when -shard was not given
}

// Priming reports whether this invocation is a prime-only shard pass.
func (cs *CLIStore) Priming() bool { return cs.ShardM > 0 }

// Close closes the store, if any.
func (cs *CLIStore) Close() error {
	if cs.Store == nil {
		return nil
	}
	return cs.Store.Close()
}

// MountFlags assembles and validates a CLI's store flags: Mount for
// -cache/-store, then -merge (fold the listed shard directories in before
// running, mutually exclusive with -shard) and -shard i/m. diag receives
// the merge report; prog prefixes it ("experiments: merged …").
func MountFlags(diag io.Writer, prog, cacheDir, storeURL, shardArg, mergeArg string) (*CLIStore, error) {
	st, cls, err := Mount(cacheDir, storeURL)
	if err != nil {
		return nil, err
	}
	cs := &CLIStore{Store: st, Clients: cls}
	if mergeArg != "" {
		if st == nil {
			cs.Close()
			return nil, fmt.Errorf("-merge requires -cache or -store")
		}
		if shardArg != "" {
			cs.Close()
			return nil, fmt.Errorf("-merge and -shard are mutually exclusive (merge replays the full run)")
		}
		dirs := splitList(mergeArg)
		added, err := st.Merge(dirs...)
		if err != nil {
			cs.Close()
			return nil, err
		}
		fmt.Fprintf(diag, "%s: merged %d entries from %d store(s)\n", prog, added, len(dirs))
	}
	if shardArg != "" {
		if st == nil {
			cs.Close()
			return nil, fmt.Errorf("-shard requires -cache or -store")
		}
		if cs.ShardI, cs.ShardM, err = store.ParseShard(shardArg); err != nil {
			cs.Close()
			return nil, err
		}
	}
	return cs, nil
}

// PrintStats writes the end-of-run store diagnostics every CLI prints to
// stderr: the cache traffic line (CI greps `misses=0` off it) and, when a
// fleet tier is mounted, one line per replica — a sick replica shows up as
// its own netErrors count instead of blurring into a fleet-wide total.
func (cs *CLIStore) PrintStats(diag io.Writer, prog string) {
	if cs.Store != nil {
		fmt.Fprintf(diag, "%s: cache %s (%d entries)\n", prog, cs.Store.Stats(), cs.Store.Len())
	}
	for i, cl := range cs.Clients {
		label := "remote"
		if len(cs.Clients) > 1 {
			label = fmt.Sprintf("remote[%d %s]", i, cl.URL())
		}
		s := cl.Stats()
		fmt.Fprintf(diag, "%s: %s gets=%d puts=%d coalesced=%d retried=%d netErrors=%d\n",
			prog, label, s.Gets, s.Puts, s.Coalesced, s.Retried, s.NetErrors)
	}
}
