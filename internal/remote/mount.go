package remote

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/store"
)

// Mount assembles the result store a CLI asked for from its -cache DIR and
// -store URL flags:
//
//	cacheDir only  → the local NDJSON-backed store (PR-3 behaviour)
//	storeURL only  → the fleet store, mounted through a Client
//	both           → a store.Tiered: the local directory as a near tier in
//	                 front of the fleet store, so each process pays one
//	                 remote round trip per key ever
//	neither        → no store (st is nil), plain uncached execution
//
// The remote client is pinged once so an unreachable address, a wrong
// port, or a non-stored endpoint fails fast and loudly here — once a run
// is underway the client's degrade-to-miss discipline would hide a typoed
// URL behind a silently cold cache. The returned client is nil when
// storeURL is empty.
func Mount(cacheDir, storeURL string) (st *store.Store, cl *Client, err error) {
	var be store.Backend
	if storeURL != "" {
		cl, err = NewClient(storeURL, nil)
		if err != nil {
			return nil, nil, err
		}
		sr, err := cl.Ping()
		if err != nil {
			return nil, nil, fmt.Errorf("store %s unreachable: %w", storeURL, err)
		}
		if sr.Protocol != ProtocolVersion {
			return nil, nil, fmt.Errorf("store %s speaks protocol %q, this binary speaks %q", storeURL, sr.Protocol, ProtocolVersion)
		}
		be = cl
	}
	if cacheDir != "" {
		local, err := store.OpenNDJSON(cacheDir)
		if err != nil {
			return nil, nil, err
		}
		if be != nil {
			be = store.NewTiered(local, be)
		} else {
			be = local
		}
	}
	if be == nil {
		return nil, nil, nil
	}
	return store.New(0, be), cl, nil
}

// CLIStore is the mounted result store of one CLI invocation plus its
// shard assignment — everything the -cache/-store/-shard/-merge flag
// quartet resolves to, validated in one place so the binaries cannot
// drift.
type CLIStore struct {
	Store          *store.Store // nil when no store flags were given
	Client         *Client      // nil when -store was not given
	ShardI, ShardM int          // 0,0 when -shard was not given
}

// Priming reports whether this invocation is a prime-only shard pass.
func (cs *CLIStore) Priming() bool { return cs.ShardM > 0 }

// Close closes the store, if any.
func (cs *CLIStore) Close() error {
	if cs.Store == nil {
		return nil
	}
	return cs.Store.Close()
}

// MountFlags assembles and validates a CLI's store flags: Mount for
// -cache/-store, then -merge (fold the listed shard directories in before
// running, mutually exclusive with -shard) and -shard i/m. diag receives
// the merge report; prog prefixes it ("experiments: merged …").
func MountFlags(diag io.Writer, prog, cacheDir, storeURL, shardArg, mergeArg string) (*CLIStore, error) {
	st, cl, err := Mount(cacheDir, storeURL)
	if err != nil {
		return nil, err
	}
	cs := &CLIStore{Store: st, Client: cl}
	if mergeArg != "" {
		if st == nil {
			cs.Close()
			return nil, fmt.Errorf("-merge requires -cache or -store")
		}
		if shardArg != "" {
			cs.Close()
			return nil, fmt.Errorf("-merge and -shard are mutually exclusive (merge replays the full run)")
		}
		var dirs []string
		for _, d := range strings.Split(mergeArg, ",") {
			if d = strings.TrimSpace(d); d != "" {
				dirs = append(dirs, d)
			}
		}
		added, err := st.Merge(dirs...)
		if err != nil {
			cs.Close()
			return nil, err
		}
		fmt.Fprintf(diag, "%s: merged %d entries from %d store(s)\n", prog, added, len(dirs))
	}
	if shardArg != "" {
		if st == nil {
			cs.Close()
			return nil, fmt.Errorf("-shard requires -cache or -store")
		}
		if cs.ShardI, cs.ShardM, err = store.ParseShard(shardArg); err != nil {
			cs.Close()
			return nil, err
		}
	}
	return cs, nil
}

// PrintStats writes the end-of-run store diagnostics every CLI prints to
// stderr: the cache traffic line (CI greps `misses=0` off it) and, when a
// fleet store is mounted, the remote client's line.
func (cs *CLIStore) PrintStats(diag io.Writer, prog string) {
	if cs.Store != nil {
		fmt.Fprintf(diag, "%s: cache %s (%d entries)\n", prog, cs.Store.Stats(), cs.Store.Len())
	}
	if cs.Client != nil {
		s := cs.Client.Stats()
		fmt.Fprintf(diag, "%s: remote gets=%d puts=%d coalesced=%d retried=%d netErrors=%d\n",
			prog, s.Gets, s.Puts, s.Coalesced, s.Retried, s.NetErrors)
	}
}
