package remote

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/store"
)

// Mount assembles the result store a CLI asked for from its -cache DIR and
// -store URL[,URL…] flags:
//
//	cacheDir only   → the local NDJSON-backed store (PR-3 behaviour)
//	one store URL   → the fleet store, mounted through a Client
//	N store URLs    → a store.Router over N fleet instances: each key is
//	                  owned by exactly one instance (the fleet's placement
//	                  ring), batches split per replica, a down replica
//	                  fails over to the runner-up and then degrades to
//	                  misses instead of failing the run
//	cacheDir + URLs → a store.Tiered: the local directory as a near tier in
//	                  front of the fleet tier, so each process pays one
//	                  remote round trip per key ever
//	neither         → no store (st is nil), plain uncached execution
//
// The blob tier (captured execution traces, store.BlobBackend) mirrors the
// result tiers shape for shape: a cache directory serves blobs from its
// blobs/ sublog, a fleet serves them through the same client(s) and
// placement ring as results, and cacheDir+URLs stacks a store.TieredBlobs
// so a trace fetched from the fleet is written back beside the local
// results.
//
// Placement comes from the fleet itself when it has one: the mount asks
// every listed replica for its installed ring (/v1/ring) and routes by the
// newest epoch found, dialing any ring member the flag list omitted — so
// a worker can mount a whole fleet by naming one member, and a resized
// fleet re-places every client at its next mount with no flag changes.
// When no replica serves a ring, placement falls back to the flag list
// (epoch 0, URL order), which is why the list is then order-sensitive:
// every process must pass the same URLs in the same order. A flag URL
// that is not a member of the fleet's ring is refused — writing through a
// replica the ring does not own would split the fleet's placement brain.
//
// Every replica is pinged once so an unreachable address, a wrong port, or
// a non-stored endpoint fails fast and loudly here — once a run is
// underway the degrade-to-miss discipline would hide a typoed URL behind a
// silently cold (or silently half-cold) cache. The returned clients are
// one per replica, in ring order (flag order when no ring is served);
// empty when storeURL is empty.
func Mount(cacheDir, storeURL string) (st *store.Store, cls []*Client, err error) {
	st, cls, _, err = MountFleet(cacheDir, storeURL)
	return st, cls, err
}

// MountFleet is Mount plus the placement ring the mount routes by: the
// fleet's authoritative ring when any replica serves one, the epoch-0
// flag ring for a multi-URL list without one, nil for local-only and
// single-replica mounts.
func MountFleet(cacheDir, storeURL string) (st *store.Store, cls []*Client, ring *store.Ring, err error) {
	var be store.Backend
	var blobs store.BlobBackend
	if urls := splitList(storeURL); storeURL != "" && len(urls) == 0 {
		// "," or whitespace: the caller asked for a fleet store and named no
		// member (an unset env var in `-store "$A,$B"`); silently mounting
		// nothing would be the silently-cold cache this function fails fast on.
		return nil, nil, nil, fmt.Errorf("remote: bad store URL list %q: no URLs", storeURL)
	} else if len(urls) > 0 {
		flagClients := make([]*Client, len(urls))
		for i, u := range urls {
			cl, err := NewClient(u, nil)
			if err != nil {
				return nil, nil, nil, err
			}
			sr, err := cl.Ping()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("store %s unreachable: %w", u, err)
			}
			if sr.Protocol != ProtocolVersion {
				return nil, nil, nil, fmt.Errorf("store %s speaks protocol %q, this binary speaks %q", u, sr.Protocol, ProtocolVersion)
			}
			flagClients[i] = cl
		}
		// Discover the fleet's placement: the newest ring any listed replica
		// serves wins (a half-installed resize resolves to the new epoch).
		// Discovery is best-effort per replica — placement can be learned
		// from ANY member, so a half-alive replica whose /v1/ring errors
		// just contributes no opinion; if no member serves a ring the flag
		// list takes over, and a stale mount is caught by the epoch echoed
		// on every later reply.
		for _, cl := range flagClients {
			r, err := cl.FetchRing()
			if err != nil {
				continue
			}
			if r != nil && (ring == nil || r.Epoch > ring.Epoch) {
				ring = r
			}
		}
		if ring != nil {
			cls, err = ringClients(ring, flagClients)
			if err != nil {
				return nil, nil, nil, err
			}
			replicas := make([]store.Backend, len(cls))
			for i, cl := range cls {
				replicas[i] = cl
			}
			rtr := store.NewRingRouter(ring, replicas...)
			be, blobs = rtr, rtr
		} else {
			cls = flagClients
			if len(cls) == 1 {
				be, blobs = cls[0], cls[0]
			} else {
				ring = store.FlagRing(urls...)
				replicas := make([]store.Backend, len(cls))
				for i, cl := range cls {
					replicas[i] = cl
				}
				rtr := store.NewRingRouter(ring, replicas...)
				be, blobs = rtr, rtr
			}
		}
	}
	if cacheDir != "" {
		local, err := store.OpenNDJSON(cacheDir)
		if err != nil {
			return nil, nil, nil, err
		}
		fb, err := store.OpenFileBlobs(cacheDir)
		if err != nil {
			local.Close() //repro:degrade error-path teardown; the open failure below is the one to surface
			return nil, nil, nil, err
		}
		if blobs != nil {
			blobs = &store.TieredBlobs{Near: fb, Far: blobs}
		} else {
			blobs = fb
		}
		if be != nil {
			be = store.NewTiered(local, be)
		} else {
			be = local
		}
	}
	if be == nil {
		return nil, nil, nil, nil
	}
	st = store.New(0, be)
	st.SetBlobs(blobs)
	return st, cls, ring, nil
}

// ringClients maps an authoritative ring onto clients, one per member in
// ring order: flag clients are matched to their member by URL (a flag URL
// outside the ring is refused), members the flag list omitted are dialed
// and pinged here so the whole fleet fails fast like flag replicas do.
func ringClients(ring *store.Ring, flagClients []*Client) ([]*Client, error) {
	byURL := make(map[string]*Client, len(flagClients))
	for _, cl := range flagClients {
		byURL[cl.URL()] = cl
	}
	cls := make([]*Client, len(ring.Members))
	for i, m := range ring.Members {
		if m.URL == "" {
			return nil, fmt.Errorf("remote: ring member %q has no URL", m.Name)
		}
		if cl, ok := byURL[strings.TrimRight(m.URL, "/")]; ok {
			cls[i] = cl
			delete(byURL, cl.URL())
			continue
		}
		cl, err := NewClient(m.URL, nil)
		if err != nil {
			return nil, fmt.Errorf("remote: ring member %q: %w", m.Name, err)
		}
		if _, err := cl.Ping(); err != nil {
			return nil, fmt.Errorf("remote: ring member %q (%s) unreachable: %w", m.Name, m.URL, err)
		}
		cls[i] = cl
	}
	for u := range byURL {
		return nil, fmt.Errorf("remote: store %s is not a member of the fleet's ring (epoch %d, members %s)",
			u, ring.Epoch, strings.Join(ring.Names(), ","))
	}
	return cls, nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// CLIStore is the mounted result store of one CLI invocation plus its
// shard assignment — everything the -cache/-store/-shard/-merge flag
// quartet resolves to, validated in one place so the binaries cannot
// drift.
type CLIStore struct {
	Store          *store.Store // nil when no store flags were given
	Clients        []*Client    // one per fleet replica, ring order; empty when -store was not given
	Ring           *store.Ring  // the placement ring routed by; nil for local-only and single-replica mounts
	ShardI, ShardM int          // 0,0 when -shard was not given
}

// Priming reports whether this invocation is a prime-only shard pass.
func (cs *CLIStore) Priming() bool { return cs.ShardM > 0 }

// Close closes the store, if any.
func (cs *CLIStore) Close() error {
	if cs.Store == nil {
		return nil
	}
	return cs.Store.Close()
}

// MountFlags assembles and validates a CLI's store flags: Mount for
// -cache/-store, then -merge (fold the listed shard directories in before
// running, mutually exclusive with -shard) and -shard i/m. diag receives
// the merge report; prog prefixes it ("experiments: merged …").
func MountFlags(diag io.Writer, prog, cacheDir, storeURL, shardArg, mergeArg string) (*CLIStore, error) {
	st, cls, ring, err := MountFleet(cacheDir, storeURL)
	if err != nil {
		return nil, err
	}
	cs := &CLIStore{Store: st, Clients: cls, Ring: ring}
	if mergeArg != "" {
		if st == nil {
			cs.Close() //repro:degrade error-path teardown; the flag error below is the one to surface
			return nil, fmt.Errorf("-merge requires -cache or -store")
		}
		if shardArg != "" {
			cs.Close() //repro:degrade error-path teardown; the flag error below is the one to surface
			return nil, fmt.Errorf("-merge and -shard are mutually exclusive (merge replays the full run)")
		}
		dirs := splitList(mergeArg)
		added, err := st.Merge(dirs...)
		if err != nil {
			cs.Close() //repro:degrade error-path teardown; the flag error below is the one to surface
			return nil, err
		}
		fmt.Fprintf(diag, "%s: merged %d entries from %d store(s)\n", prog, added, len(dirs)) //repro:degrade diagnostic line on stderr
	}
	if shardArg != "" {
		if st == nil {
			cs.Close() //repro:degrade error-path teardown; the flag error below is the one to surface
			return nil, fmt.Errorf("-shard requires -cache or -store")
		}
		if cs.ShardI, cs.ShardM, err = store.ParseShard(shardArg); err != nil {
			cs.Close() //repro:degrade error-path teardown; the flag error below is the one to surface
			return nil, err
		}
	}
	return cs, nil
}

// PrintStats writes the end-of-run store diagnostics every CLI prints to
// stderr: the cache traffic line (CI greps `misses=0` off it) with the
// placement ring's epoch when a fleet is mounted, and one line per
// replica with its key count — a sick replica shows up as its own
// netErrors count instead of blurring into a fleet-wide total, and
// placement skew is visible at a glance from the keys= columns. When any
// replica echoed a newer ring epoch than the one this process mounted,
// a warning names the skew: the run routed by a stale placement (safe —
// failover reads cover moved keys — but a remount re-places it).
func (cs *CLIStore) PrintStats(diag io.Writer, prog string) {
	if cs.Store != nil {
		ringSuffix := ""
		if cs.Ring != nil {
			ringSuffix = fmt.Sprintf(" ring=%d", cs.Ring.Epoch)
		}
		fmt.Fprintf(diag, "%s: cache %s (%d entries)%s\n", prog, cs.Store.Stats(), cs.Store.Len(), ringSuffix) //repro:degrade diagnostic line on stderr
	}
	var newest uint64
	for i, cl := range cs.Clients {
		label := "remote"
		if len(cs.Clients) > 1 {
			label = fmt.Sprintf("remote[%d %s]", i, cl.URL())
		}
		s := cl.Stats()
		fmt.Fprintf(diag, "%s: %s keys=%d gets=%d puts=%d coalesced=%d retried=%d netErrors=%d\n", //repro:degrade diagnostic line on stderr
			prog, label, cl.Len(), s.Gets, s.Puts, s.Coalesced, s.Retried, s.NetErrors)
		if e := cl.SeenEpoch(); e > newest {
			newest = e
		}
	}
	if cs.Ring != nil && newest > cs.Ring.Epoch {
		fmt.Fprintf(diag, "%s: warning: fleet serves ring epoch %d but this run mounted epoch %d — placement is stale, remount to re-place\n", //repro:degrade diagnostic line on stderr
			prog, newest, cs.Ring.Epoch)
	}
}
