package remote

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Reusable Prometheus text exposition (version 0.0.4) primitives, stdlib
// only per the zero-dependency policy. cmd/stored and cmd/experimentd both
// render their /v1/metrics through these. Everything here is deterministic
// in structure — endpoint names and bucket bounds are fixed slices, never
// map iterations — so two scrapes differ only in the counter values.

// nowMetrics is the clock request latency is measured on; a variable so
// tests can pin it.
var nowMetrics = time.Now //repro:wallclock request latency feeds the metrics surface only, never canonical output

// latencyBuckets are the histogram's upper bounds in seconds (an implicit
// +Inf bucket follows): 100µs to 2.5s, the span from an in-memory point
// get to a full compact on a cold disk.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// latencyHistogram is one endpoint's request-duration histogram: per-bin
// atomic counts (cumulated into Prometheus's le-labelled buckets at render
// time), total count, and summed nanoseconds.
type latencyHistogram struct {
	bins     [len(latencyBuckets) + 1]atomic.Int64 // last bin is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

// observe records one request duration.
func (h *latencyHistogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.bins[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Exposition buffers one metrics scrape. bufio errors are sticky — after
// the first failed write every later one is a no-op and the deferred Flush
// reports it — so each line's individual result carries no extra signal.
type Exposition struct{ b *bufio.Writer }

// NewExposition wraps w for exposition writing.
func NewExposition(w io.Writer) *Exposition { return &Exposition{b: bufio.NewWriter(w)} }

// StartExposition stamps the Prometheus content type on an HTTP response
// and returns the Exposition that renders its body. The caller defers
// Flush.
func StartExposition(w http.ResponseWriter) *Exposition {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	return NewExposition(w)
}

// Flush writes the buffered scrape out, surfacing the sticky error if any
// line failed.
func (e *Exposition) Flush() error { return e.b.Flush() }

// Emitf appends one formatted line to the scrape.
func (e *Exposition) Emitf(format string, args ...any) {
	fmt.Fprintf(e.b, format, args...) //repro:degrade sticky bufio error, surfaced once by the deferred Flush
}

// Gauge emits one unlabelled gauge with its HELP and TYPE lines.
func (e *Exposition) Gauge(name, help string, v int64) {
	e.Emitf("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// Counter emits one unlabelled counter with its HELP and TYPE lines.
func (e *Exposition) Counter(name, help string, v int64) {
	e.Emitf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// StoreStats emits the canonical store.Stats counter block under prefix —
// the same ten counters whichever service mounts the store.
func (e *Exposition) StoreStats(prefix string, st store.Stats) {
	e.Counter(prefix+"_store_hits_total", "Store reads served without re-execution.", st.Hits)
	e.Counter(prefix+"_store_misses_total", "Store reads that cost the caller an execution.", st.Misses)
	e.Counter(prefix+"_store_puts_total", "Values written to the store.", st.Puts)
	e.Counter(prefix+"_store_superseded_total", "Dead duplicate log lines (compact reclaims them).", st.Superseded)
	e.Counter(prefix+"_store_corrupt_total", "Entries that existed but could not be decoded.", st.Corrupt)
	e.Counter(prefix+"_store_put_errors_total", "Durable writes that failed (degraded to memory-only).", st.PutErrors)
	e.Counter(prefix+"_store_degraded_total", "Partial write placements across tiers or replicas.", st.Degraded)
	e.Counter(prefix+"_blob_stored_total", "Trace blobs captured into the blob tier.", st.BlobStored)
	e.Counter(prefix+"_blob_fetched_total", "Trace blobs served from the blob tier.", st.BlobFetched)
	e.Counter(prefix+"_blob_bytes_total", "Raw trace payload bytes moved through the blob tier.", st.BlobBytes)
}

// LatencySet is a family of request-latency histograms, one per endpoint
// name, rendered as <prefix>_requests_total and
// <prefix>_request_duration_seconds. The index space is the caller's
// endpoint classification; names fixes the exposition order.
type LatencySet struct {
	prefix string
	names  []string
	hists  []latencyHistogram
}

// NewLatencySet allocates one histogram per endpoint name.
func NewLatencySet(prefix string, names []string) *LatencySet {
	return &LatencySet{prefix: prefix, names: names, hists: make([]latencyHistogram, len(names))}
}

// Observe records one request duration against endpoint index i.
func (ls *LatencySet) Observe(i int, d time.Duration) { ls.hists[i].observe(d) }

// Count returns the dispatch count of endpoint index i.
func (ls *LatencySet) Count(i int) int64 { return ls.hists[i].count.Load() }

// Write renders the request totals (every endpoint, silent ones included)
// and the duration histograms (silent endpoints skipped — they would
// quadruple the scrape for no signal).
func (ls *LatencySet) Write(e *Exposition) {
	e.Emitf("# HELP %s_requests_total Requests dispatched, by endpoint.\n", ls.prefix)
	e.Emitf("# TYPE %s_requests_total counter\n", ls.prefix)
	for i, name := range ls.names {
		e.Emitf("%s_requests_total{endpoint=%q} %d\n", ls.prefix, name, ls.hists[i].count.Load())
	}

	e.Emitf("# HELP %s_request_duration_seconds Request latency, by endpoint.\n", ls.prefix)
	e.Emitf("# TYPE %s_request_duration_seconds histogram\n", ls.prefix)
	for i, name := range ls.names {
		h := &ls.hists[i]
		if h.count.Load() == 0 {
			continue
		}
		var cum int64
		for bi := range latencyBuckets {
			cum += h.bins[bi].Load()
			le := strconv.FormatFloat(latencyBuckets[bi], 'g', -1, 64)
			e.Emitf("%s_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", ls.prefix, name, le, cum)
		}
		cum += h.bins[len(latencyBuckets)].Load()
		e.Emitf("%s_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ls.prefix, name, cum)
		e.Emitf("%s_request_duration_seconds_sum{endpoint=%q} %g\n", ls.prefix, name, float64(h.sumNanos.Load())/1e9)
		e.Emitf("%s_request_duration_seconds_count{endpoint=%q} %d\n", ls.prefix, name, h.count.Load())
	}
}
