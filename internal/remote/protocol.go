// Package remote puts the content-addressed result store of
// internal/store on the network: an HTTP service (Server, run by
// cmd/stored) wrapping one authoritative store.Store, and a client-side
// store.Backend (Client) so any number of worker processes — CI shards,
// tournament searchers, laptop runs — share that store instead of priming
// private directories and merging after the fact.
//
// The protocol is a small, versioned JSON/NDJSON surface:
//
//	GET  /v1/get?k=KEY   → 200 {"k":KEY,"v":VALUE} | 404
//	GET  /v1/has?k=KEY   → 204 | 404
//	POST /v1/put         ← {"k":KEY,"v":VALUE}            → 200 {"added":a,"conflicts":c}
//	POST /v1/mget        ← NDJSON {"k":KEY} per line       → 200 NDJSON {"k":KEY,"v":VALUE} per found key
//	POST /v1/mhas        ← NDJSON {"k":KEY} per line       → 200 NDJSON {"k":KEY} per present key
//	POST /v1/mput        ← NDJSON {"k":KEY,"v":VALUE}      → 200 {"added":a,"conflicts":c}
//	GET  /v1/stats       → 200 StatsReply
//	POST /v1/compact     → 200 {"kept":k,"dropped":d}
//	GET  /v1/ring        → 200 store.Ring JSON | 404 (no ring installed)
//	POST /v1/ring        ← store.Ring JSON                 → 200 {"epoch":e} | 409 (stale epoch)
//	POST /v1/drain       → 200 DrainReply
//	GET  /v1/blob/get?k=KEY → 200 binary-framed record | 404 | 501 (no blob tier)
//	POST /v1/blob/put    ← binary-framed record            → 204 | 501 (no blob tier)
//	GET  /v1/blob/has?k=KEY → 204 | 404
//	GET  /v1/metrics     → 200 Prometheus text exposition
//
// Blob bodies (/v1/blob/get, /v1/blob/put) carry one opaque trace payload
// in the same binary record framing the batch endpoints negotiate (see
// binary.go: magic + uvarint-prefixed key and value), gzipped through the
// shared pools in both directions — the payload's key rides inside the
// frame, so a reply or an upload is self-describing and the server can
// refuse a key mismatch. /v1/metrics is the scrape surface: every request
// counter, per-endpoint latency histograms, store and blob-tier gauges,
// rendered in the Prometheus text exposition format with no dependency.
//
// Placement travels with the traffic: every response carries the server's
// installed ring epoch in the X-Result-Store-Epoch header (0 when no ring
// is installed), so a client that mounted under an older epoch notices the
// resize on its very next batch instead of quietly mis-routing until
// remount. /v1/ring serves and installs the authoritative placement ring;
// /v1/drain makes the server stream every key it no longer owns to the
// new owners (batched mput) and delete its copies once they land.
//
// Batch bodies (/v1/mget, /v1/mput) are gzipped in both directions —
// declared with the standard Content-Encoding / Accept-Encoding headers —
// and batch records reuse the exact line format of the store's NDJSON log,
// so a dump stays greppable with the same tools. Every response carries
// the protocol version in the X-Result-Store-Protocol header; the client
// refuses to talk through a version (or a non-stored endpoint) it does not
// understand.
//
// Within protocol generation 1, batch endpoints additionally accept and
// serve a compact binary record framing (see binary.go), negotiated per
// request through Content-Type and Accept. NDJSON remains the baseline
// every peer speaks: a server answers an unknown batch Content-Type with
// 415, and the client then re-sends that batch as NDJSON and stops
// offering binary to that server. curl, dumps and old peers keep working
// unchanged.
//
// Write semantics are the store's: per-key last-write-wins, safe because
// keys are content addresses — two correct writers of one key wrote the
// same bytes. The server still compares old and new value bytes on every
// overwrite: an identical rewrite is dropped (idempotent pushes never
// grow the log), a differing one is counted as a conflict (a bug or a
// missed CacheVersion bump upstream), because a fleet-shared store is
// exactly where such skew would otherwise hide.
//
// Failure discipline matches the rest of the store stack: on the client,
// any network or protocol failure degrades to a counted miss (reads) or a
// memory-only put (writes), never an error into the simulation.
package remote

import (
	"encoding/json"
	"io"
	"net/http"
)

// ProtocolVersion is the wire protocol generation, carried on every
// response in VersionHeader. Bump it when the surface above changes
// incompatibly; client and server refuse mismatched generations.
const ProtocolVersion = "1"

// VersionHeader is the response header naming the server's protocol
// generation.
const VersionHeader = "X-Result-Store-Protocol"

// EpochHeader is the response header carrying the server's installed ring
// epoch on every reply ("0" when no ring is installed). Clients track the
// maximum seen and compare it against the epoch they mounted under.
const EpochHeader = "X-Result-Store-Epoch"

// ndjsonContentType labels batch bodies.
const ndjsonContentType = "application/x-ndjson"

// maxBodyBytes bounds any single request body (post-decompression reads
// are bounded per line by the scanner buffer).
const maxBodyBytes = 1 << 30

// wireRecord is one key/value pair on the wire — the same line format as
// the store's NDJSON log. V holds the stored value, which is always JSON
// (the store only ever holds canonical-JSON payloads).
type wireRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// wireKey is one mget request line.
type wireKey struct {
	K string `json:"k"`
}

// PutReply answers /v1/put and /v1/mput: how many keys were new to the
// store and how many overwrote an existing key with *different* bytes
// (conflicts — see the package comment; the last write still wins).
type PutReply struct {
	Added     int `json:"added"`
	Conflicts int `json:"conflicts"`
}

// CompactReply answers /v1/compact.
type CompactReply struct {
	Kept    int `json:"kept"`
	Dropped int `json:"dropped"`
}

// StoreStats is the server store's traffic counters in the stats reply.
type StoreStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Superseded  int64 `json:"superseded"`
	Corrupt     int64 `json:"corrupt"`
	PutErrors   int64 `json:"putErrors"`
	BlobStored  int64 `json:"blobStored,omitempty"`
	BlobFetched int64 `json:"blobFetched,omitempty"`
	BlobBytes   int64 `json:"blobBytes,omitempty"`
}

// RequestStats counts requests served per endpoint.
type RequestStats struct {
	Get     int64 `json:"get"`
	Has     int64 `json:"has"`
	Put     int64 `json:"put"`
	MGet    int64 `json:"mget"`
	MHas    int64 `json:"mhas"`
	MPut    int64 `json:"mput"`
	Compact int64 `json:"compact"`
	Ring    int64 `json:"ring"`
	Drain   int64 `json:"drain"`
	BlobGet int64 `json:"blobGet"`
	BlobPut int64 `json:"blobPut"`
	BlobHas int64 `json:"blobHas"`
	Metrics int64 `json:"metrics"`
}

// StatsReply answers /v1/stats.
type StatsReply struct {
	Protocol  string       `json:"protocol"`
	Len       int          `json:"len"`
	Blobs     int          `json:"blobs"`
	Epoch     uint64       `json:"epoch"`
	Conflicts int64        `json:"conflicts"`
	Requests  RequestStats `json:"requests"`
	Store     StoreStats   `json:"store"`
}

// RingReply answers POST /v1/ring: the epoch now installed.
type RingReply struct {
	Epoch uint64 `json:"epoch"`
}

// DrainReply answers /v1/drain: how many foreign keys the server pushed
// to their owners (moved), deleted locally after the push landed, and how
// many keys it still owns (kept). A drain on a server whose every key is
// its own is a successful no-op (moved=0).
type DrainReply struct {
	Moved   int `json:"moved"`
	Deleted int `json:"deleted"`
	Kept    int `json:"kept"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

// requestBody returns the request body, transparently ungzipping when the
// sender declared Content-Encoding: gzip, and bounded by maxBodyBytes.
// The decompressor comes from the shared pool; Close returns it.
func requestBody(w http.ResponseWriter, r *http.Request) (io.ReadCloser, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if r.Header.Get("Content-Encoding") != "gzip" {
		return body, nil
	}
	zr, err := getGzipReader(body)
	if err != nil {
		return nil, err
	}
	return &pooledGzipReadCloser{zr: zr}, nil
}
