package remote

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// ErrNotEnumerable is returned by Client.ForEach: a fleet store is not
// enumerated over the wire. Merge flows the other way — local shard
// directories are pushed up with Store.Merge through the batched put path.
var ErrNotEnumerable = errors.New("remote: store is not enumerable over the wire; merge local directories into it instead")

// DefaultRetries is the per-request retry budget on transport errors and
// 5xx responses.
const DefaultRetries = 2

// Options tunes a Client. The zero value selects the defaults.
type Options struct {
	// HTTPClient overrides the transport (nil selects a client with
	// Timeout as its overall per-attempt deadline).
	HTTPClient *http.Client
	// Retries is the per-request retry budget; < 0 disables retries.
	Retries int
	// Timeout is the per-attempt deadline when HTTPClient is nil
	// (default 30s).
	Timeout time.Duration
}

// Client speaks the /v1 protocol and implements store.Backend (plus the
// batch extension), so a worker process mounts the fleet store exactly
// like a local directory:
//
//	be, _ := remote.NewClient("http://ci-store:9200", nil)
//	st := store.New(0, be)
//
// Hot-path behaviour:
//
//   - Concurrent Gets of one key coalesce into a single in-flight request
//     whose result every caller shares — a sweep fanning out over workers
//     that all want the same entry costs one round trip.
//   - GetBatch / PutBatch move whole sweeps in single gzipped batch
//     bodies (store.Store.Prefetch and Merge use them) — binary-framed
//     when the server speaks it, NDJSON otherwise (see binary.go).
//   - Every request has a bounded retry budget; after it is spent the
//     failure is returned and the wrapping Store counts it as a miss
//     (reads) or degrades to memory-only (writes) — the PR-3 discipline:
//     a flaky network can slow a run down, never fail or corrupt it.
type Client struct {
	base    string
	hc      *http.Client
	retries int

	// noBinary latches when the server rejects the binary batch framing
	// (415/400 on a binary body): every later batch from this client goes
	// straight to NDJSON instead of paying the probe again.
	noBinary atomic.Bool

	mu       sync.Mutex
	inflight map[string]*inflightGet

	// seenEpoch is the maximum ring epoch any response from this server
	// has carried — the staleness signal: a client that mounted under
	// epoch E and later sees E' > E is routing by an outdated ring.
	seenEpoch atomic.Uint64

	gets, puts, coalesced, retried, netErrors atomic.Int64
}

// inflightGet is one coalesced in-flight point lookup.
type inflightGet struct {
	done chan struct{}
	val  []byte
	ok   bool
	err  error
}

// NewClient validates baseURL (e.g. "http://127.0.0.1:9200") and returns a
// client for the stored service there. It does not dial: reachability
// failures surface per request (callers wanting fail-fast call Ping).
func NewClient(baseURL string, opt *Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("remote: bad store URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("remote: bad store URL %q: want http[s]://host:port", baseURL)
	}
	o := Options{Retries: DefaultRetries, Timeout: 30 * time.Second}
	if opt != nil {
		o = *opt
		if o.Timeout == 0 {
			o.Timeout = 30 * time.Second
		}
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: o.Timeout}
	}
	retries := o.Retries
	if retries < 0 {
		retries = 0
	}
	return &Client{
		base:     strings.TrimRight(u.String(), "/"),
		hc:       hc,
		retries:  retries,
		inflight: make(map[string]*inflightGet),
	}, nil
}

// URL returns the base URL the client was mounted with (diagnostics: the
// CLIs label per-replica stats lines with it).
func (c *Client) URL() string { return c.base }

// ClientStats counts a client's traffic for diagnostics and tests.
type ClientStats struct {
	Gets, Puts, Coalesced, Retried, NetErrors int64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Gets:      c.gets.Load(),
		Puts:      c.puts.Load(),
		Coalesced: c.coalesced.Load(),
		Retried:   c.retried.Load(),
		NetErrors: c.netErrors.Load(),
	}
}

// do performs one protocol request with the bounded retry budget: transport
// errors and 5xx responses are retried with a short linear backoff, 4xx
// responses and protocol-version mismatches are not (they are
// deterministic). The returned response, if any, has status < 500 and a
// matching protocol version; the caller owns its body.
func (c *Client) do(method, path string, body []byte, hdr map[string]string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.retried.Add(1)
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("remote: %w", err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("remote: %s %s: %w", method, path, err)
			continue
		}
		// 501 is exempt from the 5xx retry: it is a deliberate capability
		// answer (this server mounts no blob tier), not a transient fault,
		// so it passes through for the caller to read as absence.
		if resp.StatusCode >= 500 && resp.StatusCode != http.StatusNotImplemented {
			drainClose(resp)
			lastErr = fmt.Errorf("remote: %s %s: server error %s", method, path, resp.Status)
			continue
		}
		if got := resp.Header.Get(VersionHeader); got != ProtocolVersion {
			drainClose(resp)
			return nil, fmt.Errorf("remote: %s is not a stored v%s endpoint (protocol header %q)", c.base, ProtocolVersion, got)
		}
		if e, perr := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64); perr == nil {
			for {
				seen := c.seenEpoch.Load()
				if e <= seen || c.seenEpoch.CompareAndSwap(seen, e) {
					break
				}
			}
		}
		return resp, nil
	}
	c.netErrors.Add(1)
	return nil, lastErr
}

// Get implements store.Backend with request coalescing: concurrent callers
// of one key share a single in-flight request and its result.
func (c *Client) Get(key string) ([]byte, bool, error) {
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		return f.val, f.ok, f.err
	}
	f := &inflightGet{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.ok, f.err = c.getOnce(key)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.val, f.ok, f.err
}

// drainClose reads a response body to EOF and closes it. Leaving unread
// bytes behind makes net/http tear down the TCP connection instead of
// returning it to the keep-alive pool, so every point op would pay a fresh
// dial + TLS handshake; draining is what keeps one connection serving a
// whole run's traffic.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //repro:degrade best-effort connection reuse; a failed drain just costs a redial
	resp.Body.Close()              //repro:degrade nothing to do about a close error on a spent response
}

// getOnce is the uncoalesced point lookup.
func (c *Client) getOnce(key string) ([]byte, bool, error) {
	c.gets.Add(1)
	resp, err := c.do(http.MethodGet, "/v1/get?k="+url.QueryEscape(key), nil, nil)
	if err != nil {
		return nil, false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var rec wireRecord
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			return nil, false, fmt.Errorf("remote: get %s: %w", key, err)
		}
		if rec.K != key {
			return nil, false, fmt.Errorf("remote: get %s: server answered for key %s", key, rec.K)
		}
		return rec.V, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("remote: get %s: unexpected %s", key, resp.Status)
	}
}

// Put implements store.Backend (last-write-wins on the server).
func (c *Client) Put(key string, val []byte) error {
	c.puts.Add(1)
	body, err := json.Marshal(wireRecord{K: key, V: json.RawMessage(val)})
	if err != nil {
		return fmt.Errorf("remote: put %s: %w", key, err)
	}
	resp, err := c.do(http.MethodPost, "/v1/put", body, map[string]string{"Content-Type": "application/json"})
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote: put %s: unexpected %s", key, resp.Status)
	}
	return nil
}

// Has implements store.Backend. Any failure reads as absent — the probe's
// only job is to decide whether a prime pass must execute the unit, and
// executing is always safe.
func (c *Client) Has(key string) bool {
	resp, err := c.do(http.MethodGet, "/v1/has?k="+url.QueryEscape(key), nil, nil)
	if err != nil {
		return false
	}
	defer drainClose(resp)
	return resp.StatusCode == http.StatusNoContent
}

// batchHeaders are the headers of one batch request: the body framing in
// Content-Type, the framings the client decodes in Accept, gzip both ways.
func batchHeaders(binary bool) map[string]string {
	h := map[string]string{
		"Content-Type":     ndjsonContentType,
		"Content-Encoding": "gzip",
		"Accept-Encoding":  "gzip",
		"Accept":           ndjsonContentType,
	}
	if binary {
		h["Content-Type"] = binaryContentType
		h["Accept"] = binaryContentType + ", " + ndjsonContentType
	}
	return h
}

// encodeBatchBody writes one gzipped batch body into buf in the requested
// framing, streaming records straight into the pooled compressor — the
// only whole-batch buffer is the compressed one the retry loop replays.
func encodeBatchBody(buf *bytes.Buffer, binary bool, encode func(recordSink) error) error {
	zw := getGzipWriter(buf)
	defer putGzipWriter(zw)
	var err error
	if binary {
		enc := newBinaryEncoder(zw)
		err = encode(binarySink{enc})
		if flushErr := enc.Flush(); err == nil {
			err = flushErr
		}
	} else {
		err = encode(ndjsonSink{json.NewEncoder(zw)})
	}
	if closeErr := zw.Close(); err == nil {
		err = closeErr
	}
	return err
}

// postBatch posts one batch body, preferring the binary framing until the
// server declines it — a 415 (or a pre-binary server's 400) on a binary
// body re-sends the same batch as NDJSON and latches noBinary — then hands
// the 200 response to handleReply. The body is drained and closed after
// handleReply returns.
func (c *Client) postBatch(path string, encode func(recordSink) error, handleReply func(*http.Response) error) error {
	binary := !c.noBinary.Load()
	buf := getBuf()
	defer putBuf(buf)
	if err := encodeBatchBody(buf, binary, encode); err != nil {
		return fmt.Errorf("remote: %s: %w", path, err)
	}
	resp, err := c.do(http.MethodPost, path, buf.Bytes(), batchHeaders(binary))
	if err != nil {
		return err
	}
	if binary && (resp.StatusCode == http.StatusUnsupportedMediaType || resp.StatusCode == http.StatusBadRequest) {
		drainClose(resp)
		c.noBinary.Store(true)
		buf.Reset()
		if err := encodeBatchBody(buf, false, encode); err != nil {
			return fmt.Errorf("remote: %s: %w", path, err)
		}
		resp, err = c.do(http.MethodPost, path, buf.Bytes(), batchHeaders(false))
		if err != nil {
			return err
		}
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote: %s: unexpected %s", path, resp.Status)
	}
	return handleReply(resp)
}

// scanBatchReply streams a record-list reply body — either framing,
// optionally gzipped — to scan, one record at a time; val is nil on
// key-only lines. parseLine interprets NDJSON lines (the two reply shapes
// carry different JSON), while the binary framing needs no per-endpoint
// parser.
func scanBatchReply(path string, resp *http.Response, parseLine func([]byte) (string, []byte, error), scan func(key string, val []byte) error) error {
	rd := io.Reader(resp.Body)
	if resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := getGzipReader(resp.Body)
		if err != nil {
			return fmt.Errorf("remote: %s: %w", path, err)
		}
		pz := &pooledGzipReadCloser{zr: zr}
		defer pz.Close() //repro:degrade pool return; a corrupt stream already failed the decode below
		rd = pz
	}
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.TrimSpace(ct) == binaryContentType {
		dec, err := newBinaryDecoder(rd)
		if err != nil {
			return fmt.Errorf("remote: %s: %w", path, err)
		}
		defer dec.Close()
		for {
			k, v, more, err := dec.Next()
			if err != nil {
				return fmt.Errorf("remote: %s: %w", path, err)
			}
			if !more {
				return nil
			}
			if err := scan(k, v); err != nil {
				return err
			}
		}
	}
	sc, release := batchScanner(rd)
	defer release()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		k, v, err := parseLine(line)
		if err != nil {
			return err
		}
		if err := scan(k, v); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("remote: %s: %w", path, err)
	}
	return nil
}

// encodeKeySet is the batch body of mget and mhas: one key-only record per
// requested key.
func encodeKeySet(keys []string) func(recordSink) error {
	return func(sink recordSink) error {
		for _, k := range keys {
			if err := sink.Record(k, nil); err != nil {
				return err
			}
		}
		return nil
	}
}

// parseRecordLine interprets one NDJSON {"k":...,"v":...} reply line.
func parseRecordLine(line []byte) (string, []byte, error) {
	var rec wireRecord
	if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
		return "", nil, fmt.Errorf("remote: bad record line %q", line)
	}
	return rec.K, rec.V, nil
}

// parseKeyLine interprets one NDJSON {"k":...} reply line.
func parseKeyLine(line []byte) (string, []byte, error) {
	var k wireKey
	if err := json.Unmarshal(line, &k); err != nil || k.K == "" {
		return "", nil, fmt.Errorf("remote: bad key line %q", line)
	}
	return k.K, nil, nil
}

// GetBatch implements store.BatchBackend: one gzipped /v1/mget round trip
// for the whole key set.
func (c *Client) GetBatch(keys []string) (map[string][]byte, error) {
	c.gets.Add(int64(len(keys)))
	out := make(map[string][]byte, len(keys))
	err := c.postBatch("/v1/mget", encodeKeySet(keys), func(resp *http.Response) error {
		return scanBatchReply("/v1/mget", resp, parseRecordLine, func(k string, v []byte) error {
			out[k] = v
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// HasBatch implements store.HasBatcher: one gzipped /v1/mhas round trip
// answering presence for the whole key set — no values cross the wire,
// which is what a prime pass deciding what to execute wants.
func (c *Client) HasBatch(keys []string) (map[string]bool, error) {
	out := make(map[string]bool, len(keys))
	err := c.postBatch("/v1/mhas", encodeKeySet(keys), func(resp *http.Response) error {
		return scanBatchReply("/v1/mhas", resp, parseKeyLine, func(k string, _ []byte) error {
			out[k] = true
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PutBatch implements store.BatchBackend: one gzipped /v1/mput round trip
// for the whole entry set, reporting how many keys were new to the server.
func (c *Client) PutBatch(entries []store.Entry) (int, error) {
	c.puts.Add(int64(len(entries)))
	var pr PutReply
	err := c.postBatch("/v1/mput", func(sink recordSink) error {
		for _, e := range entries {
			if err := sink.Record(e.Key, e.Val); err != nil {
				return err
			}
		}
		return nil
	}, func(resp *http.Response) error {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return fmt.Errorf("remote: mput: %w", err)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return pr.Added, nil
}

// Ping fetches /v1/stats, verifying reachability and protocol version in
// one call — the CLIs fail fast on it before a long run, where the
// degrade-to-miss discipline would otherwise hide a typoed URL behind a
// silently cold cache.
func (c *Client) Ping() (StatsReply, error) {
	resp, err := c.do(http.MethodGet, "/v1/stats", nil, nil)
	if err != nil {
		return StatsReply{}, err
	}
	defer drainClose(resp)
	var sr StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return StatsReply{}, fmt.Errorf("remote: stats: %w", err)
	}
	return sr, nil
}

// SeenEpoch returns the maximum ring epoch any response from this server
// has carried (0 before the first response, and for ring-less servers).
func (c *Client) SeenEpoch() uint64 { return c.seenEpoch.Load() }

// FetchRing retrieves the server's installed placement ring. A server
// with no ring installed returns (nil, nil) — the caller falls back to
// flag-order placement.
func (c *Client) FetchRing() (*store.Ring, error) {
	resp, err := c.do(http.MethodGet, "/v1/ring", nil, nil)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var ring store.Ring
		if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
			return nil, fmt.Errorf("remote: ring: %w", err)
		}
		if err := ring.Validate(); err != nil {
			return nil, fmt.Errorf("remote: ring: %w", err)
		}
		return &ring, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("remote: ring: unexpected %s", resp.Status)
	}
}

// InstallRing posts ring to the server as the authoritative placement.
// The server refuses stale epochs and conflicting same-epoch rings.
func (c *Client) InstallRing(ring *store.Ring) error {
	body, err := json.Marshal(ring)
	if err != nil {
		return fmt.Errorf("remote: install ring: %w", err)
	}
	resp, err := c.do(http.MethodPost, "/v1/ring", body, map[string]string{"Content-Type": "application/json"})
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		var er errorReply
		json.NewDecoder(resp.Body).Decode(&er) //repro:degrade best-effort error detail; the status line already carries the failure
		return fmt.Errorf("remote: install ring: %s (%s)", resp.Status, er.Error)
	}
	return nil
}

// Drain asks the server to push every key it no longer owns under its
// installed ring to the new owners and delete the local copies that
// landed (see DrainStore).
func (c *Client) Drain() (DrainReply, error) {
	resp, err := c.do(http.MethodPost, "/v1/drain", nil, nil)
	if err != nil {
		return DrainReply{}, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		var er errorReply
		json.NewDecoder(resp.Body).Decode(&er) //repro:degrade best-effort error detail; the status line already carries the failure
		return DrainReply{}, fmt.Errorf("remote: drain: %s (%s)", resp.Status, er.Error)
	}
	var dr DrainReply
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return DrainReply{}, fmt.Errorf("remote: drain: %w", err)
	}
	return dr, nil
}

// Compact asks the server to compact its log, returning live entries kept
// and dead records dropped.
func (c *Client) Compact() (kept, dropped int, err error) {
	resp, err := c.do(http.MethodPost, "/v1/compact", nil, nil)
	if err != nil {
		return 0, 0, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("remote: compact: unexpected %s", resp.Status)
	}
	var cr CompactReply
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return 0, 0, fmt.Errorf("remote: compact: %w", err)
	}
	return cr.Kept, cr.Dropped, nil
}

// ForEach implements store.Backend by refusing: see ErrNotEnumerable.
func (c *Client) ForEach(fn func(key string, val []byte) error) error {
	return ErrNotEnumerable
}

// Len implements store.Backend with the server's authoritative count; an
// unreachable server reads as empty.
func (c *Client) Len() int {
	sr, err := c.Ping()
	if err != nil {
		return 0
	}
	return sr.Len
}

// Close implements store.Backend, releasing idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
