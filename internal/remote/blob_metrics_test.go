package remote

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/store"
)

// newBlobServer serves a store with (or without) a file blob tier mounted.
func newBlobServer(t *testing.T, withTier bool) (*httptest.Server, *store.Store) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if withTier {
		fb, err := store.OpenFileBlobs(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.SetBlobs(fb)
	}
	ts := httptest.NewServer(NewServer(st))
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return ts, st
}

func newBlobClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBlobRoundTripOverWire(t *testing.T) {
	var _ store.BlobBackend = (*Client)(nil)
	ts, st := newBlobServer(t, true)
	c := newBlobClient(t, ts.URL)

	key := store.Key("wire-blob", 1)
	payload := bytes.Repeat([]byte("trace step bytes \x00\xff\x01"), 2000)
	if err := c.BlobPut(key, payload); err != nil {
		t.Fatal(err)
	}
	if !c.BlobHas(key) || c.BlobHas(store.Key("wire-blob", 2)) {
		t.Fatal("BlobHas wrong")
	}
	got, ok, err := c.BlobGet(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("BlobGet: ok=%v err=%v equal=%v", ok, err, bytes.Equal(got, payload))
	}
	if _, ok, err := c.BlobGet(store.Key("wire-blob", 3)); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	if c.BlobLen() != 1 {
		t.Fatalf("BlobLen = %d, want 1", c.BlobLen())
	}
	if s := st.Stats(); s.BlobStored != 1 || s.BlobFetched != 1 {
		t.Fatalf("server-side blob counters: %+v", s)
	}
}

// TestBlobNoTierReadsAsAbsent pins the 501 contract: a fleet member
// without a blob tier is a clean miss for reads and a counted failure for
// writes — never a retry loop or a crash.
func TestBlobNoTierReadsAsAbsent(t *testing.T) {
	ts, _ := newBlobServer(t, false)
	c := newBlobClient(t, ts.URL)

	if v, ok, err := c.BlobGet("k"); v != nil || ok || err != nil {
		t.Fatalf("tier-less get: v=%v ok=%v err=%v", v, ok, err)
	}
	if c.BlobHas("k") {
		t.Fatal("tier-less has: true")
	}
	if err := c.BlobPut("k", []byte("x")); err == nil {
		t.Fatal("tier-less put: no error")
	}
	if n := c.Stats().Retried; n != 0 {
		t.Fatalf("501 burned %d retries", n)
	}
}

// TestBlobKeyMismatchRefused pins the self-describing frame: a reply whose
// framed key differs from the asked key is an error, not a silent wrong
// payload.
func TestBlobKeyMismatchRefused(t *testing.T) {
	impostor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(VersionHeader, ProtocolVersion)
		w.Header().Set("Content-Type", binaryContentType)
		w.WriteHeader(http.StatusOK)
		enc := newBinaryEncoder(w)
		enc.Record("some-other-key", []byte("payload"))
		if err := enc.Flush(); err != nil {
			t.Error(err)
		}
	}))
	defer impostor.Close()
	c := newBlobClient(t, impostor.URL)
	if _, ok, err := c.BlobGet("asked-key"); ok || err == nil || !strings.Contains(err.Error(), "some-other-key") {
		t.Fatalf("mismatched key accepted: ok=%v err=%v", ok, err)
	}
}

// TestBlobPutRejectsMalformedBodies exercises the server-side framing
// checks: no body, a trailing second record, and an empty key all 400.
func TestBlobPutRejectsMalformedBodies(t *testing.T) {
	ts, _ := newBlobServer(t, true)

	post := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/blob/put", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", binaryContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint — drain
		return resp.StatusCode
	}

	frame := func(records ...[2]string) []byte {
		var buf bytes.Buffer
		enc := newBinaryEncoder(&buf)
		for _, r := range records {
			enc.Record(r[0], []byte(r[1]))
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if code := post(nil); code != http.StatusBadRequest {
		t.Fatalf("empty body: %d", code)
	}
	if code := post(frame([2]string{"k1", "v1"}, [2]string{"k2", "v2"})); code != http.StatusBadRequest {
		t.Fatalf("two records: %d", code)
	}
	if code := post(frame([2]string{"", "v"})); code != http.StatusBadRequest {
		t.Fatalf("empty key: %d", code)
	}
	if code := post(frame([2]string{"k", "v"})); code != http.StatusNoContent {
		t.Fatalf("well-formed: %d", code)
	}
}

// metricLine matches one Prometheus sample line: name, optional labels,
// and a numeric value.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

func TestMetricsExposition(t *testing.T) {
	ts, _ := newBlobServer(t, true)
	c := newBlobClient(t, ts.URL)

	// Generate traffic across result, blob, and stats endpoints.
	if err := c.Put("result-key", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("result-key"); !ok || err != nil {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if err := c.BlobPut(store.Key("m", 1), []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every sample line parses; every family is announced by HELP and TYPE
	// before its first sample.
	announced := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			announced[strings.Fields(line)[2]] = true
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("line %d is not a valid sample: %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suffix)
		}
		if !announced[family] {
			t.Fatalf("sample %q before its HELP/TYPE", name)
		}
	}

	for _, want := range []string{
		`stored_requests_total{endpoint="get"} 1`,
		`stored_requests_total{endpoint="blob_put"} 1`,
		`stored_requests_total{endpoint="stats"} 1`,
		"# TYPE stored_request_duration_seconds histogram",
		`stored_request_duration_seconds_bucket{endpoint="put",le="+Inf"} 1`,
		`stored_request_duration_seconds_count{endpoint="put"} 1`,
		"stored_entries 1",
		"stored_blob_entries 1",
		"stored_ring_epoch 0",
		"stored_blob_stored_total 1",
		"stored_store_puts_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// A scrape counts itself: the second scrape sees the first.
	resp2, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body2), `stored_requests_total{endpoint="metrics"} 1`) {
		t.Error("second scrape does not count the first")
	}
}

func TestMetricEndpointIndexCoversAllPaths(t *testing.T) {
	for i, path := range []string{
		"/v1/get", "/v1/has", "/v1/put", "/v1/mget", "/v1/mhas", "/v1/mput",
		"/v1/stats", "/v1/compact", "/v1/ring", "/v1/drain",
		"/v1/blob/get", "/v1/blob/put", "/v1/blob/has", "/v1/metrics",
	} {
		if got := metricEndpointIndex(path); got != i {
			t.Errorf("index(%s) = %d (%s), want %d (%s)", path, got, metricEndpoints[got], i, metricEndpoints[i])
		}
	}
	if got := metricEndpointIndex("/v1/nonsense"); metricEndpoints[got] != "other" {
		t.Errorf("unknown path classified as %q", metricEndpoints[got])
	}
	if len(metricEndpoints) != numMetricEndpoints {
		t.Fatalf("numMetricEndpoints = %d, names = %d", numMetricEndpoints, len(metricEndpoints))
	}
}
