package remote

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Blob endpoints: the trace-payload tier over the wire. One opaque payload
// per request, carried as a single record in the batch endpoints' binary
// framing (binary.go) — the key rides inside the frame, so both directions
// are self-describing and a key mismatch is refused instead of stored —
// gzipped through the shared coder pools. The client side implements
// store.BlobBackend, so a fleet mount captures and replays traces exactly
// like a local directory does.

// handleBlobGet serves GET /v1/blob/get?k=KEY: the framed payload, 404 on
// a miss, 501 when the server mounts no blob tier (so a mixed fleet reads
// as absent rather than erroring).
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	s.req.blobGet.Add(1)
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	if s.st.Blobs() == nil {
		replyError(w, http.StatusNotImplemented, "no blob tier mounted")
		return
	}
	v, ok := s.st.BlobGet(k)
	if !ok {
		replyError(w, http.StatusNotFound, "not found")
		return
	}
	gz := strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
	w.Header().Set("Content-Type", binaryContentType)
	if gz {
		w.Header().Set("Content-Encoding", "gzip")
	}
	w.WriteHeader(http.StatusOK)
	out := io.Writer(w)
	var zw *gzip.Writer
	if gz {
		zw = getGzipWriter(w)
		out = zw
	}
	enc := newBinaryEncoder(out)
	enc.Record(k, v)
	enc.Flush() //repro:degrade a truncated response fails the client's decode, which counts a net error
	if zw != nil {
		zw.Close() //repro:degrade same: truncation surfaces at the client's decode
		putGzipWriter(zw)
	}
}

// handleBlobPut serves POST /v1/blob/put: one framed record in, 204 out.
// The write is verified present before acknowledging — a pusher must not
// believe a capture is durable when the tier degraded it away.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	s.req.blobPut.Add(1)
	if s.st.Blobs() == nil {
		replyError(w, http.StatusNotImplemented, "no blob tier mounted")
		return
	}
	body, err := requestBody(w, r)
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	defer body.Close() //repro:degrade request body teardown; the decode below already surfaced any read failure
	dec, err := newBinaryDecoder(body)
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad binary body: %v", err)
		return
	}
	defer dec.Close()
	k, v, more, err := dec.Next()
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad blob record: %v", err)
		return
	}
	if !more || k == "" || len(v) == 0 {
		replyError(w, http.StatusBadRequest, "blob body needs one key and payload")
		return
	}
	if _, _, trailing, terr := dec.Next(); terr != nil || trailing {
		replyError(w, http.StatusBadRequest, "blob body carries more than one record")
		return
	}
	s.st.BlobPut(k, v)
	if !s.st.BlobHas(k) {
		replyError(w, http.StatusInternalServerError, "blob write degraded")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleBlobHas serves GET /v1/blob/has?k=KEY: 204 present, 404 absent (a
// blob-less tier is absent for every key, like every presence failure).
func (s *Server) handleBlobHas(w http.ResponseWriter, r *http.Request) {
	s.req.blobHas.Add(1)
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	if !s.st.BlobHas(k) {
		replyError(w, http.StatusNotFound, "not found")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// BlobGet implements store.BlobBackend over the wire. A server without a
// blob tier (501) reads as absent, like every other miss.
func (c *Client) BlobGet(key string) ([]byte, bool, error) {
	c.gets.Add(1)
	resp, err := c.do(http.MethodGet, "/v1/blob/get?k="+url.QueryEscape(key), nil,
		map[string]string{"Accept-Encoding": "gzip"})
	if err != nil {
		return nil, false, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		rd := io.Reader(resp.Body)
		if resp.Header.Get("Content-Encoding") == "gzip" {
			zr, err := getGzipReader(resp.Body)
			if err != nil {
				return nil, false, fmt.Errorf("remote: blob get %s: %w", key, err)
			}
			pz := &pooledGzipReadCloser{zr: zr}
			defer pz.Close() //repro:degrade pool return; a corrupt stream already failed the decode below
			rd = pz
		}
		dec, err := newBinaryDecoder(rd)
		if err != nil {
			return nil, false, fmt.Errorf("remote: blob get %s: %w", key, err)
		}
		defer dec.Close()
		k, v, more, err := dec.Next()
		if err != nil || !more {
			return nil, false, fmt.Errorf("remote: blob get %s: empty or broken reply (%v)", key, err)
		}
		if k != key {
			return nil, false, fmt.Errorf("remote: blob get %s: server answered for key %s", key, k)
		}
		return v, true, nil
	case http.StatusNotFound, http.StatusNotImplemented:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("remote: blob get %s: unexpected %s", key, resp.Status)
	}
}

// BlobPut implements store.BlobBackend over the wire: one gzipped framed
// record. Failures surface as errors the wrapping Store counts and drops —
// a lost capture only costs a future replay a re-simulation.
func (c *Client) BlobPut(key string, val []byte) error {
	c.puts.Add(1)
	buf := getBuf()
	defer putBuf(buf)
	zw := getGzipWriter(buf)
	enc := newBinaryEncoder(zw)
	enc.Record(key, val)
	err := enc.Flush()
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	putGzipWriter(zw)
	if err != nil {
		return fmt.Errorf("remote: blob put %s: %w", key, err)
	}
	resp, err := c.do(http.MethodPost, "/v1/blob/put", buf.Bytes(), map[string]string{
		"Content-Type":     binaryContentType,
		"Content-Encoding": "gzip",
	})
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("remote: blob put %s: unexpected %s", key, resp.Status)
	}
	return nil
}

// BlobHas implements store.BlobBackend over the wire; any failure reads as
// absent.
func (c *Client) BlobHas(key string) bool {
	resp, err := c.do(http.MethodGet, "/v1/blob/has?k="+url.QueryEscape(key), nil, nil)
	if err != nil {
		return false
	}
	defer drainClose(resp)
	return resp.StatusCode == http.StatusNoContent
}

// BlobLen implements store.BlobBackend with the server's authoritative
// count; an unreachable server reads as empty.
func (c *Client) BlobLen() int {
	sr, err := c.Ping()
	if err != nil {
		return 0
	}
	return sr.Blobs
}
