package remote

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/store"
)

// drainChunk bounds the entries per mput push while draining, matching
// the store's batch chunking: a drain of any size streams in bounded
// request bodies.
const drainChunk = 512

// DrainStore is the migrator: it enumerates st's keys, keeps the ones the
// ring assigns to self, and pushes every other key to its owning member
// via batched mput — deleting the local copy only after the owner
// acknowledged the write, so at every instant the key is durable
// somewhere and a crash mid-drain can at worst leave an extra copy of a
// content-addressed value, never lose one. Draining is idempotent:
// re-running after a partial failure pushes only what is still foreign.
// A self absent from the ring (a decommissioned replica) owns nothing and
// drains everything.
//
// Used by the server's /v1/drain handler (live fleets) and by
// `stored -drain` (offline, against the closed directory).
func DrainStore(st *store.Store, ring *store.Ring, self string) (DrainReply, error) {
	var dr DrainReply
	if ring == nil {
		return dr, fmt.Errorf("remote: drain needs a ring")
	}
	keys := st.Keys()
	if keys == nil && st.Len() > 0 {
		return dr, fmt.Errorf("remote: drain needs an enumerable backend")
	}
	selfIdx := ring.Index(self)
	byOwner := make(map[int][]string)
	for _, k := range keys {
		if owner := ring.Owner(k); owner != selfIdx {
			byOwner[owner] = append(byOwner[owner], k)
		} else {
			dr.Kept++
		}
	}
	var errs []error
	for owner, foreign := range byOwner {
		m := ring.Members[owner]
		if m.URL == "" {
			errs = append(errs, fmt.Errorf("remote: ring member %q has no URL to drain to", m.Name))
			continue
		}
		cl, err := NewClient(m.URL, nil)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for len(foreign) > 0 {
			chunk := foreign
			if len(chunk) > drainChunk {
				chunk = chunk[:drainChunk]
			}
			foreign = foreign[len(chunk):]
			entries := make([]store.Entry, 0, len(chunk))
			for _, k := range chunk {
				// Peek, not Get: migration traffic must not masquerade as
				// cache hits. A key that vanished since enumeration (a
				// concurrent eviction) has nothing left to move.
				if v, ok := st.Peek(k); ok {
					entries = append(entries, store.Entry{Key: k, Val: v})
				}
			}
			if len(entries) == 0 {
				continue
			}
			if _, err := cl.PutBatch(entries); err != nil {
				// This chunk's keys stay local — still readable here, still
				// foreign, so the next drain retries them.
				errs = append(errs, fmt.Errorf("remote: drain to %s: %w", m.Name, err))
				continue
			}
			dr.Moved += len(entries)
			for _, e := range entries {
				if existed, err := st.Delete(e.Key); err == nil && existed {
					dr.Deleted++
				}
			}
		}
		if cerr := cl.Close(); cerr != nil {
			errs = append(errs, fmt.Errorf("remote: drain close %s: %w", m.Name, cerr))
		}
	}
	return dr, errors.Join(errs...)
}

// Rebalance re-places a live fleet onto ring: it installs the ring on
// every member (epoch-checked by each server), then asks each member to
// drain the keys it no longer owns. After it returns without error, every
// key sits on exactly the replica the new ring assigns it — a warmed
// 2-replica fleet scaled to 3 replays with zero misses and zero
// re-executions. diag, when non-nil, receives one progress line per
// member. Rebalancing is idempotent: re-running it on a settled fleet
// installs the same epoch (a no-op) and drains nothing.
func Rebalance(ring *store.Ring, diag io.Writer) error {
	if ring == nil {
		return fmt.Errorf("remote: rebalance needs a ring")
	}
	if err := ring.Validate(); err != nil {
		return err
	}
	clients := make([]*Client, len(ring.Members))
	for i, m := range ring.Members {
		if m.URL == "" {
			return fmt.Errorf("remote: ring member %q has no URL", m.Name)
		}
		cl, err := NewClient(m.URL, nil)
		if err != nil {
			return err
		}
		defer cl.Close() //repro:degrade control-plane client teardown; every RPC outcome was already checked
		clients[i] = cl
	}
	// Install everywhere before draining anywhere: a member draining under
	// the new ring may push to a member that must not refuse the epoch.
	for i, cl := range clients {
		if err := cl.InstallRing(ring); err != nil {
			return fmt.Errorf("remote: install ring on %s: %w", ring.Members[i].Name, err)
		}
	}
	for i, cl := range clients {
		dr, err := cl.Drain()
		if err != nil {
			return fmt.Errorf("remote: drain %s: %w", ring.Members[i].Name, err)
		}
		if diag != nil {
			fmt.Fprintf(diag, "rebalance %s: moved=%d deleted=%d kept=%d\n", //repro:degrade progress line on a diagnostic writer
				ring.Members[i].Name, dr.Moved, dr.Deleted, dr.Kept)
		}
	}
	return nil
}
