package remote_test

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/remote"
	"repro/internal/store"
)

// BenchmarkRemoteMGet is the fleet store's batch hot path over local
// loopback: one gzipped /v1/mget round trip fetching a whole sweep's worth
// of keys per iteration. ns/op here is the latency a warm remote replay
// pays per fan-out instead of per job. Tracked in BENCH_store.json via
// scripts/bench_store.sh.
func BenchmarkRemoteMGet(b *testing.B) {
	authoritative, err := store.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer authoritative.Close()
	ts := httptest.NewServer(remote.NewServer(authoritative))
	defer ts.Close()
	cl, err := remote.NewClient(ts.URL, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	const batch = 256
	keys := make([]string, batch)
	for i := range keys {
		keys[i] = store.Key("bench", i)
		authoritative.Put(keys[i], []byte(fmt.Sprintf(`{"sc":%d,"steps":%d}`, i, i*3)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cl.GetBatch(keys)
		if err != nil || len(got) != batch {
			b.Fatalf("mget: %d entries, err=%v", len(got), err)
		}
	}
	b.ReportMetric(batch, "keys/op")
}

// BenchmarkRemoteMPut is the write-side batch hot path: one gzipped
// /v1/mput round trip carrying a whole fan-out's executed results — the
// flush a WriteBuffer issues at the fan-out barrier. ns/op divided by
// keys/op is the per-result write cost a buffered prime pass pays, against
// BenchmarkRemotePut's per-point-put baseline. The batch re-puts identical
// entries, which the server's idempotent-rewrite path drops without
// growing its log, so the measure is steady-state. Tracked in
// BENCH_store.json via scripts/bench_store.sh.
func BenchmarkRemoteMPut(b *testing.B) {
	authoritative, err := store.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer authoritative.Close()
	ts := httptest.NewServer(remote.NewServer(authoritative))
	defer ts.Close()
	cl, err := remote.NewClient(ts.URL, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	const batch = 256
	entries := make([]store.Entry, batch)
	for i := range entries {
		entries[i] = store.Entry{
			Key: store.Key("bench", i),
			Val: []byte(fmt.Sprintf(`{"sc":%d,"steps":%d}`, i, i*3)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.PutBatch(entries); err != nil {
			b.Fatalf("mput: %v", err)
		}
	}
	b.ReportMetric(batch, "keys/op")
}

// BenchmarkRemotePut is the point-write counterpart: the synchronous
// round trip every executed unit paid before write buffering (the ratio to
// BenchmarkRemoteMPut's per-key cost is the whole argument for the
// buffered prime path).
func BenchmarkRemotePut(b *testing.B) {
	authoritative, err := store.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer authoritative.Close()
	ts := httptest.NewServer(remote.NewServer(authoritative))
	defer ts.Close()
	cl, err := remote.NewClient(ts.URL, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	k := store.Key("bench", 1)
	val := []byte(`{"sc":1}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Put(k, val); err != nil {
			b.Fatalf("put: %v", err)
		}
	}
}

// BenchmarkRemoteGet is the point-lookup counterpart: what each job would
// pay without batching (the ratio to BenchmarkRemoteMGet's per-key cost is
// the whole argument for the prefetch path).
func BenchmarkRemoteGet(b *testing.B) {
	authoritative, err := store.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer authoritative.Close()
	ts := httptest.NewServer(remote.NewServer(authoritative))
	defer ts.Close()
	cl, err := remote.NewClient(ts.URL, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	k := store.Key("bench", 1)
	authoritative.Put(k, []byte(`{"sc":1}`))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := cl.Get(k); !ok || err != nil {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}
