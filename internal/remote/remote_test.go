package remote_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/remote"
	"repro/internal/store"
)

// newServer returns a stored service over a fresh NDJSON-backed store,
// plus handles to both.
func newServer(t *testing.T) (*httptest.Server, *remote.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(st)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return ts, srv, st
}

func newClient(t *testing.T, url string) *remote.Client {
	t.Helper()
	c, err := remote.NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientImplementsBackend(t *testing.T) {
	var _ store.Backend = (*remote.Client)(nil)
	var _ store.BatchBackend = (*remote.Client)(nil)
	var _ store.HasBatcher = (*remote.Client)(nil)
	var _ store.BatchBackend = (*store.Tiered)(nil)
	var _ store.HasBatcher = (*store.Tiered)(nil)
}

// TestHasBatch pins the presence-only batch: one mhas round trip answers
// a whole key set and moves no values.
func TestHasBatch(t *testing.T) {
	ts, srv, st := newServer(t)
	c := newClient(t, ts.URL)
	var keys []string
	for i := 0; i < 20; i++ {
		keys = append(keys, store.Key("v1", i))
		if i%2 == 0 {
			st.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
		}
	}
	present, err := c.HasBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if present[k] != (i%2 == 0) {
			t.Fatalf("key %d: present=%v, want %v", i, present[k], i%2 == 0)
		}
	}
	if r := srv.Requests(); r.MHas != 1 || r.Has != 0 || r.MGet != 0 {
		t.Fatalf("presence probe must be one mhas request: %+v", r)
	}

	// Through the Store layer: Present answers from the same single probe.
	wrapped := store.New(4, newClient(t, ts.URL))
	defer wrapped.Close()
	got := wrapped.Present(keys)
	for i, k := range keys {
		if got[k] != (i%2 == 0) {
			t.Fatalf("Present key %d: %v", i, got[k])
		}
	}
	if s := wrapped.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("presence probes must not touch the books: %+v", s)
	}
}

// TestMergePushIdempotent pins that pushing the same local shard directory
// to the fleet store twice is a no-op the second time — on the server (its
// byte-identical rewrites are dropped) and in the tiered near log (present
// keys are not re-appended).
func TestMergePushIdempotent(t *testing.T) {
	ts, _, _ := newServer(t)
	src := t.TempDir()
	srcSt, err := store.Open(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		store.PutJSON(srcSt, store.Key("v1", i), i)
	}
	srcSt.Close()

	nearDir := t.TempDir()
	logPath := filepath.Join(nearDir, "results.ndjson")
	var sizeAfterFirst int64
	for round := 0; round < 2; round++ {
		st, _, err := remote.Mount(nearDir, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		added, err := st.Merge(src)
		st.Close()
		if err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		switch round {
		case 0:
			if added != 5 {
				t.Fatalf("first push added %d, want 5", added)
			}
			sizeAfterFirst = fi.Size()
		case 1:
			if added != 0 {
				t.Fatalf("second push added %d, want 0", added)
			}
			if fi.Size() != sizeAfterFirst {
				t.Fatalf("re-merge grew the near log %d → %d bytes", sizeAfterFirst, fi.Size())
			}
		}
	}
}

func TestPointRoundTrip(t *testing.T) {
	ts, srv, _ := newServer(t)
	c := newClient(t, ts.URL)

	k := store.Key("v1", "unit-1")
	if _, ok, err := c.Get(k); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if c.Has(k) {
		t.Fatal("Has on empty store")
	}
	if err := c.Put(k, []byte(`{"sc":42}`)); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(k)
	if !ok || err != nil || string(v) != `{"sc":42}` {
		t.Fatalf("round trip: %q ok=%v err=%v", v, ok, err)
	}
	if !c.Has(k) {
		t.Fatal("Has after Put")
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len=%d, want 1", n)
	}
	if got := srv.Conflicts(); got != 0 {
		t.Fatalf("conflicts=%d, want 0", got)
	}
}

// TestLastWriteWinsAndConflictCounting pins the write semantics: identical
// rewrites are invisible, differing rewrites are counted as conflicts and
// the last write still wins.
func TestLastWriteWinsAndConflictCounting(t *testing.T) {
	ts, srv, _ := newServer(t)
	c := newClient(t, ts.URL)

	k := store.Key("v1", "unit-1")
	if err := c.Put(k, []byte(`{"sc":1}`)); err != nil {
		t.Fatal(err)
	}
	// A well-behaved duplicate writer: same content address, same bytes.
	if err := c.Put(k, []byte(`{"sc":1}`)); err != nil {
		t.Fatal(err)
	}
	if got := srv.Conflicts(); got != 0 {
		t.Fatalf("identical rewrite counted as conflict: %d", got)
	}
	// A buggy writer: same key, different bytes. Counted, and LWW.
	if err := c.Put(k, []byte(`{"sc":2}`)); err != nil {
		t.Fatal(err)
	}
	if got := srv.Conflicts(); got != 1 {
		t.Fatalf("conflicts=%d, want 1", got)
	}
	v, ok, _ := c.Get(k)
	if !ok || string(v) != `{"sc":2}` {
		t.Fatalf("last write must win: %q ok=%v", v, ok)
	}
}

func TestBatchRoundTripGzip(t *testing.T) {
	ts, srv, _ := newServer(t)
	c := newClient(t, ts.URL)

	entries := make([]store.Entry, 40)
	keys := make([]string, len(entries))
	for i := range entries {
		keys[i] = store.Key("v1", i)
		entries[i] = store.Entry{Key: keys[i], Val: []byte(fmt.Sprintf(`{"i":%d}`, i))}
	}
	added, err := c.PutBatch(entries)
	if err != nil || added != len(entries) {
		t.Fatalf("PutBatch: added=%d err=%v, want %d", added, err, len(entries))
	}
	// Re-putting the same batch adds nothing and conflicts nothing.
	added, err = c.PutBatch(entries)
	if err != nil || added != 0 {
		t.Fatalf("duplicate PutBatch: added=%d err=%v, want 0", added, err)
	}
	if got := srv.Conflicts(); got != 0 {
		t.Fatalf("conflicts=%d, want 0", got)
	}

	got, err := c.GetBatch(append([]string{store.Key("v1", "absent")}, keys...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("GetBatch returned %d entries, want %d (absent keys omitted)", len(got), len(keys))
	}
	for i, k := range keys {
		if string(got[k]) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("key %d: %q", i, got[k])
		}
	}
	if r := srv.Requests(); r.MGet != 1 || r.MPut != 2 || r.Get != 0 || r.Put != 0 {
		t.Fatalf("batch calls must be single requests: %+v", r)
	}
}

// TestMGetResponseIsGzippedNDJSON pins the wire shape of a batch reply for
// non-Go clients: gzipped NDJSON in the store's own record format.
func TestMGetResponseIsGzippedNDJSON(t *testing.T) {
	ts, _, st := newServer(t)
	k := store.Key("v1", "unit")
	st.Put(k, []byte(`{"sc":7}`))

	var body bytes.Buffer
	zw := gzip.NewWriter(&body)
	fmt.Fprintf(zw, "{\"k\":%q}\n", k)
	zw.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/mget", &body)
	req.Header.Set("Content-Encoding", "gzip")
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("batch reply not gzipped: %q", resp.Header.Get("Content-Encoding"))
	}
	if resp.Header.Get(remote.VersionHeader) != remote.ProtocolVersion {
		t.Fatalf("missing protocol version header")
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		K string          `json:"k"`
		V json.RawMessage `json:"v"`
	}
	if err := json.NewDecoder(zr).Decode(&rec); err != nil || rec.K != k || string(rec.V) != `{"sc":7}` {
		t.Fatalf("reply line: %+v err=%v", rec, err)
	}
}

// TestGetCoalescing pins the hot-path promise: concurrent Gets of one key
// share a single in-flight request.
func TestGetCoalescing(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	k := store.Key("v1", "hot")
	st.Put(k, []byte(`{"sc":9}`))

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/get" {
			entered <- struct{}{}
			<-release
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL)

	const waiters = 7
	results := make(chan string, waiters+1)
	go func() {
		v, _, _ := c.Get(k)
		results <- string(v)
	}()
	<-entered // the leader's request is on the wire; its inflight slot is registered
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, _ := c.Get(k)
			results <- string(v)
		}()
	}
	// Every waiter must attach to the leader's in-flight call before it is
	// released, so the count below is deterministic.
	for c.Stats().Coalesced < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters+1; i++ {
		if got := <-results; got != `{"sc":9}` {
			t.Fatalf("caller %d got %q", i, got)
		}
	}
	if r := srv.Requests(); r.Get != 1 {
		t.Fatalf("server saw %d gets, want 1 (coalesced)", r.Get)
	}
	if cs := c.Stats(); cs.Gets != 1 || cs.Coalesced != waiters {
		t.Fatalf("client stats %+v, want gets=1 coalesced=%d", cs, waiters)
	}
}

// TestBoundedRetries pins the retry budget: transient 5xx responses are
// retried and absorbed; a persistently failing server costs the budget and
// then degrades to a counted miss in the wrapping Store — never an error
// into the simulation.
func TestBoundedRetries(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := remote.NewServer(st)
	k := store.Key("v1", "flaky")
	st.Put(k, []byte(`{"sc":3}`))

	var failures atomic.Int64
	failures.Store(2) // first two attempts 500, then healthy
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL)
	v, ok, err := c.Get(k)
	if !ok || err != nil || string(v) != `{"sc":3}` {
		t.Fatalf("retries did not absorb transient failures: %q ok=%v err=%v", v, ok, err)
	}
	if cs := c.Stats(); cs.Retried != 2 || cs.NetErrors != 0 {
		t.Fatalf("stats %+v, want retried=2 netErrors=0", cs)
	}

	// A dead server: the wrapping Store turns the spent budget into a miss.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	dc := newClient(t, dead.URL)
	wrapped := store.New(4, dc)
	if _, ok := wrapped.Get(k); ok {
		t.Fatal("dead server served a hit")
	}
	s := wrapped.Stats()
	if s.Misses != 1 || s.Corrupt != 1 {
		t.Fatalf("dead server must read as a counted miss: %+v", s)
	}
	if cs := dc.Stats(); cs.NetErrors != 1 || cs.Retried != remote.DefaultRetries {
		t.Fatalf("dead-server stats %+v, want netErrors=1 retried=%d", cs, remote.DefaultRetries)
	}
	// Writes degrade to memory-only, also counted, also not errors.
	wrapped.Put(k, []byte(`{"sc":3}`))
	if s := wrapped.Stats(); s.PutErrors != 1 {
		t.Fatalf("put against dead server must count: %+v", s)
	}
	if v, ok := wrapped.Get(k); !ok || string(v) != `{"sc":3}` {
		t.Fatal("memory-only degradation lost the value")
	}
}

// TestProtocolVersionEnforced pins that the client refuses non-stored
// endpoints instead of misreading them as cold caches, with no retries —
// the mismatch is deterministic.
func TestProtocolVersionEnforced(t *testing.T) {
	impostor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"k":"x","v":1}`)
	}))
	defer impostor.Close()
	c := newClient(t, impostor.URL)
	if _, ok, err := c.Get("x"); ok || err == nil {
		t.Fatalf("impostor endpoint accepted: ok=%v err=%v", ok, err)
	}
	if cs := c.Stats(); cs.Retried != 0 {
		t.Fatalf("version mismatch must not be retried: %+v", cs)
	}
	if _, err := c.Ping(); err == nil {
		t.Fatal("Ping accepted an impostor endpoint")
	}
}

func TestClientForEachRefuses(t *testing.T) {
	ts, _, _ := newServer(t)
	c := newClient(t, ts.URL)
	if err := c.ForEach(func(string, []byte) error { return nil }); err == nil {
		t.Fatal("remote ForEach must refuse (stores are pushed to, not enumerated)")
	}
}

func TestNewClientValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := remote.NewClient(bad, nil); err == nil {
			t.Errorf("NewClient(%q) accepted", bad)
		}
	}
}

// TestCompactEndpoint drives /v1/compact end to end: overwrites accumulate
// dead log lines on the server, compaction sheds them without losing an
// entry.
func TestCompactEndpoint(t *testing.T) {
	ts, _, st := newServer(t)
	c := newClient(t, ts.URL)
	k := store.Key("v1", "rewritten")
	for i := 0; i < 5; i++ {
		st.Put(k, []byte(`{"sc":1}`)) // 4 dead lines behind the live one
	}
	st.Put(store.Key("v1", "other"), []byte(`{"sc":2}`))
	kept, dropped, err := c.Compact()
	if err != nil || kept != 2 || dropped != 4 {
		t.Fatalf("Compact = kept=%d dropped=%d err=%v, want 2, 4, nil", kept, dropped, err)
	}
	if v, ok := st.Get(k); !ok || string(v) != `{"sc":1}` {
		t.Fatalf("entry lost in compaction: %q ok=%v", v, ok)
	}
	sr, err := c.Ping()
	if err != nil || sr.Len != 2 {
		t.Fatalf("stats after compact: %+v err=%v", sr, err)
	}
}

// TestMountTiers pins the CLI composition matrix of -cache and -store.
func TestMountTiers(t *testing.T) {
	ts, srv, _ := newServer(t)

	st, cl, err := remote.Mount("", "")
	if err != nil || st != nil || cl != nil {
		t.Fatalf("Mount of nothing: %v %v %v", st, cl, err)
	}

	// Remote only: writes land on the server.
	st, cl, err = remote.Mount("", ts.URL)
	if err != nil || st == nil || cl == nil {
		t.Fatalf("Mount remote: %v", err)
	}
	k := store.Key("v1", "shared")
	st.Put(k, []byte(`{"sc":5}`))
	st.Close()

	// Local front over remote: the first Get pulls the key down into the
	// local tier; after that the fleet store is not consulted for it.
	dir := t.TempDir()
	st, _, err = remote.Mount(dir, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get(k); !ok || string(v) != `{"sc":5}` {
		t.Fatalf("tiered read through: %q ok=%v", v, ok)
	}
	st.Close()
	getsBefore := srv.Requests().Get
	st, _, err = remote.Mount(dir, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if v, ok := st.Get(k); !ok || string(v) != `{"sc":5}` {
		t.Fatalf("near-tier read: %q ok=%v", v, ok)
	}
	if got := srv.Requests().Get; got != getsBefore {
		t.Fatalf("near-tier hit still consulted the fleet store (%d → %d gets)", getsBefore, got)
	}

	// Fail fast on an unreachable or impostor store.
	if _, _, err := remote.Mount("", "http://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable store URL accepted")
	}
	impostor := httptest.NewServer(http.NotFoundHandler())
	defer impostor.Close()
	if _, _, err := remote.Mount("", impostor.URL); err == nil {
		t.Fatal("impostor store URL accepted")
	}
}

// TestMountRouterSpreadsKeySpace pins the -store URL1,URL2,… composition:
// a comma-separated list mounts a Router, every replica is pinged at mount
// (one dead member fails the whole mount loudly), writes spread across the
// instances by the stable partition, and reads find every key again.
func TestMountRouterSpreadsKeySpace(t *testing.T) {
	ts1, srv1, auth1 := newServer(t)
	ts2, srv2, auth2 := newServer(t)
	list := ts1.URL + "," + ts2.URL

	st, cls, err := remote.Mount("", list)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(cls) != 2 || cls[0].URL() != ts1.URL || cls[1].URL() != ts2.URL {
		t.Fatalf("Mount returned clients %v, want one per URL in order", cls)
	}

	const n = 40
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("v1", i)
		st.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	if auth1.Len() == 0 || auth2.Len() == 0 {
		t.Fatalf("replica fill %d/%d: routing is degenerate", auth1.Len(), auth2.Len())
	}
	if auth1.Len()+auth2.Len() != n || st.Len() != n {
		t.Fatalf("replicas hold %d+%d, store Len %d, want disjoint total %d",
			auth1.Len(), auth2.Len(), st.Len(), n)
	}
	for i, k := range keys {
		owner := store.FlagRing(ts1.URL, ts2.URL).Owner(k)
		if got := []*store.Store{auth1, auth2}[owner].Has(k); !got {
			t.Fatalf("key %d not on its owner replica %d", i, owner)
		}
	}

	// Prefetch splits into one concurrent mget per replica and the per-key
	// reads that follow are all served warm.
	fresh, _, err := remote.Mount("", list)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	present := fresh.Prefetch(keys)
	if len(present) != n {
		t.Fatalf("Prefetch marked %d of %d keys present", len(present), n)
	}
	for _, srv := range []*remote.Server{srv1, srv2} {
		if r := srv.Requests(); r.MGet != 1 {
			t.Fatalf("prefetch issued %d mgets on a replica, want exactly 1", r.MGet)
		}
	}
	for i, k := range keys {
		if v, ok := fresh.Get(k); !ok || string(v) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("key %d through router: %q ok=%v", i, v, ok)
		}
	}
	if r1, r2 := srv1.Requests(), srv2.Requests(); r1.Get != 0 || r2.Get != 0 {
		t.Fatalf("warm reads went point (%d, %d point gets), want all served by the prefetch", r1.Get, r2.Get)
	}

	// A dead member anywhere in the list fails the mount, naming it — and a
	// list that names no member at all (unset env vars leaving just ",") is
	// a loud error, not a silently storeless run.
	if _, _, err := remote.Mount("", ts1.URL+",http://127.0.0.1:1"); err == nil {
		t.Fatal("replica list with a dead member accepted")
	}
	for _, empty := range []string{",", " , ", ",,"} {
		if _, _, err := remote.Mount("", empty); err == nil {
			t.Fatalf("empty URL list %q accepted", empty)
		}
	}
}
