package remote

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"io"
	"sync"
)

// Compressor and scanner-buffer pools shared by Client and Server.
//
// A gzip.Writer holds the deflate compressor's ~800 KB of internal state
// and a gzip.Reader ~45 KB of inflate state; allocating them per request
// was, by an order of magnitude, the wire protocol's dominant memory cost
// (BenchmarkRemoteMGet charged ~2.1 MB per 64-key batch, ~1.7 MB of it
// compressor state on the four request/response bodies of one loopback
// round trip). Both types are built to be pooled: Reset rebinds them to a
// new stream with their buffers intact, so steady-state batch traffic
// reuses a handful of compressors fleet-wide instead of churning the GC.

var gzipWriterPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// getGzipWriter returns a pooled gzip writer bound to w. Callers must Close
// it (flushing the stream) before putGzipWriter.
func getGzipWriter(w io.Writer) *gzip.Writer {
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(w)
	return zw
}

// putGzipWriter returns a closed gzip writer to the pool.
func putGzipWriter(zw *gzip.Writer) {
	zw.Reset(io.Discard) // drop the reference to the caller's stream
	gzipWriterPool.Put(zw)
}

var gzipReaderPool = sync.Pool{
	New: func() any { return new(gzip.Reader) },
}

// getGzipReader returns a pooled gzip reader bound to r, or an error if r
// does not start a valid gzip stream.
func getGzipReader(r io.Reader) (*gzip.Reader, error) {
	zr := gzipReaderPool.Get().(*gzip.Reader)
	if err := zr.Reset(r); err != nil {
		gzipReaderPool.Put(zr)
		return nil, err
	}
	return zr, nil
}

// putGzipReader returns a gzip reader to the pool.
func putGzipReader(zr *gzip.Reader) {
	gzipReaderPool.Put(zr)
}

// pooledGzipReadCloser adapts a pooled gzip reader into the io.ReadCloser
// surface requestBody hands to handlers: Close returns the reader to the
// pool exactly once.
type pooledGzipReadCloser struct {
	zr     *gzip.Reader
	closed bool
}

func (p *pooledGzipReadCloser) Read(b []byte) (int, error) {
	if p.closed {
		return 0, io.EOF
	}
	return p.zr.Read(b)
}

func (p *pooledGzipReadCloser) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.zr.Close()
	putGzipReader(p.zr)
	return err
}

// scanBufPool holds the 64 KB line buffers batch scanners start from; one
// was allocated per batch request before pooling.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// getScanBuf borrows a scanner start buffer.
func getScanBuf() *[]byte { return scanBufPool.Get().(*[]byte) }

// putScanBuf returns a scanner start buffer. The scanner may have grown its
// buffer past the pooled one; only the original is retained either way.
func putScanBuf(b *[]byte) { scanBufPool.Put(b) }

// bufPool holds request-body staging buffers (client side: the compressed
// batch body that must be replayable across retries).
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// getBuf borrows an empty byte buffer.
func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// putBuf returns a buffer to the pool. Oversized buffers are dropped so one
// huge batch does not pin its high-water mark forever.
func putBuf(b *bytes.Buffer) {
	if b.Cap() > 4<<20 {
		return
	}
	bufPool.Put(b)
}

// bufioWriterPool holds the buffered writers the binary codec encodes
// through.
var bufioWriterPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, 32<<10) },
}

func getBufioWriter(w io.Writer) *bufio.Writer {
	bw := bufioWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putBufioWriter(bw *bufio.Writer) {
	bw.Reset(io.Discard)
	bufioWriterPool.Put(bw)
}

// bufioReaderPool holds the buffered readers the binary codec decodes
// through.
var bufioReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 32<<10) },
}

func getBufioReader(r io.Reader) *bufio.Reader {
	br := bufioReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putBufioReader(br *bufio.Reader) {
	br.Reset(nil)
	bufioReaderPool.Put(br)
}
