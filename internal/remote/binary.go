package remote

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Binary record framing — the compact alternative to NDJSON batch bodies,
// negotiated per request entirely through standard content negotiation
// under the protocol version header: a batch request declares its own body
// framing in Content-Type and the framings it can decode in Accept; the
// server answers in the densest framing the request accepts. Because every
// response carries X-Result-Store-Protocol and the client refuses
// mismatched generations, both ends of a conversation that reaches a
// handler are guaranteed to agree on what the binary framing means; a
// (hypothetical) v1 server predating it answers a binary body with 415 and
// the client transparently re-sends that request as NDJSON and stops
// offering binary bodies to that server.
//
// The framing, inside the usual gzip Content-Encoding:
//
//	magic "RSB1", then per record:
//	  uvarint(len(key))   key bytes
//	  uvarint(len(value)) value bytes
//
// Key-only batches (mget/mhas requests, mhas replies) are the same framing
// with zero-length values. Values are the store's canonical JSON payloads,
// carried verbatim — no quoting, escaping, or per-line JSON parse — so a
// 64-key mget reply is one sequential scan instead of 64 Unmarshals.
const binaryContentType = "application/x-rsbin"

// binaryMagic starts every binary batch body; a framing mismatch fails on
// the first four bytes instead of producing garbage records.
var binaryMagic = [4]byte{'R', 'S', 'B', '1'}

// maxBinaryRecordBytes bounds one decoded key or value, mirroring the
// NDJSON scanner's 64 MB line cap.
const maxBinaryRecordBytes = 64 << 20

// errBadMagic reports a body that does not start with the binary magic.
var errBadMagic = errors.New("remote: binary batch body lacks RSB1 magic")

// binaryEncoder writes framed records through a pooled buffered writer.
// Flush must be called (and the encoder released) before the underlying
// writer is closed.
type binaryEncoder struct {
	bw     *bufio.Writer
	varbuf [binary.MaxVarintLen64]byte
	err    error
}

// newBinaryEncoder starts a binary batch body on w, writing the magic.
func newBinaryEncoder(w io.Writer) *binaryEncoder {
	e := &binaryEncoder{bw: getBufioWriter(w)}
	_, e.err = e.bw.Write(binaryMagic[:])
	return e
}

// writeChunk writes one uvarint-length-prefixed byte string.
//
//repro:hotpath
func (e *binaryEncoder) writeChunk(b []byte) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.varbuf[:], uint64(len(b)))
	if _, e.err = e.bw.Write(e.varbuf[:n]); e.err != nil {
		return
	}
	_, e.err = e.bw.Write(b)
}

// Record appends one key/value record; val may be nil for key-only batches.
//
//repro:hotpath
func (e *binaryEncoder) Record(key string, val []byte) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.varbuf[:], uint64(len(key)))
	if _, e.err = e.bw.Write(e.varbuf[:n]); e.err != nil {
		return
	}
	if _, e.err = e.bw.WriteString(key); e.err != nil {
		return
	}
	e.writeChunk(val)
}

// Flush completes the body, returning the first error hit anywhere in the
// encode, and releases the pooled writer. The encoder must not be used
// afterwards.
func (e *binaryEncoder) Flush() error {
	err := e.err
	if flushErr := e.bw.Flush(); err == nil {
		err = flushErr
	}
	putBufioWriter(e.bw)
	e.bw = nil
	return err
}

// binaryDecoder reads framed records through a pooled buffered reader.
type binaryDecoder struct {
	br *bufio.Reader
}

// newBinaryDecoder checks the magic and returns a decoder over r.
func newBinaryDecoder(r io.Reader) (*binaryDecoder, error) {
	br := getBufioReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != binaryMagic {
		putBufioReader(br)
		if err != nil {
			return nil, fmt.Errorf("remote: reading binary magic: %w", err)
		}
		return nil, errBadMagic
	}
	return &binaryDecoder{br: br}, nil
}

// readChunk reads one uvarint-length-prefixed byte string into a fresh
// slice (the caller retains it). A nil slice is returned for length zero.
//
//repro:hotpath
func (d *binaryDecoder) readChunk() ([]byte, error) {
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, err
	}
	if n > maxBinaryRecordBytes {
		return nil, errRecordTooBig(n)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.br, b); err != nil {
		return nil, errTruncatedRecord(err)
	}
	return b, nil
}

// Cold error constructors for the decode path: formatting allocates, and
// each of these ends the batch anyway.

//repro:hotpath-ok cold error path: an oversized record aborts the batch
func errRecordTooBig(n uint64) error {
	return fmt.Errorf("remote: binary record of %d bytes exceeds cap", n)
}

//repro:hotpath-ok cold error path: a truncated record aborts the batch
func errTruncatedRecord(err error) error {
	return fmt.Errorf("remote: truncated binary record: %w", err)
}

//repro:hotpath-ok cold error path: a broken record aborts the batch
func errBadRecord(kb []byte, err error) error {
	return fmt.Errorf("remote: binary record for key %q: %w", kb, err)
}

// Next returns the next record, or ok=false at a clean end of stream. The
// returned val is nil for key-only records.
//
//repro:hotpath
func (d *binaryDecoder) Next() (key string, val []byte, ok bool, err error) {
	kb, err := d.readChunk()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return "", nil, false, nil // clean end between records
		}
		return "", nil, false, err
	}
	val, err = d.readChunk()
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF // a key without its value length
		}
		return "", nil, false, errBadRecord(kb, err)
	}
	return retainKey(kb), val, true, nil
}

// retainKey materializes a decoded key as an immutable string.
//
//repro:hotpath-ok audited single allocation: the one []byte→string copy per decoded record; keys outlive the read buffer
func retainKey(kb []byte) string { return string(kb) }

// Close releases the pooled reader. The decoder must not be used afterwards.
func (d *binaryDecoder) Close() {
	putBufioReader(d.br)
	d.br = nil
}

// recordSink abstracts over the two batch framings so batch producers —
// client request bodies, server reply bodies — are written once. A nil val
// emits a key-only record.
type recordSink interface {
	Record(key string, val []byte) error
}

// ndjsonSink writes records as the protocol's NDJSON lines.
type ndjsonSink struct{ enc *json.Encoder }

func (s ndjsonSink) Record(key string, val []byte) error {
	if val == nil {
		return s.enc.Encode(wireKey{K: key})
	}
	return s.enc.Encode(wireRecord{K: key, V: json.RawMessage(val)})
}

// binarySink writes records in the binary framing.
type binarySink struct{ enc *binaryEncoder }

func (s binarySink) Record(key string, val []byte) error {
	s.enc.Record(key, val)
	return s.enc.err
}
