package remote

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// Server is the HTTP face of one authoritative store.Store — the service
// cmd/stored runs. It is an http.Handler; mount it at the root of a
// listener (it owns the whole /v1/ path space). Safe for concurrent use:
// the store is already goroutine-safe, and the conflict check + write of
// each put is serialized so the added/conflict counters stay exact under
// racing writers.
type Server struct {
	st  *store.Store
	mux *http.ServeMux

	putMu     sync.Mutex // serializes conflict-check + write per put
	conflicts atomic.Int64
	req       struct {
		get, has, put, mget, mhas, mput, compact, ring, drain atomic.Int64
		blobGet, blobPut, blobHas, metrics                    atomic.Int64
	}

	// lat holds one latency histogram per metric endpoint (see metrics.go),
	// observed around every dispatch.
	lat *LatencySet

	ringMu sync.RWMutex
	// ring is nil until a ring is installed (flag or /v1/ring).
	//repro:guardedby ringMu
	ring *store.Ring
	// self is this replica's member name in the ring ("" = unnamed).
	//repro:guardedby ringMu
	self string
}

// NewServer wraps st in the versioned HTTP protocol. The server owns the
// store's write path but not its lifecycle — the caller still closes st
// after the listener drains.
func NewServer(st *store.Store) *Server {
	s := &Server{st: st, mux: http.NewServeMux(), lat: NewLatencySet("stored", metricEndpoints[:])}
	s.mux.HandleFunc("GET /v1/get", s.handleGet)
	s.mux.HandleFunc("GET /v1/has", s.handleHas)
	s.mux.HandleFunc("POST /v1/put", s.handlePut)
	s.mux.HandleFunc("POST /v1/mget", s.handleMGet)
	s.mux.HandleFunc("POST /v1/mhas", s.handleMHas)
	s.mux.HandleFunc("POST /v1/mput", s.handleMPut)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	s.mux.HandleFunc("GET /v1/ring", s.handleRingGet)
	s.mux.HandleFunc("POST /v1/ring", s.handleRingPost)
	s.mux.HandleFunc("POST /v1/drain", s.handleDrain)
	s.mux.HandleFunc("GET /v1/blob/get", s.handleBlobGet)
	s.mux.HandleFunc("POST /v1/blob/put", s.handleBlobPut)
	s.mux.HandleFunc("GET /v1/blob/has", s.handleBlobHas)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler, stamping every response with the
// protocol version and the installed ring epoch before dispatch — a
// stale client learns about a resize from its very next reply — and
// timing the dispatch into the endpoint's latency histogram.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := nowMetrics() //repro:wallclock request latency feeds the metrics surface only, never canonical output
	w.Header().Set(VersionHeader, ProtocolVersion)
	w.Header().Set(EpochHeader, strconv.FormatUint(s.epoch(), 10))
	s.mux.ServeHTTP(w, r)
	s.lat.Observe(metricEndpointIndex(r.URL.Path), nowMetrics().Sub(start))
}

// SetSelf names this replica: the ring member identity the server drains
// as. cmd/stored sets it from -name before serving.
func (s *Server) SetSelf(name string) {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	s.self = name
}

// Self returns the replica's member name ("" when unnamed).
func (s *Server) Self() string {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return s.self
}

// Ring returns the installed placement ring (nil when none).
func (s *Server) Ring() *store.Ring {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return s.ring
}

// epoch returns the installed ring's epoch, 0 when no ring is installed.
func (s *Server) epoch() uint64 {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	if s.ring == nil {
		return 0
	}
	return s.ring.Epoch
}

// InstallRing installs r as the authoritative placement. Epochs must be
// monotonic: a ring older than the installed one is refused (the caller
// raced a newer resize), re-installing the same epoch is an idempotent
// no-op only when the membership matches byte-for-byte — two *different*
// rings claiming one epoch would split the fleet's placement brain.
func (s *Server) InstallRing(r *store.Ring) error {
	if r == nil {
		return fmt.Errorf("remote: nil ring")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	if s.ring != nil {
		if r.Epoch < s.ring.Epoch {
			return fmt.Errorf("remote: stale ring epoch %d (installed %d)", r.Epoch, s.ring.Epoch)
		}
		if r.Epoch == s.ring.Epoch {
			if sameRing(r, s.ring) {
				return nil
			}
			return fmt.Errorf("remote: conflicting ring at epoch %d (a resize must bump the epoch)", r.Epoch)
		}
	}
	s.ring = r
	return nil
}

// sameRing reports member-for-member equality.
func sameRing(a, b *store.Ring) bool {
	if len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}

// Conflicts returns the number of writes that overwrote a key with
// different bytes — which content addressing promises never happens, so
// every count is evidence of version skew or a bug in some writer.
func (s *Server) Conflicts() int64 { return s.conflicts.Load() }

// Requests returns per-endpoint request counts.
func (s *Server) Requests() RequestStats {
	return RequestStats{
		Get:     s.req.get.Load(),
		Has:     s.req.has.Load(),
		Put:     s.req.put.Load(),
		MGet:    s.req.mget.Load(),
		MHas:    s.req.mhas.Load(),
		MPut:    s.req.mput.Load(),
		Compact: s.req.compact.Load(),
		Ring:    s.req.ring.Load(),
		Drain:   s.req.drain.Load(),
		BlobGet: s.req.blobGet.Load(),
		BlobPut: s.req.blobPut.Load(),
		BlobHas: s.req.blobHas.Load(),
		Metrics: s.req.metrics.Load(),
	}
}

// reply writes a JSON body with the given status.
func reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //repro:degrade a response-write failure means the peer hung up; the client counts it as a net error
}

// replyError writes the protocol's error body.
func replyError(w http.ResponseWriter, status int, format string, args ...any) {
	reply(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

// keyParam extracts the non-empty ?k= parameter.
func keyParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	k := r.URL.Query().Get("k")
	if k == "" {
		replyError(w, http.StatusBadRequest, "missing key parameter k")
		return "", false
	}
	return k, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.req.get.Add(1)
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	v, ok := s.st.Get(k)
	if !ok {
		replyError(w, http.StatusNotFound, "not found")
		return
	}
	reply(w, http.StatusOK, wireRecord{K: k, V: v})
}

func (s *Server) handleHas(w http.ResponseWriter, r *http.Request) {
	s.req.has.Add(1)
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	if !s.st.Has(k) {
		replyError(w, http.StatusNotFound, "not found")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// storeOne applies one last-write-wins put, reporting whether the key was
// new and whether it overwrote different bytes (a conflict, counted). The
// check + write is serialized so two racing writers of one new key count
// as exactly one added. The old value is read with Peek, so write traffic
// never inflates the store's hit/miss books — and an identical rewrite
// (the common fleet case: a retried push, two shards caching one adaptive
// unit) is dropped outright, so repeated idempotent writes never grow the
// server's append-only log.
func (s *Server) storeOne(k string, v []byte) (added, conflicts int) {
	s.putMu.Lock()
	defer s.putMu.Unlock()
	if old, ok := s.st.Peek(k); ok {
		if bytes.Equal(old, v) {
			return 0, 0 // byte-identical: the write is already durable
		}
		s.conflicts.Add(1)
		conflicts = 1
	} else {
		added = 1
	}
	s.st.Put(k, v) // new key, or a conflicting rewrite: last write wins
	return added, conflicts
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	s.req.put.Add(1)
	body, err := requestBody(w, r)
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	defer body.Close() //repro:degrade request body teardown; the decode above already surfaced any read failure
	var rec wireRecord
	if err := json.NewDecoder(body).Decode(&rec); err != nil {
		replyError(w, http.StatusBadRequest, "bad record: %v", err)
		return
	}
	if rec.K == "" || len(rec.V) == 0 {
		replyError(w, http.StatusBadRequest, "record needs k and v")
		return
	}
	added, conflicts := s.storeOne(rec.K, rec.V)
	reply(w, http.StatusOK, PutReply{Added: added, Conflicts: conflicts})
}

// batchScanner wraps a batch body in a line scanner sized for big values,
// starting from a pooled buffer; release must run when scanning is done.
func batchScanner(body io.Reader) (sc *bufio.Scanner, release func()) {
	sc = bufio.NewScanner(body)
	buf := getScanBuf()
	sc.Buffer(*buf, 64<<20)
	return sc, func() { putScanBuf(buf) }
}

// batchFraming classifies a batch request's body framing from its
// Content-Type. An unrecognized type gets 415 — the signal a binary-first
// client's fallback distinguishes from a malformed body — and false.
// Absent and generic JSON types read as NDJSON, the protocol baseline.
func batchFraming(w http.ResponseWriter, r *http.Request) (binary, ok bool) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case binaryContentType:
		return true, true
	case "", ndjsonContentType, "application/json":
		return false, true
	}
	replyError(w, http.StatusUnsupportedMediaType, "unsupported batch content type %q", r.Header.Get("Content-Type"))
	return false, false
}

// readKeys decodes a key-list batch body in either framing; a false return
// means the error response has already been written.
func (s *Server) readKeys(w http.ResponseWriter, r *http.Request) ([]string, bool) {
	binary, ok := batchFraming(w, r)
	if !ok {
		return nil, false
	}
	body, err := requestBody(w, r)
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad body: %v", err)
		return nil, false
	}
	defer body.Close() //repro:degrade request body teardown; the decode above already surfaced any read failure
	var keys []string
	if binary {
		dec, err := newBinaryDecoder(body)
		if err != nil {
			replyError(w, http.StatusBadRequest, "bad binary body: %v", err)
			return nil, false
		}
		defer dec.Close()
		for {
			k, _, more, err := dec.Next()
			if err != nil {
				replyError(w, http.StatusBadRequest, "bad binary key record: %v", err)
				return nil, false
			}
			if !more {
				return keys, true
			}
			if k == "" {
				replyError(w, http.StatusBadRequest, "empty key record")
				return nil, false
			}
			keys = append(keys, k)
		}
	}
	sc, release := batchScanner(body)
	defer release()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var k wireKey
		if err := json.Unmarshal(line, &k); err != nil || k.K == "" {
			replyError(w, http.StatusBadRequest, "bad key line %q", line)
			return nil, false
		}
		keys = append(keys, k.K)
	}
	if err := sc.Err(); err != nil {
		replyError(w, http.StatusBadRequest, "reading keys: %v", err)
		return nil, false
	}
	return keys, true
}

// batchReplyWriter starts a 200 batch reply in the densest framing the
// request accepts — binary when its Accept lists the binary type, NDJSON
// otherwise — gzipped (through the pooled compressor) when the client
// accepts gzip. The returned close must run before the handler exits.
func batchReplyWriter(w http.ResponseWriter, r *http.Request) (recordSink, func()) {
	binary := strings.Contains(r.Header.Get("Accept"), binaryContentType)
	gz := strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
	if binary {
		w.Header().Set("Content-Type", binaryContentType)
	} else {
		w.Header().Set("Content-Type", ndjsonContentType)
	}
	if gz {
		w.Header().Set("Content-Encoding", "gzip")
	}
	w.WriteHeader(http.StatusOK)
	out := io.Writer(w)
	var zw *gzip.Writer
	if gz {
		zw = getGzipWriter(w)
		out = zw
	}
	closeGzip := func() {
		if zw != nil {
			zw.Close() //repro:degrade a truncated response fails the client's decode, which retries or counts a net error
			putGzipWriter(zw)
		}
	}
	if binary {
		enc := newBinaryEncoder(out)
		return binarySink{enc}, func() { enc.Flush(); closeGzip() } //repro:degrade a failed flush truncates the response; the client's decode catches it
	}
	return ndjsonSink{json.NewEncoder(out)}, closeGzip
}

func (s *Server) handleMGet(w http.ResponseWriter, r *http.Request) {
	s.req.mget.Add(1)
	keys, ok := s.readKeys(w, r)
	if !ok {
		return
	}
	sink, closeOut := batchReplyWriter(w, r)
	defer closeOut()
	for _, k := range keys {
		if v, ok := s.st.Get(k); ok {
			if err := sink.Record(k, v); err != nil {
				return // client went away; nothing left to report to it
			}
		}
	}
}

// handleMHas is the presence-only sibling of mget: prime passes ask
// "which of these exist?" for whole fan-outs, and values would be wasted
// bytes — the reply carries keys alone.
func (s *Server) handleMHas(w http.ResponseWriter, r *http.Request) {
	s.req.mhas.Add(1)
	keys, ok := s.readKeys(w, r)
	if !ok {
		return
	}
	sink, closeOut := batchReplyWriter(w, r)
	defer closeOut()
	for _, k := range keys {
		if s.st.Has(k) {
			if err := sink.Record(k, nil); err != nil {
				return
			}
		}
	}
}

func (s *Server) handleMPut(w http.ResponseWriter, r *http.Request) {
	s.req.mput.Add(1)
	binary, ok := batchFraming(w, r)
	if !ok {
		return
	}
	body, err := requestBody(w, r)
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	defer body.Close() //repro:degrade request body teardown; the decode above already surfaced any read failure
	var total PutReply
	if binary {
		dec, err := newBinaryDecoder(body)
		if err != nil {
			replyError(w, http.StatusBadRequest, "bad binary body: %v", err)
			return
		}
		defer dec.Close()
		for {
			k, v, more, err := dec.Next()
			if err != nil {
				replyError(w, http.StatusBadRequest, "bad binary record: %v", err)
				return
			}
			if !more {
				break
			}
			if k == "" || len(v) == 0 {
				replyError(w, http.StatusBadRequest, "binary record needs key and value")
				return
			}
			added, conflicts := s.storeOne(k, v)
			total.Added += added
			total.Conflicts += conflicts
		}
		reply(w, http.StatusOK, total)
		return
	}
	sc, release := batchScanner(body)
	defer release()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec wireRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" || len(rec.V) == 0 {
			replyError(w, http.StatusBadRequest, "bad record line %q", line)
			return
		}
		added, conflicts := s.storeOne(rec.K, rec.V)
		total.Added += added
		total.Conflicts += conflicts
	}
	if err := sc.Err(); err != nil {
		replyError(w, http.StatusBadRequest, "reading records: %v", err)
		return
	}
	reply(w, http.StatusOK, total)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.st.Stats()
	reply(w, http.StatusOK, StatsReply{
		Protocol:  ProtocolVersion,
		Len:       s.st.Len(),
		Blobs:     s.st.BlobLen(),
		Epoch:     s.epoch(),
		Conflicts: s.conflicts.Load(),
		Requests:  s.Requests(),
		Store: StoreStats{
			Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
			Superseded: st.Superseded, Corrupt: st.Corrupt, PutErrors: st.PutErrors,
			BlobStored: st.BlobStored, BlobFetched: st.BlobFetched, BlobBytes: st.BlobBytes,
		},
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.req.compact.Add(1)
	kept, dropped, err := s.CompactStore()
	if err != nil {
		replyError(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	reply(w, http.StatusOK, CompactReply{Kept: kept, Dropped: dropped})
}

// CompactStore compacts the wrapped store under the write lock: a
// storeOne racing the file swap could Peek an existing key as absent and
// re-append it, inflating the added counter and regrowing the log
// mid-compaction. Point reads may still race and degrade to counted
// misses, as the store documents. Exported for cmd/stored's lifecycle
// loop, which must take the same lock the HTTP path takes.
func (s *Server) CompactStore() (kept, dropped int, err error) {
	s.putMu.Lock()
	defer s.putMu.Unlock()
	return s.st.Compact()
}

func (s *Server) handleRingGet(w http.ResponseWriter, r *http.Request) {
	s.req.ring.Add(1)
	ring := s.Ring()
	if ring == nil {
		replyError(w, http.StatusNotFound, "no ring installed")
		return
	}
	reply(w, http.StatusOK, ring)
}

func (s *Server) handleRingPost(w http.ResponseWriter, r *http.Request) {
	s.req.ring.Add(1)
	body, err := requestBody(w, r)
	if err != nil {
		replyError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	defer body.Close() //repro:degrade request body teardown; the decode above already surfaced any read failure
	var ring store.Ring
	if err := json.NewDecoder(body).Decode(&ring); err != nil {
		replyError(w, http.StatusBadRequest, "bad ring: %v", err)
		return
	}
	if err := s.InstallRing(&ring); err != nil {
		replyError(w, http.StatusConflict, "%v", err)
		return
	}
	// The header stamped at dispatch predates the install; repeat the new
	// epoch in the body so the installer sees it took.
	reply(w, http.StatusOK, RingReply{Epoch: s.epoch()})
}

// handleDrain streams every key this replica no longer owns under the
// installed ring to the keys' owners and deletes the local copies once
// they land. Requires an installed ring and a self name that maps into it
// or is absent from it (a decommission drains everything); an unnamed
// server cannot know which keys are its own.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.req.drain.Add(1)
	ring, self := s.Ring(), s.Self()
	if ring == nil {
		replyError(w, http.StatusConflict, "no ring installed; nothing to drain against")
		return
	}
	if self == "" {
		replyError(w, http.StatusConflict, "server has no member name (-name); cannot tell its keys from foreign ones")
		return
	}
	dr, err := DrainStore(s.st, ring, self)
	if err != nil {
		replyError(w, http.StatusInternalServerError, "drain: %v", err)
		return
	}
	reply(w, http.StatusOK, dr)
}
