// Package model defines the basic vocabulary of the shared-memory framework
// from Section 3.1 of Fan & Lynch, "An Ω(n log n) Lower Bound on the Cost of
// Mutual Exclusion" (PODC 2006): process steps, register files, and
// executions.
//
// A system consists of n deterministic process automata p_0 … p_{n-1}
// (the paper numbers them 1…n) and a collection of multi-reader multi-writer
// atomic registers. An execution is an alternating sequence of system states
// and steps; because processes and registers are deterministic, an execution
// is fully determined by its step sequence, which is how this package
// represents it.
package model

import (
	"fmt"
	"strings"
)

// Value is the contents of a shared register. The paper allows an arbitrary
// value set V; int64 is sufficient for every algorithm in this repository.
type Value = int64

// RegID identifies a shared register within a register file.
type RegID int

// Kind classifies a step, mirroring type(e) ∈ {R, W, C} in the paper, with
// an extra RMW kind for the comparison-primitive extension of Section 1.
type Kind uint8

const (
	// KindRead is a read step read_i(ℓ).
	KindRead Kind = iota
	// KindWrite is a write step write_i(ℓ, v).
	KindWrite
	// KindCrit is a critical step (try/enter/exit/rem).
	KindCrit
	// KindRMW is an atomic read-modify-write step. It is not part of the
	// paper's register-only model; it exists for the comparison-based
	// shared object extension mentioned in Sections 1 and 8.
	KindRMW
)

// String returns R, W, C or RMW, matching the paper's notation.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "R"
	case KindWrite:
		return "W"
	case KindCrit:
		return "C"
	case KindRMW:
		return "RMW"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CritKind distinguishes the four critical steps of the mutual exclusion
// problem (Section 3.2).
type CritKind uint8

const (
	// CritTry is try_i: the process leaves its remainder section and
	// begins competing for the critical section.
	CritTry CritKind = iota
	// CritEnter is enter_i: the process enters its critical section.
	CritEnter
	// CritExit is exit_i: the process leaves its critical section.
	CritExit
	// CritRem is rem_i: the process returns to its remainder section.
	CritRem
)

// String returns try/enter/exit/rem.
func (c CritKind) String() string {
	switch c {
	case CritTry:
		return "try"
	case CritEnter:
		return "enter"
	case CritExit:
		return "exit"
	case CritRem:
		return "rem"
	default:
		return fmt.Sprintf("CritKind(%d)", uint8(c))
	}
}

// RMWKind identifies a read-modify-write primitive for the extension model.
type RMWKind uint8

const (
	// RMWTestAndSet atomically sets the register to 1 and returns the old value.
	RMWTestAndSet RMWKind = iota
	// RMWCompareAndSwap writes New if the register equals Old, returning the old value.
	RMWCompareAndSwap
	// RMWFetchAndStore writes New unconditionally and returns the old value.
	RMWFetchAndStore
	// RMWFetchAndAdd adds New to the register and returns the old value.
	RMWFetchAndAdd
)

// String names the primitive.
func (r RMWKind) String() string {
	switch r {
	case RMWTestAndSet:
		return "TAS"
	case RMWCompareAndSwap:
		return "CAS"
	case RMWFetchAndStore:
		return "FAS"
	case RMWFetchAndAdd:
		return "FAA"
	default:
		return fmt.Sprintf("RMWKind(%d)", uint8(r))
	}
}

// Step is a single process step. The fields used depend on Kind:
//
//   - KindRead: Proc, Reg; Val records the value read (when the step has
//     been executed in a concrete execution; it is ignored when the step is
//     merely pending).
//   - KindWrite: Proc, Reg, Val (the value written).
//   - KindCrit: Proc, Crit.
//   - KindRMW: Proc, Reg, RMW, Arg1, Arg2; Val records the value returned.
type Step struct {
	Proc int // process index, 0-based
	Kind Kind
	Reg  RegID
	Val  Value
	Crit CritKind
	RMW  RMWKind
	Arg1 Value // CAS expected value / FAS-FAA operand
	Arg2 Value // CAS new value
}

// IsShared reports whether the step accesses shared memory (read, write, or
// RMW) as opposed to being a critical step.
//
//repro:hotpath
func (s Step) IsShared() bool { return s.Kind != KindCrit }

// String renders the step in the paper's notation, e.g. "write_3(r5, 1)".
func (s Step) String() string {
	switch s.Kind {
	case KindRead:
		return fmt.Sprintf("read_%d(r%d)=%d", s.Proc, s.Reg, s.Val)
	case KindWrite:
		return fmt.Sprintf("write_%d(r%d,%d)", s.Proc, s.Reg, s.Val)
	case KindCrit:
		return fmt.Sprintf("%s_%d", s.Crit, s.Proc)
	case KindRMW:
		return fmt.Sprintf("%s_%d(r%d,%d,%d)=%d", s.RMW, s.Proc, s.Reg, s.Arg1, s.Arg2, s.Val)
	default:
		return fmt.Sprintf("step_%d(kind=%d)", s.Proc, s.Kind)
	}
}

// SameOperation reports whether two steps denote the same operation by the
// same process on the same register, ignoring recorded read results. It is
// used by replay and by the decoder to check that a pending step matches a
// recorded one.
func (s Step) SameOperation(t Step) bool {
	if s.Proc != t.Proc || s.Kind != t.Kind {
		return false
	}
	switch s.Kind {
	case KindRead:
		return s.Reg == t.Reg
	case KindWrite:
		return s.Reg == t.Reg && s.Val == t.Val
	case KindCrit:
		return s.Crit == t.Crit
	case KindRMW:
		return s.Reg == t.Reg && s.RMW == t.RMW && s.Arg1 == t.Arg1 && s.Arg2 == t.Arg2
	default:
		return false
	}
}

// Execution is a finite execution represented by its step sequence (the
// paper's e_1 e_2 … form; states are recoverable by replay because the
// system is deterministic).
type Execution []Step

// Clone returns a deep copy of the execution.
func (e Execution) Clone() Execution {
	out := make(Execution, len(e))
	copy(out, e)
	return out
}

// Prefix returns the length-t prefix α(t) of the execution (or the whole
// execution if it is shorter than t).
func (e Execution) Prefix(t int) Execution {
	if t > len(e) {
		t = len(e)
	}
	return e[:t]
}

// Project returns the projection α|i: the subsequence of steps taken by
// process i.
func (e Execution) Project(i int) Execution {
	var out Execution
	for _, s := range e {
		if s.Proc == i {
			out = append(out, s)
		}
	}
	return out
}

// CritSteps returns the subsequence of critical steps, optionally restricted
// to one process (proc >= 0).
func (e Execution) CritSteps(proc int) Execution {
	var out Execution
	for _, s := range e {
		if s.Kind == KindCrit && (proc < 0 || s.Proc == proc) {
			out = append(out, s)
		}
	}
	return out
}

// EntryOrder returns the processes in the order of their enter steps.
// A process appears once per critical section entry.
func (e Execution) EntryOrder() []int {
	var order []int
	for _, s := range e {
		if s.Kind == KindCrit && s.Crit == CritEnter {
			order = append(order, s.Proc)
		}
	}
	return order
}

// String renders the execution one step per line.
func (e Execution) String() string {
	var b strings.Builder
	for i, s := range e {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Equal reports whether two executions are identical step for step.
func (e Execution) Equal(o Execution) bool {
	if len(e) != len(o) {
		return false
	}
	for i := range e {
		if e[i] != o[i] {
			return false
		}
	}
	return true
}

// Registers is a file of shared multi-reader multi-writer registers.
// The zero value is unusable; create one with NewRegisters.
type Registers struct {
	vals []Value
}

// NewRegisters creates a register file of the given size with the given
// initial values. If init is nil all registers start at zero; otherwise
// len(init) must equal size.
func NewRegisters(size int, init []Value) *Registers {
	r := &Registers{vals: make([]Value, size)}
	if init != nil {
		if len(init) != size {
			panic(fmt.Sprintf("model: NewRegisters: len(init)=%d, size=%d", len(init), size))
		}
		copy(r.vals, init)
	}
	return r
}

// Len returns the number of registers.
//
//repro:hotpath
func (r *Registers) Len() int { return len(r.vals) }

// Read returns the current value of register id.
//
//repro:hotpath
func (r *Registers) Read(id RegID) Value { return r.vals[id] }

// Write sets register id to v.
//
//repro:hotpath
func (r *Registers) Write(id RegID, v Value) { r.vals[id] = v }

// Snapshot returns a copy of all register values.
func (r *Registers) Snapshot() []Value {
	out := make([]Value, len(r.vals))
	copy(out, r.vals)
	return out
}

// Restore overwrites all register values from a snapshot taken with Snapshot.
func (r *Registers) Restore(snap []Value) {
	if len(snap) != len(r.vals) {
		panic(fmt.Sprintf("model: Restore: len(snap)=%d, registers=%d", len(snap), len(r.vals)))
	}
	copy(r.vals, snap)
}

// Clone returns an independent copy of the register file.
//
//repro:hotpath-ok allocates by design; reached from hot copyFrom only on first seeding or a shape change, never steady state
func (r *Registers) Clone() *Registers {
	return &Registers{vals: r.Snapshot()}
}

// CopyFrom overwrites this register file's contents with src's, reusing the
// receiver's storage when the sizes match — the zero-alloc counterpart of
// Clone for lookahead schedulers that re-seed one scratch file per decision.
//
//repro:hotpath
func (r *Registers) CopyFrom(src *Registers) {
	if cap(r.vals) < len(src.vals) {
		r.vals = make([]Value, len(src.vals))
	}
	r.vals = r.vals[:len(src.vals)]
	copy(r.vals, src.vals)
}

// ApplyRMW atomically applies a read-modify-write primitive to register id
// and returns the value the primitive reads (the old value).
//
//repro:hotpath
func (r *Registers) ApplyRMW(id RegID, kind RMWKind, arg1, arg2 Value) Value {
	old := r.vals[id]
	switch kind {
	case RMWTestAndSet:
		r.vals[id] = 1
	case RMWCompareAndSwap:
		if old == arg1 {
			r.vals[id] = arg2
		}
	case RMWFetchAndStore:
		r.vals[id] = arg1
	case RMWFetchAndAdd:
		r.vals[id] = old + arg1
	default:
		panic(badRMWKind(kind))
	}
	return old
}

// badRMWKind formats the unknown-RMW panic message.
//
//repro:hotpath-ok cold panic path: reached only on a corrupt RMWKind, never in a steady-state run
func badRMWKind(kind RMWKind) string {
	return fmt.Sprintf("model: unknown RMW kind %d", kind)
}
