package model_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestStepString(t *testing.T) {
	cases := []struct {
		step model.Step
		want string
	}{
		{model.Step{Proc: 3, Kind: model.KindWrite, Reg: 5, Val: 1}, "write_3(r5,1)"},
		{model.Step{Proc: 0, Kind: model.KindRead, Reg: 2, Val: 9}, "read_0(r2)=9"},
		{model.Step{Proc: 7, Kind: model.KindCrit, Crit: model.CritEnter}, "enter_7"},
		{model.Step{Proc: 1, Kind: model.KindRMW, RMW: model.RMWCompareAndSwap, Reg: 0, Arg1: 2, Arg2: 3, Val: 2}, "CAS_1(r0,2,3)=2"},
	}
	for _, c := range cases {
		if got := c.step.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSameOperation(t *testing.T) {
	r1 := model.Step{Proc: 1, Kind: model.KindRead, Reg: 4, Val: 10}
	r2 := model.Step{Proc: 1, Kind: model.KindRead, Reg: 4, Val: 99}
	if !r1.SameOperation(r2) {
		t.Error("reads with different recorded values are the same operation")
	}
	w1 := model.Step{Proc: 1, Kind: model.KindWrite, Reg: 4, Val: 10}
	w2 := model.Step{Proc: 1, Kind: model.KindWrite, Reg: 4, Val: 11}
	if w1.SameOperation(w2) {
		t.Error("writes with different values are different operations")
	}
	if r1.SameOperation(w1) {
		t.Error("read and write are different operations")
	}
	if w1.SameOperation(model.Step{Proc: 2, Kind: model.KindWrite, Reg: 4, Val: 10}) {
		t.Error("different processes are different operations")
	}
	c1 := model.Step{Proc: 1, Kind: model.KindCrit, Crit: model.CritTry}
	if !c1.SameOperation(model.Step{Proc: 1, Kind: model.KindCrit, Crit: model.CritTry}) {
		t.Error("identical crit steps must match")
	}
	if c1.SameOperation(model.Step{Proc: 1, Kind: model.KindCrit, Crit: model.CritExit}) {
		t.Error("different crit kinds are different operations")
	}
}

func TestExecutionProjectPrefix(t *testing.T) {
	exec := model.Execution{
		{Proc: 0, Kind: model.KindCrit, Crit: model.CritTry},
		{Proc: 1, Kind: model.KindCrit, Crit: model.CritTry},
		{Proc: 0, Kind: model.KindWrite, Reg: 0, Val: 1},
		{Proc: 1, Kind: model.KindRead, Reg: 0, Val: 1},
		{Proc: 0, Kind: model.KindCrit, Crit: model.CritEnter},
	}
	if got := exec.Project(0); len(got) != 3 {
		t.Fatalf("Project(0) has %d steps, want 3", len(got))
	}
	if got := exec.Prefix(2); len(got) != 2 {
		t.Fatalf("Prefix(2) has %d steps, want 2", len(got))
	}
	if got := exec.Prefix(100); len(got) != len(exec) {
		t.Fatalf("over-long prefix has %d steps, want %d", len(got), len(exec))
	}
	if got := exec.EntryOrder(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("EntryOrder = %v, want [0]", got)
	}
	if got := exec.CritSteps(1); len(got) != 1 {
		t.Fatalf("CritSteps(1) = %v", got)
	}
	if got := exec.CritSteps(-1); len(got) != 3 {
		t.Fatalf("CritSteps(-1) has %d, want 3", len(got))
	}
}

func TestExecutionCloneEqual(t *testing.T) {
	exec := model.Execution{{Proc: 0, Kind: model.KindWrite, Reg: 1, Val: 2}}
	cp := exec.Clone()
	if !exec.Equal(cp) {
		t.Fatal("clone not equal")
	}
	cp[0].Val = 3
	if exec.Equal(cp) {
		t.Fatal("clone shares backing array")
	}
	if exec.Equal(exec[:0]) {
		t.Fatal("different lengths must not be equal")
	}
}

func TestRegistersBasics(t *testing.T) {
	r := model.NewRegisters(3, []model.Value{1, 2, 3})
	if r.Len() != 3 || r.Read(1) != 2 {
		t.Fatalf("bad init: %v", r.Snapshot())
	}
	r.Write(1, 9)
	snap := r.Snapshot()
	r.Write(1, 0)
	r.Restore(snap)
	if r.Read(1) != 9 {
		t.Fatal("Restore did not restore")
	}
	c := r.Clone()
	c.Write(0, 100)
	if r.Read(0) == 100 {
		t.Fatal("Clone shares storage")
	}
}

func TestRegistersPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad init length", func() { model.NewRegisters(2, []model.Value{1}) })
	mustPanic("bad restore length", func() { model.NewRegisters(2, nil).Restore([]model.Value{1}) })
}

func TestApplyRMW(t *testing.T) {
	r := model.NewRegisters(1, nil)
	if old := r.ApplyRMW(0, model.RMWTestAndSet, 0, 0); old != 0 || r.Read(0) != 1 {
		t.Fatalf("TAS: old=%d reg=%d", old, r.Read(0))
	}
	if old := r.ApplyRMW(0, model.RMWCompareAndSwap, 1, 5); old != 1 || r.Read(0) != 5 {
		t.Fatalf("CAS success: old=%d reg=%d", old, r.Read(0))
	}
	if old := r.ApplyRMW(0, model.RMWCompareAndSwap, 99, 7); old != 5 || r.Read(0) != 5 {
		t.Fatalf("CAS failure must not write: old=%d reg=%d", old, r.Read(0))
	}
	if old := r.ApplyRMW(0, model.RMWFetchAndStore, 11, 0); old != 5 || r.Read(0) != 11 {
		t.Fatalf("FAS: old=%d reg=%d", old, r.Read(0))
	}
	if old := r.ApplyRMW(0, model.RMWFetchAndAdd, 4, 0); old != 11 || r.Read(0) != 15 {
		t.Fatalf("FAA: old=%d reg=%d", old, r.Read(0))
	}
}

// TestSnapshotRestoreRoundTrip: property — restore(snapshot()) is identity.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	err := quick.Check(func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		r := model.NewRegisters(len(vals), vals)
		snap := r.Snapshot()
		for i := range vals {
			r.Write(model.RegID(i), 0)
		}
		r.Restore(snap)
		for i, v := range vals {
			if r.Read(model.RegID(i)) != v {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, c := range []struct {
		s    interface{ String() string }
		want string
	}{
		{model.KindRead, "R"}, {model.KindWrite, "W"}, {model.KindCrit, "C"}, {model.KindRMW, "RMW"},
		{model.CritTry, "try"}, {model.CritEnter, "enter"}, {model.CritExit, "exit"}, {model.CritRem, "rem"},
		{model.RMWTestAndSet, "TAS"}, {model.RMWCompareAndSwap, "CAS"},
		{model.RMWFetchAndStore, "FAS"}, {model.RMWFetchAndAdd, "FAA"},
	} {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(model.Kind(99).String(), "99") {
		t.Error("unknown kind should include the raw value")
	}
}
