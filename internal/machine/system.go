// Package machine simulates the paper's asynchronous shared-memory system:
// n deterministic process automata, a file of atomic registers, and an
// explicit, pluggable scheduler in the role of the adversary.
//
// Nothing here uses goroutines or real concurrency. The paper's cost models
// are defined over the abstract interleaving model, and measuring them on
// real hardware through the Go runtime scheduler would distort them (cache
// behaviour, preemption and spin loops would be timed, not counted). The
// simulator instead executes one step at a time and records exactly the
// quantities the models charge for.
//
// Concurrency contract for callers that run many simulations in parallel
// (internal/runner): a System, a Replayer, and every Scheduler are
// single-run state and must be private to one job — construct them fresh
// per run (NewSystem, NewReplayer, Spec.New). A program.Factory, by
// contrast, is immutable once built (programs and register layouts are
// shared read-only; NewAutomata and NewRegisters copy what they need), so
// one factory instance may safely serve any number of concurrent runs.
package machine

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Section is a process's current protocol section (Section 3.2 of the paper).
type Section uint8

// Sections of the mutual exclusion protocol.
const (
	SecRemainder Section = iota
	SecTrying
	SecCritical
	SecExit
)

// String names the section.
func (s Section) String() string {
	switch s {
	case SecRemainder:
		return "remainder"
	case SecTrying:
		return "trying"
	case SecCritical:
		return "critical"
	case SecExit:
		return "exit"
	default:
		return fmt.Sprintf("Section(%d)", uint8(s))
	}
}

// System is a running n-process shared-memory system. It executes steps
// chosen by a scheduler, records the execution trace, and tracks per-step
// state changes (the raw material of the state change cost model) and each
// process's protocol section.
type System struct {
	factory  program.Factory
	n        int // factory.N(), cached: N() sits on the hot path and must not make an interface call
	automata []*program.Automaton
	regs     *model.Registers

	trace   model.Execution
	changed []bool // changed[t]: did step t change its process's state?

	section   []Section
	csEntries []int // completed enter steps per process
	csDone    []int // completed rem steps per process
}

// NewSystem creates a system in the initial state s_0 for the factory.
func NewSystem(f program.Factory) *System {
	n := f.N()
	s := &System{
		factory:   f,
		n:         n,
		automata:  program.NewAutomata(f),
		regs:      program.NewRegisters(f),
		section:   make([]Section, n),
		csEntries: make([]int, n),
		csDone:    make([]int, n),
	}
	return s
}

// N returns the number of processes.
//
//repro:hotpath
func (s *System) N() int { return s.n }

// Factory returns the algorithm factory the system runs.
func (s *System) Factory() program.Factory { return s.factory }

// Registers exposes the register file (read-only use expected).
func (s *System) Registers() *model.Registers { return s.regs }

// Automaton returns process i's automaton (read-only use expected).
func (s *System) Automaton(i int) *program.Automaton { return s.automata[i] }

// Halted reports whether process i has halted.
//
//repro:hotpath
func (s *System) Halted(i int) bool { return s.automata[i].Halted() }

// AllHalted reports whether every process has halted.
func (s *System) AllHalted() bool {
	for _, a := range s.automata {
		if !a.Halted() {
			return false
		}
	}
	return true
}

// Section returns process i's current protocol section.
func (s *System) Section(i int) Section { return s.section[i] }

// CSEntries returns how many times process i has entered its critical section.
func (s *System) CSEntries(i int) int { return s.csEntries[i] }

// CSCompleted returns how many times process i has completed a full
// try-enter-exit-rem cycle.
func (s *System) CSCompleted(i int) int { return s.csDone[i] }

// Trace returns the execution so far. The returned slice is owned by the
// system; callers must not modify it.
func (s *System) Trace() model.Execution { return s.trace }

// Changed returns the per-step state-change flags, aligned with Trace.
func (s *System) Changed() []bool { return s.changed }

// PendingStep returns δ applied to process i's current state.
//
//repro:hotpath
func (s *System) PendingStep(i int) model.Step { return s.automata[i].PendingStep() }

// WouldChangeState reports whether process i's pending step would change its
// state if executed now. Writes, RMWs and critical steps always change state
// (they advance the program counter); reads change state according to the
// value currently in the register.
//
//repro:hotpath
func (s *System) WouldChangeState(i int) bool {
	a := s.automata[i]
	step := a.PendingStep()
	switch step.Kind {
	case model.KindRead:
		return a.WouldChangeState(s.regs.Read(step.Reg))
	default:
		return true
	}
}

// Reserve grows the trace and changed arenas to hold at least steps entries
// without reallocating, so a run whose length is bounded (every run: the
// driver always has a horizon) appends into preallocated storage and the
// steady-state Step path allocates nothing. Reserving less than the
// eventual length is safe — append falls back to its usual geometric
// growth — so callers cap the reservation rather than pre-paying a worst
// case horizon that canonical runs never reach.
//
//repro:hotpath
func (s *System) Reserve(steps int) {
	if steps <= cap(s.trace)-len(s.trace) {
		return
	}
	trace := make(model.Execution, len(s.trace), len(s.trace)+steps)
	copy(trace, s.trace)
	s.trace = trace
	changed := make([]bool, len(s.changed), len(s.changed)+steps)
	copy(changed, s.changed)
	s.changed = changed
}

// Step executes process i's pending step, appends it to the trace, and
// returns the executed step (with read results filled in). It returns an
// error if the process is halted or violates well-formedness.
//
//repro:hotpath
func (s *System) Step(i int) (model.Step, error) {
	step, changed, err := s.stepNoRecord(i)
	if err != nil {
		return model.Step{}, err
	}
	s.trace = append(s.trace, step)
	s.changed = append(s.changed, changed)
	return step, nil
}

// stepNoRecord executes process i's pending step without appending to the
// trace arenas, reporting whether the step changed the acting process's
// state (the SC model's per-step charge). It is the allocation-free core of
// Step, and what the greedy adversary's scratch lookahead calls directly —
// a lookahead needs the step and its charge, not a trace it will throw away
// (recording on a clipped copy-on-write clone would reallocate and copy the
// entire shared history on every candidate).
//
//repro:hotpath
func (s *System) stepNoRecord(i int) (model.Step, bool, error) {
	if i < 0 || i >= s.N() {
		return model.Step{}, false, errNoProcess(i)
	}
	a := s.automata[i]
	if a.Halted() {
		return model.Step{}, false, errHalted(i)
	}
	step := a.PendingStep()
	if step.IsShared() && (step.Reg < 0 || int(step.Reg) >= s.regs.Len()) {
		return model.Step{}, false, errRegRange(i, step.Reg, s.regs.Len())
	}
	var changed bool
	switch step.Kind {
	case model.KindRead:
		v := s.regs.Read(step.Reg)
		step.Val = v
		changed = a.FeedChanged(v)
	case model.KindWrite:
		s.regs.Write(step.Reg, step.Val)
		changed = a.FeedChanged(0)
	case model.KindRMW:
		old := s.regs.ApplyRMW(step.Reg, step.RMW, step.Arg1, step.Arg2)
		step.Val = old
		changed = a.FeedChanged(old)
	case model.KindCrit:
		if err := s.applyCrit(i, step.Crit); err != nil {
			return model.Step{}, false, err
		}
		changed = a.FeedChanged(0)
	}
	return step, changed, nil
}

// Cold error constructors for the step path: fmt.Errorf allocates its
// argument pack, so the hot functions above delegate formatting here and
// pay for it only on the error paths that end a run anyway.

//repro:hotpath-ok cold error path: a run that names a missing process is over
func errNoProcess(i int) error { return fmt.Errorf("machine: no process %d", i) }

//repro:hotpath-ok cold error path: stepping a halted process ends the run
func errHalted(i int) error { return fmt.Errorf("machine: process %d is halted", i) }

//repro:hotpath-ok cold error path: an out-of-range register ends the run
func errRegRange(i int, reg model.RegID, size int) error {
	return fmt.Errorf("machine: process %d: register %d out of range [0,%d)", i, reg, size)
}

// critWant maps each critical step kind to the section a process must be in
// to take it — the well-formedness cycle try → enter → exit → rem as a
// static table (a per-step map literal here was the simulator's single
// largest allocation source).
var critWant = [4]Section{
	model.CritTry:   SecRemainder,
	model.CritEnter: SecTrying,
	model.CritExit:  SecCritical,
	model.CritRem:   SecExit,
}

// applyCrit advances process i's protocol section, enforcing the
// well-formedness cycle try → enter → exit → rem.
//
//repro:hotpath
func (s *System) applyCrit(i int, c model.CritKind) error {
	if int(c) >= len(critWant) || s.section[i] != critWant[c] {
		return errBadCrit(i, c, s.section[i])
	}
	switch c {
	case model.CritTry:
		s.section[i] = SecTrying
	case model.CritEnter:
		s.section[i] = SecCritical
		s.csEntries[i]++
	case model.CritExit:
		s.section[i] = SecExit
	case model.CritRem:
		s.section[i] = SecRemainder
		s.csDone[i]++
	}
	return nil
}

//repro:hotpath-ok cold error path: a well-formedness violation ends the run
func errBadCrit(i int, c model.CritKind, sec Section) error {
	return fmt.Errorf("machine: process %d: %s step while in %s section", i, c, sec)
}

// Clone returns an independent copy of the system in its current state.
// Automata, registers, sections and counters are deep-copied; the recorded
// trace and changed flags are shared copy-on-write. The three-index slice
// expressions clip the clone's capacity at its length, so the histories
// stay isolated even though the parent's arena (see Reserve) may extend
// beyond the clip point: the clone's first Step must reallocate into
// private storage, while the parent keeps appending in place past indices
// the clone can never observe. Cloning therefore costs O(n + registers),
// not O(trace); a clone that then Steps pays O(trace) once to privatize
// its history, which is why per-decision lookahead uses the scratch
// copyFrom path instead.
//
//repro:hotpath-ok allocates by design; schedulers clone once per run to seed a scratch, never per decision
func (s *System) Clone() *System {
	automata := make([]*program.Automaton, len(s.automata))
	for i, a := range s.automata {
		automata[i] = a.Clone()
	}
	return &System{
		factory:   s.factory,
		n:         s.n,
		automata:  automata,
		regs:      s.regs.Clone(),
		trace:     s.trace[:len(s.trace):len(s.trace)],
		changed:   s.changed[:len(s.changed):len(s.changed)],
		section:   append([]Section(nil), s.section...),
		csEntries: append([]int(nil), s.csEntries...),
		csDone:    append([]int(nil), s.csDone...),
	}
}

// copyFrom overwrites this system's mutable state with src's, reusing every
// buffer the receiver already owns — the zero-alloc re-seed a lookahead
// scheduler performs on its scratch system before each speculative step.
// The trace arenas are not copied: a scratch system exists to answer "what
// would this step change?", via stepNoRecord, and carries no history. The
// receiver must come from Clone (or copyFrom) of a system with the same
// factory shape; NewGreedyCost maintains exactly one such scratch.
//
//repro:hotpath
func (s *System) copyFrom(src *System) {
	s.factory = src.factory
	s.n = src.n
	if len(s.automata) != len(src.automata) {
		s.automata = make([]*program.Automaton, len(src.automata))
		for i, a := range src.automata {
			s.automata[i] = a.Clone()
		}
	} else {
		for i, a := range src.automata {
			s.automata[i].CopyFrom(a)
		}
	}
	if s.regs == nil {
		s.regs = src.regs.Clone()
	} else {
		s.regs.CopyFrom(src.regs)
	}
	s.trace, s.changed = nil, nil
	s.section = append(s.section[:0], src.section...)
	s.csEntries = append(s.csEntries[:0], src.csEntries...)
	s.csDone = append(s.csDone[:0], src.csDone...)
}

// InCriticalSection returns the process currently in its critical section,
// or -1 if none. Mutual exclusion violations are reported by
// internal/verify; the system itself permits them so that buggy algorithms
// can be executed and diagnosed.
func (s *System) InCriticalSection() int {
	for i, sec := range s.section {
		if sec == SecCritical {
			return i
		}
	}
	return -1
}
