package machine

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/program"
)

// Replayer re-executes a recorded step sequence through fresh automata and
// registers. Because the system is deterministic (Section 3.1), a step
// sequence uniquely determines the system state after it; Replayer is the
// function from step sequences to states.
//
// The construction step uses a Replayer to evaluate δ(α, j): replay α, then
// ask process j's automaton for its pending step. The decoder uses one to
// maintain its growing execution.
type Replayer struct {
	factory  program.Factory
	automata []*program.Automaton
	regs     *model.Registers
	applied  int
	scCost   int // state-changing shared steps so far (Definition 3.1)
}

// NewReplayer creates a replayer in the initial system state.
func NewReplayer(f program.Factory) *Replayer {
	return &Replayer{
		factory:  f,
		automata: program.NewAutomata(f),
		regs:     program.NewRegisters(f),
	}
}

// N returns the number of processes.
func (r *Replayer) N() int { return r.factory.N() }

// Applied returns the number of steps replayed so far.
func (r *Replayer) Applied() int { return r.applied }

// SCCost returns the state change cost (Definition 3.1) of the steps
// replayed so far: the number of shared-memory steps across which the
// acting process's state changed. Critical steps are never charged.
func (r *Replayer) SCCost() int { return r.scCost }

// Registers exposes the current register contents (read-only use expected).
func (r *Replayer) Registers() *model.Registers { return r.regs }

// Automaton returns process i's automaton in its current replayed state
// (read-only use expected; use CloneAutomaton to experiment).
func (r *Replayer) Automaton(i int) *program.Automaton { return r.automata[i] }

// CloneAutomaton returns an independent copy of process i's automaton state.
func (r *Replayer) CloneAutomaton(i int) *program.Automaton { return r.automata[i].Clone() }

// PendingStep returns δ(α, i) where α is the replayed execution so far.
func (r *Replayer) PendingStep(i int) model.Step { return r.automata[i].PendingStep() }

// Halted reports whether process i has halted in the replayed state.
func (r *Replayer) Halted(i int) bool { return r.automata[i].Halted() }

// Apply executes one recorded step. The step must match the acting
// process's pending step (same operation on the same register); otherwise
// the recorded sequence is not an execution of this algorithm and an error
// is returned. The executed step, with the read result filled in, is
// returned.
func (r *Replayer) Apply(step model.Step) (model.Step, error) {
	if step.Proc < 0 || step.Proc >= len(r.automata) {
		return model.Step{}, fmt.Errorf("machine: replay: no process %d", step.Proc)
	}
	a := r.automata[step.Proc]
	if a.Halted() {
		return model.Step{}, fmt.Errorf("machine: replay: step %v by halted process", step)
	}
	pending := a.PendingStep()
	if !pending.SameOperation(step) {
		return model.Step{}, fmt.Errorf("machine: replay: recorded step %v does not match pending step %v", step, pending)
	}
	if pending.IsShared() && (pending.Reg < 0 || int(pending.Reg) >= r.regs.Len()) {
		return model.Step{}, fmt.Errorf("machine: replay: register %d out of range [0,%d)", pending.Reg, r.regs.Len())
	}
	var changed bool
	switch pending.Kind {
	case model.KindRead:
		v := r.regs.Read(pending.Reg)
		pending.Val = v
		changed = a.FeedChanged(v)
	case model.KindWrite:
		r.regs.Write(pending.Reg, pending.Val)
		changed = a.FeedChanged(0)
	case model.KindRMW:
		old := r.regs.ApplyRMW(pending.Reg, pending.RMW, pending.Arg1, pending.Arg2)
		pending.Val = old
		changed = a.FeedChanged(old)
	case model.KindCrit:
		changed = a.FeedChanged(0)
	}
	if pending.IsShared() && changed {
		r.scCost++
	}
	r.applied++
	return pending, nil
}

// ApplyAll replays a whole execution, returning the executed steps with
// read results filled in.
func (r *Replayer) ApplyAll(exec model.Execution) (model.Execution, error) {
	out := make(model.Execution, 0, len(exec))
	for t, s := range exec {
		done, err := r.Apply(s)
		if err != nil {
			return out, fmt.Errorf("machine: replay at step %d: %w", t, err)
		}
		out = append(out, done)
	}
	return out, nil
}

// ReplayExecution replays exec from the initial state and returns the
// executed steps (with read values) and the SC cost of the execution.
func ReplayExecution(f program.Factory, exec model.Execution) (model.Execution, int, error) {
	r := NewReplayer(f)
	out, err := r.ApplyAll(exec)
	if err != nil {
		return out, r.SCCost(), err
	}
	return out, r.SCCost(), nil
}

// DefaultHorizon returns a generous step budget for canonical executions of
// an n-process algorithm under a fair scheduler: enough for quadratic-cost
// algorithms with spinning, while still terminating promptly on livelock.
func DefaultHorizon(n int) int {
	h := 2000 + 600*n*n
	return h
}

// RunCanonical runs the factory under the scheduler until every process has
// completed one full critical-section cycle and halted. It is the paper's
// canonical execution driver: "n different processes, each of which enters
// the critical section exactly once."
func RunCanonical(f program.Factory, sched Scheduler, maxSteps int) (model.Execution, error) {
	exec, _, err := RunCanonicalChanged(f, sched, maxSteps)
	return exec, err
}

// RunCanonicalChanged is RunCanonical plus the system's per-step changed
// flags (one bool per executed step, true when the step wrote a new value
// into its register). Trace capture persists the flags beside the step log
// so a later replay can verify the run's cost accounting bit for bit.
func RunCanonicalChanged(f program.Factory, sched Scheduler, maxSteps int) (model.Execution, []bool, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultHorizon(f.N())
	}
	s := NewSystem(f)
	trace, err := Run(s, sched, maxSteps)
	if err != nil {
		return trace, s.Changed(), err
	}
	for i := 0; i < f.N(); i++ {
		if got := s.CSCompleted(i); got != 1 {
			return trace, s.Changed(), fmt.Errorf("machine: canonical run: process %d completed %d critical sections, want 1", i, got)
		}
	}
	return trace, s.Changed(), nil
}
