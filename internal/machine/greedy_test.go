package machine_test

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/mutex"
)

func TestSystemCloneIsIndependent(t *testing.T) {
	f, err := mutex.YangAnderson(4)
	if err != nil {
		t.Fatal(err)
	}
	s := machine.NewSystem(f)
	for i := 0; i < 6; i++ {
		if _, err := s.Step(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Clone()
	wantLen := len(s.Trace())

	// Stepping the clone must not disturb the original's trace, registers,
	// or automata — and vice versa.
	if _, err := c.Step(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(1); err != nil {
		t.Fatal(err)
	}
	if len(s.Trace()) != wantLen || len(s.Changed()) != wantLen {
		t.Fatalf("cloned steps leaked into the original trace: len=%d want %d", len(s.Trace()), wantLen)
	}
	if _, err := s.Step(2); err != nil {
		t.Fatal(err)
	}
	if len(c.Trace()) != wantLen+2 {
		t.Fatalf("original steps leaked into the clone trace: len=%d want %d", len(c.Trace()), wantLen+2)
	}
	for i := 0; i < wantLen; i++ {
		if s.Trace()[i] != c.Trace()[i] {
			t.Fatalf("shared history diverged at step %d", i)
		}
	}

	if s.N() != c.N() || s.Factory().Name() != c.Factory().Name() {
		t.Fatal("clone lost identity")
	}
}

func TestGreedyCostCompletesCanonically(t *testing.T) {
	for _, name := range []string{"yang-anderson", "bakery", "peterson"} {
		f, err := mutex.New(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := machine.RunCanonical(f, machine.NewGreedyCost(), 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(exec.EntryOrder()); got != 5 {
			t.Fatalf("%s: %d entries, want 5", name, got)
		}
	}
}

func TestGreedyCostIsDeterministic(t *testing.T) {
	f, err := mutex.YangAnderson(6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := machine.RunCanonical(f, machine.NewGreedyCost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.RunCanonical(f, machine.NewGreedyCost(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("two greedy-cost runs diverged")
	}
}

func TestPrefixGreedyFollowsPrefixThenCompletes(t *testing.T) {
	f, err := mutex.Bakery(4)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{3, 3, 0, 1, 2, 0}
	s := machine.NewSystem(f)
	exec, err := machine.Run(s, machine.NewPrefixGreedy(prefix), machine.DefaultHorizon(4))
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllHalted() {
		t.Fatal("prefix-greedy did not complete")
	}
	// No process halts within the first len(prefix) steps of a bakery run,
	// so the prefix must appear verbatim at the head of the schedule.
	for i, want := range prefix {
		if exec[i].Proc != want {
			t.Fatalf("decision %d scheduled process %d, want %d", i, exec[i].Proc, want)
		}
	}
}

func TestPrefixGreedySkipsHaltedEntries(t *testing.T) {
	f, err := mutex.YangAnderson(3)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range and (eventually) halted entries must be skipped, not
	// scheduled; the tail completes the run.
	prefix := []int{-1, 7, 0, 0, 0, 1}
	if _, err := machine.RunCanonical(f, machine.NewPrefixGreedy(prefix), 0); err != nil {
		t.Fatal(err)
	}
}

// stallAt is a test scheduler that gives up after k decisions.
type stallAt struct {
	k    int
	next int
}

func (s *stallAt) Name() string { return "stall-at" }
func (s *stallAt) Next(sys *machine.System) int {
	if s.next >= s.k {
		return -1
	}
	n := sys.N()
	for i := 0; i < n; i++ {
		p := (s.next + i) % n
		if !sys.Halted(p) {
			s.next++
			return p
		}
	}
	return -1
}

func TestRunReturnsErrStalled(t *testing.T) {
	f, err := mutex.Bakery(3)
	if err != nil {
		t.Fatal(err)
	}
	s := machine.NewSystem(f)
	trace, err := machine.Run(s, &stallAt{k: 5}, 1000)
	var st machine.ErrStalled
	if !errors.As(err, &st) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	if st.Steps != 5 || len(trace) != 5 {
		t.Fatalf("stall at %d steps (trace %d), want 5", st.Steps, len(trace))
	}
	if st.Live != 3 {
		t.Fatalf("stall with %d live processes, want 3", st.Live)
	}
	if st.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestRandomNextSteadyStateAllocFree(t *testing.T) {
	f, err := mutex.YangAnderson(16)
	if err != nil {
		t.Fatal(err)
	}
	s := machine.NewSystem(f)
	sched := machine.NewRandom(7)
	sched.Next(s) // warm the scratch buffer
	allocs := testing.AllocsPerRun(200, func() {
		if sched.Next(s) < 0 {
			t.Fatal("no live process")
		}
	})
	if allocs != 0 {
		t.Fatalf("Random.Next allocates %.1f objects per decision in steady state, want 0", allocs)
	}
}
