package machine_test

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/program"
	"repro/internal/rmw"
)

// rmwChurnFactory builds an n-process never-halting workload whose loop
// includes an RMW step alongside crit, write and read steps, so the alloc
// guards cover every step kind System.Step can execute.
func rmwChurnFactory(tb testing.TB, n int) program.Factory {
	tb.Helper()
	layout := mutex.NewLayout()
	lock := layout.Reg("lock", 0, -1)
	flags := make([]model.RegID, n)
	for i := range flags {
		flags[i] = layout.Reg(fmt.Sprintf("F[%d]", i), 0, i)
	}
	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("rmw-churn/%d", i))
		x := b.Var("x")
		b.Label("loop")
		b.Try()
		b.Enter()
		b.Exit()
		b.Rem()
		b.RMW(model.RMWFetchAndAdd, lock, program.Const(1), program.Const(0), x)
		b.Write(flags[i], x)
		b.Read(flags[(i+1)%n], x)
		b.Goto("loop")
		p, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		progs[i] = p
	}
	return mutex.NewFactory("rmw-churn", layout, progs)
}

// stepAllocs measures steady-state allocations per System.Step over a
// never-halting workload with a pre-reserved trace arena.
func stepAllocs(t *testing.T, f program.Factory, runs int) float64 {
	t.Helper()
	s := machine.NewSystem(f)
	s.Reserve(runs + 8*f.N() + 2)
	for w := 0; w < 4*f.N(); w++ { // warm-up: every process past its first lap
		if _, err := s.Step(w % f.N()); err != nil {
			t.Fatal(err)
		}
	}
	step := 0
	return testing.AllocsPerRun(runs, func() {
		if _, err := s.Step(step % f.N()); err != nil {
			t.Fatal(err)
		}
		step++
	})
}

// TestStepZeroAlloc is the regression guard for the flattened hot loop: a
// steady-state System.Step — across read, write, RMW and critical step
// kinds, with the trace arena reserved — must not allocate. The per-step
// map literal the old applyCrit built and the two StateKey strings the old
// Step built would each trip this.
func TestStepZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    program.Factory
	}{
		{"read-write-crit", churnFactory(t, 4)},
		{"rmw", rmwChurnFactory(t, 4)},
	} {
		if got := stepAllocs(t, tc.f, 200); got != 0 {
			t.Errorf("%s: %.1f allocs per steady-state Step, want 0", tc.name, got)
		}
	}
}

// TestStepZeroAllocSpin covers the free-read shape: spinning reads that do
// not change the spinner's state (the most common step in adversarial
// schedules) must also be allocation-free.
func TestStepZeroAllocSpin(t *testing.T) {
	const runs = 200
	s := machine.NewSystem(spinFactory(t, 4))
	s.Reserve(runs + 16)
	for i := 1; i < 4; i++ { // park every spinner on its read
		if _, err := s.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	step := 0
	got := testing.AllocsPerRun(runs, func() {
		if _, err := s.Step(1 + step%3); err != nil {
			t.Fatal(err)
		}
		step++
	})
	if got != 0 {
		t.Errorf("%.1f allocs per steady-state spin Step, want 0", got)
	}
}

// TestGreedyNextZeroAlloc guards the scratch-clone lookahead: after the
// first decision (which allocates the scratch system and age table), a full
// greedy decision — n candidate lookaheads, each scored against every other
// process's pending read — must not allocate.
func TestGreedyNextZeroAlloc(t *testing.T) {
	const runs = 50
	s := machine.NewSystem(spinFactory(t, 4))
	s.Reserve(runs + 64)
	g := machine.NewGreedyCost()
	for w := 0; w < 16; w++ { // warm-up: scratch system + age table exist
		i := g.Next(s)
		if i < 0 {
			t.Fatal("no live process")
		}
		if _, err := s.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(runs, func() {
		if i := g.Next(s); i < 0 {
			t.Fatal("no live process")
		}
	})
	if got != 0 {
		t.Errorf("%.1f allocs per warm GreedyCost.Next, want 0", got)
	}
}

// TestRandomNextZeroAlloc extends the PR 2 Random.Next fix into a guard at
// the System level: a scheduling decision over live processes reuses the
// scratch buffer.
func TestRandomNextZeroAlloc(t *testing.T) {
	s := machine.NewSystem(churnFactory(t, 8))
	r := machine.NewRandom(1)
	r.Next(s) // allocate the scratch buffer
	if got := testing.AllocsPerRun(100, func() { r.Next(s) }); got != 0 {
		t.Errorf("%.1f allocs per Random.Next, want 0", got)
	}
}

// TestRMWStepZeroAllocRealAlgo runs the guard over a registry RMW algorithm
// (test-and-set) rather than a synthetic loop, covering the spin-on-RMW
// shape those algorithms execute.
func TestRMWStepZeroAllocRealAlgo(t *testing.T) {
	f, err := rmw.TestAndSet(3)
	if err != nil {
		t.Fatal(err)
	}
	s := machine.NewSystem(f)
	s.Reserve(512)
	// Let process 0 take the lock; processes 1..2 then spin on TAS failing.
	for _, i := range []int{0, 0, 0} {
		if _, err := s.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	step := 0
	got := testing.AllocsPerRun(100, func() {
		if _, err := s.Step(1 + step%2); err != nil {
			t.Fatal(err)
		}
		step++
	})
	if got != 0 {
		t.Errorf("%.1f allocs per spinning TAS Step, want 0", got)
	}
}

// TestReserveIsIdempotentAndGrows pins Reserve's contract: reserving less
// than the remaining capacity is a no-op, reserving more grows without
// losing history, and stepping within the reservation never reallocates the
// trace (checked via the Trace slice's backing identity).
func TestReserveIsIdempotentAndGrows(t *testing.T) {
	s := machine.NewSystem(churnFactory(t, 4))
	for i := 0; i < 8; i++ {
		if _, err := s.Step(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	prefix := s.Trace().Clone()
	s.Reserve(1000)
	if got := s.Trace(); !got.Equal(prefix) {
		t.Fatalf("Reserve lost history: %v != %v", got, prefix)
	}
	before := &s.Trace()[0]
	s.Reserve(10) // no-op: capacity already covers it
	for i := 0; i < 1000; i++ {
		if _, err := s.Step(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	if &s.Trace()[0] != before {
		t.Fatal("stepping within a reservation reallocated the trace arena")
	}
	if !s.Trace().Prefix(len(prefix)).Equal(prefix) {
		t.Fatal("arena growth corrupted the recorded prefix")
	}
}

// TestCloneIsolationWithArena re-verifies the copy-on-write contract under
// the arena design: the parent keeps appending in place into its reserved
// arena while the clone's first Step privatizes its clipped history — and
// neither ever observes the other's subsequent steps.
func TestCloneIsolationWithArena(t *testing.T) {
	s := machine.NewSystem(churnFactory(t, 4))
	s.Reserve(256)
	for i := 0; i < 8; i++ {
		if _, err := s.Step(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Trace().Clone()
	c := s.Clone()
	parentArena := &s.Trace()[0]

	// Diverge: parent steps process 0, clone steps process 1.
	if _, err := s.Step(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(1); err != nil {
		t.Fatal(err)
	}
	if &s.Trace()[0] != parentArena {
		t.Fatal("parent's append within its arena should not reallocate")
	}
	if !s.Trace().Prefix(8).Equal(snap) || !c.Trace().Prefix(8).Equal(snap) {
		t.Fatal("shared history prefix corrupted after divergence")
	}
	if s.Trace()[8].Proc != 0 || c.Trace()[8].Proc != 1 {
		t.Fatalf("divergent steps leaked: parent[8]=%v clone[8]=%v", s.Trace()[8], c.Trace()[8])
	}
	if len(c.Changed()) != 9 || len(s.Changed()) != 9 {
		t.Fatalf("changed flags misaligned: parent=%d clone=%d", len(s.Changed()), len(c.Changed()))
	}
}
