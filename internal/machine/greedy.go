package machine

import "fmt"

// GreedyCost is a cost-maximizing adversary: at every decision it performs a
// one-step lookahead for each live process on a cloned System and schedules
// the process whose step maximizes incremental SC cost. The lookahead scores
// two effects of executing a step now:
//
//   - the immediate charge: whether the step itself is a state-changing
//     shared step (Definition 3.1 charges exactly those);
//   - the induced charges: how many *other* processes' pending reads flip
//     from free to charged (a write that wakes spinners plants that many
//     future charges) minus how many flip from charged to free (silencing
//     rivals forfeits cost the adversary had already provoked).
//
// Immediate charges are certain while induced ones are speculative, so the
// immediate term is weighted double. Ties rotate through a cursor so that a
// zero-score standoff (everyone spinning freely) still cycles through the
// live processes.
//
// Pure cost greed can livelock: for a non-local-spin algorithm (Peterson's
// tournament spins across two registers, so every spin read is charged) the
// spinners outscore the process sitting at its free enter step forever, and
// the canonical run never completes. Greed is therefore bounded by a
// starvation patience: a live process left unscheduled for 3n consecutive
// decisions is scheduled unconditionally. The schedule stays maximally
// expensive — spinners still absorb ~3n charged steps per forced decision —
// while every deadlock-free algorithm completes its canonical run, so the
// scheduler is usable both as a fixed tournament policy and as the
// completion tail of search candidates.
type GreedyCost struct {
	rr  int   // rotating tie-break cursor
	age []int // decisions since each process was last scheduled

	// scratch is the reusable lookahead system: score re-seeds it from the
	// live system (System.copyFrom) and steps it without trace recording,
	// so one decision costs zero allocations instead of n full clones each
	// of which would privatize the whole recorded trace on its first step.
	scratch *System
}

// NewGreedyCost returns a greedy cost-maximizing scheduler.
func NewGreedyCost() *GreedyCost { return &GreedyCost{} }

// Name implements Scheduler.
func (g *GreedyCost) Name() string { return "greedy-cost" }

// Next implements Scheduler.
func (g *GreedyCost) Next(s *System) int {
	n := s.N()
	if g.age == nil {
		g.age = make([]int, n)
	}
	if g.scratch == nil {
		// Seed the reusable lookahead system here, outside the per-candidate
		// hot loop: score stays allocation-free on every call.
		g.scratch = s.Clone()
	}
	best, bestScore := -1, minScore
	patience := 3 * n
	for k := 0; k < n; k++ {
		i := (g.rr + k) % n
		if s.Halted(i) {
			continue
		}
		if g.age[i] >= patience {
			// Starvation bound: the schedule charged everything it could
			// out of delaying this process; let it take one step.
			best = i
			break
		}
		if sc := g.score(s, i); sc > bestScore {
			best, bestScore = i, sc
		}
	}
	if best >= 0 {
		g.rr = (best + 1) % n
		for i := range g.age {
			g.age[i]++
		}
		g.age[best] = 0
	}
	return best
}

// minScore is below any reachable score, so even a process whose lookahead
// step errors is scheduled when it is the only live one (letting Run surface
// the error instead of reporting a stall).
const minScore = -1 << 30

// score executes process i's pending step on the reusable scratch system
// and counts the immediate SC charge plus the net induced charges on the
// other processes' pending reads. The scratch is re-seeded from s before
// every candidate, so the speculative step never touches the live system.
// Next seeds the scratch before its candidate loop, so score never clones.
//
//repro:hotpath
func (g *GreedyCost) score(s *System, i int) int {
	g.scratch.copyFrom(s)
	step, changed, err := g.scratch.stepNoRecord(i)
	if err != nil {
		return minScore + 1
	}
	score := 0
	if step.IsShared() && changed {
		score += 2
	}
	for j := 0; j < s.N(); j++ {
		if j == i || s.Halted(j) || g.scratch.Halted(j) {
			continue
		}
		// Only pending reads can flip: WouldChangeState is constant (true)
		// for writes, RMWs and critical steps, contributing nothing here.
		before, after := s.WouldChangeState(j), g.scratch.WouldChangeState(j)
		switch {
		case after && !before:
			score++
		case before && !after:
			score--
		}
	}
	return score
}

// PrefixGreedy replays an explicit decision prefix — the genome of the
// schedule-search candidates in internal/adversary — and then hands over to
// a fresh GreedyCost completion so every candidate runs to a full canonical
// execution. Prefix entries naming halted (or out-of-range) processes are
// skipped rather than scheduled, which keeps every prefix over [0,n)
// well-formed for every algorithm: mutations can edit entries freely without
// producing invalid schedules.
type PrefixGreedy struct {
	prefix []int
	pos    int
	tail   *GreedyCost
}

// NewPrefixGreedy returns a scheduler that follows the decision prefix and
// completes with greedy cost maximization.
func NewPrefixGreedy(prefix []int) *PrefixGreedy {
	cp := make([]int, len(prefix))
	copy(cp, prefix)
	return &PrefixGreedy{prefix: cp, tail: NewGreedyCost()}
}

// Name implements Scheduler.
func (p *PrefixGreedy) Name() string { return fmt.Sprintf("prefix-greedy(%d)", len(p.prefix)) }

// Next implements Scheduler.
func (p *PrefixGreedy) Next(s *System) int {
	for p.pos < len(p.prefix) {
		i := p.prefix[p.pos]
		p.pos++
		if i >= 0 && i < s.N() && !s.Halted(i) {
			return i
		}
	}
	return p.tail.Next(s)
}
