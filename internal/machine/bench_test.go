package machine_test

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/program"
)

// benchNs are the process counts the simulator benchmarks sweep, mirroring
// the experiment grid's small/medium/large cells. Tracked in BENCH_sim.json
// via scripts/bench_sim.sh.
var benchNs = []int{4, 16, 64}

// churnFactory builds an n-process algorithm whose processes never halt:
// each loops forever through try/enter/exit/rem, a write to its own flag, a
// read of its neighbour's flag, and a clearing write. Every step kind the
// simulator executes (crit, write, read) recurs every iteration, so stepping
// cost can be measured in steady state without re-creating systems
// mid-benchmark (a canonical run would halt and pollute ns/step with setup).
func churnFactory(tb testing.TB, n int) program.Factory {
	tb.Helper()
	layout := mutex.NewLayout()
	flags := make([]model.RegID, n)
	for i := range flags {
		flags[i] = layout.Reg(fmt.Sprintf("F[%d]", i), 0, i)
	}
	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("churn/%d", i))
		x := b.Var("x")
		b.Label("loop")
		b.Try()
		b.Enter()
		b.Exit()
		b.Rem()
		b.Write(flags[i], program.Const(1))
		b.Read(flags[(i+1)%n], x)
		b.Write(flags[i], program.Const(0))
		b.Goto("loop")
		p, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		progs[i] = p
	}
	return mutex.NewFactory("churn", layout, progs)
}

// spinFactory builds an n-process algorithm where process 0 cycles its
// critical section forever while everyone else spins on a register process 0
// never writes: from the second lap on, every spinner read is a free
// (non-state-changing) step — the SC model's hot case and the one the
// greedy adversary scores against.
func spinFactory(tb testing.TB, n int) program.Factory {
	tb.Helper()
	layout := mutex.NewLayout()
	gate := layout.Reg("gate", 0, -1)
	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("spin/%d", i))
		if i == 0 {
			b.Label("loop")
			b.Try()
			b.Enter()
			b.Exit()
			b.Rem()
			b.Goto("loop")
		} else {
			x := b.Var("x")
			b.Try()
			b.Spin(gate, x, program.Ne(x, program.Const(0)))
			b.Enter()
			b.Exit()
			b.Rem()
			b.Halt()
		}
		p, err := b.Build()
		if err != nil {
			tb.Fatal(err)
		}
		progs[i] = p
	}
	return mutex.NewFactory("spin", layout, progs)
}

// BenchmarkSystemStep is the simulator's innermost loop: one System.Step per
// iteration on a never-halting mixed workload (crit, write and read steps in
// a fixed rotation). ns/op is ns/step; allocs/op is the steady-state
// allocation cost of stepping, which the trace arenas and the Feed-delta
// state-change path are expected to hold at zero.
func BenchmarkSystemStep(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := machine.NewSystem(churnFactory(b, n))
			s.Reserve(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for t := 0; t < b.N; t++ {
				if _, err := s.Step(t % n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemStepSpin is the free-read variant: after a warm-up lap,
// every measured step is a spinning read that does not change the spinner's
// state — the single most-executed step shape in adversarial schedules.
func BenchmarkSystemStepSpin(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := machine.NewSystem(spinFactory(b, n))
			s.Reserve(b.N + n)
			for i := 1; i < n; i++ { // park every spinner on its read
				if _, err := s.Step(i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for t := 0; t < b.N; t++ {
				if _, err := s.Step(1 + t%(n-1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemClone measures the per-candidate cost the greedy
// 1-step-lookahead adversary paid per decision before the scratch-clone
// path: a full deep copy of automata, registers and section state on a
// system that has already recorded a prefix of trace.
func BenchmarkSystemClone(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := machine.NewSystem(churnFactory(b, n))
			for t := 0; t < 64*n; t++ {
				if _, err := s.Step(t % n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for t := 0; t < b.N; t++ {
				if c := s.Clone(); c == nil {
					b.Fatal("nil clone")
				}
			}
		})
	}
}

// BenchmarkGreedyNext is one full greedy-adversary decision: an n-way
// lookahead, each candidate simulated one step ahead and scored against
// every other process's pending read. This is the per-decision cost of the
// tournament's most expensive fixed policy and of every search candidate's
// completion tail.
func BenchmarkGreedyNext(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := machine.NewSystem(spinFactory(b, n))
			s.Reserve(b.N + 8*n)
			g := machine.NewGreedyCost()
			for t := 0; t < 4*n; t++ { // warm up: arms spinners and scratch state
				i := g.Next(s)
				if i < 0 {
					b.Fatal("no live process")
				}
				if _, err := s.Step(i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for t := 0; t < b.N; t++ {
				i := g.Next(s)
				if i < 0 {
					b.Fatal("no live process")
				}
				if _, err := s.Step(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCanonicalRun is the end-to-end unit the fleet executes billions
// of times: a full canonical run (every process completes one critical
// section) of the paper's O(n lg n) algorithm under round-robin.
func BenchmarkCanonicalRun(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f, err := mutex.YangAnderson(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for t := 0; t < b.N; t++ {
				if _, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
