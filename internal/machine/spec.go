package machine

import "fmt"

// Spec is a value-type scheduler specification: which policy, and the
// parameters (seed, delay, solo order) that pin its behaviour. It exists so
// that jobs executed on a worker pool can be described by value and each
// can construct its own fresh Scheduler.
//
// Schedulers are stateful (RoundRobin's cursor, Random's rng, HoldCS's hold
// counter) and must never be shared across concurrent runs: two systems
// stepping one seeded Random would each see an unpredictable interleaving
// of its stream and reproducibility would be lost. A Spec is immutable and
// freely copyable; New is the only way state comes into existence, so a
// Spec handed to n jobs yields n independent schedulers that each replay
// the identical decision sequence.
type Spec struct {
	// Kind names the policy: "round-robin", "random", "progress-first",
	// "solo", "hold-cs", "greedy-cost", or "prefix-greedy".
	Kind string
	// Seed drives the "random" policy.
	Seed int64
	// Delay parameterizes the "hold-cs" adversary.
	Delay int
	// Order is the "solo" policy's process order.
	Order []int
	// Prefix is the "prefix-greedy" policy's decision prefix — the value
	// the adversary search mutates.
	Prefix []int
}

// Spec constructors for each policy.

// RoundRobinSpec describes the fair cyclic scheduler.
func RoundRobinSpec() Spec { return Spec{Kind: "round-robin"} }

// RandomSpec describes the seeded uniform scheduler.
func RandomSpec(seed int64) Spec { return Spec{Kind: "random", Seed: seed} }

// ProgressFirstSpec describes the state-change-preferring scheduler.
func ProgressFirstSpec() Spec { return Spec{Kind: "progress-first"} }

// SoloSpec describes the contention-free one-at-a-time scheduler.
func SoloSpec(order []int) Spec {
	cp := make([]int, len(order))
	copy(cp, order)
	return Spec{Kind: "solo", Order: cp}
}

// HoldCSSpec describes the critical-section-starving adversary.
func HoldCSSpec(delay int) Spec { return Spec{Kind: "hold-cs", Delay: delay} }

// GreedyCostSpec describes the cost-maximizing lookahead adversary.
func GreedyCostSpec() Spec { return Spec{Kind: "greedy-cost"} }

// PrefixGreedySpec describes a schedule-search candidate: an explicit
// decision prefix followed by a greedy cost-maximizing completion.
func PrefixGreedySpec(prefix []int) Spec {
	cp := make([]int, len(prefix))
	copy(cp, prefix)
	return Spec{Kind: "prefix-greedy", Prefix: cp}
}

// NamedSpec builds the Spec a CLI scheduler name denotes, with the
// conventional parameterization every binary shares: seed drives "random",
// n fills in "solo"'s identity order and "hold-cs"'s delay. It is the one
// name→spec mapping in the repository — cmd/mutexsim, cmd/experimentd and
// repro.NewSchedulerByName all resolve through it, so a scheduler name
// means the same execution on every transport.
func NamedSpec(name string, n int, seed int64) (Spec, error) {
	switch name {
	case "round-robin":
		return RoundRobinSpec(), nil
	case "random":
		return RandomSpec(seed), nil
	case "solo":
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return SoloSpec(order), nil
	case "progress-first":
		return ProgressFirstSpec(), nil
	case "hold-cs":
		return HoldCSSpec(n), nil
	case "greedy-cost":
		return GreedyCostSpec(), nil
	default:
		return Spec{}, fmt.Errorf("unknown scheduler %q (known: round-robin, random, solo, progress-first, hold-cs, greedy-cost)", name)
	}
}

// New constructs a fresh Scheduler for this spec. Every call returns an
// independent instance with its own private state.
func (sp Spec) New() (Scheduler, error) {
	switch sp.Kind {
	case "round-robin":
		return NewRoundRobin(), nil
	case "random":
		return NewRandom(sp.Seed), nil
	case "progress-first":
		return NewProgressFirst(), nil
	case "solo":
		return NewSolo(sp.Order), nil
	case "hold-cs":
		return NewHoldCS(sp.Delay), nil
	case "greedy-cost":
		return NewGreedyCost(), nil
	case "prefix-greedy":
		return NewPrefixGreedy(sp.Prefix), nil
	default:
		return nil, fmt.Errorf("machine: unknown scheduler spec %q", sp.Kind)
	}
}

// String returns the policy name (matching the constructed Scheduler's
// Name for the stateless policies).
func (sp Spec) String() string { return sp.Kind }

// Canon returns the hashing-canonical form of the spec: every field the
// policy does not consult is zeroed, and the slice fields are normalized to
// non-nil copies. Two specs that construct behaviourally identical
// schedulers therefore serialize to identical bytes, which is what lets the
// content-addressed result store (internal/store) treat a re-proposed
// duplicate — a RandomSpec built with an incidental Delay, the same search
// genome re-derived in a later round — as the same key instead of a fresh
// simulation. Unknown kinds pass through unchanged (they fail at New, not
// at hashing).
func (sp Spec) Canon() Spec {
	c := Spec{Kind: sp.Kind, Order: []int{}, Prefix: []int{}}
	switch sp.Kind {
	case "random":
		c.Seed = sp.Seed
	case "hold-cs":
		c.Delay = sp.Delay
	case "solo":
		c.Order = append([]int{}, sp.Order...)
	case "prefix-greedy":
		c.Prefix = append([]int{}, sp.Prefix...)
	case "round-robin", "progress-first", "greedy-cost":
		// Stateless parameterization: nothing to keep.
	default:
		c = sp
	}
	return c
}
