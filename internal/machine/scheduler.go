package machine

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Scheduler is the adversary: it chooses which process takes the next step.
// Next returns a process index, or -1 when no process should (or can) be
// scheduled, which ends the run.
type Scheduler interface {
	// Name identifies the scheduling policy for reports.
	Name() string
	// Next picks the next process to step in the given system.
	Next(s *System) int
}

// RoundRobin cycles through processes in index order, skipping halted ones.
// It is a fair scheduler: every live process is scheduled infinitely often.
// Spinning processes keep getting scheduled, so raw access counts grow even
// while SC cost does not — the contrast measured by experiment E8.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler starting at process 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Next implements Scheduler.
func (r *RoundRobin) Next(s *System) int {
	n := s.N()
	for k := 0; k < n; k++ {
		i := (r.next + k) % n
		if !s.Halted(i) {
			r.next = (i + 1) % n
			return i
		}
	}
	return -1
}

// Random schedules a uniformly random live process using a seeded source,
// so runs are reproducible. Random scheduling is fair with probability 1;
// the driver's step horizon bounds the experiment regardless.
type Random struct {
	rng     *rand.Rand
	scratch []int // reusable live-process buffer; Next is on every sweep's hot path
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// Next implements Scheduler.
func (r *Random) Next(s *System) int {
	if cap(r.scratch) < s.N() {
		r.scratch = make([]int, 0, s.N())
	}
	live := r.scratch[:0]
	for i := 0; i < s.N(); i++ {
		if !s.Halted(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[r.rng.Intn(len(live))]
}

// Solo runs processes one at a time in a fixed order: the first process runs
// until it halts, then the second, and so on. With a mutex algorithm this
// produces a contention-free canonical execution in which critical sections
// are entered in exactly the given order — the sequential baseline the
// construction of Section 5 perturbs.
type Solo struct {
	order []int
	pos   int
}

// NewSolo returns a solo scheduler; order must be a permutation of 0..n-1.
func NewSolo(order []int) *Solo {
	cp := make([]int, len(order))
	copy(cp, order)
	return &Solo{order: cp}
}

// Name implements Scheduler.
func (s *Solo) Name() string { return "solo" }

// Next implements Scheduler.
func (s *Solo) Next(sys *System) int {
	for s.pos < len(s.order) {
		i := s.order[s.pos]
		if !sys.Halted(i) {
			return i
		}
		s.pos++
	}
	return -1
}

// ProgressFirst prefers processes whose next step would change their state,
// breaking ties round-robin. It models a "polite" cache-coherent machine
// where spinning on an unchanged value consumes no shared-memory bandwidth:
// under ProgressFirst, SC cost ≈ steps taken. If no process would change
// state, it schedules the first live process anyway (so that genuine
// deadlocks surface as horizon exhaustion rather than an empty schedule).
type ProgressFirst struct {
	next int
}

// NewProgressFirst returns a progress-first scheduler.
func NewProgressFirst() *ProgressFirst { return &ProgressFirst{} }

// Name implements Scheduler.
func (p *ProgressFirst) Name() string { return "progress-first" }

// Next implements Scheduler.
func (p *ProgressFirst) Next(s *System) int {
	n := s.N()
	fallback := -1
	for k := 0; k < n; k++ {
		i := (p.next + k) % n
		if s.Halted(i) {
			continue
		}
		if fallback < 0 {
			fallback = i
		}
		if s.WouldChangeState(i) {
			p.next = (i + 1) % n
			return i
		}
	}
	if fallback >= 0 {
		p.next = (fallback + 1) % n
	}
	return fallback
}

// HoldCS is an adversarial scheduler that starves the process inside its
// critical section for `delay` scheduling decisions each time someone
// enters, letting the other processes spin. It demonstrates the
// Alur–Taubenfeld phenomenon: total memory accesses grow without bound in
// delay while SC cost stays fixed (experiment E8).
type HoldCS struct {
	delay   int
	holding int // remaining cycles to hold the current CS occupant
	last    int // occupant the hold was armed for (-1 when vacant)
	rr      int
}

// NewHoldCS returns a HoldCS adversary with the given hold length.
func NewHoldCS(delay int) *HoldCS { return &HoldCS{delay: delay, last: -1} }

// Name implements Scheduler.
func (h *HoldCS) Name() string { return fmt.Sprintf("hold-cs(%d)", h.delay) }

// Next implements Scheduler.
func (h *HoldCS) Next(s *System) int {
	n := s.N()
	occupant := s.InCriticalSection()
	if occupant != h.last {
		// Arm the hold exactly once per critical-section entry; re-arming
		// while the same occupant is inside would starve it forever.
		h.last = occupant
		h.holding = 0
		if occupant >= 0 {
			h.holding = h.delay
		}
	}
	for k := 0; k < n; k++ {
		i := (h.rr + k) % n
		if s.Halted(i) {
			continue
		}
		if i == occupant && h.holding > 0 {
			h.holding--
			continue
		}
		h.rr = (i + 1) % n
		return i
	}
	// Everyone else halted: let the occupant run.
	if occupant >= 0 && !s.Halted(occupant) {
		return occupant
	}
	return -1
}

// ErrHorizon is returned by Run when the step horizon is exhausted before
// all processes halt. For a livelock-free algorithm under a fair scheduler
// this indicates either too small a horizon or a liveness bug.
type ErrHorizon struct {
	Steps int
}

// Error implements error.
func (e ErrHorizon) Error() string {
	return fmt.Sprintf("machine: step horizon %d exhausted before all processes halted", e.Steps)
}

// ErrStalled is returned by Run when the scheduler returns -1 while
// un-halted processes remain. Run only consults the scheduler when at least
// one process is live, so a stall is always a scheduler defect (or a
// deliberately truncating adversary) — never normal termination. The
// distinguishable error keeps schedule search honest: a truncated execution
// must be discarded, not scored as a cheap one.
type ErrStalled struct {
	Steps int // steps executed before the stall
	Live  int // un-halted processes at the stall
}

// Error implements error.
func (e ErrStalled) Error() string {
	return fmt.Sprintf("machine: scheduler stalled after %d steps with %d un-halted processes", e.Steps, e.Live)
}

// runReserve sizes the trace arena Run preallocates. Horizons are
// deliberately generous (DefaultHorizon(64) is ~2.5M steps) while real
// canonical runs complete orders of magnitude sooner, so Run eagerly
// reserves only a typical short run's worth — scaled with n, since run
// length grows with contention — and lets append's geometric growth cover
// longer runs. Steady-state stepping is allocation-free either way; the cap
// just keeps a short run from paying to zero a worst-case arena.
func runReserve(n, maxSteps int) int {
	return min(maxSteps, 512+64*n)
}

// Run drives the system under the scheduler until every process halts or
// maxSteps steps have executed. It returns the trace. A horizon exhaustion
// returns the partial trace and ErrHorizon; a scheduler that returns -1
// while un-halted processes remain returns the partial trace and
// ErrStalled.
func Run(s *System, sched Scheduler, maxSteps int) (model.Execution, error) {
	if reserve := runReserve(s.N(), maxSteps); reserve > 0 {
		s.Reserve(reserve)
	}
	for t := 0; t < maxSteps; t++ {
		if s.AllHalted() {
			return s.Trace(), nil
		}
		i := sched.Next(s)
		if i < 0 {
			live := 0
			for p := 0; p < s.N(); p++ {
				if !s.Halted(p) {
					live++
				}
			}
			return s.Trace(), ErrStalled{Steps: t, Live: live}
		}
		if _, err := s.Step(i); err != nil {
			return s.Trace(), fmt.Errorf("machine: scheduling process %d: %w", i, err)
		}
	}
	if s.AllHalted() {
		return s.Trace(), nil
	}
	return s.Trace(), ErrHorizon{Steps: maxSteps}
}
