package machine_test

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mutex"
)

// TestSpecConstructsNamedSchedulers checks every spec kind builds a
// scheduler of the matching policy, and unknown kinds error.
func TestSpecConstructsNamedSchedulers(t *testing.T) {
	cases := []struct {
		spec machine.Spec
		name string
	}{
		{machine.RoundRobinSpec(), "round-robin"},
		{machine.RandomSpec(7), "random"},
		{machine.ProgressFirstSpec(), "progress-first"},
		{machine.SoloSpec([]int{1, 0}), "solo"},
		{machine.HoldCSSpec(8), "hold-cs(8)"},
		{machine.GreedyCostSpec(), "greedy-cost"},
		{machine.PrefixGreedySpec([]int{0, 1}), "prefix-greedy(2)"},
	}
	for _, c := range cases {
		s, err := c.spec.New()
		if err != nil {
			t.Fatalf("%v: %v", c.spec, err)
		}
		if s.Name() != c.name {
			t.Errorf("spec %v built scheduler %q, want %q", c.spec, s.Name(), c.name)
		}
	}
	if _, err := (machine.Spec{Kind: "fifo"}).New(); err == nil {
		t.Error("unknown spec kind: want error")
	}
}

// TestSpecInstancesAreIndependent checks the property the worker pool
// relies on: one Spec handed to several jobs yields schedulers whose state
// is private, so each replays the identical decision sequence. A shared
// seeded Random would interleave its stream between the two systems and
// diverge.
func TestSpecInstancesAreIndependent(t *testing.T) {
	f, err := mutex.YangAnderson(5)
	if err != nil {
		t.Fatal(err)
	}
	spec := machine.RandomSpec(99)
	s1, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	// Interleave decisions across two independent systems; each scheduler
	// must behave as if it were alone.
	sysA, sysB := machine.NewSystem(f), machine.NewSystem(f)
	for step := 0; step < 200 && (!sysA.AllHalted() || !sysB.AllHalted()); step++ {
		if !sysA.AllHalted() {
			if i := s1.Next(sysA); i >= 0 {
				if _, err := sysA.Step(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !sysB.AllHalted() {
			if i := s2.Next(sysB); i >= 0 {
				if _, err := sysB.Step(i); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	a, b := sysA.Trace(), sysB.Trace()
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no steps executed")
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Proc != b[i].Proc {
			t.Fatalf("independent instances diverged at step %d: %d vs %d", i, a[i].Proc, b[i].Proc)
		}
	}
}

// TestRandomEqualSeedsIdenticalSchedules checks the schedule itself (the
// sequence of chosen process indices), not just the resulting execution:
// two Random schedulers with equal seeds must make identical choices, and
// a different seed must diverge somewhere.
func TestRandomEqualSeedsIdenticalSchedules(t *testing.T) {
	f, err := mutex.YangAnderson(6)
	if err != nil {
		t.Fatal(err)
	}
	schedule := func(seed int64) []int {
		sched := machine.NewRandom(seed)
		sys := machine.NewSystem(f)
		var picks []int
		for step := 0; step < 5000 && !sys.AllHalted(); step++ {
			i := sched.Next(sys)
			if i < 0 {
				break
			}
			picks = append(picks, i)
			if _, err := sys.Step(i); err != nil {
				t.Fatal(err)
			}
		}
		return picks
	}
	a, b := schedule(123), schedule(123)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("equal seeds: schedule lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal seeds diverged at pick %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := schedule(124)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestRoundRobinFairnessWindow checks the fairness invariant experiment E8
// leans on: under RoundRobin, every live (non-halted) process is scheduled
// at least once in any window of n consecutive picks.
func TestRoundRobinFairnessWindow(t *testing.T) {
	f, err := mutex.Bakery(5)
	if err != nil {
		t.Fatal(err)
	}
	n := f.N()
	sched := machine.NewRoundRobin()
	sys := machine.NewSystem(f)
	var window []int
	for step := 0; step < 100_000 && !sys.AllHalted(); step++ {
		// Processes live at the start of the window; only they are owed a
		// turn within it (a process may halt mid-window).
		live := map[int]bool{}
		for i := 0; i < n; i++ {
			if !sys.Halted(i) {
				live[i] = true
			}
		}
		window = window[:0]
		for k := 0; k < n && !sys.AllHalted(); k++ {
			i := sched.Next(sys)
			if i < 0 {
				break
			}
			window = append(window, i)
			if _, err := sys.Step(i); err != nil {
				t.Fatal(err)
			}
		}
		scheduled := map[int]bool{}
		for _, i := range window {
			scheduled[i] = true
		}
		for i := range live {
			if !scheduled[i] && !sys.Halted(i) {
				t.Fatalf("process %d live through window %v of %d picks but never scheduled", i, window, n)
			}
		}
	}
	if !sys.AllHalted() {
		t.Fatal("bakery under round-robin did not complete")
	}
}

// TestSpecCanonNormalizesForHashing checks the canonicalization the
// content-addressed result store keys on: fields a policy ignores are
// zeroed, slices normalize to non-nil, and behaviour-relevant parameters
// survive.
func TestSpecCanonNormalizesForHashing(t *testing.T) {
	rr := machine.Spec{Kind: "round-robin", Seed: 99, Delay: 3, Order: []int{1}, Prefix: []int{2}}
	if got, want := rr.Canon(), machine.RoundRobinSpec().Canon(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round-robin with junk parameters must canonicalize to the bare spec: %+v vs %+v", got, want)
	}
	if got := machine.RandomSpec(7).Canon(); got.Seed != 7 {
		t.Fatalf("random must keep its seed: %+v", got)
	}
	if got := machine.HoldCSSpec(12).Canon(); got.Delay != 12 {
		t.Fatalf("hold-cs must keep its delay: %+v", got)
	}
	a := machine.PrefixGreedySpec([]int{0, 1, 2}).Canon()
	b := machine.Spec{Kind: "prefix-greedy", Prefix: []int{0, 1, 2}, Seed: 5}.Canon()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal prefixes must canonicalize identically: %+v vs %+v", a, b)
	}
	if a.Order == nil || a.Prefix == nil {
		t.Fatalf("canonical slices must be non-nil (JSON [] vs null): %+v", a)
	}
	if got := machine.SoloSpec([]int{2, 0, 1}).Canon(); !reflect.DeepEqual(got.Order, []int{2, 0, 1}) {
		t.Fatalf("solo must keep its order: %+v", got)
	}
	unknown := machine.Spec{Kind: "no-such-policy", Seed: 1}
	if got := unknown.Canon(); got.Kind != "no-such-policy" || got.Seed != 1 {
		t.Fatalf("unknown kinds pass through for New to reject: %+v", got)
	}
}
