package machine_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/program"
)

// pingPong builds a 2-process algorithm: process 0 writes 1 to r0, enters;
// process 1 spins on r0 then enters. Used to test scheduling mechanics.
func pingPong(t *testing.T) program.Factory {
	t.Helper()
	layout := mutex.NewLayout()
	flag := layout.Reg("flag", 0, -1)

	b0 := program.NewBuilder("pp/0")
	b0.Try()
	b0.Write(flag, program.Const(1))
	b0.Enter()
	b0.Exit()
	b0.Rem()
	b0.Halt()

	b1 := program.NewBuilder("pp/1")
	x := b1.Var("x")
	b1.Try()
	b1.Spin(flag, x, program.Ne(x, program.Const(0)))
	b1.Enter()
	b1.Exit()
	b1.Rem()
	b1.Halt()

	p0, err := b0.Build()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mutex.NewFactory("ping-pong", layout, []*program.Program{p0, p1})
}

func TestSystemStepAndSections(t *testing.T) {
	s := machine.NewSystem(pingPong(t))
	if s.Section(0) != machine.SecRemainder {
		t.Fatal("processes start in the remainder section")
	}
	if _, err := s.Step(0); err != nil { // try_0
		t.Fatal(err)
	}
	if s.Section(0) != machine.SecTrying {
		t.Fatalf("section after try = %v", s.Section(0))
	}
	if _, err := s.Step(0); err != nil { // write
		t.Fatal(err)
	}
	if _, err := s.Step(0); err != nil { // enter
		t.Fatal(err)
	}
	if s.InCriticalSection() != 0 || s.CSEntries(0) != 1 {
		t.Fatal("process 0 should be in its critical section")
	}
	if _, err := s.Step(0); err != nil { // exit
		t.Fatal(err)
	}
	if _, err := s.Step(0); err != nil { // rem
		t.Fatal(err)
	}
	if s.CSCompleted(0) != 1 || s.Section(0) != machine.SecRemainder {
		t.Fatal("cycle not recorded")
	}
	if _, err := s.Step(0); err == nil { // halted
		t.Fatal("stepping a halted process should error")
	}
	if _, err := s.Step(7); err == nil {
		t.Fatal("stepping an unknown process should error")
	}
}

func TestSpinStepsAreFree(t *testing.T) {
	s := machine.NewSystem(pingPong(t))
	if _, err := s.Step(1); err != nil { // try_1
		t.Fatal(err)
	}
	// Process 1 spins on r0 = 0: its reads must not change state.
	for i := 0; i < 4; i++ {
		if s.WouldChangeState(1) {
			t.Fatal("spin read on unset flag should not change state")
		}
		if _, err := s.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	changed := s.Changed()
	// Steps: try (changes), then 4 free spin reads.
	if !changed[0] {
		t.Fatal("try should change state")
	}
	for i := 1; i < 5; i++ {
		if changed[i] {
			t.Fatalf("spin read %d charged", i)
		}
	}
}

func TestRunRoundRobinCompletes(t *testing.T) {
	s := machine.NewSystem(pingPong(t))
	trace, err := machine.Run(s, machine.NewRoundRobin(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllHalted() {
		t.Fatal("system should complete")
	}
	if got := trace.EntryOrder(); len(got) != 2 {
		t.Fatalf("entries %v", got)
	}
}

func TestSoloScheduler(t *testing.T) {
	f, err := mutex.Bakery(4)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewSolo([]int{3, 1, 0, 2}), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 0, 2}
	got := exec.EntryOrder()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solo entry order %v, want %v", got, want)
		}
	}
}

func TestRandomSchedulerDeterministicPerSeed(t *testing.T) {
	f, err := mutex.YangAnderson(5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := machine.RunCanonical(f, machine.NewRandom(123), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.RunCanonical(f, machine.NewRandom(123), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different executions")
	}
}

func TestHoldCSCompletesForAllDelays(t *testing.T) {
	for _, delay := range []int{0, 1, 5, 100} {
		f, err := mutex.YangAnderson(4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := machine.RunCanonical(f, machine.NewHoldCS(delay), 4_000_000); err != nil {
			t.Fatalf("delay=%d: %v", delay, err)
		}
	}
}

func TestReplayerMatchesSystem(t *testing.T) {
	f, err := mutex.YangAnderson(4)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	replayed, sc, err := machine.ReplayExecution(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(exec) {
		t.Fatal("replay produced different step values")
	}
	// SC from replay equals the sum of the system's changed flags over
	// shared steps.
	s := machine.NewSystem(f)
	if _, err := machine.Run(s, machine.NewRoundRobin(), 0); err == nil {
		// Run with 0 horizon returns ErrHorizon immediately; ignore.
		_ = s
	}
	if sc <= 0 {
		t.Fatalf("SC=%d", sc)
	}
}

func TestReplayerRejectsForeignSteps(t *testing.T) {
	f := pingPong(t)
	r := machine.NewReplayer(f)
	// Process 0's first step is try, not a write.
	_, err := r.Apply(model.Step{Proc: 0, Kind: model.KindWrite, Reg: 0, Val: 1})
	if err == nil {
		t.Fatal("mismatched step accepted")
	}
	if _, err := r.Apply(model.Step{Proc: 9}); err == nil {
		t.Fatal("unknown process accepted")
	}
}

func TestErrHorizonType(t *testing.T) {
	f, err := mutex.Bakery(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = machine.RunCanonical(f, machine.NewRoundRobin(), 3)
	var h machine.ErrHorizon
	if !errors.As(err, &h) || h.Steps != 3 {
		t.Fatalf("want ErrHorizon{3}, got %v", err)
	}
	if h.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, c := range []struct {
		s    machine.Scheduler
		want string
	}{
		{machine.NewRoundRobin(), "round-robin"},
		{machine.NewRandom(1), "random"},
		{machine.NewSolo(perm.Identity(2)), "solo"},
		{machine.NewProgressFirst(), "progress-first"},
		{machine.NewHoldCS(5), "hold-cs(5)"},
		{machine.NewGreedyCost(), "greedy-cost"},
		{machine.NewPrefixGreedy([]int{0, 1, 0}), "prefix-greedy(3)"},
	} {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestProgressFirstSkipsSpinners(t *testing.T) {
	f := pingPong(t)
	s := machine.NewSystem(f)
	sched := machine.NewProgressFirst()
	// After both tries, process 1 spins; progress-first must keep
	// scheduling process 0 until the flag is set.
	steps := 0
	for !s.AllHalted() && steps < 100 {
		i := sched.Next(s)
		if i < 0 {
			break
		}
		if _, err := s.Step(i); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if !s.AllHalted() {
		t.Fatal("did not complete")
	}
	// A perfectly progress-first schedule of ping-pong has no free steps.
	for i, ch := range s.Changed() {
		if !ch && s.Trace()[i].IsShared() {
			t.Fatalf("progress-first scheduled a free step at %d: %v", i, s.Trace()[i])
		}
	}
}

func TestDefaultHorizonMonotone(t *testing.T) {
	prev := 0
	for _, n := range []int{1, 2, 8, 64} {
		h := machine.DefaultHorizon(n)
		if h <= prev {
			t.Fatalf("DefaultHorizon(%d) = %d not increasing", n, h)
		}
		prev = h
	}
}

func TestRunCanonicalRejectsMultipleCycles(t *testing.T) {
	// A program doing two cycles violates the canonical-run contract.
	layout := mutex.NewLayout()
	layout.Reg("unused", 0, -1)
	b := program.NewBuilder("twice")
	for i := 0; i < 2; i++ {
		b.Try()
		b.Enter()
		b.Exit()
		b.Rem()
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := mutex.NewFactory("twice", layout, []*program.Program{p})
	_, err = machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err == nil {
		t.Fatal("two-cycle run accepted as canonical")
	}
	if want := "completed 2"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWellFormednessEnforced(t *testing.T) {
	// enter without try must be rejected by the system itself.
	layout := mutex.NewLayout()
	layout.Reg("u", 0, -1)
	b := program.NewBuilder("bad-order")
	b.Enter()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := mutex.NewFactory("bad-order", layout, []*program.Program{p})
	s := machine.NewSystem(f)
	if _, err := s.Step(0); err == nil {
		t.Fatal("enter while in remainder section accepted")
	}
}

func TestTraceIsAppendOnly(t *testing.T) {
	f := pingPong(t)
	s := machine.NewSystem(f)
	for i := 0; i < 3; i++ {
		if _, err := s.Step(0); err != nil {
			t.Fatal(err)
		}
		if len(s.Trace()) != i+1 || len(s.Changed()) != i+1 {
			t.Fatalf("trace/changed length mismatch at step %d", i)
		}
	}
}

func ExampleRun() {
	f, _ := mutex.YangAnderson(2)
	s := machine.NewSystem(f)
	trace, _ := machine.Run(s, machine.NewRoundRobin(), 10000)
	fmt.Println("entries:", trace.EntryOrder())
	// Output: entries: [0 1]
}
