package runner_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/runner"
)

// TestMapOrderedFoldsInOrder checks the engine's core guarantee: whatever
// the workers do, the fold observes indices 0,1,2,… in order, at every
// worker count.
func TestMapOrderedFoldsInOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 4, 8, 33} {
		eng := runner.New(workers)
		var seen []int
		err := runner.MapOrdered(eng, n, func(i int) (int, error) {
			return i * i, nil
		}, func(i int, v int) error {
			if v != i*i {
				t.Fatalf("workers=%d: fold(%d) got %d, want %d", workers, i, v, i*i)
			}
			seen = append(seen, i)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: folded %d of %d results", workers, len(seen), n)
		}
		for i, got := range seen {
			if got != i {
				t.Fatalf("workers=%d: fold order broken at position %d: got index %d", workers, i, got)
			}
		}
	}
}

// TestMapOrderedFirstErrorWins checks sequential error semantics: the
// returned error is the one at the lowest failing index, and no result at
// or beyond it is folded — regardless of which worker finished first.
func TestMapOrderedFirstErrorWins(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		eng := runner.New(workers)
		folded := 0
		err := runner.MapOrdered(eng, 50, func(i int) (int, error) {
			if i == 7 || i == 31 {
				return 0, fmt.Errorf("job %d: %w", i, wantErr)
			}
			return i, nil
		}, func(i int, v int) error {
			folded++
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want wrapped %v", workers, err, wantErr)
		}
		if got, want := err.Error(), "job 7: boom"; got != want {
			t.Fatalf("workers=%d: err = %q, want the lowest-index failure %q", workers, got, want)
		}
		if folded != 7 {
			t.Fatalf("workers=%d: folded %d results before the error, want 7", workers, folded)
		}
	}
}

// TestMapOrderedFoldErrorStops checks that an error returned by the fold
// itself stops the batch with that error.
func TestMapOrderedFoldErrorStops(t *testing.T) {
	wantErr := errors.New("fold says no")
	for _, workers := range []int{1, 8} {
		err := runner.MapOrdered(runner.New(workers), 20, func(i int) (int, error) {
			return i, nil
		}, func(i int, v int) error {
			if i == 3 {
				return wantErr
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

// TestNestedMapOrderedRespectsWorkerBound nests MapOrdered calls on one
// engine — the shape every experiment uses (rows fanning out over
// permutations) — and checks three things: it completes (caller-runs makes
// saturation degrade to sequential instead of deadlocking), results are
// correct, and the number of simultaneously executing jobs never exceeds
// the worker bound plus the one slotless top-level caller.
func TestNestedMapOrderedRespectsWorkerBound(t *testing.T) {
	const workers = 3
	eng := runner.New(workers)
	var inFlight, peak atomic.Int64
	body := func() {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	}
	const outer, inner = 6, 8
	sums := make([]int, outer)
	err := runner.MapOrdered(eng, outer, func(o int) (int, error) {
		sum := 0
		err := runner.MapOrdered(eng, inner, func(i int) (int, error) {
			body()
			return o*inner + i, nil
		}, func(_ int, v int) error {
			sum += v
			return nil
		})
		return sum, err
	}, func(o int, sum int) error {
		sums[o] = sum
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for o, sum := range sums {
		want := 0
		for i := 0; i < inner; i++ {
			want += o*inner + i
		}
		if sum != want {
			t.Errorf("outer %d: sum %d, want %d", o, sum, want)
		}
	}
	if got := peak.Load(); got > workers+1 {
		t.Errorf("peak concurrent jobs %d exceeds worker bound %d (+1 for the caller)", got, workers)
	}
}

// TestEngineDefaults checks worker-bound resolution.
func TestEngineDefaults(t *testing.T) {
	if w := runner.New(0).Workers(); w < 1 {
		t.Fatalf("New(0).Workers() = %d, want >= 1", w)
	}
	if w := runner.New(3).Workers(); w != 3 {
		t.Fatalf("New(3).Workers() = %d, want 3", w)
	}
}

// TestJobResultsDeterministic runs the same canonical-execution jobs at
// several worker counts and requires identical results in identical order:
// the parallel engine must be invisible in the output.
func TestJobResultsDeterministic(t *testing.T) {
	var jobs []runner.Job
	for _, algoName := range []string{"yang-anderson", "bakery", "mcs"} {
		for _, n := range []int{2, 4, 8} {
			jobs = append(jobs, runner.Job{Algo: algoName, N: n, Sched: machine.RandomSpec(42 + int64(n))})
		}
	}
	collect := func(workers int) []string {
		var out []string
		err := runner.New(workers).Run(jobs, func(r runner.Result) error {
			if r.Err != nil {
				return r.Err
			}
			out = append(out, fmt.Sprintf("%s n=%d sc=%d cc=%d steps=%d",
				r.Job.Algo, r.Job.N, r.Report.SC, r.Report.CCRMR, r.Report.Steps))
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := collect(1)
	for _, workers := range []int{4, 8} {
		got := collect(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestExecuteUnknownAlgo checks errors are carried in-band on the Result.
func TestExecuteUnknownAlgo(t *testing.T) {
	r := runner.Execute(runner.Job{Algo: "no-such-lock", N: 4, Sched: machine.RoundRobinSpec()})
	if r.Err == nil {
		t.Fatal("Execute with unknown algorithm: want error")
	}
}

// TestMixSeedStableAndDistinct pins MixSeed's determinism and checks that
// neighbouring coordinates get distinct seeds (jobs must not share rng
// streams by accident).
func TestMixSeedStableAndDistinct(t *testing.T) {
	if runner.MixSeed(1, 2, 3) != runner.MixSeed(1, 2, 3) {
		t.Fatal("MixSeed is not deterministic")
	}
	seen := map[int64]bool{}
	for row := int64(0); row < 50; row++ {
		for col := int64(0); col < 50; col++ {
			s := runner.MixSeed(20060723, row, col)
			if seen[s] {
				t.Fatalf("MixSeed collision at (%d,%d)", row, col)
			}
			seen[s] = true
		}
	}
	if runner.MixSeed(7, 0) == runner.MixSeed(7, 1) {
		t.Fatal("adjacent coordinates produced equal seeds")
	}
}
