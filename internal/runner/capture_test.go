package runner_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/machine"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/store"
	"repro/internal/trace"
)

// captureStore returns a memory store with a file blob tier mounted.
func captureStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.NewMemory(256)
	fb, err := store.OpenFileBlobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetBlobs(fb)
	t.Cleanup(func() { st.Close() })
	return st
}

// liveTimeline renders the reference timeline by executing the job fresh,
// outside any store.
func liveTimeline(t *testing.T, j runner.Job) string {
	t.Helper()
	r, exec, _ := runner.ExecuteTraced(j)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	f, err := runner.NewFactory(j.Algo, j.N)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := trace.Timeline(f, exec, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// replayTimeline decodes a captured blob, verifies it against a fresh
// factory, and renders its timeline — the whole replay path, with zero
// re-simulation.
func replayTimeline(t *testing.T, blob []byte) string {
	t.Helper()
	rec, err := trace.DecodeRecord(blob)
	if err != nil {
		t.Fatal(err)
	}
	f, err := runner.NewFactory(rec.Algo, rec.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.VerifyRecord(f, rec); err != nil {
		t.Fatal(err)
	}
	tl, err := trace.Timeline(f, rec.Exec, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestCaptureReplayTimelineByteIdentical is the determinism contract of
// the whole capture path: capture → blob store → fetch → decode → verify →
// render reproduces the live run's timeline byte for byte, at every worker
// count, and the captured blobs themselves are byte-identical across
// worker counts.
func TestCaptureReplayTimelineByteIdentical(t *testing.T) {
	jobs := testJobs()
	want := make([]string, len(jobs))
	for i, j := range jobs {
		want[i] = liveTimeline(t, j)
	}
	var first map[string][]byte
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := captureStore(t)
			eng := runner.NewCached(runner.New(workers), st).WithCapture(true)
			if !eng.Capturing() {
				t.Fatal("WithCapture(true) not capturing")
			}
			collectRun(t, eng, jobs)
			if got := st.Stats().BlobStored; got != int64(len(jobs)) {
				t.Fatalf("captured %d blobs, want %d", got, len(jobs))
			}
			blobs := make(map[string][]byte, len(jobs))
			for i, j := range jobs {
				k := j.CacheKey()
				blob, ok := st.BlobGet(k)
				if !ok {
					t.Fatalf("job %d: no captured trace under %s", i, k)
				}
				blobs[k] = blob
				if tl := replayTimeline(t, blob); tl != want[i] {
					t.Errorf("job %d: replayed timeline diverges from live run", i)
				}
			}
			if first == nil {
				first = blobs
			} else {
				for k, b := range blobs {
					if !bytes.Equal(b, first[k]) {
						t.Errorf("blob %s differs from the workers=1 capture", k)
					}
				}
			}

			// A warm re-run is all hits: nothing executes, nothing new is
			// captured.
			collectRun(t, eng, jobs)
			if got := st.Stats().BlobStored; got != int64(len(jobs)) {
				t.Errorf("warm run captured again: %d blobs", got)
			}
		})
	}
}

// TestCaptureThroughRoutedFleet runs capture against a routed two-server
// fleet: blobs place on their ring owners, and a fetch through the router
// replays byte-identically.
func TestCaptureThroughRoutedFleet(t *testing.T) {
	newStored := func() *store.Store {
		t.Helper()
		dir := t.TempDir()
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := store.OpenFileBlobs(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.SetBlobs(fb)
		t.Cleanup(func() { st.Close() })
		return st
	}
	newFleetClient := func(st *store.Store) *remote.Client {
		t.Helper()
		ts := httptest.NewServer(remote.NewServer(st))
		t.Cleanup(ts.Close)
		cl, err := remote.NewClient(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	stA, stB := newStored(), newStored()
	rtr := store.NewRouter(newFleetClient(stA), newFleetClient(stB))
	st := store.New(0, rtr)
	st.SetBlobs(rtr)

	jobs := testJobs()
	eng := runner.NewCached(runner.New(4), st).WithCapture(true)
	collectRun(t, eng, jobs)

	if got := stA.BlobLen() + stB.BlobLen(); got != len(jobs) {
		t.Fatalf("fleet holds %d blobs (a=%d b=%d), want %d",
			got, stA.BlobLen(), stB.BlobLen(), len(jobs))
	}
	for i, j := range jobs {
		blob, ok := st.BlobGet(j.CacheKey())
		if !ok {
			t.Fatalf("job %d: trace not fetchable through the fleet", i)
		}
		if tl := replayTimeline(t, blob); tl != liveTimeline(t, j) {
			t.Errorf("job %d: fleet-replayed timeline diverges from live run", i)
		}
	}
}

// TestScheduleCaptureRoundTrip covers the search-side path: an executed
// candidate's trace replays, and its decision genome matches the capture.
func TestScheduleCaptureRoundTrip(t *testing.T) {
	st := captureStore(t)
	eng := runner.NewCached(runner.New(2), st).WithCapture(true)
	jobs := []runner.ScheduleJob{
		{Algo: "yang-anderson", N: 3, Sched: machine.RoundRobinSpec(), KeepDecisions: 8},
		{Algo: "bakery", N: 4, Sched: machine.RandomSpec(11), KeepDecisions: 8},
	}
	if err := eng.RunSchedules(jobs, func(r runner.ScheduleResult) error { return r.Err }); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		blob, ok := st.BlobGet(j.CacheKey())
		if !ok {
			t.Fatalf("candidate %d: no captured trace", i)
		}
		rec, err := trace.DecodeRecord(blob)
		if err != nil {
			t.Fatal(err)
		}
		want, exec, _ := runner.ExecuteScheduleTraced(j)
		if want.Err != nil {
			t.Fatal(want.Err)
		}
		if len(rec.Exec) != len(exec) {
			t.Fatalf("candidate %d: captured %d steps, live %d", i, len(rec.Exec), len(exec))
		}
		for s := range exec {
			if rec.Exec[s] != exec[s] {
				t.Fatalf("candidate %d: step %d diverges", i, s)
			}
		}
	}
}

// TestCaptureDisabledStepZeroAlloc pins the hot-path contract the capture
// feature must not break: with capture off (the default), a steady-state
// System.Step allocates nothing. Capture encodes strictly after
// machine.Run returns, so this holds with capture on too — but the off
// path is the one every sweep pays, so it is the one guarded.
func TestCaptureDisabledStepZeroAlloc(t *testing.T) {
	f, err := runner.NewFactory("tas", 3)
	if err != nil {
		t.Fatal(err)
	}
	s := machine.NewSystem(f)
	s.Reserve(2048)
	// Let process 0 take the lock; 1..2 then spin on TAS failing.
	for _, i := range []int{0, 0, 0} {
		if _, err := s.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	step := 0
	got := testing.AllocsPerRun(200, func() {
		if _, err := s.Step(1 + step%2); err != nil {
			t.Fatal(err)
		}
		step++
	})
	if got != 0 {
		t.Errorf("%.1f allocs per steady-state Step with capture disabled, want 0", got)
	}
}

// BenchmarkCaptureOverhead quantifies what turning capture on costs one
// executed job: off = the plain execution, on = execution + trace encode +
// blob store. The delta is the capture tax; the stepping itself is
// identical in both.
func BenchmarkCaptureOverhead(b *testing.B) {
	j := runner.Job{Algo: "yang-anderson", N: 8, Sched: machine.RoundRobinSpec()}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := runner.Execute(j); r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		st := store.NewMemory(4)
		fb, err := store.OpenFileBlobs(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		st.SetBlobs(fb)
		defer st.Close()
		k := j.CacheKey()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, exec, changed := runner.ExecuteTraced(j)
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			blob, err := trace.EncodeRecord(trace.Record{Algo: j.Algo, N: j.N, Horizon: j.Horizon, Exec: exec, Changed: changed})
			if err != nil {
				b.Fatal(err)
			}
			st.BlobPut(k, blob)
		}
	})
}
