// Package runner is a deterministic job-execution engine: a bounded worker
// pool over which independent units of work fan out, with results folded
// back in strict submission order so that parallel output is byte-identical
// to sequential output.
//
// The engine makes one demand of its jobs: each must be a pure function of
// its inputs — it builds every piece of mutable state (System, Scheduler,
// Replayer, automata, rngs) itself from value-type specifications and seeds,
// and shares nothing writable with other jobs. The simulator stack is built
// for this: program.Factory instances are immutable after construction,
// machine.Spec constructs a fresh Scheduler per call, and MixSeed derives
// independent per-job rng seeds from a base seed and the job's coordinates.
//
// Layering: this file depends only on the standard library, so every layer
// of the repository (core sweeps, experiment drivers, command binaries) can
// fan out through the same engine. The typed simulation Job/Result pair in
// job.go sits one level up, on top of machine and cost.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine is a bounded worker pool. The zero value is not useful; use New.
//
// The bound is a real concurrency cap shared across nested calls: all
// MapOrdered/Run invocations on one engine draw execution slots from a
// single semaphore, so an experiment fanning out over rows whose jobs fan
// out over permutations on the same engine still executes at most
// Workers() jobs at a time (plus the top-level caller, which always runs
// jobs itself while it waits — that is also what makes nesting
// deadlock-free: progress never requires acquiring a slot).
type Engine struct {
	workers int
	slots   chan struct{} // semaphore: one token per executing job, shared across nested calls
}

// New returns an engine with the given worker bound. workers <= 0 selects
// GOMAXPROCS, the default for "as fast as the hardware allows".
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, slots: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		e.slots <- struct{}{}
	}
	return e
}

// Default returns an engine bounded by GOMAXPROCS at call time.
func Default() *Engine { return New(0) }

// Workers returns the engine's worker bound.
func (e *Engine) Workers() int { return e.workers }

// MapOrdered evaluates fn(i) for every i in [0, n) on the engine's worker
// pool and calls fold(i, result) for each index in strictly increasing
// order on the calling goroutine. It is the deterministic core of the
// engine: however the workers interleave, the fold sees results exactly as
// a sequential loop would, so any order-sensitive aggregation (table rows,
// running maxima, first-error-wins) is byte-identical at every worker
// count.
//
// Error semantics mirror a sequential loop with early exit: the first
// error in index order — whether from fn or from fold — stops the fold and
// is returned, and results at higher indices are discarded. Jobs at higher
// indices may still have started (fn must therefore be side-effect free),
// but their outputs are never observed. With one worker no goroutines are
// spawned at all and fn(i) runs lazily, exactly like the loop it replaces.
//
// Scheduling is caller-runs with helpers: the calling goroutine claims and
// executes the next unfolded job itself whenever no helper has taken it,
// while helper goroutines each acquire one of the engine's shared slots
// per job. The caller needs no slot, so a nested MapOrdered inside a
// helper's fn degrades gracefully to sequential when the engine is
// saturated instead of oversubscribing the worker bound or deadlocking.
func MapOrdered[T any](e *Engine, n int, fn func(i int) (T, error), fold func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if e.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return err
			}
			if fold != nil {
				if err := fold(i, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var (
		mu      sync.Mutex
		ready   = sync.NewCond(&mu)
		vals    = make([]T, n)
		errs    = make([]error, n)
		done    = make([]bool, n)
		claimed = make([]bool, n)
		low     = 0 // all indices below low are claimed
		cancel  atomic.Bool
		quit    = make(chan struct{})
		wg      sync.WaitGroup
	)
	// claim returns the lowest unclaimed index, or -1 when none remain.
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		for low < n && claimed[low] {
			low++
		}
		if low == n {
			return -1
		}
		claimed[low] = true
		return low
	}
	runJob := func(i int) {
		if !cancel.Load() {
			vals[i], errs[i] = fn(i)
		}
		mu.Lock()
		done[i] = true
		ready.Broadcast()
		mu.Unlock()
	}

	helpers := e.workers
	if helpers > n {
		helpers = n
	}
	wg.Add(helpers)
	for w := 0; w < helpers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-quit:
					return
				case <-e.slots:
				}
				i := claim()
				if i < 0 {
					e.slots <- struct{}{}
					return
				}
				runJob(i)
				e.slots <- struct{}{}
			}
		}()
	}

	var foldErr error
	for i := 0; i < n; i++ {
		mu.Lock()
		if !claimed[i] {
			// Caller-runs: no helper has picked this job up yet; execute it
			// on this goroutine rather than waiting for a slot.
			claimed[i] = true
			mu.Unlock()
			runJob(i)
		} else {
			for !done[i] {
				ready.Wait()
			}
			mu.Unlock()
		}
		if errs[i] != nil {
			foldErr = errs[i]
			break
		}
		if fold != nil {
			if err := fold(i, vals[i]); err != nil {
				foldErr = err
				break
			}
		}
	}
	if foldErr != nil {
		cancel.Store(true)
	}
	close(quit)
	wg.Wait()
	return foldErr
}

// Each runs fn(i) for every i in [0, n) on the pool and returns the first
// error in index order, if any.
func (e *Engine) Each(n int, fn func(i int) error) error {
	return MapOrdered(e, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	}, nil)
}

// MixSeed derives a decorrelated seed from a base seed and a job's integer
// coordinates (experiment row, permutation index, trial number, …). Jobs
// must never share a stateful rng across workers; instead each derives its
// own seed so the stream it sees is a pure function of the job's address,
// independent of scheduling. The mixing is a splitmix64 finalizer per
// coordinate, so adjacent coordinates give statistically unrelated seeds.
func MixSeed(base int64, coords ...int64) int64 {
	z := uint64(base)
	for _, c := range coords {
		z += 0x9e3779b97f4a7c15 + uint64(c)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}
