package runner_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/store"
)

func collectRun(t *testing.T, eng *runner.CachedEngine, jobs []runner.Job) []runner.Result {
	t.Helper()
	var out []runner.Result
	if err := eng.Run(jobs, func(r runner.Result) error {
		if r.Err != nil {
			return r.Err
		}
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func testJobs() []runner.Job {
	var jobs []runner.Job
	for _, n := range []int{3, 4, 5} {
		jobs = append(jobs,
			runner.Job{Algo: "yang-anderson", N: n, Sched: machine.RoundRobinSpec()},
			runner.Job{Algo: "bakery", N: n, Sched: machine.RandomSpec(7)},
		)
	}
	return jobs
}

// TestCachedRunWarmIsByteIdenticalAndExecutesNothing is the cache's core
// contract: a warm run folds exactly the Results a cold run folded, and
// performs zero simulations (every keyed lookup hits).
func TestCachedRunWarmIsByteIdenticalAndExecutesNothing(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	jobs := testJobs()

	plain := collectRun(t, runner.NewCached(runner.New(2), nil), jobs)
	cold := collectRun(t, runner.NewCached(runner.New(2), st), jobs)
	if !reflect.DeepEqual(plain, cold) {
		t.Fatalf("cold cached run differs from uncached run:\n%+v\nvs\n%+v", cold, plain)
	}
	missesAfterCold := st.Stats().Misses
	if missesAfterCold == 0 {
		t.Fatal("cold run reported no misses — nothing was keyed")
	}

	for _, w := range []int{1, 4, 8} {
		warm := collectRun(t, runner.NewCached(runner.New(w), st), jobs)
		if !reflect.DeepEqual(warm, plain) {
			t.Fatalf("warm run (workers=%d) differs from uncached run", w)
		}
	}
	if got := st.Stats().Misses; got != missesAfterCold {
		t.Fatalf("warm runs executed %d simulations (miss count %d -> %d), want zero",
			got-missesAfterCold, missesAfterCold, got)
	}
}

// TestCachedRunSchedulesWarm mirrors the contract for schedule candidates,
// including the cached Decisions genome mutation search depends on.
func TestCachedRunSchedulesWarm(t *testing.T) {
	st := store.NewMemory(0)
	jobs := []runner.ScheduleJob{
		{Algo: "yang-anderson", N: 4, Sched: machine.PrefixGreedySpec([]int{0, 1, 2, 3, 2, 1}), KeepDecisions: 8},
		{Algo: "peterson", N: 3, Sched: machine.GreedyCostSpec(), KeepDecisions: 4},
		{Algo: "yang-anderson", N: 4, Sched: machine.SoloSpec([]int{0}), KeepDecisions: 8}, // stalls: discard, still cached
	}
	collect := func(eng *runner.CachedEngine) []runner.ScheduleResult {
		var out []runner.ScheduleResult
		if err := eng.RunSchedules(jobs, func(r runner.ScheduleResult) error {
			if r.Err != nil {
				return r.Err
			}
			out = append(out, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := collect(runner.NewCached(runner.New(2), nil))
	cold := collect(runner.NewCached(runner.New(2), st))
	missesAfterCold := st.Stats().Misses
	warm := collect(runner.NewCached(runner.New(4), st))
	if !reflect.DeepEqual(cold, plain) || !reflect.DeepEqual(warm, plain) {
		t.Fatalf("cached schedule results diverge:\nplain %+v\ncold  %+v\nwarm  %+v", plain, cold, warm)
	}
	if got := st.Stats().Misses; got != missesAfterCold {
		t.Fatal("warm schedule run re-simulated cached candidates")
	}
	if warm[2].Canonical {
		t.Fatalf("stalling candidate must cache as non-canonical: %+v", warm[2])
	}
}

// countingBatchBackend is an in-memory BatchBackend + HasBatcher counting
// point versus batched writes, so tests can pin that the engine's write
// path travels batched.
type countingBatchBackend struct {
	mu         sync.Mutex
	m          map[string][]byte
	puts       int   // point Put calls
	putBatches []int // entry count of each PutBatch call
}

func newCountingBatchBackend() *countingBatchBackend {
	return &countingBatchBackend{m: make(map[string][]byte)}
}

func (b *countingBatchBackend) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok, nil
}

func (b *countingBatchBackend) Put(key string, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	b.m[key] = val
	return nil
}

func (b *countingBatchBackend) Has(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[key]
	return ok
}

func (b *countingBatchBackend) ForEach(fn func(key string, val []byte) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, v := range b.m {
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

func (b *countingBatchBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

func (b *countingBatchBackend) Close() error { return nil }

func (b *countingBatchBackend) GetBatch(keys []string) (map[string][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := b.m[k]; ok {
			out[k] = v
		}
	}
	return out, nil
}

func (b *countingBatchBackend) PutBatch(entries []store.Entry) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.putBatches = append(b.putBatches, len(entries))
	added := 0
	for _, e := range entries {
		if _, ok := b.m[e.Key]; !ok {
			added++
		}
		b.m[e.Key] = e.Val
	}
	return added, nil
}

func (b *countingBatchBackend) HasBatch(keys []string) (map[string]bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		if _, ok := b.m[k]; ok {
			out[k] = true
		}
	}
	return out, nil
}

// TestCachedRunBatchesWritesPerFanOut pins the write-side hot path: against
// a batching backend a cold fan-out issues zero point puts — every executed
// result travels in buffered batches flushed at the fan-out barrier, after
// which the writes are durable (a prime pass that exits right after Run has
// shared everything). Warm runs write nothing at all.
func TestCachedRunBatchesWritesPerFanOut(t *testing.T) {
	be := newCountingBatchBackend()
	st := store.New(0, be)
	defer st.Close()
	jobs := testJobs()

	plain := collectRun(t, runner.NewCached(runner.New(2), nil), jobs)
	cold := collectRun(t, runner.NewCached(runner.New(4), st), jobs)
	if !reflect.DeepEqual(cold, plain) {
		t.Fatalf("buffered cold run diverged:\n%+v\nvs\n%+v", cold, plain)
	}
	if be.puts != 0 {
		t.Fatalf("cold fan-out issued %d point puts, want 0 (writes must batch)", be.puts)
	}
	if len(be.putBatches) != 1 || be.putBatches[0] != len(jobs) {
		t.Fatalf("cold fan-out flushed batches %v, want one batch of %d", be.putBatches, len(jobs))
	}
	if be.Len() != len(jobs) {
		t.Fatalf("flush barrier left %d of %d writes undurable", len(jobs)-be.Len(), len(jobs))
	}

	warm := collectRun(t, runner.NewCached(runner.New(4), st), jobs)
	if !reflect.DeepEqual(warm, plain) {
		t.Fatal("warm buffered run diverged")
	}
	if be.puts != 0 || len(be.putBatches) != 1 {
		t.Fatalf("warm run wrote: puts=%d batches=%v", be.puts, be.putBatches)
	}

	// A prime pass over a batching backend batches identically.
	primeBE := newCountingBatchBackend()
	primeSt := store.New(0, primeBE)
	defer primeSt.Close()
	eng := runner.NewCached(runner.New(4), primeSt).WithShard(0, 1)
	if err := eng.Run(jobs, nil); err != nil {
		t.Fatal(err)
	}
	if primeBE.puts != 0 || len(primeBE.putBatches) != 1 || primeBE.Len() != len(jobs) {
		t.Fatalf("prime pass: puts=%d batches=%v len=%d, want 0, one batch, %d",
			primeBE.puts, primeBE.putBatches, primeBE.Len(), len(jobs))
	}

	// CachedMap batches through the same sink.
	mapBE := newCountingBatchBackend()
	mapSt := store.New(0, mapBE)
	defer mapSt.Close()
	key := func(i int) string { return store.Key(runner.CacheVersion, fmt.Sprintf("wb-unit-%d", i)) }
	if err := runner.CachedMap(runner.NewCached(runner.New(2), mapSt), 9, key,
		func(i int) (int, error) { return i * i, nil }, nil); err != nil {
		t.Fatal(err)
	}
	if mapBE.puts != 0 || len(mapBE.putBatches) != 1 || mapBE.Len() != 9 {
		t.Fatalf("CachedMap: puts=%d batches=%v len=%d, want 0, one batch, 9",
			mapBE.puts, mapBE.putBatches, mapBE.Len())
	}
}

// TestCachedMapShardsPartitionKeySpace checks the prime-pass semantics:
// shards execute disjoint, collectively exhaustive subsets of the keyed
// units, folds never run, and the merged stores replay the exact fold.
func TestCachedMapShardsPartitionKeySpace(t *testing.T) {
	const n = 40
	key := func(i int) string { return store.Key(runner.CacheVersion, fmt.Sprintf("unit-%d", i)) }
	fn := func(i int) (int, error) { return i * i, nil }

	var base []int
	if err := runner.CachedMap(runner.NewCached(runner.New(2), nil), n, key, fn, func(i, v int) error {
		base = append(base, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const m = 3
	dirs := make([]string, m)
	executedTotal := 0
	for s := 0; s < m; s++ {
		dirs[s] = t.TempDir()
		st, err := store.Open(dirs[s], 0)
		if err != nil {
			t.Fatal(err)
		}
		executed := 0
		eng := runner.NewCached(runner.New(2), st).WithShard(s, m)
		if !eng.Priming() {
			t.Fatal("WithShard engine must report Priming")
		}
		err = runner.CachedMap(eng, n, key, func(i int) (int, error) {
			executed++
			return fn(i)
		}, func(i, v int) error {
			t.Error("prime pass must not fold")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if executed != st.Len() {
			t.Fatalf("shard %d executed %d units but stored %d", s, executed, st.Len())
		}
		executedTotal += executed
		st.Close()
	}
	if executedTotal != n {
		t.Fatalf("shards executed %d units in total, want exactly %d (disjoint and exhaustive)", executedTotal, n)
	}

	merged, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if _, err := merged.Merge(dirs...); err != nil {
		t.Fatal(err)
	}
	var replay []int
	err = runner.CachedMap(runner.NewCached(runner.New(4), merged), n, key, func(i int) (int, error) {
		return 0, fmt.Errorf("unit %d missed the merged store", i)
	}, func(i, v int) error {
		replay = append(replay, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay, base) {
		t.Fatalf("merged replay %v differs from direct run %v", replay, base)
	}
}

// TestCachedMapKeylessUnitsAlwaysExecute pins the "" contract: uncacheable
// units run in normal mode and are skipped by prime passes.
func TestCachedMapKeylessUnitsAlwaysExecute(t *testing.T) {
	st := store.NewMemory(0)
	key := func(i int) string { return "" }
	for round := 0; round < 2; round++ {
		executed := 0
		err := runner.CachedMap(runner.NewCached(runner.New(1), st), 5, key, func(i int) (int, error) {
			executed++
			return i, nil
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if executed != 5 {
			t.Fatalf("round %d: executed %d keyless units, want 5", round, executed)
		}
	}
	err := runner.CachedMap(runner.NewCached(runner.New(1), st).WithShard(0, 2), 5, key, func(i int) (int, error) {
		t.Error("prime pass executed a keyless unit")
		return 0, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
