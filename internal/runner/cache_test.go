package runner_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/store"
)

func collectRun(t *testing.T, eng *runner.CachedEngine, jobs []runner.Job) []runner.Result {
	t.Helper()
	var out []runner.Result
	if err := eng.Run(jobs, func(r runner.Result) error {
		if r.Err != nil {
			return r.Err
		}
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func testJobs() []runner.Job {
	var jobs []runner.Job
	for _, n := range []int{3, 4, 5} {
		jobs = append(jobs,
			runner.Job{Algo: "yang-anderson", N: n, Sched: machine.RoundRobinSpec()},
			runner.Job{Algo: "bakery", N: n, Sched: machine.RandomSpec(7)},
		)
	}
	return jobs
}

// TestCachedRunWarmIsByteIdenticalAndExecutesNothing is the cache's core
// contract: a warm run folds exactly the Results a cold run folded, and
// performs zero simulations (every keyed lookup hits).
func TestCachedRunWarmIsByteIdenticalAndExecutesNothing(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	jobs := testJobs()

	plain := collectRun(t, runner.NewCached(runner.New(2), nil), jobs)
	cold := collectRun(t, runner.NewCached(runner.New(2), st), jobs)
	if !reflect.DeepEqual(plain, cold) {
		t.Fatalf("cold cached run differs from uncached run:\n%+v\nvs\n%+v", cold, plain)
	}
	missesAfterCold := st.Stats().Misses
	if missesAfterCold == 0 {
		t.Fatal("cold run reported no misses — nothing was keyed")
	}

	for _, w := range []int{1, 4, 8} {
		warm := collectRun(t, runner.NewCached(runner.New(w), st), jobs)
		if !reflect.DeepEqual(warm, plain) {
			t.Fatalf("warm run (workers=%d) differs from uncached run", w)
		}
	}
	if got := st.Stats().Misses; got != missesAfterCold {
		t.Fatalf("warm runs executed %d simulations (miss count %d -> %d), want zero",
			got-missesAfterCold, missesAfterCold, got)
	}
}

// TestCachedRunSchedulesWarm mirrors the contract for schedule candidates,
// including the cached Decisions genome mutation search depends on.
func TestCachedRunSchedulesWarm(t *testing.T) {
	st := store.NewMemory(0)
	jobs := []runner.ScheduleJob{
		{Algo: "yang-anderson", N: 4, Sched: machine.PrefixGreedySpec([]int{0, 1, 2, 3, 2, 1}), KeepDecisions: 8},
		{Algo: "peterson", N: 3, Sched: machine.GreedyCostSpec(), KeepDecisions: 4},
		{Algo: "yang-anderson", N: 4, Sched: machine.SoloSpec([]int{0}), KeepDecisions: 8}, // stalls: discard, still cached
	}
	collect := func(eng *runner.CachedEngine) []runner.ScheduleResult {
		var out []runner.ScheduleResult
		if err := eng.RunSchedules(jobs, func(r runner.ScheduleResult) error {
			if r.Err != nil {
				return r.Err
			}
			out = append(out, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := collect(runner.NewCached(runner.New(2), nil))
	cold := collect(runner.NewCached(runner.New(2), st))
	missesAfterCold := st.Stats().Misses
	warm := collect(runner.NewCached(runner.New(4), st))
	if !reflect.DeepEqual(cold, plain) || !reflect.DeepEqual(warm, plain) {
		t.Fatalf("cached schedule results diverge:\nplain %+v\ncold  %+v\nwarm  %+v", plain, cold, warm)
	}
	if got := st.Stats().Misses; got != missesAfterCold {
		t.Fatal("warm schedule run re-simulated cached candidates")
	}
	if warm[2].Canonical {
		t.Fatalf("stalling candidate must cache as non-canonical: %+v", warm[2])
	}
}

// TestCachedMapShardsPartitionKeySpace checks the prime-pass semantics:
// shards execute disjoint, collectively exhaustive subsets of the keyed
// units, folds never run, and the merged stores replay the exact fold.
func TestCachedMapShardsPartitionKeySpace(t *testing.T) {
	const n = 40
	key := func(i int) string { return store.Key(runner.CacheVersion, fmt.Sprintf("unit-%d", i)) }
	fn := func(i int) (int, error) { return i * i, nil }

	var base []int
	if err := runner.CachedMap(runner.NewCached(runner.New(2), nil), n, key, fn, func(i, v int) error {
		base = append(base, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const m = 3
	dirs := make([]string, m)
	executedTotal := 0
	for s := 0; s < m; s++ {
		dirs[s] = t.TempDir()
		st, err := store.Open(dirs[s], 0)
		if err != nil {
			t.Fatal(err)
		}
		executed := 0
		eng := runner.NewCached(runner.New(2), st).WithShard(s, m)
		if !eng.Priming() {
			t.Fatal("WithShard engine must report Priming")
		}
		err = runner.CachedMap(eng, n, key, func(i int) (int, error) {
			executed++
			return fn(i)
		}, func(i, v int) error {
			t.Error("prime pass must not fold")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if executed != st.Len() {
			t.Fatalf("shard %d executed %d units but stored %d", s, executed, st.Len())
		}
		executedTotal += executed
		st.Close()
	}
	if executedTotal != n {
		t.Fatalf("shards executed %d units in total, want exactly %d (disjoint and exhaustive)", executedTotal, n)
	}

	merged, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if _, err := merged.Merge(dirs...); err != nil {
		t.Fatal(err)
	}
	var replay []int
	err = runner.CachedMap(runner.NewCached(runner.New(4), merged), n, key, func(i int) (int, error) {
		return 0, fmt.Errorf("unit %d missed the merged store", i)
	}, func(i, v int) error {
		replay = append(replay, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay, base) {
		t.Fatalf("merged replay %v differs from direct run %v", replay, base)
	}
}

// TestCachedMapKeylessUnitsAlwaysExecute pins the "" contract: uncacheable
// units run in normal mode and are skipped by prime passes.
func TestCachedMapKeylessUnitsAlwaysExecute(t *testing.T) {
	st := store.NewMemory(0)
	key := func(i int) string { return "" }
	for round := 0; round < 2; round++ {
		executed := 0
		err := runner.CachedMap(runner.NewCached(runner.New(1), st), 5, key, func(i int) (int, error) {
			executed++
			return i, nil
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if executed != 5 {
			t.Fatalf("round %d: executed %d keyless units, want 5", round, executed)
		}
	}
	err := runner.CachedMap(runner.NewCached(runner.New(1), st).WithShard(0, 2), 5, key, func(i int) (int, error) {
		t.Error("prime pass executed a keyless unit")
		return 0, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
