package runner

import (
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/trace"
)

// CacheVersion is the code-version salt folded into every store key in the
// repository (jobs, schedule candidates, sweep permutations, experiment
// units). Bump it whenever the simulator's observable outputs change —
// machine stepping, scheduler semantics, cost accounting, the encoding —
// so results written by an older binary become unreachable keys instead of
// stale answers. A cache populated under a different version is simply
// cold, never wrong.
const CacheVersion = "fanl06-sim-v3"

// CachedEngine wraps an Engine with an optional content-addressed result
// store and an optional prime-shard assignment. It is the handle the whole
// stack fans out through:
//
//   - with a nil store it behaves exactly like the bare Engine;
//   - with a store, Run / RunSchedules / CachedMap consult the store before
//     executing and write back after, and because results are folded in
//     submission order the folds see byte-identical values whether each
//     result came from cache or execution, at any worker count; against a
//     batching backend both directions travel batched — reads in one
//     prefetch mget up front, executed results in buffered mputs flushed at
//     the fan-out barrier — so a fan-out costs round trips per batch, not
//     per unit;
//   - with a shard assignment (WithShard) the engine becomes a prime pass:
//     statically enumerable fan-outs execute only this shard's missing keys
//     and skip their folds entirely, so m processes can split one sweep's
//     key space and later fold their stores together with store.Merge.
//
// Adaptive fan-outs (RunSchedules, whose batches are generated round by
// round from prior results) ignore the shard partition: they execute
// whatever they miss and cache everything, since their control flow cannot
// proceed without the values. Deterministic search makes every shard cache
// identical entries for them, so merging stays consistent.
type CachedEngine struct {
	*Engine
	cache   *store.Store
	shard   *store.Ring // nil = normal mode; non-nil = prime-only pass owning one member
	self    int         // this pass's member index in shard
	capture bool        // persist executed step logs into the store's blob tier
}

// NewCached wraps an engine with a result store; st may be nil for a plain
// uncached engine behind the same interface.
func NewCached(e *Engine, st *store.Store) *CachedEngine {
	return &CachedEngine{Engine: e, cache: st}
}

// WithShard returns a copy of the engine acting as a prime pass for shard i
// of m (0-based): the engine owns member i of the uniform m-member ring, so
// every process derives the identical partition from m alone. It requires a
// store — a shard pass without somewhere to write results would do nothing
// — and returns the engine unchanged when m <= 0 or no store is attached.
func (c *CachedEngine) WithShard(i, m int) *CachedEngine {
	if m <= 0 || c.cache == nil {
		return c
	}
	return c.WithShardRing(store.UniformRing(m), i)
}

// WithShardRing returns a copy of the engine acting as a prime pass owning
// member self of the given ring — the general form of WithShard, for
// fleets whose partition is a weighted named ring rather than a uniform
// count. A nil ring or out-of-range self returns the engine unchanged.
func (c *CachedEngine) WithShardRing(ring *store.Ring, self int) *CachedEngine {
	if ring == nil || self < 0 || self >= len(ring.Members) || c.cache == nil {
		return c
	}
	cp := *c
	cp.shard, cp.self = ring, self
	return &cp
}

// Cache returns the attached store (nil when uncached).
func (c *CachedEngine) Cache() *store.Store { return c.cache }

// WithCapture returns a copy of the engine that persists every executed
// unit's step log — the full model.Execution plus the machine's per-step
// changed flags, encoded by internal/trace — into the store's blob tier
// under the unit's own cache key. Cached hits capture nothing (their trace
// was captured when they were executed, or never will be); encoding runs
// on the worker after its simulation completes, never inside the stepping
// hot path. Without a store capture has nothing to write to, so the engine
// is returned unchanged.
func (c *CachedEngine) WithCapture(on bool) *CachedEngine {
	if c.cache == nil || c.capture == on {
		return c
	}
	cp := *c
	cp.capture = on
	return &cp
}

// Capturing reports whether executed step logs are being persisted.
func (c *CachedEngine) Capturing() bool { return c != nil && c.capture }

// captureTrace encodes one executed unit's step log and stores it under
// the unit's cache key. Runs on the executing worker, strictly after the
// simulation finished — the hot loop never sees it. Failures follow the
// store discipline: an unencodable or unstorable trace costs a future
// replay one re-simulation, never the run an error.
func (c *CachedEngine) captureTrace(k, algo string, n, horizon int, exec model.Execution, changed []bool) {
	if k == "" || len(exec) == 0 {
		return
	}
	blob, err := trace.EncodeRecord(trace.Record{Algo: algo, N: n, Horizon: horizon, Exec: exec, Changed: changed})
	if err != nil {
		return //repro:degrade an unencodable trace is dropped; the result itself is unaffected
	}
	c.cache.BlobPut(k, blob)
}

// executeJob runs one job, capturing its step log when capture is on.
func (c *CachedEngine) executeJob(k string, j Job) Result {
	if !c.capture {
		return Execute(j)
	}
	r, exec, changed := ExecuteTraced(j)
	if r.Err == nil {
		c.captureTrace(k, j.Algo, j.N, j.Horizon, exec, changed)
	}
	return r
}

// executeSchedule runs one candidate, capturing its step log when capture
// is on. Discarded candidates (truncated, stalled) capture too: their
// executions replay like any other, and a search post-mortem needs exactly
// the candidates that went wrong.
func (c *CachedEngine) executeSchedule(k string, j ScheduleJob) ScheduleResult {
	if !c.capture {
		return ExecuteSchedule(j)
	}
	r, exec, changed := ExecuteScheduleTraced(j)
	if r.Err == nil {
		c.captureTrace(k, j.Algo, j.N, j.Horizon, exec, changed)
	}
	return r
}

// Priming reports whether the engine is a prime-only shard pass, in which
// statically enumerable fan-outs skip folds and validation layered on fold
// results (e.g. sweep injectivity checks) must be skipped by the caller.
func (c *CachedEngine) Priming() bool { return c != nil && c.shard != nil }

// Owns reports whether this engine's shard assignment owns the key: always
// true in normal mode. Adaptive drivers (a search whose rounds depend on
// prior results) use it to shard at a coarser granule — skip the whole
// search cell when priming and another shard owns its key — since their
// inner fan-outs cannot be partitioned.
func (c *CachedEngine) Owns(key string) bool { return c.inShard(key) }

// inShard reports whether this engine's prime pass owns the key.
func (c *CachedEngine) inShard(key string) bool {
	return c.shard == nil || c.shard.Owner(key) == c.self
}

// prefetch warms the store's LRU tier with a whole fan-out's keys before
// the workers spread out, when the backend can batch — one gzipped mget
// against a remote store instead of one point request per job. It returns
// the keys it computed, indexed by job, so the fan-out reuses them instead
// of hashing every unit twice; the nil return (local backends, whose
// per-key reads are already cheap) means no keys were computed at all.
// Purely an optimization: hits, misses, and folded bytes are identical
// with or without it.
func (c *CachedEngine) prefetch(n int, key func(i int) string) []string {
	if !c.cache.Batched() {
		return nil
	}
	keys := make([]string, n)
	fetch := make([]string, 0, n)
	for i := range keys {
		keys[i] = key(i)
		if keys[i] != "" {
			fetch = append(fetch, keys[i])
		}
	}
	c.cache.Prefetch(fetch)
	return keys
}

// probe batch-resolves which of a prime pass's in-shard keys are already
// stored — presence only, no values on the wire (a prime pass never reads
// the results it skips). Like prefetch it returns the computed key index;
// both returns are nil when the backend cannot batch presence probes,
// meaning "compute and probe per key".
func (c *CachedEngine) probe(n int, key func(i int) string) (keys []string, present map[string]bool) {
	if !c.cache.ProbeBatched() {
		return nil, nil
	}
	keys = make([]string, n)
	ask := make([]string, 0, n)
	for i := range keys {
		keys[i] = key(i)
		if keys[i] != "" && c.inShard(keys[i]) {
			ask = append(ask, keys[i])
		}
	}
	return keys, c.cache.Present(ask)
}

// keyAt returns the i'th unit's cache key, reusing a batch-computed index
// when one exists.
func keyAt(keys []string, key func(i int) string, i int) string {
	if keys != nil {
		return keys[i]
	}
	return key(i)
}

// sink returns the write path for one fan-out and its flush barrier. When
// the backend can batch, executed results are buffered and pushed as one
// mput per fan-out (the write-side mirror of prefetch) instead of one
// synchronous round trip per miss; the flush runs after the fan-out's last
// unit so every write is durable — and visible to other processes — before
// the engine returns. Local backends keep the direct per-key path, whose
// appends are already cheap. Folds are unaffected either way: they consume
// the executed values, and the buffer serves in-process reads from the LRU
// tier immediately.
func (c *CachedEngine) sink() (store.Putter, func()) {
	if !c.cache.Batched() {
		return c.cache, func() {}
	}
	wb := store.NewWriteBuffer(c.cache, 0)
	return wb, wb.Flush
}

// stored reports whether a prime pass may skip the unit under key:
// present holds batch-established presence when a probe ran (a stale
// "absent" only costs a re-execution whose identical bytes deduplicate),
// and a per-key Has answers otherwise.
func (c *CachedEngine) stored(present map[string]bool, key string) bool {
	if present != nil {
		return present[key]
	}
	return c.cache.Has(key)
}

// CachedMap is MapOrdered with a content-addressed memo in front: fn(i) is
// executed only when key(i) misses the store, and its JSON-round-tripped
// value feeds the fold otherwise. T must therefore be a pure value type
// whose JSON encoding round-trips exactly (ints, strings, bools, float64s,
// slices of those) — which also makes cached and executed folds
// byte-identical. A key of "" marks the unit uncacheable: it is always
// executed in normal mode and never executed by a prime pass (a keyless
// unit cannot be assigned to a shard).
//
// In prime mode the fold is never called: the pass exists to fill the
// store, and only this shard's missing keys are executed. Errors from fn
// still abort — a prime pass surfaces real simulation failures.
func CachedMap[T any](ce *CachedEngine, n int, key func(i int) string, fn func(i int) (T, error), fold func(i int, v T) error) error {
	if ce.cache == nil {
		return MapOrdered(ce.Engine, n, fn, fold)
	}
	sink, flush := ce.sink()
	defer flush()
	if ce.Priming() {
		keys, present := ce.probe(n, key)
		return ce.Each(n, func(i int) error {
			k := keyAt(keys, key, i)
			if k == "" || !ce.inShard(k) || ce.stored(present, k) {
				return nil
			}
			v, err := fn(i)
			if err != nil {
				return err
			}
			store.PutJSON(sink, k, v)
			return nil
		})
	}
	keys := ce.prefetch(n, key)
	return MapOrdered(ce.Engine, n, func(i int) (T, error) {
		k := keyAt(keys, key, i)
		if k != "" {
			if v, ok := store.GetJSON[T](ce.cache, k); ok {
				return v, nil
			}
		}
		v, err := fn(i)
		if err == nil && k != "" {
			store.PutJSON(sink, k, v)
		}
		return v, err
	}, fold)
}

// RunOne executes a single job through the store: a cache hit costs no
// simulation, a miss executes on the calling goroutine (no worker pool —
// request-scoped callers bring their own concurrency) and writes straight
// back so the result is immediately visible to every other goroutine
// sharing the store. Unlike the fan-out paths there is no write buffering:
// one unit is one put. Safe for concurrent use — the engine's fields are
// immutable after construction and the store is goroutine-safe. Errors are
// returned, never cached, exactly like the batch paths.
func (c *CachedEngine) RunOne(j Job) (cost.Report, error) {
	if c.cache == nil {
		r := Execute(j)
		return r.Report, r.Err
	}
	k := j.CacheKey()
	if p, ok := store.GetJSON[jobPayload](c.cache, k); ok {
		return p.Report, nil
	}
	r := c.executeJob(k, j)
	if r.Err != nil {
		return cost.Report{}, r.Err
	}
	store.PutJSON(c.cache, k, jobPayload{Report: r.Report})
	return r.Report, nil
}

// jobKeyParts is the canonical content of a Job key. Horizon is hashed as
// given (0 and an explicit machine.DefaultHorizon(N) are conservatively
// distinct keys).
type jobKeyParts struct {
	Op      string       `json:"op"`
	Algo    string       `json:"algo"`
	N       int          `json:"n"`
	Sched   machine.Spec `json:"sched"`
	Horizon int          `json:"horizon"`
	Seed    int64        `json:"seed"`
}

// CacheKey returns the job's content address under the current
// CacheVersion, with the scheduler spec canonicalized.
func (j Job) CacheKey() string {
	return store.Key(CacheVersion, jobKeyParts{
		Op: "job", Algo: j.Algo, N: j.N, Sched: j.Sched.Canon(), Horizon: j.Horizon, Seed: j.Seed,
	})
}

// jobPayload is the cached portion of a successful Result. Errors are never
// cached: a failing job re-executes (and re-fails) on every run.
type jobPayload struct {
	Report cost.Report `json:"report"`
}

// Run is Engine.Run behind the store: each job's Report is served from
// cache when present and written back after execution otherwise. Folds see
// exactly the Results a bare engine would deliver. In prime mode only this
// shard's missing keys execute and the fold is skipped.
func (c *CachedEngine) Run(jobs []Job, fold func(Result) error) error {
	if c.cache == nil {
		return c.Engine.Run(jobs, fold)
	}
	jobKey := func(i int) string { return jobs[i].CacheKey() }
	sink, flush := c.sink()
	defer flush()
	if c.Priming() {
		keys, present := c.probe(len(jobs), jobKey)
		return c.Each(len(jobs), func(i int) error {
			k := keyAt(keys, jobKey, i)
			if k == "" || !c.inShard(k) || c.stored(present, k) {
				return nil
			}
			r := c.executeJob(k, jobs[i])
			if r.Err != nil {
				return r.Err
			}
			store.PutJSON(sink, k, jobPayload{Report: r.Report})
			return nil
		})
	}
	keys := c.prefetch(len(jobs), jobKey)
	return MapOrdered(c.Engine, len(jobs), func(i int) (Result, error) {
		k := keyAt(keys, jobKey, i)
		if p, ok := store.GetJSON[jobPayload](c.cache, k); ok {
			return Result{Index: i, Job: jobs[i], Report: p.Report}, nil
		}
		r := c.executeJob(k, jobs[i])
		r.Index = i
		if r.Err == nil {
			store.PutJSON(sink, k, jobPayload{Report: r.Report})
		}
		return r, nil
	}, func(i int, r Result) error {
		return fold(r)
	})
}

// scheduleKeyParts is the canonical content of a ScheduleJob key.
// KeepDecisions is part of the key because it bounds the cached genome.
type scheduleKeyParts struct {
	Op      string       `json:"op"`
	Algo    string       `json:"algo"`
	N       int          `json:"n"`
	Sched   machine.Spec `json:"sched"`
	Horizon int          `json:"horizon"`
	Keep    int          `json:"keep"`
}

// CacheKey returns the candidate's content address under the current
// CacheVersion, with the scheduler spec canonicalized — so the same genome
// re-proposed in a later search round (or another search sharing the store)
// is a hit, not a simulation.
func (j ScheduleJob) CacheKey() string {
	return store.Key(CacheVersion, scheduleKeyParts{
		Op: "sched", Algo: j.Algo, N: j.N, Sched: j.Sched.Canon(), Horizon: j.Horizon, Keep: j.KeepDecisions,
	})
}

// schedulePayload is the cached portion of a ScheduleResult whose Err is
// nil — including discarded candidates (truncated, stalled, or rejected by
// the cost model), which cache as non-canonical zero-report entries so a
// warm search re-discards them without re-simulating.
type schedulePayload struct {
	Report    cost.Report `json:"report"`
	Canonical bool        `json:"canonical"`
	Decisions []int       `json:"decisions"`
}

// RunSchedules is Engine.RunSchedules behind the store. It never shards:
// schedule batches are generated adaptively (round r's candidates depend on
// round r-1's fold), so a prime pass executes its misses like a normal run
// — every shard caches identical entries for the same search, and the folds
// run because the search itself needs them.
func (c *CachedEngine) RunSchedules(jobs []ScheduleJob, fold func(ScheduleResult) error) error {
	if c.cache == nil {
		return c.Engine.RunSchedules(jobs, fold)
	}
	jobKey := func(i int) string { return jobs[i].CacheKey() }
	sink, flush := c.sink()
	defer flush()
	keys := c.prefetch(len(jobs), jobKey)
	return MapOrdered(c.Engine, len(jobs), func(i int) (ScheduleResult, error) {
		k := keyAt(keys, jobKey, i)
		if p, ok := store.GetJSON[schedulePayload](c.cache, k); ok {
			return ScheduleResult{
				Index: i, Job: jobs[i],
				Report: p.Report, Canonical: p.Canonical, Decisions: p.Decisions,
			}, nil
		}
		r := c.executeSchedule(k, jobs[i])
		r.Index = i
		if r.Err == nil {
			store.PutJSON(sink, k, schedulePayload{Report: r.Report, Canonical: r.Canonical, Decisions: r.Decisions})
		}
		return r, nil
	}, func(i int, r ScheduleResult) error {
		return fold(r)
	})
}
