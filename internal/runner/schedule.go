package runner

import (
	"errors"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/model"
)

// ScheduleJob is the schedule-search unit of work: one run of a named
// algorithm under a candidate schedule, scored even when the candidate
// fails to complete a canonical execution. Unlike Job — whose Execute
// demands a canonical run and treats anything else as an error —
// ExecuteSchedule reports what actually happened, so a search driver can
// discard truncated or stalled candidates instead of aborting the batch,
// and never mistakes a truncated execution for a cheap one.
type ScheduleJob struct {
	// Algo is a registered algorithm name (see NewFactory).
	Algo string
	// N is the number of processes.
	N int
	// Sched describes the candidate schedule; a fresh scheduler is built
	// per job, so a ScheduleJob stays a pure value across workers.
	Sched machine.Spec
	// Horizon is the step budget; 0 means machine.DefaultHorizon(N).
	Horizon int
	// KeepDecisions bounds the recorded decision sequence: the first
	// KeepDecisions steps' acting processes are returned in the result,
	// giving mutation-based search its editable genome. 0 records none.
	KeepDecisions int
}

// ScheduleResult carries one candidate evaluation back for ordered folding.
type ScheduleResult struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Job echoes the executed job.
	Job ScheduleJob
	// Report is the cost of whatever execution the schedule produced —
	// complete or truncated. Only meaningful when Err is nil; zero when a
	// non-canonical trace was rejected by the cost model (such candidates
	// are discards, not errors).
	Report cost.Report
	// Canonical is true when the run completed a canonical execution:
	// every process halted after exactly one critical-section cycle.
	// Horizon exhaustion and scheduler stalls leave it false.
	Canonical bool
	// Decisions is the acting process of each of the first KeepDecisions
	// steps.
	Decisions []int
	// Err is set for hard failures only (unknown algorithm, bad scheduler
	// spec, ill-formed step) — defects, not expensive schedules.
	Err error
}

// ExecuteSchedule runs one candidate schedule to completion or truncation.
// ErrHorizon and ErrStalled are not errors here: they mark the result
// non-canonical and the truncated execution is still measured, so a fold
// can report on it without ever ranking it against complete executions.
func ExecuteSchedule(j ScheduleJob) ScheduleResult {
	res, _, _ := ExecuteScheduleTraced(j)
	return res
}

// ExecuteScheduleTraced is ExecuteSchedule plus the step log and per-step
// changed flags, for trace capture. A hard failure (Err set) returns nil
// trace and flags; a discarded candidate (non-canonical, zero report)
// still returns whatever execution it produced — a truncated run replays
// like any other.
func ExecuteScheduleTraced(j ScheduleJob) (ScheduleResult, model.Execution, []bool) {
	res := ScheduleResult{Job: j}
	f, err := NewFactory(j.Algo, j.N)
	if err != nil {
		res.Err = err
		return res, nil, nil
	}
	sched, err := j.Sched.New()
	if err != nil {
		res.Err = err
		return res, nil, nil
	}
	horizon := j.Horizon
	if horizon <= 0 {
		horizon = machine.DefaultHorizon(j.N)
	}
	s := machine.NewSystem(f)
	exec, runErr := machine.Run(s, sched, horizon)
	if runErr != nil {
		var h machine.ErrHorizon
		var st machine.ErrStalled
		if !errors.As(runErr, &h) && !errors.As(runErr, &st) {
			res.Err = runErr
			return res, nil, nil
		}
	} else {
		canonical := s.AllHalted()
		for i := 0; canonical && i < j.N; i++ {
			if s.CSCompleted(i) != 1 {
				canonical = false
			}
		}
		res.Canonical = canonical
	}
	if k := j.KeepDecisions; k > 0 {
		if k > len(exec) {
			k = len(exec)
		}
		res.Decisions = make([]int, k)
		for i := 0; i < k; i++ {
			res.Decisions[i] = exec[i].Proc
		}
	}
	rep, err := cost.Measure(f, exec)
	if err != nil {
		if res.Canonical {
			// A canonical execution the cost model rejects is a defect.
			res.Err = err
			return res, nil, nil
		}
		// A truncated or otherwise non-canonical trace the cost model
		// rejects is a discard, not a defect: the candidate was already
		// unscorable, and one bad candidate must never abort a whole search
		// batch. Report stays zero and Canonical stays false, so folds
		// discard it exactly like any other incomplete run.
		return res, exec, s.Changed()
	}
	res.Report = rep
	return res, exec, s.Changed()
}

// RunSchedules executes the candidate jobs on the engine's worker pool and
// calls fold with each ScheduleResult in submission order, so search
// drivers that keep a running best are byte-deterministic at every worker
// count. Results whose Err is non-nil still reach the fold.
func (e *Engine) RunSchedules(jobs []ScheduleJob, fold func(ScheduleResult) error) error {
	return MapOrdered(e, len(jobs), func(i int) (ScheduleResult, error) {
		r := ExecuteSchedule(jobs[i])
		r.Index = i
		return r, nil
	}, func(i int, r ScheduleResult) error {
		return fold(r)
	})
}
