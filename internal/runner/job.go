package runner

import (
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/program"
	"repro/internal/rmw"
)

// Job is a pure, seed-addressed unit of simulator work: one canonical
// execution of a named algorithm under a scheduler spec. Everything a Job
// needs is carried by value — factory name, n, scheduler spec, seed,
// horizon — so Execute can build all mutable state (factory, system,
// scheduler) fresh inside the worker and two workers never share anything
// writable.
type Job struct {
	// Algo is a registered algorithm name ("yang-anderson", "bakery", …)
	// or one of the RMW locks ("tas", "mcs").
	Algo string
	// N is the number of processes.
	N int
	// Sched describes the scheduler; a fresh instance is built per job.
	Sched machine.Spec
	// Horizon is the step budget; 0 means machine.DefaultHorizon(N).
	Horizon int
	// Seed is recorded for provenance. Callers fold it into Sched.Seed (or
	// derive it with MixSeed) when the job's behaviour should depend on it.
	Seed int64
}

// Result carries one job's outputs back for ordered aggregation: the
// execution's cost report under every model, and any error. Err is
// carried in-band (rather than aborting the pool) so a fold can decide
// whether an individual failure sinks the whole batch. The execution
// trace itself is not retained — a batch of Results must stay small
// however long the traces were; folds that need traces should run the
// trace-consuming work inside the job.
type Result struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Job echoes the executed job.
	Job Job
	// Report is the execution's cost under the SC, CC and DSM models.
	Report cost.Report
	// Err is the first error encountered running the job, if any.
	Err error
}

// NewFactory resolves an algorithm name to a fresh factory instance,
// accepting both the register-only algorithms of internal/mutex and the
// RMW locks of internal/rmw. Factories are immutable once built (programs
// and layouts are shared read-only), so the instance may be used from any
// worker; it is still constructed per job so no lifecycle question arises.
func NewFactory(name string, n int) (program.Factory, error) {
	switch name {
	case "tas":
		return rmw.TestAndSet(n)
	case "mcs":
		return rmw.MCS(n)
	default:
		return mutex.New(name, n)
	}
}

// Execute runs one job to completion: resolve the factory, build the
// scheduler from its spec, drive a canonical execution, and measure its
// cost. It never shares state with other invocations. Errors are returned
// unwrapped — the Result already carries the job's coordinates, and folds
// add their own context.
func Execute(j Job) Result {
	res, _, _ := ExecuteTraced(j)
	return res
}

// ExecuteTraced is Execute plus the raw material trace capture persists:
// the execution's step log and the machine's per-step changed flags. Both
// already exist when the run finishes (the System retains them), so the
// traced form costs nothing over Execute — callers that drop them get the
// exact old behaviour. On error the trace and flags are nil: a failed job
// has no execution worth replaying.
func ExecuteTraced(j Job) (Result, model.Execution, []bool) {
	res := Result{Job: j}
	f, err := NewFactory(j.Algo, j.N)
	if err != nil {
		res.Err = err
		return res, nil, nil
	}
	sched, err := j.Sched.New()
	if err != nil {
		res.Err = err
		return res, nil, nil
	}
	exec, changed, err := machine.RunCanonicalChanged(f, sched, j.Horizon)
	if err != nil {
		res.Err = err
		return res, nil, nil
	}
	if res.Report, res.Err = cost.Measure(f, exec); res.Err != nil {
		return res, nil, nil
	}
	return res, exec, changed
}

// Run executes the jobs on the engine's worker pool and calls fold with
// each Result in submission order. Results whose Err is non-nil still
// reach the fold; returning an error from the fold stops the batch.
func (e *Engine) Run(jobs []Job, fold func(Result) error) error {
	return MapOrdered(e, len(jobs), func(i int) (Result, error) {
		r := Execute(jobs[i])
		r.Index = i
		return r, nil
	}, func(i int, r Result) error {
		return fold(r)
	})
}
