package runner_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/runner"
)

func TestExecuteScheduleCanonical(t *testing.T) {
	r := runner.ExecuteSchedule(runner.ScheduleJob{
		Algo: "yang-anderson", N: 4, Sched: machine.RoundRobinSpec(), KeepDecisions: 6,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.Canonical {
		t.Fatal("round-robin run should be canonical")
	}
	if r.Report.SC <= 0 || r.Report.Steps <= 0 {
		t.Fatalf("empty report: %+v", r.Report)
	}
	if len(r.Decisions) != 6 {
		t.Fatalf("recorded %d decisions, want 6", len(r.Decisions))
	}
	for i, p := range r.Decisions {
		if p < 0 || p >= 4 {
			t.Fatalf("decision %d names process %d", i, p)
		}
	}
}

func TestExecuteScheduleTruncatedIsNotCanonical(t *testing.T) {
	r := runner.ExecuteSchedule(runner.ScheduleJob{
		Algo: "yang-anderson", N: 4, Sched: machine.RoundRobinSpec(), Horizon: 7,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Canonical {
		t.Fatal("a 7-step horizon cannot complete a canonical 4-process run")
	}
	if r.Report.Steps != 7 {
		t.Fatalf("truncated run measured %d steps, want 7", r.Report.Steps)
	}
}

func TestExecuteScheduleBadSpecErrors(t *testing.T) {
	if r := runner.ExecuteSchedule(runner.ScheduleJob{Algo: "yang-anderson", N: 4, Sched: machine.Spec{Kind: "fifo"}}); r.Err == nil {
		t.Fatal("unknown scheduler spec accepted")
	}
	if r := runner.ExecuteSchedule(runner.ScheduleJob{Algo: "no-such-algo", N: 4, Sched: machine.RoundRobinSpec()}); r.Err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunSchedulesFoldsInOrder(t *testing.T) {
	jobs := make([]runner.ScheduleJob, 9)
	for i := range jobs {
		jobs[i] = runner.ScheduleJob{Algo: "bakery", N: 3, Sched: machine.RandomSpec(int64(i))}
	}
	var order []int
	err := runner.New(4).RunSchedules(jobs, func(r runner.ScheduleResult) error {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		order = append(order, r.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("fold order %v not submission order", order)
		}
	}
}
