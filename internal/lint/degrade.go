package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// DegradePackages selects where the degrade analyzer enforces: the store
// and remote layers, whose contract is "a cache failure is a counted
// miss or a counted degraded write — never a silent nothing". These are
// exactly the packages where PRs 4 and 5 each fixed a silently swallowed
// error by hand (far-tier write failures, phantom batch adds).
var DegradePackages = regexp.MustCompile(`^repro/internal/(store|remote)($|/)`)

// Degrade forbids dropping an error value on the floor. An error must be
// returned, bound to a variable (and hence inspected — the compiler
// already rejects unused variables), or explicitly discarded on a line
// annotated //repro:degrade <reason>. Flagged forms:
//
//   - f() as a statement, where f returns an error;
//   - x, _ := f() (or _ =) with the blank in an error-typed position;
//   - defer f() / go f(), where f returns an error.
//
// The counted-into-Stats escape the interface documents is not special-
// cased: counting requires observing the error (`if err != nil { … }`),
// which binds it to a name and satisfies the rule naturally.
var Degrade = &Analyzer{
	Name: "degrade",
	Doc:  "store/remote code must count, return, or justify every error; none fall silently",
	Run:  runDegrade,
}

func runDegrade(p *Pass) {
	if !DegradePackages.MatchString(basePkgPath(p.Pkg.Path())) {
		return
	}
	for _, f := range p.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(p, call, "result")
				}
			case *ast.DeferStmt:
				checkDroppedCall(p, n.Call, "deferred result")
			case *ast.GoStmt:
				checkDroppedCall(p, n.Call, "goroutine result")
			case *ast.AssignStmt:
				checkBlankError(p, n)
			}
			return true
		})
	}
}

// checkDroppedCall flags a call statement whose results include an error.
func checkDroppedCall(p *Pass, call *ast.CallExpr, what string) {
	if !resultHasError(p, call) {
		return
	}
	if p.Dirs.LineHas(p.Fset, call.Pos(), "degrade") {
		return
	}
	name := "call"
	if fn := calleeFunc(p.Info, call); fn != nil {
		name = fn.Name()
	}
	p.Reportf(call.Pos(), "%s of %s drops its error: return it, count it into Stats, or annotate //repro:degrade <reason>", what, name)
}

// checkBlankError flags blank-identifier assignment of an error value.
func checkBlankError(p *Pass, s *ast.AssignStmt) {
	// Positional types of the RHS: either a 1:1 assignment or a single
	// multi-result call.
	typeAt := func(i int) types.Type {
		if len(s.Rhs) == len(s.Lhs) {
			if tv, ok := p.Info.Types[s.Rhs[i]]; ok {
				return tv.Type
			}
			return nil
		}
		if len(s.Rhs) != 1 {
			return nil
		}
		tv, ok := p.Info.Types[s.Rhs[0]]
		if !ok {
			return nil
		}
		if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
			return tuple.At(i).Type()
		}
		return nil
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := typeAt(i)
		if t == nil || !isErrorType(t) {
			continue
		}
		if p.Dirs.LineHas(p.Fset, s.Pos(), "degrade") {
			continue
		}
		p.Reportf(lhs.Pos(), "error discarded into _: bind and count it, or annotate //repro:degrade <reason>")
	}
}

// resultHasError reports whether the call's result includes an error.
func resultHasError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
