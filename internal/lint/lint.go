// Package lint is reprolint: a suite of static analyzers that turn the
// repo's dynamic invariants — byte-identical deterministic output,
// zero-allocation hot paths, degrade-to-miss error discipline, and
// mutex-guarded shared state — into properties checked at `go vet` time,
// before any smoke test runs.
//
// The suite ships four analyzers:
//
//   - determinism: in the pure-simulation and output-producing packages,
//     map iteration must be provably order-insensitive (or sorted, or
//     justified with //repro:unordered), wall-clock reads must be
//     justified with //repro:wallclock, and math/rand must be seeded.
//   - hotpath: functions annotated //repro:hotpath may only call other
//     hotpath (or explicitly //repro:hotpath-ok) functions, never fmt,
//     closures, or []byte↔string conversions — the PR-6 zero-alloc work
//     as a checked contract instead of a benchmark artifact.
//   - degrade: in the store/remote packages, no error value may be
//     dropped on the floor; every discard needs a //repro:degrade
//     justification (the discipline behind "a cache failure is a miss,
//     never a wrong answer").
//   - locked: struct fields annotated //repro:guardedby mu may only be
//     accessed by functions that lock that mutex (or that declare the
//     caller holds it with //repro:locked mu).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic, package facts) but is built on
// the standard library alone — go/ast, go/types, go/importer — because
// the build environment is hermetic: no module downloads, no non-stdlib
// dependencies. cmd/reprolint drives the suite both standalone (loading
// packages via `go list -export`) and as a `go vet -vettool`, speaking
// the vet unitchecker protocol directly (see unitchecker.go). Swapping
// the framework for x/tools later would change only this plumbing, not
// the analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named static check. Run inspects a single package
// through its Pass and reports diagnostics; it must be stateless across
// packages (cross-package state travels as facts).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full reprolint suite in its canonical order.
// Order matters only for deterministic output: diagnostics are reported
// analyzer by analyzer, each in file/position order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, Degrade, Locked}
}

// Facts is one analyzer's exported facts for one package: opaque
// key/value strings (the hotpath analyzer keys by types.Func.FullName).
type Facts = map[string]string

// PkgFacts maps analyzer name → that analyzer's facts for one package.
type PkgFacts = map[string]Facts

// FactsByPkg maps package path → PkgFacts. Paths are normalized with
// basePkgPath, so test-variant spellings resolve to the plain path.
type FactsByPkg = map[string]PkgFacts

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic the way `go vet` expects on stderr.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // every parsed file, including _test.go
	Pkg      *types.Package
	Info     *types.Info
	Dirs     *Directives // the package's parsed //repro: directives

	deps    FactsByPkg
	exports Facts
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the package's non-test files — what the analyzers
// inspect. Test files still participate in type checking (the unitchecker
// protocol hands us augmented test variants), but the invariants reprolint
// enforces are about shipped code, and tests legitimately drop errors,
// range over maps, and read clocks.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if !strings.HasSuffix(name, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// ExportFact publishes a fact of this pass's analyzer for dependent
// packages (and re-exported transitively through their vetx files).
func (p *Pass) ExportFact(key, val string) {
	p.exports[key] = val
}

// DepFact looks up a fact exported by this same analyzer for another
// package (or an earlier fact of this very package in standalone runs).
func (p *Pass) DepFact(pkgPath, key string) (string, bool) {
	pf, ok := p.deps[basePkgPath(pkgPath)]
	if !ok {
		return "", false
	}
	v, ok := pf[p.Analyzer.Name][key]
	return v, ok
}

// basePkgPath strips the test-variant suffix `go vet` appends to
// augmented packages ("repro/internal/store [repro/internal/store.test]"),
// so package-scoped configuration and facts see one canonical path.
func basePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// RunPackage runs every analyzer over one type-checked package, appending
// to diags, and returns the package's exported facts (its own annotations
// plus every dependency fact, re-exported so facts flow transitively even
// when a consumer only sees its direct dependencies' vetx files).
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps FactsByPkg, analyzers []*Analyzer, diags *[]Diagnostic) PkgFacts {
	pass := &Pass{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		deps:  deps,
		diags: diags,
	}
	pass.Dirs = ParseDirectives(fset, pass.SourceFiles())
	*diags = append(*diags, pass.Dirs.Errs...)

	out := PkgFacts{}
	for _, a := range analyzers {
		pass.Analyzer = a
		pass.exports = Facts{}
		a.Run(pass)
		if len(pass.exports) > 0 {
			out[a.Name] = pass.exports
		}
	}
	return out
}

// funcKey returns the cross-package identity of a function or method —
// types.Func.FullName, e.g. "repro/internal/program.NewAutomaton" or
// "(*repro/internal/program.Automaton).Feed" — used both as the fact key
// exported by the hotpath analyzer and as the whitelist spelling.
func funcKey(fn *types.Func) string {
	return fn.FullName()
}

// calleeFunc resolves a call expression to the static *types.Func it
// invokes, or nil for dynamic calls (func values, closures) and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
