// Package experiments exercises the determinism analyzer: the module
// path matches its default package regexp, so every rule is live here.
package experiments

import (
	"math/rand"
	"sort"
	"time"
)

// Flagged: a package-level initializer capturing the clock.
var nowHook = time.Now // want `time.Now in a deterministic package`

// Flagged: map iteration order reaches the appended result unsorted.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `slice "keys" is built from map iteration but never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// Accepted: the append is absorbed by a sort in the same function.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Accepted: commutative integer fold plus map/set writes.
func countAndIndex(m map[string]int) (int, map[string]bool) {
	total := 0
	seen := make(map[string]bool)
	for k, v := range m {
		total += v
		seen[k] = true
	}
	return total, seen
}

// Flagged: calling out of the loop body makes order observable.
func emitEach(m map[string]int, emit func(string)) {
	for k := range m { // want `map iteration order can reach the result`
		emit(k)
	}
}

// Flagged: string concatenation is an ordered fold.
func joined(m map[string]int) string {
	s := ""
	for k := range m { // want `map iteration order can reach the result`
		s += k
	}
	return s
}

// Accepted: an explicit justification takes responsibility for the order.
func emitEachJustified(m map[string]int, emit func(string)) {
	for k := range m { //repro:unordered sink dedupes, order cannot surface
		emit(k)
	}
}

// Flagged: wall-clock reads, as a call and as a captured func value.
func timestamps() (time.Time, func() time.Time) {
	now := time.Now() // want `time.Now in a deterministic package`
	f := time.Now     // want `time.Now in a deterministic package`
	return now, f
}

// Accepted: justified wall-clock use for non-canonical metadata.
func progressClock() time.Time {
	return time.Now() //repro:wallclock stderr progress line only
}

// Flagged: the global math/rand source is unseeded.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global unseeded source`
}

// Accepted: a seeded generator replays byte-identically.
func shuffleSeeded(xs []int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
