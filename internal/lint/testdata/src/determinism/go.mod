module repro/internal/experiments

go 1.24
