// Package prim provides annotated primitives for the cross-package
// hot-path fact test: the root package calls these and must see the
// annotations through exported facts, not source.
package prim

// Add is a checked hot-path primitive.
//
//repro:hotpath
func Add(a, b int) int { return a + b }

// Explain is an audited cold helper hot paths may call.
//
//repro:hotpath-ok formats an error message off the hot path
func Explain(code int) string {
	return string(rune('a' + code))
}

// Plain carries no annotation; hot paths must not call it.
func Plain(a int) int { return a * 2 }

// Stepper is dispatched from hot loops: annotating the interface method
// makes every call through it legal and obliges implementations.
type Stepper interface {
	//repro:hotpath
	Step(n int) int
}
