module hotfix.example/hot

go 1.24
