// Package hot exercises the hotpath analyzer, including cross-package
// facts from the prim subpackage.
package hot

import (
	"encoding/binary"
	"fmt"

	"hotfix.example/hot/prim"
)

// Accepted: calls annotated deps (same-package and cross-package via
// facts), builtins, an audited helper, and an annotated interface method.
//
//repro:hotpath
func Inner(xs []int, s prim.Stepper) int {
	total := 0
	for _, x := range xs {
		total = prim.Add(total, local(x))
		total = s.Step(total)
	}
	if total < 0 {
		_ = prim.Explain(total)
	}
	return total
}

//repro:hotpath
func local(x int) int { return x &^ 1 }

// Accepted: whitelisted stdlib primitive.
//
//repro:hotpath
func encode(buf []byte, v uint64) int {
	return binary.PutUvarint(buf, v)
}

// Flagged: every banned construct in one place.
//
//repro:hotpath
func Sins(xs []byte, f func() int) string {
	s := string(xs)                 // want `hot path converts \[\]byte to string`
	msg := fmt.Sprintf("bad %q", s) // want `hot path calls fmt.Sprintf`
	g := func() int { return f() }  // want `hot path creates a closure`
	go g()                          // want `hot path starts a goroutine`
	defer g()                       // want `hot path defers`
	_ = f()                         // want `hot path makes a dynamic call`
	_ = prim.Plain(1)               // want `hot path calls hotfix.example/hot/prim.Plain, which is neither`
	return msg
}

// Mixer is a local hot interface: implementations below must carry the
// annotation themselves.
type Mixer interface {
	//repro:hotpath
	Mix(a, b int) int
}

// GoodMixer complies.
type GoodMixer struct{}

//repro:hotpath
func (GoodMixer) Mix(a, b int) int { return a ^ b }

// BadMixer implements Mixer but forgot the annotation.
type BadMixer struct{}

func (BadMixer) Mix(a, b int) int { return a + b } // want `Mix implements hot interface method`

// blend dispatches through the local hot interface — accepted.
//
//repro:hotpath
func blend(m Mixer, a, b int) int { return m.Mix(a, b) }

// Flagged: conflicting annotations.
//
//repro:hotpath
//repro:hotpath-ok wants to be both
func Confused() {} // want `Confused is both //repro:hotpath and //repro:hotpath-ok`
