module directives.example/m

go 1.24
