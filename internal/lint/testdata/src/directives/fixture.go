// Package directives exercises the directive grammar checks that report
// on declaration lines. (Cases whose diagnostic lands on the comment's
// own line — missing justifications, floating directives — are covered
// by the ParseDirectives unit tests.)
package directives

import "sync"

//repro:hotpath with trailing junk // want `//repro:hotpath takes no argument`

//repro:turbo go faster // want `unknown directive //repro:turbo`

//repro:guardedby two mutexes // want `//repro:guardedby needs exactly one mutex field name`

// Misattached directives: each names a target kind it cannot guard.

//repro:guardedby mu
func notAField() {} // want `//repro:guardedby belongs on a struct field, not a function`

// S hosts field-level misattachments.
type S struct {
	mu sync.Mutex
	//repro:locked mu
	a int // want `//repro:locked does not apply to a struct field`
	//repro:hotpath
	b int // want `//repro:hotpath does not apply to a struct field`
}

// I hosts an interface-method misattachment.
type I interface {
	//repro:hotpath-ok audited elsewhere
	M() // want `//repro:hotpath-ok does not apply to an interface method`
}

// Valid uses, so the fixture also proves the grammar accepts the real
// forms without noise.

//repro:hotpath
func fine() { helper() }

//repro:hotpath-ok audited allocation
func helper() {}
