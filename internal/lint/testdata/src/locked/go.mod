module locked.example/m

go 1.24
