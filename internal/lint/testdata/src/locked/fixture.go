// Package locked exercises the locked analyzer's //repro:guardedby
// contract.
package locked

import "sync"

// Counter guards its state with mu.
type Counter struct {
	mu sync.Mutex
	n  int //repro:guardedby mu
}

// Accepted: lock visibly held.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Flagged: no lock in sight.
func (c *Counter) Peek() int {
	return c.n // want `access to c.n without holding mu`
}

// Accepted: asserts the caller holds the mutex.
//
//repro:locked mu
func (c *Counter) incLocked() {
	c.n++
}

// Accepted: composite-literal construction precedes sharing.
func NewCounter(start int) *Counter {
	return &Counter{n: start}
}

// Table guards its map with an RWMutex; RLock counts as holding it.
type Table struct {
	rw sync.RWMutex
	m  map[string]int //repro:guardedby rw
}

// Accepted: read lock taken.
func (t *Table) Get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// Flagged: write without the lock.
func (t *Table) Put(k string, v int) {
	t.m[k] = v // want `access to t.m without holding rw`
}

// Orphan names a guard that does not exist.
type Orphan struct {
	//repro:guardedby mu
	n int // want `struct has no sync.Mutex/sync.RWMutex field named "mu"`
}

// NotAMutex names a sibling of the wrong type.
type NotAMutex struct {
	mu int
	//repro:guardedby mu
	n int // want `struct has no sync.Mutex/sync.RWMutex field named "mu"`
}
