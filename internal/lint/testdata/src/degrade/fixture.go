// Package store exercises the degrade analyzer: the module path matches
// its default package regexp, so the no-silent-error rule is live.
package store

import (
	"errors"
	"io"
	"os"
)

// Stats is a stand-in for the real miss/degrade counters.
type Stats struct{ Degraded int }

// Flagged: every way to drop an error on the floor.
func drops(f *os.File, w io.Writer, st *Stats) {
	f.Close()           // want `result of Close drops its error`
	defer f.Close()     // want `deferred result of Close drops its error`
	go f.Sync()         // want `goroutine result of Sync drops its error`
	_, _ = w.Write(nil) // want `error discarded into _`
	_ = f.Close()       // want `error discarded into _`
}

// Accepted: returned, inspected-and-counted, or justified.
func disciplined(f *os.File, w io.Writer, st *Stats) error {
	if _, err := w.Write(nil); err != nil {
		st.Degraded++ // degrade to miss: counted, not hidden
	}
	f.Close() //repro:degrade read-only handle, close cannot lose data
	return f.Sync()
}

// Accepted: non-error results are not the analyzer's business.
func pureCalls() {
	_ = len(errors.New("x").Error())
}
