module repro/internal/store

go 1.24
