package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Standalone package loading: `reprolint ./...` (and the analyzer tests)
// load packages with `go list -deps -export -json`, which hands back each
// package's source files plus compiled export data for every dependency —
// the same artifacts the vet unitchecker protocol delivers per package,
// so both drivers share one type-checking path and one fact flow.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A Package is one loaded, parsed, type-checked package ready to analyze.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadPackages lists patterns (with dependencies and export data) from
// dir and type-checks every non-stdlib package, in dependency order —
// the order fact propagation needs.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off") // hermetic: a missing dep fails loudly, never dials out
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, &lp)
	}

	exports := map[string]string{} // import path → export data file
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Name == "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, lp.ImportPath, lp.Dir, lp.GoFiles, lp.ImportMap, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Run runs the analyzers over every package in order, threading facts
// from dependencies to dependents, and returns all diagnostics sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	facts := FactsByPkg{}
	for _, pkg := range pkgs {
		pf := RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, facts, analyzers, &diags)
		facts[basePkgPath(pkg.Path)] = pf
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// typeCheck parses and type-checks one package from its file list,
// resolving imports through importMap and the export-data importer.
func typeCheck(fset *token.FileSet, path, dir string, goFiles []string, importMap map[string]string, imp types.Importer) (*Package, error) {
	return typeCheckVersioned(fset, path, dir, goFiles, importMap, imp, "")
}

// typeCheckVersioned is typeCheck with an explicit language version
// (the unitchecker path gets one from the vet config).
func typeCheckVersioned(fset *token.FileSet, path, dir string, goFiles []string, importMap map[string]string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  remappedImporter{imp: imp, importMap: importMap},
		GoVersion: goVersion,
		Error:     func(error) {}, // collect just the first via the return below
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// remappedImporter applies a package's ImportMap (vendoring, test
// variants) before delegating to the export-data importer.
type remappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (r remappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return r.imp.Import(path)
}

// newExportImporter returns a gc-export-data importer whose lookup opens
// the file named by exportFile — the glue shared by the standalone loader
// (files from `go list -export`) and the unitchecker (files from the vet
// config's PackageFile map).
func newExportImporter(fset *token.FileSet, exportFile func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile(path)
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}
