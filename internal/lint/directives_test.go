package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc runs ParseDirectives over one synthetic file.
func parseSrc(t *testing.T, src string) *Directives {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return ParseDirectives(fset, []*ast.File{f})
}

// The annotation parser must reject malformed directives loudly: a
// directive that silently guards nothing is how checked contracts rot.
func TestMalformedDirectivesError(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the expected diagnostic
	}{
		{
			name: "hotpath-ok without justification",
			src:  "package p\n\n//repro:hotpath-ok\nfunc f() {}\n",
			want: "//repro:hotpath-ok needs a justification",
		},
		{
			name: "degrade without justification",
			src:  "package p\n\nfunc f() error {\n\t//repro:degrade\n\treturn nil\n}\n",
			want: "//repro:degrade needs a justification",
		},
		{
			name: "unordered without justification",
			src:  "package p\n\nfunc f() {\n\t//repro:unordered\n}\n",
			want: "//repro:unordered needs a justification",
		},
		{
			name: "wallclock without justification",
			src:  "package p\n\n//repro:wallclock\nvar x int\n",
			want: "//repro:wallclock needs a justification",
		},
		{
			name: "guardedby without mutex name",
			src:  "package p\n\ntype s struct {\n\t//repro:guardedby\n\tn int\n}\n",
			want: "//repro:guardedby needs exactly one mutex field name",
		},
		{
			name: "locked without mutex name",
			src:  "package p\n\n//repro:locked\nfunc f() {}\n",
			want: "//repro:locked needs exactly one mutex field name",
		},
		{
			name: "hotpath with argument",
			src:  "package p\n\n//repro:hotpath yes please\nfunc f() {}\n",
			want: "//repro:hotpath takes no argument",
		},
		{
			name: "unknown directive",
			src:  "package p\n\n//repro:zoom\nfunc f() {}\n",
			want: "unknown directive //repro:zoom",
		},
		{
			name: "floating hotpath attaches to nothing",
			src:  "package p\n\nfunc f() {\n\t//repro:hotpath\n\t_ = 1\n}\n",
			want: "//repro:hotpath must be in the doc comment of a function",
		},
		{
			name: "floating locked attaches to nothing",
			src:  "package p\n\n//repro:locked mu\n\nvar x int\n",
			want: "//repro:locked must be in the doc comment of a function",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := parseSrc(t, tc.src)
			if len(d.Errs) != 1 {
				t.Fatalf("got %d diagnostics, want exactly 1: %v", len(d.Errs), d.Errs)
			}
			if !strings.Contains(d.Errs[0].Message, tc.want) {
				t.Errorf("diagnostic %q does not contain %q", d.Errs[0].Message, tc.want)
			}
			if d.Errs[0].Analyzer != "directive" {
				t.Errorf("diagnostic analyzer = %q, want \"directive\"", d.Errs[0].Analyzer)
			}
		})
	}
}

// Well-formed directives must parse without noise and land on the right
// declarations.
func TestWellFormedDirectivesAttach(t *testing.T) {
	src := `package p

import "sync"

//repro:hotpath
func hot() {}

//repro:hotpath-ok formats errors off the hot path
func cold() string { return "" }

//repro:locked mu
func locked(s *s) { s.n++ }

type s struct {
	mu sync.Mutex
	n  int //repro:guardedby mu
}

type iface interface {
	//repro:hotpath
	Step() int
}

func uses(m map[string]int) int {
	t := 0
	for _, v := range m { //repro:unordered commutative sum
		t += v
	}
	return t
}
`
	d := parseSrc(t, src)
	if len(d.Errs) != 0 {
		t.Fatalf("unexpected diagnostics: %v", d.Errs)
	}
	var hot, cold, lockedFn bool
	for fn, fd := range d.Funcs {
		switch fn.Name.Name {
		case "hot":
			hot = fd.Hotpath
		case "cold":
			cold = fd.HotpathOK && fd.OKReason == "formats errors off the hot path"
		case "locked":
			lockedFn = len(fd.Locked) == 1 && fd.Locked[0] == "mu"
		}
	}
	if !hot || !cold || !lockedFn {
		t.Errorf("function directives misparsed: hotpath=%v hotpath-ok=%v locked=%v", hot, cold, lockedFn)
	}
	if len(d.Fields) != 1 {
		t.Errorf("got %d guardedby fields, want 1", len(d.Fields))
	}
	for _, fd := range d.Fields {
		if fd.Mutex != "mu" {
			t.Errorf("guardedby mutex = %q, want \"mu\"", fd.Mutex)
		}
	}
	if len(d.Iface) != 1 {
		t.Errorf("got %d hot interface methods, want 1", len(d.Iface))
	}
}

// A line directive blesses its own line and the next, nothing else.
func TestLineDirectiveCoverage(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t//repro:degrade best effort\n\t_ = 1\n\t_ = 2\n}\n"
	d := parseSrc(t, src)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute positions against this fset: line 4 is the comment, line
	// 5 the first statement, line 6 the second.
	_ = f
	mk := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !d.LineHas(fset, mk(4), "degrade") || !d.LineHas(fset, mk(5), "degrade") {
		t.Error("directive must cover its own line and the next")
	}
	if d.LineHas(fset, mk(6), "degrade") {
		t.Error("directive must not leak past the next line")
	}
}
