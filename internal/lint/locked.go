package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Locked checks //repro:guardedby annotations: a struct field annotated
// `//repro:guardedby mu` may only be read or written inside a function
// that visibly acquires that mutex (a call to .mu.Lock(), .mu.RLock(),
// or .mu.TryLock() anywhere in the function body) or that asserts the
// caller holds it with `//repro:locked mu`. Composite literal
// construction (&Server{ring: r}) is exempt: the value is not yet shared.
//
// This is a syntactic discipline, not a race detector — it does not
// prove the Lock covers the access or that the receiver is the same
// object. It exists because the -race smokes only probabilistically
// exercise the remote.Server ring installs and store counters; the
// annotation makes "which mutex guards this field" part of the type's
// declaration and every unlocked access a vet-time error.
//
// A //repro:guardedby naming a sibling that does not exist, or that is
// not a sync.Mutex/sync.RWMutex, is itself an error: a guard annotation
// that silently guards nothing is worse than none.
var Locked = &Analyzer{
	Name: "locked",
	Doc:  "fields marked //repro:guardedby mu are only touched with mu held",
	Run:  runLocked,
}

func runLocked(p *Pass) {
	// Resolve annotated fields to their types.Var objects, validating
	// the named mutex sibling exists and is a mutex.
	guarded := map[types.Object]string{} // field object → mutex field name
	for field, fd := range p.Dirs.Fields {
		if !validMutexSibling(p, fd) {
			p.Reportf(field.Pos(), "//repro:guardedby %s: struct has no sync.Mutex/sync.RWMutex field named %q", fd.Mutex, fd.Mutex)
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				guarded[obj] = fd.Mutex
			}
		}
		if len(field.Names) == 0 {
			p.Reportf(field.Pos(), "//repro:guardedby cannot annotate an embedded field")
		}
	}
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccesses(p, fn, guarded)
		}
	}
}

// validMutexSibling reports whether the directive's struct has a sibling
// field with the named mutex type.
func validMutexSibling(p *Pass, fd *FieldDirective) bool {
	for _, sibling := range fd.Struct.Fields.List {
		for _, name := range sibling.Names {
			if name.Name != fd.Mutex {
				continue
			}
			obj := p.Info.Defs[name]
			if obj == nil {
				return false
			}
			return isMutexType(obj.Type())
		}
	}
	return false
}

// isMutexType recognizes sync.Mutex, sync.RWMutex, and pointers to them.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkGuardedAccesses flags selector accesses to guarded fields in
// functions that neither lock the mutex nor assert the caller does.
func checkGuardedAccesses(p *Pass, fn *ast.FuncDecl, guarded map[types.Object]string) {
	asserted := map[string]bool{}
	if fd := p.Dirs.Funcs[fn]; fd != nil {
		for _, mu := range fd.Locked {
			asserted[mu] = true
		}
	}
	locksTaken := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				locksTaken[muSel.Sel.Name] = true
			} else if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				locksTaken[id.Name] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.Uses[sel.Sel]
		mu, isGuarded := guarded[obj]
		if !isGuarded {
			return true
		}
		if locksTaken[mu] || asserted[mu] {
			return true
		}
		p.Reportf(sel.Pos(), "access to %s without holding %s: lock it here, or annotate the function //repro:locked %s if the caller holds it", fieldPath(sel), mu, mu)
		return true
	})
}

// fieldPath renders x.f for the message.
func fieldPath(sel *ast.SelectorExpr) string {
	var b strings.Builder
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		b.WriteString(id.Name)
		b.WriteByte('.')
	}
	b.WriteString(sel.Sel.Name)
	return b.String()
}
