package lint

import (
	"go/ast"
	"go/types"
)

// hotpathAllow is the built-in whitelist of stdlib calls a hot path may
// make: allocation-free primitives the PR-6 AllocsPerRun guards already
// vouch for. Entries are types.Func.FullName spellings. Extendable via
// cmd/reprolint's -hotpath.allow flag.
var hotpathAllow = map[string]bool{
	"errors.Is":                   true,
	"errors.As":                   true,
	"io.ReadFull":                 true,
	"encoding/binary.PutUvarint":  true,
	"encoding/binary.ReadUvarint": true,
	"(*bufio.Writer).Write":       true,
	"(*bufio.Writer).WriteString": true,
	"(*bufio.Writer).WriteByte":   true,
	"(*bufio.Writer).Flush":       true,
	"(*bufio.Reader).Read":        true,
	"(*bufio.Reader).ReadByte":    true,
	"(*sync/atomic.Int64).Add":    true,
	"(*sync/atomic.Int64).Load":   true,
}

// AllowHotpathCalls adds extra fully-qualified functions to the hot-path
// whitelist (the -hotpath.allow flag).
func AllowHotpathCalls(names []string) {
	for _, n := range names {
		if n != "" {
			hotpathAllow[n] = true
		}
	}
}

// Hotpath makes the zero-alloc hot loop a checked contract. A function
// annotated //repro:hotpath must not:
//
//   - call anything in fmt (every fmt call allocates its argument pack);
//   - create a closure, or start a goroutine, or defer (all allocate);
//   - convert between []byte and string outside an audited
//     //repro:hotpath-ok helper (the conversion copies);
//   - call any function that is not itself //repro:hotpath, a
//     //repro:hotpath-ok helper, a whitelisted stdlib primitive, or a
//     builtin. Cross-package callees are resolved through exported facts,
//     so annotating (*Registers).Read in internal/model is visible to
//     System.Step in internal/machine.
//
// Interface methods may be annotated //repro:hotpath too: calls through
// the interface are then legal from hot paths, and every in-package
// implementation of the interface must itself be annotated (checked
// here), so the contract survives dynamic dispatch.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //repro:hotpath must stay on the zero-allocation diet",
	Run:  runHotpath,
}

const (
	factHot   = "hot"   // checked hot-path function
	factOK    = "ok"    // audited helper, callable but not checked
	factIface = "iface" // interface method whose implementations are hot
)

func runHotpath(p *Pass) {
	// Index this package's annotations by their types.Func objects and
	// export them as facts for dependent packages.
	local := map[*types.Func]string{}
	for decl, fd := range p.Dirs.Funcs {
		fn, _ := p.Info.Defs[decl.Name].(*types.Func)
		if fn == nil {
			continue
		}
		switch {
		case fd.Hotpath && fd.HotpathOK:
			p.Reportf(decl.Pos(), "%s is both //repro:hotpath and //repro:hotpath-ok; pick one (checked hot path, or audited unchecked helper)", fn.Name())
		case fd.Hotpath:
			local[fn] = factHot
			p.ExportFact(funcKey(fn), factHot)
		case fd.HotpathOK:
			local[fn] = factOK
			p.ExportFact(funcKey(fn), factOK)
		}
	}
	ifaces := map[*types.Func]bool{}
	for field := range p.Dirs.Iface {
		for _, name := range field.Names {
			if m, ok := p.Info.Defs[name].(*types.Func); ok {
				ifaces[m] = true
				local[m] = factIface
				p.ExportFact(funcKey(m), factIface)
			}
		}
	}

	checkIfaceImplementations(p, ifaces, local)

	for decl, fd := range p.Dirs.Funcs {
		if fd.Hotpath && decl.Body != nil {
			checkHotBody(p, decl, local)
		}
	}
}

// checkIfaceImplementations requires every in-package implementation of
// a hot interface method to be hot (or an audited helper) itself.
// Cross-package implementations of an imported hot interface are out of
// this analyzer's reach (facts carry names, not type structure); the
// call-site check still holds everywhere.
func checkIfaceImplementations(p *Pass, ifaces map[*types.Func]bool, local map[*types.Func]string) {
	if len(ifaces) == 0 {
		return
	}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		for m := range ifaces {
			iface, ok := m.Signature().Recv().Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			impl := T
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(T)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, p.Pkg, m.Name())
			cm, ok := obj.(*types.Func)
			if !ok || cm.Pkg() != p.Pkg {
				continue
			}
			if local[cm] == "" {
				p.Reportf(cm.Pos(), "%s implements hot interface method %s but is not //repro:hotpath (or //repro:hotpath-ok)", cm.Name(), funcKey(m))
			}
		}
	}
}

// checkHotBody walks one hot function's body.
func checkHotBody(p *Pass, decl *ast.FuncDecl, local map[*types.Func]string) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "hot path creates a closure (allocates); hoist it or restructure")
			return false
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "hot path starts a goroutine")
			return false
		case *ast.DeferStmt:
			p.Reportf(n.Pos(), "hot path defers (allocates a defer record on older runtimes and hides cost); unlock/close inline")
			return false
		case *ast.CallExpr:
			checkHotCall(p, n, local)
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr, local map[*types.Func]string) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok {
		if tv.IsType() {
			checkHotConversion(p, call, tv.Type)
			return
		}
		if tv.IsBuiltin() {
			return // len, cap, append, copy, make, panic, …: no call frame
		}
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		p.Reportf(call.Pos(), "hot path makes a dynamic call (func value); only static calls to //repro:hotpath functions or annotated interface methods are checkable")
		return
	}
	if fn.Pkg() == nil {
		return // error.Error and friends from the universe scope
	}
	if fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "hot path calls fmt.%s (allocates); move the formatting to a cold //repro:hotpath-ok helper", fn.Name())
		return
	}
	key := funcKey(fn)
	if hotpathAllow[key] {
		return
	}
	// Interface method: legal only when the interface method itself is
	// annotated (locally or via a dependency's facts).
	if recv := fn.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
		if local[fn] == factIface {
			return
		}
		if v, ok := p.DepFact(fn.Pkg().Path(), key); ok && v == factIface {
			return
		}
		p.Reportf(call.Pos(), "hot path calls interface method %s, which is not //repro:hotpath; annotate the interface method to make its implementations part of the contract", key)
		return
	}
	switch local[fn] {
	case factHot, factOK:
		return
	}
	if v, ok := p.DepFact(fn.Pkg().Path(), key); ok && (v == factHot || v == factOK) {
		return
	}
	p.Reportf(call.Pos(), "hot path calls %s, which is neither //repro:hotpath, //repro:hotpath-ok, nor whitelisted", key)
}

// checkHotConversion flags []byte↔string conversions, the allocation the
// codec hot paths centralize in audited //repro:hotpath-ok helpers.
func checkHotConversion(p *Pass, call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	from := tv.Type
	if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
		p.Reportf(call.Pos(), "hot path converts %s to %s (copies); do it inside an audited //repro:hotpath-ok helper", from, to)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
