package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"strings"
)

// This file speaks the `go vet -vettool` protocol, so reprolint plugs
// into `go vet -vettool=$(scripts/lint.sh -print) ./...` exactly like an
// x/tools multichecker would. The protocol (cmd/go's vetFlags +
// x/tools/go/analysis/unitchecker, reimplemented here on the stdlib):
//
//   tool -V=full            → print "name version devel buildID=<hex>"
//   tool -flags             → print a JSON array of supported flag defs
//   tool [flags] foo.cfg    → analyze one package described by the JSON
//                             config; write facts to cfg.VetxOutput;
//                             print diagnostics "file:line:col: msg" to
//                             stderr; exit 0 clean / 1 findings / 2 error
//
// Without a .cfg argument the tool runs standalone over package patterns
// via the go-list loader in load.go.

// vetConfig is the JSON package description cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the reprolint entry point. It returns the process exit code.
func Main(args []string) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (go vet handshake)")
	detPkgs := fs.String("determinism.packages", "", "regexp overriding the packages the determinism analyzer enforces")
	degPkgs := fs.String("degrade.packages", "", "regexp overriding the packages the degrade analyzer enforces")
	hotAllow := fs.String("hotpath.allow", "", "comma-separated fully-qualified functions to add to the hot-path whitelist")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *versionFlag != "" {
		return printVersion(os.Stdout)
	}
	if *flagsFlag {
		return printFlagDefs(os.Stdout)
	}
	if err := applyOverrides(*detPkgs, *degPkgs, *hotAllow); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0])
	}
	return runStandalone(rest)
}

// applyOverrides installs the flag-driven analyzer configuration.
func applyOverrides(det, deg, allow string) error {
	if det != "" {
		re, err := regexp.Compile(det)
		if err != nil {
			return fmt.Errorf("-determinism.packages: %v", err)
		}
		DeterminismPackages = re
	}
	if deg != "" {
		re, err := regexp.Compile(deg)
		if err != nil {
			return fmt.Errorf("-degrade.packages: %v", err)
		}
		DegradePackages = re
	}
	if allow != "" {
		AllowHotpathCalls(strings.Split(allow, ","))
	}
	return nil
}

// printVersion implements the -V=full handshake. cmd/go caches vet
// results keyed on this string, so it must change when the tool does:
// hash the executable itself.
func printVersion(w io.Writer) int {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err2 := os.Open(exe)
		if err2 == nil {
			_, _ = io.Copy(h, f) //repro:degrade a short hash only weakens vet caching, not results
			f.Close()            //repro:degrade read-only file
		}
	}
	fmt.Fprintf(w, "reprolint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// printFlagDefs implements the -flags handshake: the JSON flag schema
// cmd/go uses to decide which of its flags the tool accepts.
func printFlagDefs(w io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{
		{Name: "determinism.packages", Bool: false, Usage: "regexp overriding the packages the determinism analyzer enforces"},
		{Name: "degrade.packages", Bool: false, Usage: "regexp overriding the packages the degrade analyzer enforces"},
		{Name: "hotpath.allow", Bool: false, Usage: "comma-separated fully-qualified functions to add to the hot-path whitelist"},
	}
	data, err := json.Marshal(defs)
	if err != nil {
		return 2
	}
	fmt.Fprintf(w, "%s\n", data)
	return 0
}

// runStandalone analyzes package patterns via the go-list loader.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	pkgs, err := LoadPackages(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runUnit analyzes the single package described by a vet .cfg file.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// Load facts exported by dependencies. Each vetx already carries its
	// own transitive closure (see the write below), so reading only the
	// direct deps listed in PackageVetx is complete.
	deps := FactsByPkg{}
	for path, vetx := range cfg.PackageVetx {
		raw, err := os.ReadFile(vetx)
		if err != nil || len(raw) == 0 {
			continue // a dep analyzed before this tool version; treat as fact-free
		}
		var byPkg FactsByPkg
		if err := json.Unmarshal(raw, &byPkg); err != nil {
			continue //repro:degrade stale vetx from another tool build; facts re-derive on rebuild
		}
		for p, pf := range byPkg {
			deps[p] = pf
		}
		_ = path
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	goVersion := cfg.GoVersion
	if i := strings.IndexByte(goVersion, ' '); i >= 0 {
		goVersion = goVersion[:i]
	}
	pkg, err := typeCheckUnit(fset, &cfg, goVersion, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, deps, PkgFacts{})
		}
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}

	var diags []Diagnostic
	pf := RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, deps, Analyzers(), &diags)
	if code := writeVetx(&cfg, deps, pf); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// typeCheckUnit type-checks a vet config's package, honoring its language
// version so code the compiler accepted is never rejected here.
func typeCheckUnit(fset *token.FileSet, cfg *vetConfig, goVersion string, imp types.Importer) (*Package, error) {
	pkg, err := typeCheckVersioned(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, imp, goVersion)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// writeVetx persists this package's facts plus its dependencies' — the
// transitive closure — so dependents need only their direct deps' vetx
// files. cmd/go requires the output to exist even when empty.
func writeVetx(cfg *vetConfig, deps FactsByPkg, own PkgFacts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	all := FactsByPkg{}
	for p, pf := range deps {
		all[p] = pf
	}
	all[basePkgPath(cfg.ImportPath)] = own
	data, err := json.Marshal(all)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: encoding facts: %v\n", err)
		return 2
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: writing %s: %v\n", cfg.VetxOutput, err)
		return 2
	}
	return 0
}
