package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Each directory under testdata/src is a self-contained module fixture.
// Offending lines carry `// want "regex"` comments (several per line
// allowed); the test loads the fixture through the same go-list path the
// standalone tool uses, runs all analyzers, and requires an exact match
// between expectations and diagnostics — a missing *or* surplus finding
// fails. That proves each analyzer flags its bad cases and stays quiet
// on the good ones.

func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			runFixture(t, filepath.Join("testdata", "src", e.Name()))
		})
	}
}

func runFixture(t *testing.T, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadPackages(abs, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture loaded no packages")
	}
	diags := lint.Run(pkgs, lint.Analyzers())

	wants := collectWants(t, abs)
	got := map[string][]string{} // file:line → messages
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Analyzer+": "+d.Message)
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := wants[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		msgs := append([]string(nil), got[key]...)
		for _, re := range wants[key] {
			i := matchIndex(msgs, re)
			if i < 0 {
				t.Errorf("%s: expected diagnostic matching %q, got %v", key, re, msgs)
				continue
			}
			msgs = append(msgs[:i], msgs[i+1:]...)
		}
		for _, m := range msgs {
			t.Errorf("%s: unexpected diagnostic: %s", key, m)
		}
	}
}

func matchIndex(msgs []string, re *regexp.Regexp) int {
	for i, m := range msgs {
		if re.MatchString(m) {
			return i
		}
	}
	return -1
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants scans every fixture .go file for `// want "re"` comments,
// keyed by file:line.
func collectWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	wants := map[string][]*regexp.Regexp{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, line)
			for _, pat := range splitQuoted(m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// splitQuoted extracts the double-quoted segments of a want comment:
// `"a" "b"` → ["a", "b"]. Backquoted strings are also accepted.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[2+end:]
	}
}
