package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// DeterminismPackages selects the packages the determinism analyzer
// enforces: the pure-simulation and output-producing layers, whose bytes
// must be identical at any worker count, shard split, or fleet shape.
// Overridable via cmd/reprolint's -determinism.packages flag (and set
// directly by tests).
var DeterminismPackages = regexp.MustCompile(
	`^repro($|/internal/(machine|runner|adversary|experiments|stats|store)(/|$)|/cmd/(experiments|tournament|lowerbound|mutexsim)$)`)

// Determinism rejects the three classic sources of run-to-run
// nondeterminism in output-producing code:
//
//   - ranging over a map where the iteration order can leak into the
//     result. A map range is accepted only when its body is provably
//     order-insensitive (commutative integer folds, map/set writes,
//     appends to a slice that is subsequently sorted in the same
//     function) or carries a //repro:unordered justification;
//   - wall-clock reads (time.Now/Since/Until) without a //repro:wallclock
//     justification stating the value never reaches canonical output;
//   - math/rand package-level functions, which draw from the global,
//     unseeded source. Seeded generators (rand.New(rand.NewSource(s)))
//     and their methods are fine — determinism comes from the seed.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "reject map-iteration order, wall clocks, and unseeded randomness on result paths",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if !DeterminismPackages.MatchString(basePkgPath(p.Pkg.Path())) {
		return
	}
	for _, f := range p.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				// Package-level initializers can capture a clock too
				// (`var nowFn = time.Now`).
				ast.Inspect(decl, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						checkClockAndRand(p, sel)
					}
					return true
				})
				continue
			}
			if fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					// Covers calls and bare references alike: assigning
					// time.Now to a hook variable is as order-breaking as
					// calling it.
					checkClockAndRand(p, n)
				case *ast.RangeStmt:
					checkMapRange(p, fn, n)
				}
				return true
			})
		}
	}
}

// checkClockAndRand flags wall-clock reads and global-source randomness.
func checkClockAndRand(p *Pass, sel *ast.SelectorExpr) {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			if !p.Dirs.LineHas(p.Fset, sel.Pos(), "wallclock") {
				p.Reportf(sel.Pos(), "time.%s in a deterministic package: wall-clock values must never feed canonical output (annotate //repro:wallclock <reason> if this stays on stderr or infrastructure metadata)", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		if fn.Signature().Recv() != nil {
			return // methods on an explicitly seeded *rand.Rand are fine
		}
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return // constructors: the caller supplies the seed
		}
		p.Reportf(sel.Pos(), "%s.%s draws from the global unseeded source; construct a seeded generator (rand.New(rand.NewSource(seed))) so runs replay byte-identically", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRange enforces the map-iteration rule on one range statement.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Dirs.LineHas(p.Fset, rng.Pos(), "unordered") {
		return
	}
	appended := map[types.Object]bool{}
	if !orderInsensitiveBody(p, rng.Body.List, appended) {
		p.Reportf(rng.Pos(), "map iteration order can reach the result: sort the keys first, restrict the body to an order-insensitive fold, or annotate //repro:unordered <reason>")
		return
	}
	for obj := range appended {
		if !sortedAfter(p, fn, obj, rng.End()) {
			p.Reportf(rng.Pos(), "slice %q is built from map iteration but never sorted afterwards in this function", obj.Name())
		}
	}
}

// orderInsensitiveBody reports whether every statement is one whose
// effect is independent of iteration order: appends (recorded in appended
// for the later-sorted check), map index writes, commutative integer/bool
// accumulation, deletes, and control flow over the same. Anything else —
// calls, sends, string or float accumulation, returns — disqualifies the
// body; order-insensitivity must be provable, not plausible.
func orderInsensitiveBody(p *Pass, stmts []ast.Stmt, appended map[types.Object]bool) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(p, s, appended) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(p *Pass, s ast.Stmt, appended map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(p, s, appended)
	case *ast.IncDecStmt:
		return isIntOrBool(p, s.X) && pureExpr(p, s.X)
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(p, s.Init, appended) {
			return false
		}
		if !pureExpr(p, s.Cond) || !orderInsensitiveBody(p, s.Body.List, appended) {
			return false
		}
		return s.Else == nil || orderInsensitiveStmt(p, s.Else, appended)
	case *ast.BlockStmt:
		return orderInsensitiveBody(p, s.List, appended)
	case *ast.ForStmt:
		if s.Cond != nil && !pureExpr(p, s.Cond) {
			return false
		}
		if s.Init != nil && !orderInsensitiveStmt(p, s.Init, appended) {
			return false
		}
		if s.Post != nil && !orderInsensitiveStmt(p, s.Post, appended) {
			return false
		}
		return orderInsensitiveBody(p, s.Body.List, appended)
	case *ast.RangeStmt:
		// A nested range over a slice (or the map value) with an
		// order-insensitive body stays order-insensitive. A nested map
		// range is checked on its own by the outer walk.
		return pureExpr(p, s.X) && orderInsensitiveBody(p, s.Body.List, appended)
	case *ast.SwitchStmt:
		if s.Tag != nil && !pureExpr(p, s.Tag) {
			return false
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				if !pureExpr(p, e) {
					return false
				}
			}
			if !orderInsensitiveBody(p, cc.Body, appended) {
				return false
			}
		}
		return true
	case *ast.ExprStmt:
		// Only builtin delete/clear calls have order-independent effects.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "clear") {
				return true
			}
		}
		return false
	case *ast.DeclStmt:
		gen, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gen.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if !pureExpr(p, v) {
						return false
					}
				}
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// orderInsensitiveAssign classifies one assignment inside a map range.
func orderInsensitiveAssign(p *Pass, s *ast.AssignStmt, appended map[types.Object]bool) bool {
	// Operator assignments: commutative accumulation on integers/bools.
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return len(s.Lhs) == 1 && isIntOrBool(p, s.Lhs[0]) && pureExpr(p, s.Lhs[0]) && pureExpr(p, s.Rhs[0])
	case token.ASSIGN, token.DEFINE:
		// handled below
	default:
		return false
	}
	if len(s.Lhs) != len(s.Rhs) {
		return false
	}
	for i, lhs := range s.Lhs {
		rhs := s.Rhs[i]
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			// m[k] = v: a map write is order-insensitive (each key written
			// through the range variable lands once).
			tv, ok := p.Info.Types[lhs.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
			if !pureExpr(p, lhs.Index) || !pureExpr(p, rhs) {
				return false
			}
		case *ast.Ident:
			// s = append(s, ...): the order is absorbed by a later sort
			// (checked by the caller). Plain redefinitions of locals with
			// pure values are harmless per-iteration temporaries.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				id, _ := ast.Unparen(call.Fun).(*ast.Ident)
				if id != nil {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) >= 1 {
						base, _ := ast.Unparen(call.Args[0]).(*ast.Ident)
						if base != nil && base.Name == lhs.Name {
							for _, a := range call.Args[1:] {
								if !pureExpr(p, a) {
									return false
								}
							}
							if obj := exprObject(p, lhs); obj != nil {
								appended[obj] = true
								continue
							}
						}
					}
				}
			}
			if s.Tok == token.DEFINE && pureExpr(p, rhs) {
				continue // fresh per-iteration temporary
			}
			return false
		default:
			return false
		}
	}
	return true
}

// pureExpr reports whether evaluating e has no effects the iteration
// order could reorder: no calls (except builtins and conversions), no
// closures, no channel operations.
func pureExpr(p *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if tv, ok := p.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
				return true // conversion or builtin: effect-free
			}
			pure = false
			return false
		case *ast.FuncLit:
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive: ordered effect
				pure = false
				return false
			}
		}
		return true
	})
	return pure
}

// isIntOrBool reports whether e's type is an integer or boolean —
// the types whose += / |= / ^= accumulation is order-insensitive.
// (Floating-point addition is not associative; string += is ordered.)
func isIntOrBool(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// exprObject resolves an identifier or selector to its object.
func exprObject(p *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// sortedAfter reports whether obj (a slice) is passed to a sort.* or
// slices.Sort* call after pos within fn.
func sortedAfter(p *Pass, fn *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg, name := callee.Pkg().Path(), callee.Name()
		isSort := pkg == "sort" || (pkg == "slices" && len(name) >= 4 && name[:4] == "Sort")
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if exprObject(p, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}
