package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //repro: directive grammar. Directives follow the Go toolchain
// convention: no space after //, so ordinary prose never parses as one.
//
//	//repro:hotpath
//	    On a function or method declaration: this function is a checked
//	    hot path (see the hotpath analyzer). On an interface method: a
//	    contract — call sites through the interface are hot-path legal,
//	    and every in-package implementation must itself be annotated.
//	//repro:hotpath-ok <reason>
//	    On a function declaration: callable from hot paths without being
//	    checked itself — the whitelisted-helper escape hatch for cold
//	    error constructors and audited single-allocation helpers.
//	//repro:guardedby <field>
//	    On a struct field: the field may only be accessed while the named
//	    sibling mutex field is held (see the locked analyzer).
//	//repro:locked <field>
//	    On a function declaration: asserts the caller already holds the
//	    named mutex, so guarded accesses inside are legal.
//	//repro:degrade <reason>
//	    On (or directly above) a statement: the discarded error on this
//	    line is intentional, with the justification recorded in place.
//	//repro:unordered <reason>
//	    On (or directly above) a map-range statement: the fold is
//	    order-insensitive for the stated reason.
//	//repro:wallclock <reason>
//	    On (or directly above) a statement: this wall-clock read never
//	    reaches canonical output (stderr diagnostics, eviction ages).
//
// Malformed directives — unknown names, missing mutex argument, missing
// justification — are loud diagnostics, never silently inert: an
// annotation that quietly disabled nothing is how checked contracts rot.

// FuncDirective is the parsed function-level annotation set.
type FuncDirective struct {
	Hotpath   bool
	HotpathOK bool
	OKReason  string
	Locked    []string // mutex field names the caller is asserted to hold
}

// FieldDirective is the parsed struct-field annotation.
type FieldDirective struct {
	Mutex  string
	Struct *ast.StructType // enclosing struct, for sibling validation
}

// Directives is the parsed //repro: annotation set of one package.
type Directives struct {
	Funcs  map[*ast.FuncDecl]*FuncDirective
	Iface  map[*ast.Field]bool                // interface methods marked hotpath
	Fields map[*ast.Field]*FieldDirective     // struct fields marked guardedby
	lines  map[string]map[int]map[string]bool // file → line → directive names
	Errs   []Diagnostic                       // grammar errors (reported once by the driver)
}

// LineHas reports whether a line-level directive (degrade, unordered,
// wallclock) blesses the line holding pos. A directive comment covers its
// own line (trailing form) and the line below it (comment-above form).
func (d *Directives) LineHas(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	return d.lines[p.Filename][p.Line][name]
}

var lineDirectives = map[string]bool{"degrade": true, "unordered": true, "wallclock": true}

// ParseDirectives scans the files' comments for //repro: directives,
// attaches them to declarations, and validates the grammar. Grammar
// errors land in Errs as diagnostics of the pseudo-analyzer "directive".
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		Funcs:  map[*ast.FuncDecl]*FuncDirective{},
		Iface:  map[*ast.Field]bool{},
		Fields: map[*ast.Field]*FieldDirective{},
		lines:  map[string]map[int]map[string]bool{},
	}
	for _, f := range files {
		// Pass 1: index every directive comment in the file and validate
		// grammar; remember which comments carry declaration-level
		// directives so pass 2 can check they are attached to something.
		pending := map[*ast.Comment]dirLine{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dl, ok := d.parseComment(fset, c)
				if !ok {
					continue
				}
				if lineDirectives[dl.name] {
					d.markLine(fset, c.Pos(), dl.name)
				} else {
					pending[c] = dl
				}
			}
		}
		// Pass 2: attach declaration-level directives.
		d.attach(fset, f, pending)
		// Anything left in pending is a declaration directive floating in
		// the middle of nowhere — it guards nothing, so it must not parse
		// as if it did.
		for c, dl := range pending {
			d.errf(fset, c.Pos(), "//repro:%s must be in the doc comment of a %s declaration", dl.name, dl.attachKind())
		}
	}
	return d
}

// dirLine is one syntactically valid directive occurrence.
type dirLine struct {
	name string
	args string // trimmed remainder after the name
}

// attachKind names where a declaration-level directive belongs, for the
// floating-directive error message.
func (dl dirLine) attachKind() string {
	switch dl.name {
	case "guardedby":
		return "struct field"
	case "hotpath":
		return "function, method, or interface method"
	default:
		return "function"
	}
}

// parseComment recognizes and grammar-checks a single //repro: comment.
// ok is false for non-directive comments and for malformed ones (which
// are reported, so a malformed directive is never silently inert).
func (d *Directives) parseComment(fset *token.FileSet, c *ast.Comment) (dirLine, bool) {
	body, found := strings.CutPrefix(c.Text, "//repro:")
	if !found {
		return dirLine{}, false
	}
	name, args, _ := strings.Cut(body, " ")
	dl := dirLine{name: name, args: strings.TrimSpace(args)}
	switch name {
	case "hotpath":
		if dl.args != "" {
			d.errf(fset, c.Pos(), "//repro:hotpath takes no argument (got %q)", dl.args)
			return dirLine{}, false
		}
	case "hotpath-ok", "degrade", "unordered", "wallclock":
		if dl.args == "" {
			d.errf(fset, c.Pos(), "//repro:%s needs a justification: //repro:%s <reason>", name, name)
			return dirLine{}, false
		}
	case "guardedby", "locked":
		if dl.args == "" || strings.ContainsAny(dl.args, " \t") {
			d.errf(fset, c.Pos(), "//repro:%s needs exactly one mutex field name: //repro:%s mu", name, name)
			return dirLine{}, false
		}
	default:
		d.errf(fset, c.Pos(), "unknown directive //repro:%s (known: hotpath, hotpath-ok, guardedby, locked, degrade, unordered, wallclock)", name)
		return dirLine{}, false
	}
	return dl, true
}

// attach walks the file's declarations consuming pending declaration
// directives where they belong: function docs, struct fields, interface
// methods.
func (d *Directives) attach(fset *token.FileSet, f *ast.File, pending map[*ast.Comment]dirLine) {
	take := func(cg *ast.CommentGroup) []dirLine {
		if cg == nil {
			return nil
		}
		var out []dirLine
		for _, c := range cg.List {
			if dl, ok := pending[c]; ok {
				out = append(out, dl)
				delete(pending, c)
			}
		}
		return out
	}
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			for _, dl := range take(fn.Doc) {
				fd := d.Funcs[fn]
				if fd == nil {
					fd = &FuncDirective{}
					d.Funcs[fn] = fd
				}
				switch dl.name {
				case "hotpath":
					fd.Hotpath = true
				case "hotpath-ok":
					fd.HotpathOK = true
					fd.OKReason = dl.args
				case "locked":
					fd.Locked = append(fd.Locked, dl.args)
				case "guardedby":
					d.errf(fset, fn.Pos(), "//repro:guardedby belongs on a struct field, not a function")
				}
			}
		}
	}
	// Struct fields and interface methods live inside type declarations
	// anywhere in the file (including function bodies).
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				for _, dl := range append(take(field.Doc), take(field.Comment)...) {
					if dl.name != "guardedby" {
						d.errf(fset, field.Pos(), "//repro:%s does not apply to a struct field", dl.name)
						continue
					}
					d.Fields[field] = &FieldDirective{Mutex: dl.args, Struct: n}
				}
			}
		case *ast.InterfaceType:
			for _, m := range n.Methods.List {
				for _, dl := range append(take(m.Doc), take(m.Comment)...) {
					if dl.name != "hotpath" {
						d.errf(fset, m.Pos(), "//repro:%s does not apply to an interface method", dl.name)
						continue
					}
					d.Iface[m] = true
				}
			}
		}
		return true
	})
}

// markLine registers a line-level directive for its own line and the one
// below, covering both the trailing-comment and comment-above forms.
func (d *Directives) markLine(fset *token.FileSet, pos token.Pos, name string) {
	p := fset.Position(pos)
	file := d.lines[p.Filename]
	if file == nil {
		file = map[int]map[string]bool{}
		d.lines[p.Filename] = file
	}
	for _, line := range []int{p.Line, p.Line + 1} {
		if file[line] == nil {
			file[line] = map[string]bool{}
		}
		file[line][name] = true
	}
}

func (d *Directives) errf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	d.Errs = append(d.Errs, Diagnostic{
		Analyzer: "directive",
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}
