// Package metastep implements Definition 5.1 of the paper: metasteps,
// partial orders over them, and linearization (the Seq, Lin and Plin
// procedures of Figure 1).
//
// A metastep bundles a set of same-register steps so that expanding it —
// non-winning writes first, then the winning write, then the reads — hides
// every contained process except possibly the winner: the winning write
// immediately overwrites the others, and the reads all return the winner's
// value. The construction step (internal/construct) produces a set of
// metasteps M and partial order ≼; every linearization of (M, ≼) is an
// execution of the algorithm in which processes enter their critical
// sections in the chosen permutation's order (Theorem 5.5).
package metastep

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// ID identifies a metastep within a Set; IDs are dense and in creation
// order.
type ID int

// None is the absent-metastep sentinel.
const None ID = -1

// Type classifies a metastep: read, write, or critical (Definition 5.1).
type Type uint8

// Metastep types.
const (
	// TypeRead is a read metastep: a single read step, no winner.
	TypeRead Type = iota
	// TypeWrite is a write metastep: a winning write plus any number of
	// hidden writes and reads, all on the same register.
	TypeWrite
	// TypeCrit is a critical metastep: a single critical step.
	TypeCrit
)

// String returns R, W or C.
func (t Type) String() string {
	switch t {
	case TypeRead:
		return "R"
	case TypeWrite:
		return "W"
	case TypeCrit:
		return "C"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Meta is one metastep. Which fields are used depends on Type:
//
//	TypeRead:  Reg, Reads (exactly one step), PreadOf
//	TypeWrite: Reg, Win, Writes (non-winning), Reads, Pread
//	TypeCrit:  Crit
type Meta struct {
	ID   ID
	Type Type
	Reg  model.RegID

	Reads  []model.Step // read(m): read steps, at most one per process
	Writes []model.Step // write(m): non-winning write steps
	Win    model.Step   // win(m): the winning write (TypeWrite only)
	Crit   model.Step   // crit(m) (TypeCrit only)

	// Pread is the preread set pread(m) of a write metastep: read
	// metasteps that must be ordered before it (Figure 1, lines 21-24).
	Pread []ID
	// PreadOf records, for a read metastep, the write metastep whose
	// preread set contains it (None if none). The encoding's PR/SR tag
	// distinction (Figure 2, lines 12-14) depends on it; Theorem 6.2's
	// accounting relies on each read metastep being a preread of at most
	// one write metastep.
	PreadOf ID
}

// Value returns val(m): the value written by the winning step.
func (m *Meta) Value() model.Value { return m.Win.Val }

// Winner returns the process performing win(m), or -1 for non-write
// metasteps.
func (m *Meta) Winner() int {
	if m.Type != TypeWrite {
		return -1
	}
	return m.Win.Proc
}

// Owners returns own(m): the processes taking a step in m, in ascending
// order.
func (m *Meta) Owners() []int {
	var out []int
	switch m.Type {
	case TypeCrit:
		out = append(out, m.Crit.Proc)
	case TypeRead:
		for _, s := range m.Reads {
			out = append(out, s.Proc)
		}
	case TypeWrite:
		out = append(out, m.Win.Proc)
		for _, s := range m.Writes {
			out = append(out, s.Proc)
		}
		for _, s := range m.Reads {
			out = append(out, s.Proc)
		}
	}
	sort.Ints(out)
	return out
}

// StepOf returns step(m, i): the step process i takes in m, if any.
func (m *Meta) StepOf(i int) (model.Step, bool) {
	if m.Type == TypeCrit {
		if m.Crit.Proc == i {
			return m.Crit, true
		}
		return model.Step{}, false
	}
	if m.Type == TypeWrite && m.Win.Proc == i {
		return m.Win, true
	}
	for _, s := range m.Writes {
		if s.Proc == i {
			return s, true
		}
	}
	for _, s := range m.Reads {
		if s.Proc == i {
			return s, true
		}
	}
	return model.Step{}, false
}

// Size returns the number of steps contained in the metastep.
func (m *Meta) Size() int {
	switch m.Type {
	case TypeCrit:
		return 1
	case TypeRead:
		return len(m.Reads)
	default:
		return 1 + len(m.Writes) + len(m.Reads)
	}
}

// String summarizes the metastep.
func (m *Meta) String() string {
	switch m.Type {
	case TypeCrit:
		return fmt.Sprintf("m%d[C %v]", m.ID, m.Crit)
	case TypeRead:
		return fmt.Sprintf("m%d[R r%d %v preadOf=%d]", m.ID, m.Reg, m.Reads, m.PreadOf)
	default:
		return fmt.Sprintf("m%d[W r%d win=%v writes=%v reads=%v pread=%v]", m.ID, m.Reg, m.Win, m.Writes, m.Reads, m.Pread)
	}
}

// Set is a growing collection of metasteps with a partial order ≼
// maintained as a DAG (edges are the paper's explicitly added relations;
// ≼ is their reflexive-transitive closure).
type Set struct {
	n     int
	metas []*Meta
	succs [][]ID
	preds [][]ID

	// writesByReg holds write metasteps per register in creation order.
	// Lemma 5.3: this order IS the total order ≼ restricted to them —
	// a new write metastep on ℓ is only created when every existing one
	// is ≼ the creator's previous metastep, hence ≼ the new one.
	writesByReg map[model.RegID][]ID
	// readsByReg holds read metasteps per register in creation order.
	readsByReg map[model.RegID][]ID
	// chains holds, per process, the metasteps containing it in chain
	// order (each process's metasteps are totally ordered: every new or
	// joined metastep is ordered after the process's previous one).
	chains [][]ID
}

// NewSet creates an empty metastep set for n processes.
func NewSet(n int) *Set {
	return &Set{
		n:           n,
		writesByReg: make(map[model.RegID][]ID),
		readsByReg:  make(map[model.RegID][]ID),
		chains:      make([][]ID, n),
	}
}

// N returns the number of processes.
func (s *Set) N() int { return s.n }

// Len returns the number of metasteps.
func (s *Set) Len() int { return len(s.metas) }

// Meta returns the metastep with the given ID.
func (s *Set) Meta(id ID) *Meta { return s.metas[id] }

// Chain returns process i's metasteps in chain order. The returned slice is
// owned by the set.
func (s *Set) Chain(i int) []ID { return s.chains[i] }

// WritesOn returns the write metasteps on register reg, in ≼ order.
func (s *Set) WritesOn(reg model.RegID) []ID { return s.writesByReg[reg] }

// ReadsOn returns the read metasteps on register reg, in creation order.
func (s *Set) ReadsOn(reg model.RegID) []ID { return s.readsByReg[reg] }

// Succs returns the direct successors of id in the explicit edge relation.
func (s *Set) Succs(id ID) []ID { return s.succs[id] }

// Preds returns the direct predecessors of id.
func (s *Set) Preds(id ID) []ID { return s.preds[id] }

func (s *Set) add(m *Meta) *Meta {
	m.ID = ID(len(s.metas))
	m.PreadOf = None
	s.metas = append(s.metas, m)
	s.succs = append(s.succs, nil)
	s.preds = append(s.preds, nil)
	return m
}

// NewWriteMeta creates a write metastep with the given winning step.
func (s *Set) NewWriteMeta(win model.Step) *Meta {
	if win.Kind != model.KindWrite {
		panic(fmt.Sprintf("metastep: winning step must be a write, got %v", win))
	}
	m := s.add(&Meta{Type: TypeWrite, Reg: win.Reg, Win: win})
	s.writesByReg[win.Reg] = append(s.writesByReg[win.Reg], m.ID)
	s.chains[win.Proc] = append(s.chains[win.Proc], m.ID)
	return m
}

// NewReadMeta creates a read metastep containing the single read step.
func (s *Set) NewReadMeta(read model.Step) *Meta {
	if read.Kind != model.KindRead {
		panic(fmt.Sprintf("metastep: read metastep requires a read step, got %v", read))
	}
	m := s.add(&Meta{Type: TypeRead, Reg: read.Reg, Reads: []model.Step{read}})
	s.readsByReg[read.Reg] = append(s.readsByReg[read.Reg], m.ID)
	s.chains[read.Proc] = append(s.chains[read.Proc], m.ID)
	return m
}

// NewCritMeta creates a critical metastep.
func (s *Set) NewCritMeta(crit model.Step) *Meta {
	if crit.Kind != model.KindCrit {
		panic(fmt.Sprintf("metastep: critical metastep requires a critical step, got %v", crit))
	}
	m := s.add(&Meta{Type: TypeCrit, Crit: crit})
	s.chains[crit.Proc] = append(s.chains[crit.Proc], m.ID)
	return m
}

// JoinWrite inserts a non-winning write step into write metastep id
// (Figure 1, line 16): the step will be overwritten by the winner in every
// linearization, hiding its process.
func (s *Set) JoinWrite(id ID, step model.Step) {
	m := s.metas[id]
	if m.Type != TypeWrite || step.Kind != model.KindWrite || step.Reg != m.Reg {
		panic(fmt.Sprintf("metastep: cannot join write %v into %v", step, m))
	}
	m.Writes = append(m.Writes, step)
	s.chains[step.Proc] = append(s.chains[step.Proc], id)
}

// JoinRead inserts a read step into write metastep id (Figure 1, line 30):
// in every linearization the read returns the winner's value.
func (s *Set) JoinRead(id ID, step model.Step) {
	m := s.metas[id]
	if m.Type != TypeWrite || step.Kind != model.KindRead || step.Reg != m.Reg {
		panic(fmt.Sprintf("metastep: cannot join read %v into %v", step, m))
	}
	m.Reads = append(m.Reads, step)
	s.chains[step.Proc] = append(s.chains[step.Proc], id)
}

// SetPread records the preread set of write metastep id and marks each read
// metastep as a preread of it. It panics if a read metastep is already a
// preread of another write metastep (the accounting of Theorem 6.2 would
// break).
func (s *Set) SetPread(id ID, reads []ID) {
	m := s.metas[id]
	for _, r := range reads {
		rm := s.metas[r]
		if rm.Type != TypeRead {
			panic(fmt.Sprintf("metastep: preread %v of %v is not a read metastep", rm, m))
		}
		if rm.PreadOf != None {
			panic(fmt.Sprintf("metastep: %v is already a preread of m%d", rm, rm.PreadOf))
		}
		rm.PreadOf = id
	}
	m.Pread = append([]ID(nil), reads...)
}

// AddEdge orders a before b (a ≼ b).
func (s *Set) AddEdge(a, b ID) {
	if a == b {
		return
	}
	s.succs[a] = append(s.succs[a], b)
	s.preds[b] = append(s.preds[b], a)
}

// AncestorsOf returns the set {µ : µ ≼ m} (including m itself) as a
// boolean slice indexed by ID, computed by reverse breadth-first search
// over the explicit edges.
func (s *Set) AncestorsOf(m ID) []bool {
	anc := make([]bool, len(s.metas))
	if m == None {
		return anc
	}
	queue := []ID{m}
	anc[m] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range s.preds[cur] {
			if !anc[p] {
				anc[p] = true
				queue = append(queue, p)
			}
		}
	}
	return anc
}

// Reaches reports whether a ≼ b (a == b counts).
func (s *Set) Reaches(a, b ID) bool {
	if a == b {
		return true
	}
	return s.AncestorsOf(b)[a]
}

// CheckAcyclic verifies the explicit edges form a DAG, i.e. ≼ is a partial
// order (Lemma 5.2).
func (s *Set) CheckAcyclic() error {
	indeg := make([]int, len(s.metas))
	for _, succ := range s.succs {
		for _, b := range succ {
			indeg[b]++
		}
	}
	var queue []ID
	for id := range s.metas {
		if indeg[id] == 0 {
			queue = append(queue, ID(id))
		}
	}
	seen := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		seen++
		for _, b := range s.succs[cur] {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	if seen != len(s.metas) {
		return fmt.Errorf("metastep: edge relation has a cycle (%d of %d metasteps sorted)", seen, len(s.metas))
	}
	return nil
}

// Seq expands a metastep into a step sequence (Figure 1, procedure Seq):
// non-winning writes, then the winning write, then the reads. Seq is
// nondeterministic in the paper; here the within-class order is chosen by
// the supplied rng, or ascending by process when rng is nil (the canonical
// expansion).
func Seq(m *Meta, rng *rand.Rand) model.Execution {
	if m.Type == TypeCrit {
		return model.Execution{m.Crit}
	}
	writes := append(model.Execution(nil), m.Writes...)
	reads := append(model.Execution(nil), m.Reads...)
	if rng == nil {
		sort.Slice(writes, func(a, b int) bool { return writes[a].Proc < writes[b].Proc })
		sort.Slice(reads, func(a, b int) bool { return reads[a].Proc < reads[b].Proc })
	} else {
		rng.Shuffle(len(writes), func(a, b int) { writes[a], writes[b] = writes[b], writes[a] })
		rng.Shuffle(len(reads), func(a, b int) { reads[a], reads[b] = reads[b], reads[a] })
	}
	out := writes
	if m.Type == TypeWrite {
		out = append(out, m.Win)
	}
	return append(out, reads...)
}

// TopoOrder returns a total order of the given subset (nil means all
// metasteps) consistent with ≼. With a nil rng ties break by ascending ID
// (the canonical order); otherwise ties break uniformly at random.
func (s *Set) TopoOrder(subset []bool, rng *rand.Rand) ([]ID, error) {
	indeg := make([]int, len(s.metas))
	in := func(id ID) bool { return subset == nil || subset[id] }
	total := 0
	for id := range s.metas {
		if !in(ID(id)) {
			continue
		}
		total++
		for _, p := range s.preds[id] {
			if in(p) {
				indeg[id]++
			}
		}
	}
	var avail []ID
	for id := range s.metas {
		if in(ID(id)) && indeg[id] == 0 {
			avail = append(avail, ID(id))
		}
	}
	order := make([]ID, 0, total)
	for len(avail) > 0 {
		var k int
		if rng == nil {
			k = 0
			for j := 1; j < len(avail); j++ {
				if avail[j] < avail[k] {
					k = j
				}
			}
		} else {
			k = rng.Intn(len(avail))
		}
		cur := avail[k]
		avail = append(avail[:k], avail[k+1:]...)
		order = append(order, cur)
		for _, b := range s.succs[cur] {
			if !in(b) {
				continue
			}
			indeg[b]--
			if indeg[b] == 0 {
				avail = append(avail, b)
			}
		}
	}
	if len(order) != total {
		return nil, fmt.Errorf("metastep: cycle detected while linearizing (%d of %d ordered)", len(order), total)
	}
	return order, nil
}

// Lin produces a linearization of the whole set (Figure 1, procedure Lin):
// a canonical one for nil rng, a random one otherwise.
func (s *Set) Lin(rng *rand.Rand) (model.Execution, error) {
	return s.LinSubset(nil, rng)
}

// LinSubset linearizes the metasteps marked in subset (nil means all).
func (s *Set) LinSubset(subset []bool, rng *rand.Rand) (model.Execution, error) {
	order, err := s.TopoOrder(subset, rng)
	if err != nil {
		return nil, err
	}
	var out model.Execution
	for _, id := range order {
		out = append(out, Seq(s.metas[id], rng)...)
	}
	return out, nil
}

// Plin produces a linearization of {µ : µ ≼ m} (Figure 1, procedure Plin).
// m == None yields the empty execution.
func (s *Set) Plin(m ID, rng *rand.Rand) (model.Execution, error) {
	if m == None {
		return nil, nil
	}
	return s.LinSubset(s.AncestorsOf(m), rng)
}

// TotalSteps returns the number of steps across all metasteps.
func (s *Set) TotalSteps() int {
	total := 0
	for _, m := range s.metas {
		total += m.Size()
	}
	return total
}
