package metastep_test

import (
	"math/rand"
	"testing"

	"repro/internal/metastep"
	"repro/internal/model"
)

func w(proc int, reg model.RegID, val model.Value) model.Step {
	return model.Step{Proc: proc, Kind: model.KindWrite, Reg: reg, Val: val}
}

func r(proc int, reg model.RegID) model.Step {
	return model.Step{Proc: proc, Kind: model.KindRead, Reg: reg}
}

func crit(proc int, k model.CritKind) model.Step {
	return model.Step{Proc: proc, Kind: model.KindCrit, Crit: k}
}

// buildDiamond creates a small set: c0 → mw (write metastep with a hidden
// write and a read) → c1, plus a preread pr ordered before mw.
func buildDiamond(t *testing.T) *metastep.Set {
	t.Helper()
	s := metastep.NewSet(3)
	c0 := s.NewCritMeta(crit(0, model.CritTry))
	pr := s.NewReadMeta(r(1, 0))
	mw := s.NewWriteMeta(w(0, 0, 7))
	s.JoinWrite(mw.ID, w(2, 0, 9))
	s.JoinRead(mw.ID, r(1, 0))
	s.SetPread(mw.ID, []metastep.ID{pr.ID})
	s.AddEdge(c0.ID, mw.ID)
	s.AddEdge(pr.ID, mw.ID)
	c1 := s.NewCritMeta(crit(0, model.CritEnter))
	s.AddEdge(mw.ID, c1.ID)
	return s
}

func TestMetaAccessors(t *testing.T) {
	s := buildDiamond(t)
	mw := s.Meta(2)
	if mw.Type != metastep.TypeWrite || mw.Value() != 7 || mw.Winner() != 0 {
		t.Fatalf("bad write metastep: %v", mw)
	}
	if got := mw.Owners(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Owners = %v, want [0 1 2]", got)
	}
	if step, ok := mw.StepOf(2); !ok || step.Val != 9 {
		t.Fatalf("StepOf(2) = %v, %v", step, ok)
	}
	if _, ok := s.Meta(0).StepOf(1); ok {
		t.Fatal("crit metastep of process 0 should not contain process 1")
	}
	if mw.Size() != 3 {
		t.Fatalf("Size = %d, want 3", mw.Size())
	}
	if rd := s.Meta(1); rd.PreadOf != mw.ID {
		t.Fatalf("PreadOf = %v, want %v", rd.PreadOf, mw.ID)
	}
}

func TestChains(t *testing.T) {
	s := buildDiamond(t)
	// Process 0: c0, mw, c1. Process 1: pr, mw (joined read). Process 2: mw.
	if got := s.Chain(0); len(got) != 3 {
		t.Fatalf("chain(0) = %v", got)
	}
	if got := s.Chain(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("chain(1) = %v", got)
	}
	if got := s.Chain(2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("chain(2) = %v", got)
	}
}

func TestAncestorsReaches(t *testing.T) {
	s := buildDiamond(t)
	anc := s.AncestorsOf(3) // c1
	for _, id := range []metastep.ID{0, 1, 2, 3} {
		if !anc[id] {
			t.Fatalf("m%d should precede c1", id)
		}
	}
	if !s.Reaches(0, 3) || s.Reaches(3, 0) {
		t.Fatal("Reaches disagrees with edge structure")
	}
	if !s.Reaches(2, 2) {
		t.Fatal("Reaches must be reflexive")
	}
	if anc := s.AncestorsOf(metastep.None); len(anc) != s.Len() {
		t.Fatal("AncestorsOf(None) should be an all-false slice of full length")
	}
}

func TestSeqOrdering(t *testing.T) {
	s := buildDiamond(t)
	mw := s.Meta(2)
	seq := metastep.Seq(mw, nil)
	if len(seq) != 3 {
		t.Fatalf("Seq length %d", len(seq))
	}
	// Non-winning writes first, winner second-to-last among writes, reads last.
	if seq[0].Kind != model.KindWrite || seq[0].Proc != 2 {
		t.Fatalf("first step %v, want hidden write by 2", seq[0])
	}
	if seq[1] != mw.Win {
		t.Fatalf("second step %v, want winning write", seq[1])
	}
	if seq[2].Kind != model.KindRead {
		t.Fatalf("last step %v, want read", seq[2])
	}
	// Random expansions keep the winner after all writes and before reads.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		sq := metastep.Seq(mw, rng)
		if sq[len(mw.Writes)] != mw.Win {
			t.Fatalf("random Seq misplaced the winner: %v", sq)
		}
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	s := buildDiamond(t)
	order, err := s.TopoOrder(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[metastep.ID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for id := 0; id < s.Len(); id++ {
		for _, succ := range s.Succs(metastep.ID(id)) {
			if pos[metastep.ID(id)] > pos[succ] {
				t.Fatalf("m%d after its successor m%d in %v", id, succ, order)
			}
		}
	}
}

func TestPlinSubset(t *testing.T) {
	s := buildDiamond(t)
	exec, err := s.Plin(2, nil) // up to mw
	if err != nil {
		t.Fatal(err)
	}
	// c0 (1 step) + pr (1) + mw (3) = 5 steps; c1 excluded.
	if len(exec) != 5 {
		t.Fatalf("Plin(mw) has %d steps: %v", len(exec), exec)
	}
	for _, st := range exec {
		if st.Kind == model.KindCrit && st.Crit == model.CritEnter {
			t.Fatal("Plin(mw) must not contain c1's step")
		}
	}
	empty, err := s.Plin(metastep.None, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("Plin(None) = %v, %v", empty, err)
	}
}

func TestCycleDetected(t *testing.T) {
	s := metastep.NewSet(1)
	a := s.NewCritMeta(crit(0, model.CritTry))
	b := s.NewCritMeta(crit(0, model.CritEnter))
	s.AddEdge(a.ID, b.ID)
	s.AddEdge(b.ID, a.ID)
	if err := s.CheckAcyclic(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := s.TopoOrder(nil, nil); err == nil {
		t.Fatal("TopoOrder should fail on a cycle")
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	s := metastep.NewSet(1)
	a := s.NewCritMeta(crit(0, model.CritTry))
	s.AddEdge(a.ID, a.ID)
	if err := s.CheckAcyclic(); err != nil {
		t.Fatalf("self edge should be ignored (reflexivity): %v", err)
	}
}

func TestDoublePreadPanics(t *testing.T) {
	s := metastep.NewSet(2)
	pr := s.NewReadMeta(r(0, 0))
	m1 := s.NewWriteMeta(w(1, 0, 1))
	m2 := s.NewWriteMeta(w(1, 0, 2))
	s.SetPread(m1.ID, []metastep.ID{pr.ID})
	defer func() {
		if recover() == nil {
			t.Fatal("second SetPread with the same read metastep should panic (Theorem 6.2 accounting)")
		}
	}()
	s.SetPread(m2.ID, []metastep.ID{pr.ID})
}

func TestJoinValidation(t *testing.T) {
	s := metastep.NewSet(2)
	mw := s.NewWriteMeta(w(0, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("joining a write on a different register should panic")
		}
	}()
	s.JoinWrite(mw.ID, w(1, 5, 2))
}

func TestCheckLinearizationAcceptsAndRejects(t *testing.T) {
	s := buildDiamond(t)
	good, err := s.Lin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckLinearization(good); err != nil {
		t.Fatalf("canonical linearization rejected: %v", err)
	}
	// Swapping the winning write before the hidden write breaks the Seq shape.
	bad := good.Clone()
	found := false
	for i := 0; i+1 < len(bad); i++ {
		if bad[i].Kind == model.KindWrite && bad[i+1].Kind == model.KindWrite {
			bad[i], bad[i+1] = bad[i+1], bad[i]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("test setup: no adjacent writes")
	}
	if err := s.CheckLinearization(bad); err == nil {
		t.Fatal("winner-before-hidden-write accepted as a linearization")
	}
	// Dropping a step breaks coverage.
	if err := s.CheckLinearization(good[:len(good)-1]); err == nil {
		t.Fatal("truncated execution accepted")
	}
	// An order violating ≼ must be rejected: run c1's step first.
	rev := append(model.Execution{good[len(good)-1]}, good[:len(good)-1]...)
	if err := s.CheckLinearization(rev); err == nil {
		t.Fatal("predecessor-violating order accepted")
	}
}

func TestTotalSteps(t *testing.T) {
	s := buildDiamond(t)
	if got := s.TotalSteps(); got != 6 {
		t.Fatalf("TotalSteps = %d, want 6", got)
	}
}

func TestRandomLinearizationsAlwaysValid(t *testing.T) {
	s := buildDiamond(t)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		exec, err := s.Lin(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckLinearization(exec); err != nil {
			t.Fatalf("random linearization %d rejected: %v\n%v", i, err, exec)
		}
	}
}
