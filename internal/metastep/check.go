package metastep

import (
	"fmt"

	"repro/internal/model"
)

// CheckLinearization verifies that exec is a linearization of the set:
// there is a total order of the metasteps consistent with ≼, and an
// expansion of each metastep by Seq, whose concatenation equals exec.
// This is the acceptance criterion of Theorem 7.4 for the decoder's output.
//
// The verification is deterministic: each process's metasteps are totally
// ordered (its chain), so the metastep that must come next at any position
// of exec is forced by the process of the step at that position.
func (s *Set) CheckLinearization(exec model.Execution) error {
	executed := make([]bool, len(s.metas))
	idx := make([]int, s.n) // per-process position in its chain
	pos := 0
	count := 0
	for pos < len(exec) {
		p := exec[pos].Proc
		if p < 0 || p >= s.n {
			return fmt.Errorf("metastep: step %d: process %d out of range", pos, p)
		}
		if idx[p] >= len(s.chains[p]) {
			return fmt.Errorf("metastep: step %d: process %d has no metasteps left but takes %v", pos, p, exec[pos])
		}
		id := s.chains[p][idx[p]]
		m := s.metas[id]
		if executed[id] {
			return fmt.Errorf("metastep: step %d: metastep %v already executed", pos, m)
		}
		for _, q := range s.preds[id] {
			if !executed[q] {
				return fmt.Errorf("metastep: step %d: %v executed before its predecessor %v", pos, m, s.metas[q])
			}
		}
		block, err := s.matchBlock(m, exec, pos)
		if err != nil {
			return err
		}
		executed[id] = true
		for _, owner := range m.Owners() {
			if idx[owner] >= len(s.chains[owner]) || s.chains[owner][idx[owner]] != id {
				return fmt.Errorf("metastep: step %d: %v is not process %d's next metastep", pos, m, owner)
			}
			idx[owner]++
		}
		pos += block
		count++
	}
	if count != len(s.metas) {
		return fmt.Errorf("metastep: execution covers %d of %d metasteps", count, len(s.metas))
	}
	return nil
}

// matchBlock checks that exec[pos:] starts with a valid Seq expansion of m
// and returns its length: all non-winning writes of m in some order, then
// the winning write, then all reads in some order.
func (s *Set) matchBlock(m *Meta, exec model.Execution, pos int) (int, error) {
	size := m.Size()
	if pos+size > len(exec) {
		return 0, fmt.Errorf("metastep: step %d: execution ends inside %v", pos, m)
	}
	block := exec[pos : pos+size]
	switch m.Type {
	case TypeCrit:
		if !block[0].SameOperation(m.Crit) {
			return 0, fmt.Errorf("metastep: step %d: %v does not match %v", pos, block[0], m)
		}
	case TypeRead:
		if !block[0].SameOperation(m.Reads[0]) {
			return 0, fmt.Errorf("metastep: step %d: %v does not match %v", pos, block[0], m)
		}
	case TypeWrite:
		nw := len(m.Writes)
		if err := matchUnordered(block[:nw], m.Writes); err != nil {
			return 0, fmt.Errorf("metastep: step %d: writes of %v: %w", pos, m, err)
		}
		if !block[nw].SameOperation(m.Win) {
			return 0, fmt.Errorf("metastep: step %d: %v is not the winning write of %v", pos+nw, block[nw], m)
		}
		if err := matchUnordered(block[nw+1:], m.Reads); err != nil {
			return 0, fmt.Errorf("metastep: step %d: reads of %v: %w", pos, m, err)
		}
	}
	return size, nil
}

// matchUnordered checks that got is a permutation of want (by operation).
func matchUnordered(got model.Execution, want []model.Step) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d steps, want %d", len(got), len(want))
	}
	used := make([]bool, len(want))
outer:
	for _, g := range got {
		for j, w := range want {
			if !used[j] && g.SameOperation(w) {
				used[j] = true
				continue outer
			}
		}
		return fmt.Errorf("step %v not in metastep", g)
	}
	return nil
}
