package verify_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/program"
	"repro/internal/verify"
)

func c(proc int, k model.CritKind) model.Step {
	return model.Step{Proc: proc, Kind: model.KindCrit, Crit: k}
}

func TestWellFormed(t *testing.T) {
	good := model.Execution{
		c(0, model.CritTry), c(1, model.CritTry),
		c(0, model.CritEnter), c(0, model.CritExit), c(0, model.CritRem),
		c(1, model.CritEnter), c(1, model.CritExit), c(1, model.CritRem),
	}
	if err := verify.WellFormed(good, 2); err != nil {
		t.Fatalf("good execution rejected: %v", err)
	}
	bad := model.Execution{c(0, model.CritEnter)}
	if err := verify.WellFormed(bad, 1); err == nil {
		t.Fatal("enter-before-try accepted")
	}
	outOfRange := model.Execution{c(5, model.CritTry)}
	if err := verify.WellFormed(outOfRange, 2); err == nil {
		t.Fatal("out-of-range process accepted")
	}
}

func TestMutualExclusion(t *testing.T) {
	overlap := model.Execution{
		c(0, model.CritTry), c(1, model.CritTry),
		c(0, model.CritEnter), c(1, model.CritEnter),
	}
	if err := verify.MutualExclusion(overlap); err == nil {
		t.Fatal("overlapping critical sections accepted")
	}
	seq := model.Execution{
		c(0, model.CritTry), c(0, model.CritEnter), c(0, model.CritExit),
		c(1, model.CritTry), c(1, model.CritEnter), c(1, model.CritExit),
	}
	if err := verify.MutualExclusion(seq); err != nil {
		t.Fatalf("sequential sections rejected: %v", err)
	}
	// Exit by a process that is not the occupant.
	badExit := model.Execution{c(0, model.CritTry), c(0, model.CritEnter), c(1, model.CritExit)}
	if err := verify.MutualExclusion(badExit); err == nil {
		t.Fatal("foreign exit accepted")
	}
}

func TestCanonical(t *testing.T) {
	one := model.Execution{
		c(0, model.CritTry), c(0, model.CritEnter), c(0, model.CritExit), c(0, model.CritRem),
	}
	if err := verify.Canonical(one, 1); err != nil {
		t.Fatalf("canonical rejected: %v", err)
	}
	if err := verify.Canonical(one, 2); err == nil {
		t.Fatal("missing process accepted")
	}
	two := append(one.Clone(), one...)
	if err := verify.Canonical(two, 1); err == nil {
		t.Fatal("double cycle accepted")
	}
}

func TestEntryOrder(t *testing.T) {
	exec := model.Execution{
		c(1, model.CritTry), c(1, model.CritEnter),
		c(0, model.CritTry), c(1, model.CritExit), c(0, model.CritEnter),
	}
	if err := verify.EntryOrder(exec, []int{1, 0}); err != nil {
		t.Fatalf("correct order rejected: %v", err)
	}
	if err := verify.EntryOrder(exec, []int{0, 1}); err == nil {
		t.Fatal("wrong order accepted")
	}
	if err := verify.EntryOrder(exec, []int{1}); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestReplayableCatchesForgedValues(t *testing.T) {
	f, err := mutex.YangAnderson(2)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Replayable(f, exec); err != nil {
		t.Fatalf("genuine execution rejected: %v", err)
	}
	// Forge a read value.
	forged := exec.Clone()
	for i := range forged {
		if forged[i].Kind == model.KindRead && forged[i].Val != 0 {
			forged[i].Val++
			break
		}
	}
	if err := verify.Replayable(f, forged); err == nil {
		t.Fatal("forged read value accepted")
	}
}

func TestLivelockFreePasses(t *testing.T) {
	f, err := mutex.Bakery(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := verify.LivelockFree(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Completed || p.Steps == 0 {
		t.Fatalf("progress %+v", p)
	}
}

func TestLivelockFreeDetectsStuckSystem(t *testing.T) {
	// A deliberately stuck program: after try, spin on a register nobody
	// ever writes. The bounded-horizon check must flag the dangling try.
	layout := mutex.NewLayout()
	dead := layout.Reg("dead", 0, -1)
	b := program.NewBuilder("stuck")
	x := b.Var("x")
	b.Try()
	b.Spin(dead, x, program.Ne(x, program.Const(0)))
	b.Enter()
	b.Exit()
	b.Rem()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := mutex.NewFactory("stuck", layout, []*program.Program{p})
	if _, err := verify.LivelockFree(f, machine.NewRoundRobin(), 2000); err == nil {
		t.Fatal("stuck system passed the livelock check")
	}
}
