// Package verify checks executions against the requirements of the
// livelock-free mutual exclusion problem (Section 3.2): well-formedness,
// mutual exclusion, and livelock freedom, plus auxiliary checks (canonical
// executions, replay validity) used throughout the test suite and the
// experiment harness.
package verify

import (
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/program"
)

// WellFormed checks that for every process, the subsequence of its critical
// steps is a prefix of (try enter exit rem)*.
func WellFormed(exec model.Execution, n int) error {
	expect := []model.CritKind{model.CritTry, model.CritEnter, model.CritExit, model.CritRem}
	pos := make([]int, n)
	for t, s := range exec {
		if s.Kind != model.KindCrit {
			continue
		}
		if s.Proc < 0 || s.Proc >= n {
			return fmt.Errorf("verify: step %d: process %d out of range", t, s.Proc)
		}
		want := expect[pos[s.Proc]%4]
		if s.Crit != want {
			return fmt.Errorf("verify: step %d: process %d performs %s, well-formedness requires %s", t, s.Proc, s.Crit, want)
		}
		pos[s.Proc]++
	}
	return nil
}

// MutualExclusion checks that no two processes are simultaneously between
// their enter and exit steps.
func MutualExclusion(exec model.Execution) error {
	occupant := -1
	for t, s := range exec {
		if s.Kind != model.KindCrit {
			continue
		}
		switch s.Crit {
		case model.CritEnter:
			if occupant >= 0 && occupant != s.Proc {
				return fmt.Errorf("verify: step %d: process %d enters while process %d is in its critical section", t, s.Proc, occupant)
			}
			occupant = s.Proc
		case model.CritExit:
			if occupant != s.Proc {
				return fmt.Errorf("verify: step %d: process %d exits but occupant is %d", t, s.Proc, occupant)
			}
			occupant = -1
		}
	}
	return nil
}

// Canonical checks the execution is canonical: every one of the n processes
// completes exactly one try-enter-exit-rem cycle.
func Canonical(exec model.Execution, n int) error {
	cycles := make([]int, n)
	for _, s := range exec {
		if s.Kind == model.KindCrit && s.Crit == model.CritRem {
			cycles[s.Proc]++
		}
	}
	for i, c := range cycles {
		if c != 1 {
			return fmt.Errorf("verify: process %d completed %d critical-section cycles, canonical executions require 1", i, c)
		}
	}
	return nil
}

// EntryOrder checks that processes enter their critical sections in exactly
// the given order (a permutation of 0..n-1). This is the conclusion of
// Theorem 5.5 for the construction's linearizations.
func EntryOrder(exec model.Execution, want []int) error {
	got := exec.EntryOrder()
	if len(got) != len(want) {
		return fmt.Errorf("verify: %d critical-section entries, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			return fmt.Errorf("verify: entry %d is by process %d, want process %d (got order %v, want %v)", k, got[k], want[k], got, want)
		}
	}
	return nil
}

// Replayable checks that the execution is a genuine execution of the
// algorithm: every step matches the acting automaton's pending step and
// every recorded read value matches the register contents at that point.
func Replayable(f program.Factory, exec model.Execution) error {
	r := machine.NewReplayer(f)
	for t, s := range exec {
		done, err := r.Apply(s)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if s.Kind == model.KindRead && s.Val != done.Val && s.Val != 0 {
			// Recorded read results are optional (zero when unrecorded);
			// when present they must match.
			return fmt.Errorf("verify: step %d: recorded read value %d, replay reads %d", t, s.Val, done.Val)
		}
	}
	return nil
}

// Progress describes the outcome of a livelock-freedom check.
type Progress struct {
	// Completed is true when every process finished its cycle within the
	// horizon.
	Completed bool
	// Steps is the number of steps taken.
	Steps int
}

// LivelockFree runs the algorithm under the scheduler for at most maxSteps
// and checks the livelock freedom property on the resulting (fair, because
// the supplied scheduler must be fair) execution: every try is followed by
// some enter, and every exit by some rem. It also requires that all
// processes complete, since our algorithms' programs terminate after one
// cycle. This is a bounded-horizon check: liveness proper is not decidable
// by testing, but a violation found here is a definite bug.
func LivelockFree(f program.Factory, sched machine.Scheduler, maxSteps int) (Progress, error) {
	if maxSteps <= 0 {
		maxSteps = machine.DefaultHorizon(f.N())
	}
	s := machine.NewSystem(f)
	trace, err := machine.Run(s, sched, maxSteps)
	p := Progress{Steps: len(trace)}
	var horizon machine.ErrHorizon
	if err != nil && !errors.As(err, &horizon) {
		return p, err
	}
	if err := checkFollowedBy(trace, model.CritTry, model.CritEnter); err != nil {
		return p, err
	}
	if err := checkFollowedBy(trace, model.CritExit, model.CritRem); err != nil {
		return p, err
	}
	if err != nil { // horizon exhausted: processes still live
		return p, fmt.Errorf("verify: livelock suspected: %w", err)
	}
	p.Completed = true
	return p, nil
}

// checkFollowedBy verifies that every `a` critical step is followed, later
// in the execution, by some `b` critical step (by any process) — the shape
// of the livelock freedom property.
func checkFollowedBy(exec model.Execution, a, b model.CritKind) error {
	lastA := -1
	for t, s := range exec {
		if s.Kind != model.KindCrit {
			continue
		}
		switch s.Crit {
		case a:
			lastA = t
		case b:
			lastA = -1
		}
	}
	if lastA >= 0 {
		return fmt.Errorf("verify: %s at step %d is never followed by %s", a, lastA, b)
	}
	return nil
}

// MutexExecution runs the full battery on a canonical execution: replayable,
// well-formed, mutually exclusive, and canonical.
func MutexExecution(f program.Factory, exec model.Execution) error {
	if err := Replayable(f, exec); err != nil {
		return err
	}
	if err := WellFormed(exec, f.N()); err != nil {
		return err
	}
	if err := MutualExclusion(exec); err != nil {
		return err
	}
	return Canonical(exec, f.N())
}
