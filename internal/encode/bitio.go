package encode

import (
	"errors"
	"fmt"
	"math/bits"
)

// BitWriter accumulates a bitstring MSB-first. Theorem 6.2 is a statement
// about bits, so the encoding length is measured exactly, not in bytes or
// characters.
type BitWriter struct {
	buf  []byte
	used int // bits used in the final byte (0..7); 0 means byte-aligned
	n    int // total bits written
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.n }

// Bytes returns the accumulated bitstring, zero-padded to a byte boundary.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b uint) {
	if w.used == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.used)
	}
	w.used = (w.used + 1) % 8
	w.n++
}

// WriteBits appends the low `width` bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>i) & 1)
	}
}

// WriteGamma appends the Elias gamma code of v ≥ 1: for a value with
// bit-length L, L-1 zeros followed by the L bits of v. Length 2L-1 =
// O(log v) bits, self-delimiting — which is what lets the encoding drop the
// paper's '#' separators without losing parseability.
func (w *BitWriter) WriteGamma(v uint64) {
	if v == 0 {
		panic("encode: WriteGamma(0)")
	}
	l := bits.Len64(v)
	for i := 0; i < l-1; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(v, l)
}

// GammaLen returns the length in bits of the gamma code of v ≥ 1.
func GammaLen(v uint64) int { return 2*bits.Len64(v) - 1 }

// ErrOutOfBits is returned when a read runs past the end of the bitstring.
var ErrOutOfBits = errors.New("encode: bitstring exhausted")

// BitReader consumes a bitstring produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
	n   int // total readable bits
}

// NewBitReader reads up to nbits bits from buf (nbits ≤ 8*len(buf)).
func NewBitReader(buf []byte, nbits int) *BitReader {
	if nbits > 8*len(buf) {
		panic(fmt.Sprintf("encode: NewBitReader: nbits=%d exceeds buffer of %d bits", nbits, 8*len(buf)))
	}
	return &BitReader{buf: buf, n: nbits}
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= r.n {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos/8] >> (7 - r.pos%8)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits consumes `width` bits, most significant first.
func (r *BitReader) ReadBits(width int) (uint64, error) {
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadGamma consumes an Elias gamma code and returns its value (≥ 1).
func (r *BitReader) ReadGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, fmt.Errorf("encode: gamma code too long at bit %d", r.pos)
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<zeros | rest, nil
}
