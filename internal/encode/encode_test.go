package encode_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/construct"
	"repro/internal/encode"
	"repro/internal/metastep"
	"repro/internal/mutex"
	"repro/internal/perm"
)

// --- bit I/O ---

func TestBitRoundTrip(t *testing.T) {
	var w encode.BitWriter
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteGamma(1)
	w.WriteGamma(17)
	w.WriteBits(0, 3)
	r := encode.NewBitReader(w.Bytes(), w.Len())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit mismatch")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("bits mismatch: %b", v)
	}
	if v, _ := r.ReadGamma(); v != 1 {
		t.Fatalf("gamma(1) read as %d", v)
	}
	if v, _ := r.ReadGamma(); v != 17 {
		t.Fatalf("gamma(17) read as %d", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Fatalf("trailing bits %b", v)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("reading past the end should fail")
	}
}

func TestGammaRoundTripProperty(t *testing.T) {
	err := quick.Check(func(raw uint32) bool {
		v := uint64(raw)%100000 + 1
		var w encode.BitWriter
		w.WriteGamma(v)
		if w.Len() != encode.GammaLen(v) {
			return false
		}
		r := encode.NewBitReader(w.Bytes(), w.Len())
		got, err := r.ReadGamma()
		return err == nil && got == v && r.Pos() == w.Len()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteGamma(0) should panic")
		}
	}()
	var w encode.BitWriter
	w.WriteGamma(0)
}

func TestBitStreamProperty(t *testing.T) {
	// Arbitrary mixed sequences of fixed-width fields round-trip.
	err := quick.Check(func(vals []uint16, widthSeed uint8) bool {
		var w encode.BitWriter
		widths := make([]int, len(vals))
		for i, v := range vals {
			widths[i] = int(widthSeed%16) + 1
			w.WriteBits(uint64(v)&((1<<widths[i])-1), widths[i])
			widthSeed = widthSeed*31 + 7
		}
		r := encode.NewBitReader(w.Bytes(), w.Len())
		widthSeed2 := widthSeed
		_ = widthSeed2
		for i, v := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != uint64(v)&((1<<widths[i])-1) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// --- table encoding ---

func mustConstruct(t testing.TB, algoName string, pi []int) *construct.Result {
	t.Helper()
	f, err := mutex.New(algoName, len(pi))
	if err != nil {
		t.Fatal(err)
	}
	res, err := construct.Construct(f, pi)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEncodeParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range []string{mutex.NameYangAnderson, mutex.NameBakery} {
		for _, n := range []int{2, 4, 6} {
			pi := perm.Random(n, rng)
			res := mustConstruct(t, name, pi)
			enc, err := encode.Encode(res.Set)
			if err != nil {
				t.Fatal(err)
			}
			cols, err := encode.ParseBits(enc.Bits, enc.BitLen, n)
			if err != nil {
				t.Fatalf("%s n=%d: ParseBits: %v", name, n, err)
			}
			if len(cols) != len(enc.Columns) {
				t.Fatalf("column count %d, want %d", len(cols), len(enc.Columns))
			}
			for i := range cols {
				if len(cols[i]) != len(enc.Columns[i]) {
					t.Fatalf("column %d length %d, want %d", i, len(cols[i]), len(enc.Columns[i]))
				}
				for j := range cols[i] {
					if cols[i][j] != enc.Columns[i][j] {
						t.Fatalf("cell (%d,%d): parsed %v, encoded %v", i, j, cols[i][j], enc.Columns[i][j])
					}
				}
			}
		}
	}
}

func TestCellsMatchChainLengths(t *testing.T) {
	res := mustConstruct(t, mutex.NameYangAnderson, []int{1, 0, 2})
	enc, err := encode.Encode(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if len(enc.Columns[i]) != len(res.Set.Chain(i)) {
			t.Fatalf("column %d has %d cells, chain has %d metasteps", i, len(enc.Columns[i]), len(res.Set.Chain(i)))
		}
	}
}

func TestExactlyOneSignaturePerWriteMetastep(t *testing.T) {
	res := mustConstruct(t, mutex.NameBakery, []int{2, 0, 3, 1})
	enc, err := encode.Encode(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	sigs := 0
	for _, col := range enc.Columns {
		for _, c := range col {
			if c.Tag == encode.TagWSig {
				sigs++
			}
		}
	}
	writes := 0
	for id := 0; id < res.Set.Len(); id++ {
		if res.Set.Meta(metastep.ID(id)).Type == metastep.TypeWrite {
			writes++
		}
	}
	if sigs != writes {
		t.Fatalf("%d signatures for %d write metasteps", sigs, writes)
	}
}

func TestParseBitsRejectsGarbage(t *testing.T) {
	if _, err := encode.ParseBits([]byte{0xFF, 0xFF}, 16, 2); err == nil {
		t.Fatal("garbage accepted")
	}
	res := mustConstruct(t, mutex.NameYangAnderson, []int{0, 1})
	enc, err := encode.Encode(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation must be detected.
	if _, err := encode.ParseBits(enc.Bits, enc.BitLen-4, 2); err == nil {
		t.Fatal("truncated bitstring accepted")
	}
	// Wrong process count must be detected (trailing bits or exhaustion).
	if _, err := encode.ParseBits(enc.Bits, enc.BitLen, 1); err == nil {
		t.Fatal("wrong column count accepted")
	}
}

func TestHumanReadableForm(t *testing.T) {
	res := mustConstruct(t, mutex.NameYangAnderson, []int{1, 0})
	enc, err := encode.Encode(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	s := enc.String()
	if s == "" {
		t.Fatal("empty string form")
	}
	// The table must contain at least one signature and the column separator.
	if !containsAll(s, "W,PR", "$", "C") {
		t.Fatalf("string form missing expected fragments: %s", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestBitLenAccounting: the serialized length equals the sum of per-cell
// costs: 3 bits per tag (+ signature gammas), 3 per column terminator.
func TestBitLenAccounting(t *testing.T) {
	res := mustConstruct(t, mutex.NameYangAnderson, []int{2, 1, 0, 3})
	enc, err := encode.Encode(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, col := range enc.Columns {
		for _, c := range col {
			want += 3
			if c.Tag == encode.TagWSig {
				want += encode.GammaLen(uint64(c.Pr)+1) + encode.GammaLen(uint64(c.R)+1) + encode.GammaLen(uint64(c.W))
			}
		}
		want += 3
	}
	if enc.BitLen != want {
		t.Fatalf("BitLen = %d, accounting says %d", enc.BitLen, want)
	}
}
