// Package encode implements the encoding step of the proof (Section 6,
// Figure 2): it turns the constructed (M, ≼) into a string E_π of length
// O(C), where C is the state change cost of (every) linearization.
//
// The encoding is the paper's table T with n columns: cell T(i, j) records
// what process p_i does in its j'th metastep —
//
//	R     a read inside a write metastep (the reader waits for the winner)
//	W     a non-winning write inside a write metastep
//	W,sig the winning write, with the metastep's signature
//	      PR x R y W z: |pread(m)|, |read(m)|, |write(m)|+1
//	PR    a standalone read metastep that is some write metastep's preread
//	SR    a standalone read metastep that is nobody's preread
//	C     a critical step
//
// Crucially the signature carries only counts — not which processes, which
// register, or what value — which is why a metastep with k processes costs
// O(k) bits against the O(k) state changes its execution incurs
// (Theorem 6.2). The decoder recovers everything else by running the
// algorithm's transition function.
//
// Cells are serialized with 3-bit tags and Elias gamma counts, so the
// encoding is self-delimiting and its length is measured in exact bits.
package encode

import (
	"fmt"
	"strings"

	"repro/internal/metastep"
)

// Tag enumerates cell kinds.
type Tag uint8

// Cell tags. tagEnd terminates a column (the paper's '$').
const (
	TagR Tag = iota
	TagW
	TagWSig
	TagPR
	TagSR
	TagC
	tagEnd

	tagBits = 3
)

// String renders the tag as in the paper.
func (t Tag) String() string {
	switch t {
	case TagR:
		return "R"
	case TagW:
		return "W"
	case TagWSig:
		return "W*"
	case TagPR:
		return "PR"
	case TagSR:
		return "SR"
	case TagC:
		return "C"
	case tagEnd:
		return "$"
	default:
		return fmt.Sprintf("Tag(%d)", uint8(t))
	}
}

// Cell is one table entry T(i, j).
type Cell struct {
	Tag Tag
	// Signature counts, valid when Tag == TagWSig:
	Pr int // |pread(m)|
	R  int // |read(m)|
	W  int // |write(m)| + 1, i.e. including the winning write
}

// String renders the cell as in the paper, e.g. "W,PR0R2W3".
func (c Cell) String() string {
	if c.Tag == TagWSig {
		return fmt.Sprintf("W,PR%dR%dW%d", c.Pr, c.R, c.W)
	}
	return c.Tag.String()
}

// Encoding is E_π: the table cells plus their exact bit serialization.
type Encoding struct {
	N       int
	Columns [][]Cell // Columns[i][j] = T(i+1, j+1) in the paper's indexing
	Bits    []byte   // the bitstring; the decoder's only input besides A
	BitLen  int      // exact length of E_π in bits
}

// Encode produces E_π from the constructed metastep set.
func Encode(s *metastep.Set) (*Encoding, error) {
	e := &Encoding{N: s.N(), Columns: make([][]Cell, s.N())}
	for i := 0; i < s.N(); i++ {
		for _, id := range s.Chain(i) {
			m := s.Meta(id)
			cell, err := cellFor(m, i)
			if err != nil {
				return nil, err
			}
			e.Columns[i] = append(e.Columns[i], cell)
		}
	}
	var w BitWriter
	for _, col := range e.Columns {
		for _, c := range col {
			w.WriteBits(uint64(c.Tag), tagBits)
			if c.Tag == TagWSig {
				w.WriteGamma(uint64(c.Pr) + 1)
				w.WriteGamma(uint64(c.R) + 1)
				w.WriteGamma(uint64(c.W)) // ≥ 1: the winning write
			}
		}
		w.WriteBits(uint64(tagEnd), tagBits)
	}
	e.Bits = w.Bytes()
	e.BitLen = w.Len()
	return e, nil
}

// cellFor computes T(i, ·) for process i's step in metastep m
// (Figure 2, lines 3-17).
func cellFor(m *metastep.Meta, i int) (Cell, error) {
	switch m.Type {
	case metastep.TypeCrit:
		return Cell{Tag: TagC}, nil
	case metastep.TypeRead:
		if m.PreadOf != metastep.None {
			return Cell{Tag: TagPR}, nil
		}
		return Cell{Tag: TagSR}, nil
	case metastep.TypeWrite:
		if m.Win.Proc == i {
			return Cell{
				Tag: TagWSig,
				Pr:  len(m.Pread),
				R:   len(m.Reads),
				W:   len(m.Writes) + 1,
			}, nil
		}
		for _, s := range m.Writes {
			if s.Proc == i {
				return Cell{Tag: TagW}, nil
			}
		}
		for _, s := range m.Reads {
			if s.Proc == i {
				return Cell{Tag: TagR}, nil
			}
		}
		return Cell{}, fmt.Errorf("encode: process %d not contained in %v", i, m)
	default:
		return Cell{}, fmt.Errorf("encode: unknown metastep type %v", m.Type)
	}
}

// ParseBits reconstructs the table columns from the bitstring alone. The
// decoder uses it as its getStep(E, i, j) primitive; nothing but the bits
// and the process count crosses the boundary.
func ParseBits(bitstr []byte, bitLen, n int) ([][]Cell, error) {
	r := NewBitReader(bitstr, bitLen)
	cols := make([][]Cell, n)
	for i := 0; i < n; i++ {
		for {
			raw, err := r.ReadBits(tagBits)
			if err != nil {
				return nil, fmt.Errorf("encode: column %d: %w", i, err)
			}
			tag := Tag(raw)
			if tag == tagEnd {
				break
			}
			cell := Cell{Tag: tag}
			if tag == TagWSig {
				pr, err := r.ReadGamma()
				if err != nil {
					return nil, fmt.Errorf("encode: column %d signature: %w", i, err)
				}
				rd, err := r.ReadGamma()
				if err != nil {
					return nil, fmt.Errorf("encode: column %d signature: %w", i, err)
				}
				wr, err := r.ReadGamma()
				if err != nil {
					return nil, fmt.Errorf("encode: column %d signature: %w", i, err)
				}
				cell.Pr, cell.R, cell.W = int(pr-1), int(rd-1), int(wr)
			}
			if tag > tagEnd {
				return nil, fmt.Errorf("encode: column %d: invalid tag %d", i, raw)
			}
			cols[i] = append(cols[i], cell)
		}
	}
	if r.Pos() != bitLen {
		return nil, fmt.Errorf("encode: %d trailing bits after %d columns", bitLen-r.Pos(), n)
	}
	return cols, nil
}

// String renders E_π in the paper's human-readable form: columns separated
// by '$', cells by '#'.
func (e *Encoding) String() string {
	var b strings.Builder
	for i, col := range e.Columns {
		if i > 0 {
			b.WriteByte('$')
		}
		for j, c := range col {
			if j > 0 {
				b.WriteByte('#')
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}
