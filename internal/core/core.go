// Package core ties the paper's three proof steps into one verified
// pipeline and derives the lower bound numbers:
//
//	Construct(A, π) → (M, ≼)          (Section 5)
//	Encode(M, ≼)    → E_π             (Section 6)
//	Decode(A, E_π)  → α_π             (Section 7)
//
// Pipeline runs all three for one permutation and machine-checks every
// theorem along the way: Theorem 5.5 (critical sections in π order),
// Lemma 6.1 (linearization cost invariance, via the decoded execution's
// cost), Theorem 6.2 (|E_π| = O(C)), and Theorem 7.4 (the decoded execution
// is a linearization of (M, ≼)). Sweep utilities aggregate pipelines over
// sets of permutations for the counting argument of Theorem 7.5: n!
// distinct executions force max |E_π| ≥ log₂ n! bits, hence max C(α_π) =
// Ω(n log n).
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/construct"
	"repro/internal/decode"
	"repro/internal/encode"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/perm"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/store"
	"repro/internal/verify"
)

// Pipeline is the verified result of running the full proof pipeline for
// one (algorithm, permutation) pair.
type Pipeline struct {
	Factory  program.Factory
	Perm     []int
	Result   *construct.Result
	Encoding *encode.Encoding
	// Decoded is α_π = Decode(E_π): a linearization of (M, ≼).
	Decoded model.Execution
	// Cost is C(α_π), the state change cost of the decoded execution —
	// equal to the cost of every linearization by Lemma 6.1.
	Cost int
}

// Run executes Construct → Encode → Decode for the permutation and verifies
// the pipeline's guarantees. Any verification failure is returned as an
// error: a non-nil Pipeline is a machine-checked instance of the paper's
// Sections 5-7 for this π.
func Run(f program.Factory, pi []int) (*Pipeline, error) {
	res, err := construct.Construct(f, pi)
	if err != nil {
		return nil, err
	}
	enc, err := encode.Encode(res.Set)
	if err != nil {
		return nil, err
	}
	dec, err := decode.Decode(f, enc.Bits, enc.BitLen)
	if err != nil {
		return nil, fmt.Errorf("core: decode(pi=%v): %w", pi, err)
	}
	// Theorem 7.4: the decoded execution is a linearization of (M, ≼).
	if err := res.Set.CheckLinearization(dec); err != nil {
		return nil, fmt.Errorf("core: decoded execution is not a linearization (Theorem 7.4): %w", err)
	}
	// The decoded execution is a real execution of A with the mutual
	// exclusion properties, and critical sections follow π (Theorem 5.5).
	if err := verify.MutexExecution(f, dec); err != nil {
		return nil, fmt.Errorf("core: decoded execution invalid: %w", err)
	}
	if err := verify.EntryOrder(dec, pi); err != nil {
		return nil, fmt.Errorf("core: Theorem 5.5 violated: %w", err)
	}
	_, sc, err := machine.ReplayExecution(f, dec)
	if err != nil {
		return nil, err
	}
	// Lemma 6.1: decoded cost equals the canonical linearization's cost.
	canonical, err := res.Cost()
	if err != nil {
		return nil, err
	}
	if sc != canonical {
		return nil, fmt.Errorf("core: decoded cost %d ≠ canonical linearization cost %d (Lemma 6.1)", sc, canonical)
	}
	return &Pipeline{
		Factory:  f,
		Perm:     append([]int(nil), pi...),
		Result:   res,
		Encoding: enc,
		Decoded:  dec,
		Cost:     sc,
	}, nil
}

// BitsPerCost returns |E_π| / C(α_π), the constant of Theorem 6.2 for this
// pipeline. It must stay bounded as n grows.
func (p *Pipeline) BitsPerCost() float64 {
	if p.Cost == 0 {
		return 0
	}
	return float64(p.Encoding.BitLen) / float64(p.Cost)
}

// SweepStats aggregates pipelines over a set of permutations.
type SweepStats struct {
	N              int
	Perms          int
	MaxCost        int
	MinCost        int
	SumCost        int
	MaxBits        int
	SumBits        int
	MaxBitsPerCost float64
	// Distinct is the number of distinct decoded executions; for an
	// exhaustive sweep it must equal n! (the injectivity that powers
	// Theorem 7.5).
	Distinct int
}

// MeanCost returns the average C(α_π) over the sweep.
func (s SweepStats) MeanCost() float64 {
	if s.Perms == 0 {
		return 0
	}
	return float64(s.SumCost) / float64(s.Perms)
}

// MeanBits returns the average |E_π| in bits over the sweep.
func (s SweepStats) MeanBits() float64 {
	if s.Perms == 0 {
		return 0
	}
	return float64(s.SumBits) / float64(s.Perms)
}

// Sweep runs the pipeline for every permutation in perms and aggregates.
// Pipelines execute in parallel on the default engine (bounded by
// GOMAXPROCS); use SweepOn to control the worker count.
func Sweep(f program.Factory, perms [][]int) (SweepStats, error) {
	return SweepOn(runner.Default(), f, perms)
}

// sweepOut is the per-permutation result a sweep aggregates — and the unit
// the content-addressed store memoizes, so its fields are exported pure
// values that round-trip exactly through JSON. Workers return this small
// summary instead of the whole Pipeline so an out-of-order window (and a
// cache entry) holds bytes, not executions.
type sweepOut struct {
	Cost int     `json:"c"`
	Bits int     `json:"b"`
	BPC  float64 `json:"r"`
	// Hash identifies the decoded execution for the Distinct count; a short
	// content hash stands in for the execution string so cache entries stay
	// small and cold and warm runs count distincts identically.
	Hash string `json:"h"`
}

// sweepKeyParts is the canonical content of one permutation's store key.
type sweepKeyParts struct {
	Op   string `json:"op"`
	Algo string `json:"algo"`
	N    int    `json:"n"`
	Perm []int  `json:"perm"`
}

// hashExec returns the short content hash of a decoded execution's string
// form, used for distinctness counting.
func hashExec(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}

// SweepOn runs the pipeline for every permutation in perms on the given
// engine and aggregates. The factory is shared read-only across workers
// (factories are immutable; every run builds fresh automata and
// registers), and results are folded in permutation order, so the stats —
// including first-error behaviour — are identical at every worker count.
func SweepOn(eng *runner.Engine, f program.Factory, perms [][]int) (SweepStats, error) {
	return SweepCached(runner.NewCached(eng, nil), f, perms)
}

// SweepCached is SweepOn through a cached engine: each permutation's
// pipeline summary is keyed by (algorithm, n, π) under the code-version
// salt, so re-runs — in this process or any other sharing the store —
// fold cached summaries instead of re-verifying the pipeline, and the
// aggregated stats are identical either way. On a priming (shard) engine
// it only fills the store: the returned stats are meaningless and the
// caller must not validate them.
func SweepCached(eng *runner.CachedEngine, f program.Factory, perms [][]int) (SweepStats, error) {
	stats := SweepStats{N: f.N(), MinCost: -1}
	seen := make(map[string]bool, len(perms))
	key := func(i int) string {
		return store.Key(runner.CacheVersion, sweepKeyParts{Op: "sweep", Algo: f.Name(), N: f.N(), Perm: perms[i]})
	}
	err := runner.CachedMap(eng, len(perms), key, func(i int) (sweepOut, error) {
		p, err := Run(f, perms[i])
		if err != nil {
			return sweepOut{}, err
		}
		return sweepOut{
			Cost: p.Cost,
			Bits: p.Encoding.BitLen,
			BPC:  p.BitsPerCost(),
			Hash: hashExec(p.Decoded.String()),
		}, nil
	}, func(i int, o sweepOut) error {
		stats.Perms++
		stats.SumCost += o.Cost
		stats.SumBits += o.Bits
		if o.Cost > stats.MaxCost {
			stats.MaxCost = o.Cost
		}
		if stats.MinCost < 0 || o.Cost < stats.MinCost {
			stats.MinCost = o.Cost
		}
		if o.Bits > stats.MaxBits {
			stats.MaxBits = o.Bits
		}
		if o.BPC > stats.MaxBitsPerCost {
			stats.MaxBitsPerCost = o.BPC
		}
		seen[o.Hash] = true
		return nil
	})
	if err != nil {
		return stats, err
	}
	stats.Distinct = len(seen)
	return stats, nil
}

// ExhaustiveSweep runs the pipeline over all of S_n and additionally checks
// the injectivity required by Theorem 7.5: distinct permutations yield
// distinct decoded executions (n! of them).
func ExhaustiveSweep(f program.Factory) (SweepStats, error) {
	return ExhaustiveSweepOn(runner.Default(), f)
}

// ExhaustiveSweepOn is ExhaustiveSweep on a caller-chosen engine.
func ExhaustiveSweepOn(eng *runner.Engine, f program.Factory) (SweepStats, error) {
	return ExhaustiveSweepCached(runner.NewCached(eng, nil), f)
}

// ExhaustiveSweepCached is ExhaustiveSweep through a cached engine. On a
// priming (shard) engine the injectivity check is skipped — a prime pass
// folds nothing, so there is nothing to count; the check runs on the merged
// replay instead.
func ExhaustiveSweepCached(eng *runner.CachedEngine, f program.Factory) (SweepStats, error) {
	n := f.N()
	if n > 8 {
		return SweepStats{}, fmt.Errorf("core: exhaustive sweep of S_%d (%d permutations) refused; use Sweep with a sample", n, perm.Factorial(n))
	}
	var perms [][]int
	perm.ForEach(n, func(pi []int) bool {
		perms = append(perms, append([]int(nil), pi...))
		return true
	})
	stats, err := SweepCached(eng, f, perms)
	if err != nil {
		return stats, err
	}
	if eng.Priming() {
		return stats, nil
	}
	if want := int(perm.Factorial(n)); stats.Distinct != want {
		return stats, fmt.Errorf("core: only %d distinct executions for %d permutations (Theorem 7.5 injectivity violated)", stats.Distinct, want)
	}
	return stats, nil
}

// InformationBound returns log₂(n!), the bit floor that max |E_π| must
// reach over any exhaustive sweep, and with it (via Theorem 6.2) the
// Ω(n log n) cost bound.
func InformationBound(n int) float64 { return perm.Log2Factorial(n) }
