package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/metastep"
	"repro/internal/mutex"
	"repro/internal/perm"
)

// TestHiddenWriteGadgetExercised closes a coverage gap: every classic
// algorithm announces before it reads, so the construction hides higher
// processes exclusively through prereads and joined reads — the hidden
// non-winning write of Figure 1 line 16 never occurs, and the decoder's
// parked plain-W cells are never exercised end to end. The bakery-scribble
// variant writes a shared register after its last read, which provably
// forces later processes' scribbles to join the first process's scribble
// metastep. The full pipeline must round-trip those metasteps too.
func TestHiddenWriteGadgetExercised(t *testing.T) {
	for n := 2; n <= 4; n++ {
		f, err := mutex.BakeryScribble(n)
		if err != nil {
			t.Fatal(err)
		}
		totalHidden := 0
		perm.ForEach(n, func(pi []int) bool {
			p, err := core.Run(f, append([]int(nil), pi...))
			if err != nil {
				t.Fatalf("n=%d pi=%v: %v", n, pi, err)
			}
			hidden, wCells := 0, 0
			for id := 0; id < p.Result.Set.Len(); id++ {
				hidden += len(p.Result.Set.Meta(metastep.ID(id)).Writes)
			}
			for _, col := range p.Encoding.Columns {
				for _, c := range col {
					if c.Tag == encode.TagW {
						wCells++
					}
				}
			}
			if hidden != wCells {
				t.Fatalf("n=%d pi=%v: %d hidden writes but %d plain-W cells", n, pi, hidden, wCells)
			}
			totalHidden += hidden
			return true
		})
		// With n processes, each permutation hides n-1 scribbles in the
		// first process's scribble metastep.
		want := (n - 1) * int(perm.Factorial(n))
		if totalHidden != want {
			t.Fatalf("n=%d: %d hidden writes across S_n, want %d", n, totalHidden, want)
		}
	}
}

// TestScribbleInjectivity: the scribble variant still yields n! distinct
// decodable executions.
func TestScribbleInjectivity(t *testing.T) {
	f, err := mutex.BakeryScribble(4)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.ExhaustiveSweep(f)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Distinct != 24 {
		t.Fatalf("distinct = %d, want 24", stats.Distinct)
	}
}
