package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mutex"
	"repro/internal/perm"
)

func mustAlgo(t testing.TB, name string, n int) *mutex.Factory {
	t.Helper()
	f, err := mutex.New(name, n)
	if err != nil {
		t.Fatalf("mutex.New(%s, %d): %v", name, n, err)
	}
	return f
}

// TestPipelineRoundTrip runs the full Construct→Encode→Decode pipeline —
// with every theorem check enabled — for every permutation of small n and
// every register algorithm.
func TestPipelineRoundTrip(t *testing.T) {
	for _, name := range []string{mutex.NameYangAnderson, mutex.NamePeterson, mutex.NameBakery} {
		for n := 1; n <= 4; n++ {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				f := mustAlgo(t, name, n)
				perm.ForEach(n, func(pi []int) bool {
					if _, err := core.Run(f, pi); err != nil {
						t.Fatalf("pipeline(pi=%v): %v", pi, err)
					}
					return true
				})
			})
		}
	}
}

// TestTheorem75Injectivity: over all of S_n, the decoded executions are
// pairwise distinct — the heart of the counting argument.
func TestTheorem75Injectivity(t *testing.T) {
	for _, name := range []string{mutex.NameYangAnderson, mutex.NameBakery} {
		for n := 2; n <= 5; n++ {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				f := mustAlgo(t, name, n)
				stats, err := core.ExhaustiveSweep(f)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("n=%d perms=%d maxCost=%d maxBits=%d log2(n!)=%.1f bits/cost≤%.2f",
					n, stats.Perms, stats.MaxCost, stats.MaxBits, core.InformationBound(n), stats.MaxBitsPerCost)
			})
		}
	}
}

// TestTheorem62BitsPerCostBounded: |E_π| / C(α_π) stays below a constant
// across n — the encoding-efficiency half of the bound.
func TestTheorem62BitsPerCostBounded(t *testing.T) {
	const bound = 8.0 // 3-bit tags + amortized signature bits
	for _, n := range []int{2, 4, 8, 12, 16} {
		f := mustAlgo(t, mutex.NameYangAnderson, n)
		perms := perm.Sample(n, 5, int64(n))
		stats, err := core.Sweep(f, perms)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d maxBits/cost=%.2f", n, stats.MaxBitsPerCost)
		if stats.MaxBitsPerCost > bound {
			t.Errorf("n=%d: bits/cost=%.2f exceeds %.1f (Theorem 6.2 constant blew up)", n, stats.MaxBitsPerCost, bound)
		}
	}
}

// TestRejectsRMWAlgorithms: the pipeline only accepts register algorithms.
func TestRejectsRMWAlgorithms(t *testing.T) {
	// The registry in this package has only register algorithms; the rmw
	// package is exercised in the facade tests. Here we check the sweep
	// guard against oversized exhaustive sweeps instead.
	f := mustAlgo(t, mutex.NameYangAnderson, 9)
	if _, err := core.ExhaustiveSweep(f); err == nil {
		t.Fatal("want refusal for exhaustive sweep at n=9")
	}
}
