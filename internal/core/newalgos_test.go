package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mutex"
	"repro/internal/perm"
)

func TestPipelineNewAlgos(t *testing.T) {
	for _, name := range []string{mutex.NameDijkstra, mutex.NameFilter} {
		for n := 2; n <= 4; n++ {
			f, err := mutex.New(name, n)
			if err != nil {
				t.Fatal(err)
			}
			perm.ForEach(n, func(pi []int) bool {
				if _, err := core.Run(f, pi); err != nil {
					t.Fatalf("%s n=%d pi=%v: %v", name, n, pi, err)
				}
				return true
			})
		}
	}
	f, _ := mutex.Dekker(2)
	for _, pi := range [][]int{{0, 1}, {1, 0}} {
		if _, err := core.Run(f, pi); err != nil {
			t.Fatalf("dekker pi=%v: %v", pi, err)
		}
	}
}
