package cost_test

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/program"
)

// twoReaders: p0 writes r0; p1 and p2 read it twice each — enough structure
// to distinguish the cost models by hand.
func twoReaders(t *testing.T) program.Factory {
	t.Helper()
	layout := mutex.NewLayout()
	flag := layout.Reg("flag", 0, 0) // home: process 0

	b0 := program.NewBuilder("w/0")
	b0.Try()
	b0.Write(flag, program.Const(1))
	b0.Enter()
	b0.Exit()
	b0.Rem()
	b0.Halt()
	p0 := b0.MustBuild()

	mkReader := func(i int) *program.Program {
		b := program.NewBuilder("r")
		x := b.Var("x")
		y := b.Var("y")
		b.Try()
		b.Read(flag, x)
		b.Read(flag, y)
		b.Enter()
		b.Exit()
		b.Rem()
		b.Halt()
		return b.MustBuild()
	}
	return mutex.NewFactory("two-readers", layout, []*program.Program{p0, mkReader(1), mkReader(2)})
}

func TestMeasureByHand(t *testing.T) {
	f := twoReaders(t)
	// Schedule: everything sequentially, p0 first.
	exec, err := machine.RunCanonical(f, machine.NewSolo(perm.Identity(3)), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cost.Measure(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	// Steps: 3 procs * 4 crit + 1 write + 4 reads = 17.
	if rep.Steps != 17 || rep.CritSteps != 12 || rep.SharedAccesses != 5 {
		t.Fatalf("step counts wrong: %+v", rep)
	}
	// SC: write (1) + every read changes state (pc advances, plain reads) = 5.
	if rep.SC != 5 {
		t.Fatalf("SC = %d, want 5", rep.SC)
	}
	// CC: write is 1 RMR; each reader's first read misses (1), second hits
	// (0): total 1 + 2 = 3.
	if rep.CCRMR != 3 {
		t.Fatalf("CC-RMR = %d, want 3", rep.CCRMR)
	}
	// DSM: home of flag is p0, so p0's write is local (0), all 4 reads
	// remote: 4.
	if rep.DSMRMR != 4 {
		t.Fatalf("DSM-RMR = %d, want 4", rep.DSMRMR)
	}
}

func TestCCInvalidation(t *testing.T) {
	// p1 reads (miss), p0 writes (invalidate), p1 reads again (miss again).
	f := twoReaders(t)
	s := machine.NewSystem(f)
	mustStep := func(i int) {
		t.Helper()
		if _, err := s.Step(i); err != nil {
			t.Fatal(err)
		}
	}
	mustStep(1) // try_1
	mustStep(1) // read (miss)
	mustStep(0) // try_0
	mustStep(0) // write (invalidates p1's copy)
	mustStep(1) // read (miss again)
	rep, err := cost.Measure(f, s.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CCRMR != 3 {
		t.Fatalf("CC-RMR = %d, want 3 (miss, write, miss-after-invalidate)", rep.CCRMR)
	}
}

func TestSCFreeSpins(t *testing.T) {
	// Under round-robin, readers spin-free? twoReaders has plain reads, so
	// use Yang-Anderson: spinning reads on unchanged values are free.
	f, err := mutex.YangAnderson(8)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cost.Measure(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SC >= rep.SharedAccesses {
		t.Fatalf("SC=%d should be strictly below accesses=%d (spins must be discounted)", rep.SC, rep.SharedAccesses)
	}
}

func TestPerProcessSCSumsToTotal(t *testing.T) {
	f, err := mutex.Bakery(5)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRandom(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	per, err := cost.PerProcessSC(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range per {
		total += c
	}
	sc, err := cost.SCCost(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	if total != sc {
		t.Fatalf("per-process SC sums to %d, total is %d", total, sc)
	}
}

func TestMeasureRejectsInvalidExecution(t *testing.T) {
	f := twoReaders(t)
	bad := model.Execution{{Proc: 0, Kind: model.KindWrite, Reg: 0, Val: 9}}
	if _, err := cost.Measure(f, bad); err == nil {
		t.Fatal("invalid execution accepted")
	}
}

func TestReportString(t *testing.T) {
	rep := cost.Report{Steps: 10, SharedAccesses: 8, CritSteps: 2, SC: 5, CCRMR: 4, DSMRMR: 6}
	s := rep.String()
	for _, want := range []string{"SC=5", "CC-RMR=4", "DSM-RMR=6", "steps=10"} {
		found := false
		for i := 0; i+len(want) <= len(s); i++ {
			if s[i:i+len(want)] == want {
				found = true
			}
		}
		if !found {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

// TestLocalSpinDSMAdvantage: Yang–Anderson's spin flags are DSM-local, so
// its DSM-RMR is below its total accesses even under heavy spinning.
func TestLocalSpinDSMAdvantage(t *testing.T) {
	f, err := mutex.YangAnderson(8)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewHoldCS(100), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cost.Measure(f, exec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DSMRMR*2 > rep.SharedAccesses {
		t.Fatalf("DSM-RMR=%d should be well below accesses=%d for a local-spin algorithm under contention", rep.DSMRMR, rep.SharedAccesses)
	}
}
