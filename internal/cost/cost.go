// Package cost computes the cost of executions under the cost models
// discussed in the paper:
//
//   - the state change (SC) cost model of Definition 3.1, the paper's
//     primary model: a shared-memory step is charged iff the acting
//     process's automaton state changes across it;
//   - total shared-memory accesses (the naive count, which Alur & Taubenfeld
//     proved is unbounded for any mutex algorithm — the reason discounted
//     models exist at all);
//   - remote memory references (RMRs) in the cache-coherent (CC) model,
//     the model the paper simplifies, simulated with an invalidation-based
//     cache per process;
//   - RMRs in the distributed shared memory (DSM) model, where each
//     register is local to at most one process.
package cost

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/program"
)

// Report aggregates the cost of one execution under every model.
type Report struct {
	N              int
	Steps          int // total steps, including critical steps
	SharedAccesses int // read/write/RMW steps (the unbounded count)
	CritSteps      int
	SC             int // state change cost, Definition 3.1
	CCRMR          int // cache-coherent remote memory references
	DSMRMR         int // distributed-shared-memory remote memory references
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("steps=%d shared=%d crit=%d SC=%d CC-RMR=%d DSM-RMR=%d",
		r.Steps, r.SharedAccesses, r.CritSteps, r.SC, r.CCRMR, r.DSMRMR)
}

// DSMLayout optionally declares register homes for the DSM model. Factories
// that implement it (the local-spin algorithms) get meaningful DSM-RMR
// counts; for others every access is remote.
type DSMLayout interface {
	// Home returns the process to which the register is local, or -1 if
	// the register lives in global memory (remote to everyone).
	Home(reg model.RegID) int
}

// Measure replays the execution and computes its cost under all models.
// The execution must be a valid execution of the factory's algorithm.
func Measure(f program.Factory, exec model.Execution) (Report, error) {
	rep := Report{N: f.N()}
	layout, hasLayout := f.(DSMLayout)

	// Per-process CC cache: validBits[proc][reg] true when proc holds a
	// valid cached copy of reg.
	valid := make([][]bool, f.N())
	for i := range valid {
		valid[i] = make([]bool, f.NumRegisters())
	}

	r := machine.NewReplayer(f)
	for t, s := range exec {
		done, err := r.Apply(s)
		if err != nil {
			return rep, fmt.Errorf("cost: step %d: %w", t, err)
		}
		rep.Steps++
		if !done.IsShared() {
			rep.CritSteps++
			continue
		}
		rep.SharedAccesses++

		// CC model: a read hits if cached; otherwise it is remote and
		// caches the register. A write (or RMW) is remote and invalidates
		// every other copy.
		switch done.Kind {
		case model.KindRead:
			if !valid[done.Proc][done.Reg] {
				rep.CCRMR++
				valid[done.Proc][done.Reg] = true
			}
		case model.KindWrite, model.KindRMW:
			rep.CCRMR++
			for p := range valid {
				if p != done.Proc {
					valid[p][done.Reg] = false
				}
			}
			valid[done.Proc][done.Reg] = true
		}

		// DSM model: remote iff the register's home is not the actor.
		home := -1
		if hasLayout {
			home = layout.Home(done.Reg)
		}
		if home != done.Proc {
			rep.DSMRMR++
		}
	}
	rep.SC = r.SCCost()
	return rep, nil
}

// SCCost computes only the state change cost of an execution.
func SCCost(f program.Factory, exec model.Execution) (int, error) {
	_, sc, err := machine.ReplayExecution(f, exec)
	return sc, err
}

// PerProcessSC computes the SC cost attributable to each process.
func PerProcessSC(f program.Factory, exec model.Execution) ([]int, error) {
	out := make([]int, f.N())
	r := machine.NewReplayer(f)
	for t, s := range exec {
		before := r.SCCost()
		if _, err := r.Apply(s); err != nil {
			return out, fmt.Errorf("cost: step %d: %w", t, err)
		}
		if r.SCCost() != before {
			out[s.Proc]++
		}
	}
	return out, nil
}
