// Package prof registers the standard pprof profile flags on a CLI's flag
// set and manages the profile lifecycle around its run. Both drivers
// (cmd/experiments, cmd/tournament) mount it, so any regression the
// benchmarks surface can be chased straight to source lines on the same
// workload that showed it:
//
//	experiments -quick -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// -trace captures a runtime execution trace (scheduling, GC, blocking)
// over the same run, for `go tool trace`. The profile → observe workflow:
// profile a workload here to find *where* time goes, then replay the
// simulation itself with `experiments -replay KEY` / cmd/observe to see
// *what* the simulated execution did — the two views share the workload
// via the result store's keys.
package prof

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profile destinations a CLI registered.
type Flags struct {
	cpu, mem, trace *string
}

// Register adds -cpuprofile, -memprofile and -trace to fs. Parse fs before
// Start.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu:   fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)"),
		mem:   fs.String("memprofile", "", "write a heap allocation profile to this file at exit"),
		trace: fs.String("trace", "", "write a runtime execution trace of the run to this file (inspect with go tool trace)"),
	}
}

// Start begins CPU profiling and runtime tracing when their flags were
// given and returns a stop function to defer around the measured work;
// stop finishes both and snapshots the heap to -memprofile. Profiling
// failures are reported on errw (the CLI's diagnostic stream, so the data
// stream stays clean) rather than aborting the run a profile was merely
// observing.
func (f *Flags) Start(errw io.Writer) (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	var traceFile *os.File
	if *f.trace != "" {
		traceFile, err = os.Create(*f.trace)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	memPath := *f.mem
	return func() {
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				fmt.Fprintln(errw, "prof: trace:", err)
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(errw, "prof: cpuprofile:", err)
			}
		}
		if memPath == "" {
			return
		}
		mf, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(errw, "prof: memprofile:", err)
			return
		}
		runtime.GC() // settle the live set so the snapshot shows retained memory
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(errw, "prof: memprofile:", err)
		}
		if err := mf.Close(); err != nil {
			fmt.Fprintln(errw, "prof: memprofile:", err)
		}
	}, nil
}
