// Package prof registers the standard pprof profile flags on a CLI's flag
// set and manages the profile lifecycle around its run. Both drivers
// (cmd/experiments, cmd/tournament) mount it, so any regression the
// benchmarks surface can be chased straight to source lines on the same
// workload that showed it:
//
//	experiments -quick -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package prof

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations a CLI registered.
type Flags struct {
	cpu, mem *string
}

// Register adds -cpuprofile and -memprofile to fs. Parse fs before Start.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)"),
		mem: fs.String("memprofile", "", "write a heap allocation profile to this file at exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given and returns a stop
// function to defer around the measured work; stop finishes the CPU
// profile and snapshots the heap to -memprofile. Profiling failures are
// reported on errw (the CLI's diagnostic stream, so the data stream stays
// clean) rather than aborting the run a profile was merely observing.
func (f *Flags) Start(errw io.Writer) (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	memPath := *f.mem
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(errw, "prof: cpuprofile:", err)
			}
		}
		if memPath == "" {
			return
		}
		mf, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(errw, "prof: memprofile:", err)
			return
		}
		runtime.GC() // settle the live set so the snapshot shows retained memory
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(errw, "prof: memprofile:", err)
		}
		if err := mf.Close(); err != nil {
			fmt.Fprintln(errw, "prof: memprofile:", err)
		}
	}, nil
}
