package prof_test

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/prof"
)

// TestProfilesWritten drives the flag → Start → stop lifecycle and checks
// both profile files come out non-empty (pprof files start with a gzip
// header, so non-empty means a real profile was serialized).
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := prof.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Some allocation work so the heap profile has something to say.
	var keep [][]byte
	for i := 0; i < 1000; i++ {
		keep = append(keep, []byte(strings.Repeat("x", 100)))
	}
	_ = keep
	stop()

	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
}

// TestNoFlagsIsNoOp: without the flags, Start must do nothing and stop
// must be safe to call.
func TestNoFlagsIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := prof.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
