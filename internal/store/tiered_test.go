package store_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestTieredFarWriteFailureIsCountedNotSilent is the regression for the
// fleet-blind prime pass: a Put whose near write lands but whose far write
// fails must still return nil (the value is durable locally) — but the
// failure is counted in Degraded and surfaced on the stats line, so a run
// that shared nothing with the fleet cannot read as a clean success.
func TestTieredFarWriteFailureIsCountedNotSilent(t *testing.T) {
	near, far := newMapBackend(), newMapBackend()
	far.failPuts = true
	tiered := store.NewTiered(near, far)
	st := store.New(0, tiered)
	defer st.Close()

	k := store.Key("v1", "unit")
	st.Put(k, []byte(`{"sc":1}`))
	if near.Len() != 1 || far.Len() != 0 {
		t.Fatalf("placement near=%d far=%d, want 1 and 0", near.Len(), far.Len())
	}
	s := st.Stats()
	if s.PutErrors != 0 {
		t.Fatalf("a near-landed put is not a put error: %+v", s)
	}
	if s.Degraded != 1 {
		t.Fatalf("degraded=%d, want 1 (the far write silently failed before this counter)", s.Degraded)
	}
	if !strings.Contains(s.String(), "degraded=1") {
		t.Fatalf("stats line must surface degradation: %s", s)
	}

	// Batch writes count too: every entry of a failed far batch.
	entries := []store.Entry{
		{Key: store.Key("v1", "b1"), Val: []byte(`{"v":1}`)},
		{Key: store.Key("v1", "b2"), Val: []byte(`{"v":2}`)},
	}
	if _, err := tiered.PutBatch(entries); err == nil {
		t.Fatal("far batch failure must surface to batch callers")
	}
	if got := tiered.Degraded(); got != 3 {
		t.Fatalf("Degraded=%d after failed batch, want 3", got)
	}

	// Both tiers failing is still a real put error, counted once.
	near.failPuts = true
	st.Put(store.Key("v1", "doomed"), []byte(`{"v":9}`))
	if s := st.Stats(); s.PutErrors != 1 {
		t.Fatalf("both-tier failure: putErrors=%d, want 1", s.PutErrors)
	}
}

// TestPutBatchFallbackNoPhantomAdds is the regression for the per-key
// fallback counting a key as added before the Put that then failed: the
// reported new-key count must include only writes that landed.
func TestPutBatchFallbackNoPhantomAdds(t *testing.T) {
	near := newMapBackend()
	far := newMapBackend() // no batch path: PutBatch falls back per key
	far.failPuts = true
	tiered := store.NewTiered(near, far)

	entries := []store.Entry{
		{Key: store.Key("v1", "a"), Val: []byte(`{"v":1}`)},
		{Key: store.Key("v1", "b"), Val: []byte(`{"v":2}`)},
	}
	added, err := tiered.PutBatch(entries)
	if err == nil {
		t.Fatal("failing far backend must surface an error")
	}
	if added != 0 {
		t.Fatalf("added=%d, want 0: no far write landed, the count is phantom", added)
	}

	// The healthy path still counts new keys exactly once.
	far.failPuts = false
	added, err = tiered.PutBatch(entries)
	if err != nil || added != 2 {
		t.Fatalf("healthy batch: added=%d err=%v, want 2, nil", added, err)
	}
	added, err = tiered.PutBatch(entries)
	if err != nil || added != 0 {
		t.Fatalf("idempotent re-batch: added=%d err=%v, want 0, nil", added, err)
	}
}

// TestTieredLenCountsUnion is the regression for Len contradicting its own
// doc: with disjoint tiers (a near tier primed while the fleet store was
// down, a far tier fed by other workers) max(near, far) undercounts — the
// store holds the union.
func TestTieredLenCountsUnion(t *testing.T) {
	dir := t.TempDir()
	near, err := store.OpenNDJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	far := newMapBackend()
	tiered := store.NewTiered(near, far)
	defer tiered.Close()

	shared := store.Key("v1", "shared")
	near.Put(shared, []byte(`{"v":0}`))
	far.Put(shared, []byte(`{"v":0}`))
	for i := 0; i < 3; i++ {
		near.Put(store.Key("v1", fmt.Sprintf("near-%d", i)), []byte(`{"v":1}`))
	}
	for i := 0; i < 5; i++ {
		far.Put(store.Key("v1", fmt.Sprintf("far-%d", i)), []byte(`{"v":2}`))
	}
	// near = 4 (3 + shared), far = 6 (5 + shared), union = 9; the old
	// max(near, far) reported 6.
	if got := tiered.Len(); got != 9 {
		t.Fatalf("Len=%d, want 9 (union of disjoint tiers)", got)
	}

	// A near tier that cannot list its keys falls back to the lower bound.
	blind := store.NewTiered(newMapBackend(), far)
	if got := blind.Len(); got != 6 {
		t.Fatalf("blind near tier: Len=%d, want max fallback 6", got)
	}
}
