package store

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
)

// Blob tier: content-addressed opaque payloads riding next to the result
// tier. Results are small JSON values the LRU fronts; blobs are whole
// execution traces — kilobytes to megabytes of already-framed bytes that
// would waste the LRU and the JSON codec. They share the key space (a
// unit's trace is stored under the unit's result key) but not the
// interface: a BlobBackend moves opaque byte slices, compressed at rest
// and on the wire, with no decode step in the store.
//
// The failure discipline is the result tier's: a blob pathology can cost
// a lost capture or a failed replay, never a wrong result. Puts degrade
// to counted errors; gets degrade to misses.

// BlobBackend is the durable tier for opaque trace payloads. Implementations
// must be safe for concurrent use. Write semantics are last-write-wins over
// content addresses, exactly as Backend.
type BlobBackend interface {
	// BlobGet returns the raw payload stored under key; ok is false on any
	// miss, err is reserved for infrastructure failures worth counting.
	BlobGet(key string) (val []byte, ok bool, err error)
	// BlobPut durably stores the raw payload under key.
	BlobPut(key string, val []byte) error
	// BlobHas reports presence without moving the payload.
	BlobHas(key string) bool
	// BlobLen returns the number of stored blobs (a lower bound for
	// composite backends that cannot enumerate every tier).
	BlobLen() int
}

// blobKeyLister is optionally implemented by blob backends whose key set is
// cheap to enumerate (the file tier's NDJSON index). `observe -list` uses it.
type blobKeyLister interface {
	BlobKeys() []string
}

// blobsName is the subdirectory a FileBlobs tier keeps its log in, beside
// the result log of the same store directory.
const blobsName = "blobs"

// FileBlobs is the file BlobBackend: an NDJSON log in a `blobs/`
// subdirectory of the store directory, reusing the result tier's log
// machinery (offset index, last-write-wins, torn-tail tolerance, Compact).
// Payloads are gzipped at rest and carried as a JSON string (base64) so the
// log stays line-oriented and mergeable with the same standard tools as the
// result log. Go's gzip writes a zero ModTime, so the stored line is a
// deterministic function of the payload.
type FileBlobs struct {
	log *NDJSON
}

// OpenFileBlobs opens (creating if necessary) the blob log under dir — the
// same directory the result store uses; the two logs never collide.
func OpenFileBlobs(dir string) (*FileBlobs, error) {
	log, err := OpenNDJSON(filepath.Join(dir, blobsName))
	if err != nil {
		return nil, err
	}
	return &FileBlobs{log: log}, nil
}

// BlobPut implements BlobBackend.
func (fb *FileBlobs) BlobPut(key string, val []byte) error {
	enc, err := json.Marshal(gzipBytes(val))
	if err != nil {
		return fmt.Errorf("store: blob %s: %w", key, err)
	}
	return fb.log.Put(key, enc)
}

// BlobGet implements BlobBackend. A stored line that does not decode —
// torn append, hand edit — is an infrastructure failure (counted corrupt
// by the wrapping Store) served as a miss.
func (fb *FileBlobs) BlobGet(key string) ([]byte, bool, error) {
	enc, ok, err := fb.log.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	var gz []byte
	if err := json.Unmarshal(enc, &gz); err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", key, err)
	}
	raw, err := gunzipBytes(gz)
	if err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", key, err)
	}
	return raw, true, nil
}

// BlobHas implements BlobBackend.
func (fb *FileBlobs) BlobHas(key string) bool { return fb.log.Has(key) }

// BlobLen implements BlobBackend.
func (fb *FileBlobs) BlobLen() int { return fb.log.Len() }

// BlobKeys returns the stored blob keys, sorted.
func (fb *FileBlobs) BlobKeys() []string { return fb.log.Keys() }

// Compact rewrites the blob log keeping only live lines (Compactor shape).
func (fb *FileBlobs) Compact() (kept, dropped int, err error) { return fb.log.Compact() }

// Close closes the blob log.
func (fb *FileBlobs) Close() error { return fb.log.Close() }

// TieredBlobs layers a near blob tier (local file) over a far one (fleet):
// gets are served near-first with a write-back, puts land in both, so a
// capture run leaves its traces replayable both offline and fleet-wide.
type TieredBlobs struct {
	Near, Far BlobBackend
}

// BlobGet implements BlobBackend: near first, then far with write-back.
func (t *TieredBlobs) BlobGet(key string) ([]byte, bool, error) {
	v, ok, nerr := t.Near.BlobGet(key)
	if ok {
		return v, true, nil
	}
	v, ok, ferr := t.Far.BlobGet(key)
	if ok {
		t.Near.BlobPut(key, v) //repro:degrade write-back is an optimization; a failed one only costs the next read a far round trip
		return v, true, nil
	}
	return nil, false, errors.Join(nerr, ferr)
}

// BlobPut implements BlobBackend, writing both tiers; partial placement
// surfaces as an error the wrapping Store counts.
func (t *TieredBlobs) BlobPut(key string, val []byte) error {
	return errors.Join(t.Near.BlobPut(key, val), t.Far.BlobPut(key, val))
}

// BlobHas implements BlobBackend.
func (t *TieredBlobs) BlobHas(key string) bool {
	return t.Near.BlobHas(key) || t.Far.BlobHas(key)
}

// BlobLen implements BlobBackend: the larger tier bounds the union from
// below (write-back makes the tiers overlap, so a sum would double count).
func (t *TieredBlobs) BlobLen() int {
	if n, f := t.Near.BlobLen(), t.Far.BlobLen(); n >= f {
		return n
	} else {
		return f
	}
}

// BlobKeys enumerates the near tier (the far tier is typically remote and
// not enumerable); sorted by the file tier's index.
func (t *TieredBlobs) BlobKeys() []string {
	if kl, ok := t.Near.(blobKeyLister); ok {
		return kl.BlobKeys()
	}
	return nil
}

// Close closes the near tier only: the far tier is the same client or
// router the result tier mounts, and closing that is its owner's job.
func (t *TieredBlobs) Close() error {
	if c, ok := t.Near.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// BlobGet implements BlobBackend on the Router with the result tier's
// rendezvous failover: the key's owner first, then the runner-up. Replicas
// without blob support read as absent.
func (r *Router) BlobGet(key string) ([]byte, bool, error) {
	var firstErr error
	limit := r.readRankLimit()
	for rank, i := range r.ring.Rank(key) {
		if rank >= limit {
			break
		}
		bb, ok := r.replicas[i].(BlobBackend)
		if !ok {
			continue
		}
		v, ok, err := bb.BlobGet(key)
		if err != nil {
			r.failures[i].Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			return v, true, nil
		}
	}
	return nil, false, firstErr
}

// BlobPut implements BlobBackend on the Router, routing to the key's owner;
// a failed or unsupported placement is a counted lost write.
func (r *Router) BlobPut(key string, val []byte) error {
	i := r.ring.Owner(key)
	bb, ok := r.replicas[i].(BlobBackend)
	if !ok {
		r.lostWrites.Add(1)
		return fmt.Errorf("store: router replica %d (%s): no blob support", i, r.ring.Members[i].Name)
	}
	if err := bb.BlobPut(key, val); err != nil {
		r.failures[i].Add(1)
		r.lostWrites.Add(1)
		return fmt.Errorf("store: router replica %d (%s): %w", i, r.ring.Members[i].Name, err)
	}
	return nil
}

// BlobHas implements BlobBackend on the Router with read failover.
func (r *Router) BlobHas(key string) bool {
	limit := r.readRankLimit()
	for rank, i := range r.ring.Rank(key) {
		if rank >= limit {
			break
		}
		if bb, ok := r.replicas[i].(BlobBackend); ok && bb.BlobHas(key) {
			return true
		}
	}
	return false
}

// BlobLen implements BlobBackend on the Router as the sum over replicas
// (the blob partition is disjoint, like the result partition).
func (r *Router) BlobLen() int {
	n := 0
	for _, be := range r.replicas {
		if bb, ok := be.(BlobBackend); ok {
			n += bb.BlobLen()
		}
	}
	return n
}

// SetBlobs attaches a blob tier to the store. Nil detaches; capture and
// replay are simply unavailable without one.
func (s *Store) SetBlobs(bb BlobBackend) { s.blobs = bb }

// Blobs returns the attached blob tier (nil when none).
func (s *Store) Blobs() BlobBackend {
	if s == nil {
		return nil
	}
	return s.blobs
}

// BlobPut stores an opaque payload under key through the blob tier.
// Failures are counted put errors, never surfaced: losing a capture only
// costs a future replay a re-simulation.
func (s *Store) BlobPut(key string, val []byte) {
	if s == nil || s.blobs == nil || key == "" {
		return
	}
	if err := s.blobs.BlobPut(key, val); err != nil {
		s.putErrors.Add(1)
		return
	}
	s.blobStored.Add(1)
	s.blobBytes.Add(int64(len(val)))
}

// BlobGet returns the payload stored under key. Any failure — absent key,
// corrupt blob, unreachable tier — is a miss; corruption is counted.
func (s *Store) BlobGet(key string) ([]byte, bool) {
	if s == nil || s.blobs == nil || key == "" {
		return nil, false
	}
	v, ok, err := s.blobs.BlobGet(key)
	if err != nil {
		s.corrupt.Add(1)
	}
	if !ok {
		return nil, false
	}
	s.blobFetched.Add(1)
	s.blobBytes.Add(int64(len(v)))
	return v, true
}

// BlobHas reports whether key's payload is present in the blob tier.
func (s *Store) BlobHas(key string) bool {
	if s == nil || s.blobs == nil || key == "" {
		return false
	}
	return s.blobs.BlobHas(key)
}

// BlobLen returns the number of stored blobs (0 without a blob tier).
func (s *Store) BlobLen() int {
	if s == nil || s.blobs == nil {
		return 0
	}
	return s.blobs.BlobLen()
}

// BlobKeys returns the blob tier's key set when it is cheap to enumerate
// (the file tier), nil otherwise.
func (s *Store) BlobKeys() []string {
	if s == nil || s.blobs == nil {
		return nil
	}
	if kl, ok := s.blobs.(blobKeyLister); ok {
		return kl.BlobKeys()
	}
	return nil
}

// gzipBytes compresses b (deterministically: Go's gzip writes no ModTime).
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b) //repro:degrade bytes.Buffer writes cannot fail
	zw.Close()  //repro:degrade bytes.Buffer writes cannot fail
	return buf.Bytes()
}

// gunzipBytes decompresses b.
func gunzipBytes(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(zr)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	return raw, err
}
