package store_test

import (
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/remote"
	"repro/internal/store"
)

// TestStressExactCountersAllTiers hammers one Store from many goroutines
// through every backend shape the repository ships — memory-only,
// LRU+NDJSON, the remote client against a live stored service, and the
// tiered local-front-over-remote composite — and then audits the books:
// every Get is exactly one hit or one miss, every Put is counted, and
// nothing is ever an error or a wrong value. Run under -race in CI, this
// is the store's concurrency-safety test for worker-pool traffic.
func TestStressExactCountersAllTiers(t *testing.T) {
	newRemoteBackend := func(t *testing.T) store.Backend {
		t.Helper()
		authoritative, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(remote.NewServer(authoritative))
		t.Cleanup(func() {
			ts.Close()
			authoritative.Close()
		})
		cl, err := remote.NewClient(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}

	cases := []struct {
		name  string
		build func(t *testing.T) *store.Store
	}{
		{"memory", func(t *testing.T) *store.Store {
			return store.NewMemory(store.DefaultLRUEntries) // capacity > keyspace: no evictions, exact hit accounting
		}},
		{"lru+ndjson", func(t *testing.T) *store.Store {
			st, err := store.Open(t.TempDir(), 2) // tiny LRU forces backend traffic
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
		{"remote", func(t *testing.T) *store.Store {
			return store.New(2, newRemoteBackend(t))
		}},
		{"tiered", func(t *testing.T) *store.Store {
			near, err := store.OpenNDJSON(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return store.New(2, store.NewTiered(near, newRemoteBackend(t)))
		}},
	}

	const (
		workers = 8
		ops     = 120
		keys    = 23
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.build(t)
			defer st.Close()
			var (
				wg         sync.WaitGroup
				mu         sync.Mutex
				gets, puts int64
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var myGets, myPuts int64
					for i := 0; i < ops; i++ {
						id := (w*ops + i) % keys
						k := store.Key("stress", id)
						v, ok := store.GetJSON[int](st, k)
						myGets++
						if ok && v != id*7 {
							t.Errorf("torn read: key %d gave %d", id, v)
							return
						}
						if !ok {
							store.PutJSON(st, k, id*7) // same bytes from every writer: content-addressed
							myPuts++
						}
						st.Has(k) // uncounted probe; must never disturb the books
					}
					mu.Lock()
					gets += myGets
					puts += myPuts
					mu.Unlock()
				}(w)
			}
			wg.Wait()

			s := st.Stats()
			if s.Hits+s.Misses != gets {
				t.Fatalf("books don't balance: hits=%d + misses=%d != gets=%d (stats %+v)", s.Hits, s.Misses, gets, s)
			}
			if s.Puts != puts {
				t.Fatalf("puts=%d, want %d", s.Puts, puts)
			}
			if s.Corrupt != 0 || s.PutErrors != 0 {
				t.Fatalf("loopback stress must be clean: %+v", s)
			}
			if s.Misses < int64(keys) {
				t.Fatalf("misses=%d < keyspace %d: first touch of each key must miss", s.Misses, keys)
			}
			for id := 0; id < keys; id++ {
				if v, ok := store.GetJSON[int](st, store.Key("stress", id)); !ok || v != id*7 {
					t.Fatalf("key %d after stress: %d ok=%v", id, v, ok)
				}
			}
		})
	}
}
