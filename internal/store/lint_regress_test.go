package store

// Regression tests for true-positive reprolint findings: a merge that
// dropped its source's Close error on the floor, and backend iteration
// whose order leaked Go's randomized map order into merge logs.

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

// closeFailBackend serves entries but fails on Close — the condition
// Merge used to swallow silently.
type closeFailBackend struct {
	entries    map[string][]byte
	closeErr   error
	forEachErr error // returned after visiting every entry
}

func (b *closeFailBackend) Get(key string) ([]byte, bool, error) {
	v, ok := b.entries[key]
	return v, ok, nil
}
func (b *closeFailBackend) Has(key string) bool { _, ok := b.entries[key]; return ok }
func (b *closeFailBackend) Put(string, []byte) error {
	return errors.New("read-only")
}
func (b *closeFailBackend) ForEach(fn func(key string, val []byte) error) error {
	keys := make([]string, 0, len(b.entries))
	for k := range b.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := fn(k, b.entries[k]); err != nil {
			return err
		}
	}
	return b.forEachErr
}
func (b *closeFailBackend) Len() int     { return len(b.entries) }
func (b *closeFailBackend) Close() error { return b.closeErr }

func TestMergeSurfacesSourceCloseError(t *testing.T) {
	boom := errors.New("fd leaked")
	orig := openMergeSrc
	openMergeSrc = func(string) (Backend, error) {
		return &closeFailBackend{
			entries:  map[string][]byte{Key("v1", "a"): []byte(`1`)},
			closeErr: boom,
		}, nil
	}
	defer func() { openMergeSrc = orig }()

	dst, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	added, err := dst.Merge("fake-dir")
	if !errors.Is(err, boom) {
		t.Fatalf("Merge error = %v, want the source's Close error", err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1: the close error must not undo the merged count", added)
	}
	if !dst.Has(Key("v1", "a")) {
		t.Fatal("merged entry missing: the close error must not discard merged data")
	}
}

func TestMergeDataErrorOutranksCloseError(t *testing.T) {
	closeErr := errors.New("close also failed")
	dataErr := errors.New("torn read mid-iteration")
	orig := openMergeSrc
	openMergeSrc = func(string) (Backend, error) {
		return &closeFailBackend{
			entries:    map[string][]byte{Key("v1", "a"): []byte(`1`)},
			closeErr:   closeErr,
			forEachErr: dataErr,
		}, nil
	}
	defer func() { openMergeSrc = orig }()

	dst, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	_, err = dst.Merge("fake-dir")
	if !errors.Is(err, dataErr) {
		t.Fatalf("Merge error = %v, want the data-path error", err)
	}
	if errors.Is(err, closeErr) {
		t.Fatalf("Merge error = %v: the close error masked the data-path error", err)
	}
}

func TestForEachAndKeysAreSorted(t *testing.T) {
	b, err := OpenNDJSON(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Insert in a decidedly unsorted order.
	for _, i := range []int{7, 2, 9, 0, 5, 3, 8, 1, 6, 4} {
		if err := b.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	if err := b.ForEach(func(key string, _ []byte) error {
		visited = append(visited, key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(visited) {
		t.Fatalf("ForEach order %v is not sorted: merge logs would inherit map order", visited)
	}
	if len(visited) != 10 {
		t.Fatalf("ForEach visited %d entries, want 10", len(visited))
	}
	if keys := b.Keys(); !sort.StringsAreSorted(keys) || len(keys) != 10 {
		t.Fatalf("Keys() = %v, want all 10 keys sorted", keys)
	}
}
