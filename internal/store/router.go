package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Router spreads one content-addressed key space across several far
// backends — typically N independent stored instances — so the fleet's
// shared cache scales horizontally instead of funnelling every worker
// through one server. Placement is the Ring's: each key is owned by the
// replica weighted rendezvous hashing assigns it, so every process holding
// the same ring routes every key identically and a replica holds a
// (weight-proportional) slice of the key space. This is what `-store
// URL1,URL2,…` mounts in the CLIs, under whatever ring the fleet serves.
//
// Batch traffic stays batched: GetBatch / PutBatch / HasBatch split the
// request into per-replica sub-batches, issue them concurrently, and merge
// the replies — a whole fan-out still costs one round trip per *replica*,
// not per key.
//
// Reads fail over along the rendezvous order: a key its owner cannot serve
// (down replica, or a slice still draining to a new owner after a resize)
// is retried on the runner-up replica — which, for a freshly moved key, is
// exactly its previous owner — before degrading to a miss. Writes go to
// the owner alone; a down owner's writes are counted failures (Degraded),
// the PR-3 rule that a cache pathology can cost re-executions, never an
// answer. Degraded operations are counted per replica (Failures) so a sick
// instance is visible in the CLIs' diagnostics instead of hiding behind a
// silently colder cache.
type Router struct {
	ring       *Ring
	replicas   []Backend
	failures   []atomic.Int64 // per-replica degraded operations (point or batch, read or write)
	lostWrites atomic.Int64   // write entries that failed to land (see Degraded)
}

// readRanks bounds a read's failover walk down the rendezvous order:
// owner plus runner-up. Rank 2+ replicas can only hold a key after two
// consecutive un-drained resizes, which a second rebalance pass cleans
// up; probing them on every miss would tax true misses instead.
const readRanks = 2

// NewRouter routes the key space across the given backends under a
// uniform anonymous ring (epoch 0, members "s1"…"sm" — the same logical
// ring shard passes use). The replica order is part of the partition:
// every process of a fleet must list the same backends in the same order,
// or they will disagree about which replica owns a key (safe — content
// addressing makes double writes idempotent — but it wastes space and
// round trips). Fleets that can change shape mount NewRingRouter with an
// authoritative named ring instead. At least one backend is required; a
// single backend routes everything to it.
func NewRouter(replicas ...Backend) *Router {
	if len(replicas) == 0 {
		panic("store: NewRouter needs at least one backend")
	}
	return NewRingRouter(UniformRing(len(replicas)), replicas...)
}

// NewRingRouter routes the key space across the backends by the given
// ring: replicas[i] serves ring.Members[i]. The ring decides placement;
// the backend list just supplies the transport.
func NewRingRouter(ring *Ring, replicas ...Backend) *Router {
	if ring == nil || len(ring.Members) != len(replicas) {
		panic("store: NewRingRouter needs one backend per ring member")
	}
	return &Router{ring: ring, replicas: replicas, failures: make([]atomic.Int64, len(replicas))}
}

// Ring returns the placement ring the router routes by.
func (r *Router) Ring() *Ring { return r.ring }

// Replicas returns the number of backends behind the router.
func (r *Router) Replicas() int { return len(r.replicas) }

// Failures returns a snapshot of per-replica degraded operations: point or
// batch calls that failed and fell back to miss/memory-only. A nonzero
// entry names the sick instance.
func (r *Router) Failures() []int64 {
	out := make([]int64, len(r.failures))
	for i := range r.failures {
		out[i] = r.failures[i].Load()
	}
	return out
}

// GroupOf implements grouper: the index of the replica owning key, so a
// routed Merge can push each entry straight to its owner in full
// per-replica batches.
func (r *Router) GroupOf(key string) int { return r.ring.Owner(key) }

// Groups implements grouper.
func (r *Router) Groups() int { return len(r.replicas) }

// group splits keys into per-replica sub-slices by the given rendezvous
// rank (0 = owner, 1 = runner-up), preserving order.
func (r *Router) group(keys []string, rank int) [][]string {
	groups := make([][]string, len(r.replicas))
	if rank == 0 {
		for _, k := range keys {
			i := r.ring.Owner(k)
			groups[i] = append(groups[i], k)
		}
		return groups
	}
	for _, k := range keys {
		i := r.ring.Rank(k)[rank]
		groups[i] = append(groups[i], k)
	}
	return groups
}

// readRankLimit returns how many rendezvous ranks reads may probe.
func (r *Router) readRankLimit() int {
	if len(r.replicas) < readRanks {
		return len(r.replicas)
	}
	return readRanks
}

// Get implements Backend, probing the key's replicas in rendezvous order:
// the owner first, then the runner-up when the owner errors or misses —
// the mid-migration and down-owner cases — before reporting a miss. A
// down replica's error is counted and, when no later rank can serve the
// key, surfaces to the wrapping Store, which counts it and serves a miss.
func (r *Router) Get(key string) ([]byte, bool, error) {
	var firstErr error
	limit := r.readRankLimit()
	for rank, i := range r.ring.Rank(key) {
		if rank >= limit {
			break
		}
		v, ok, err := r.replicas[i].Get(key)
		if err != nil {
			r.failures[i].Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			return v, true, nil
		}
	}
	return nil, false, firstErr
}

// Put implements Backend, routing the write to the key's owner.
func (r *Router) Put(key string, val []byte) error {
	i := r.ring.Owner(key)
	if err := r.replicas[i].Put(key, val); err != nil {
		r.failures[i].Add(1)
		r.lostWrites.Add(1)
		return fmt.Errorf("store: router replica %d (%s): %w", i, r.ring.Members[i].Name, err)
	}
	return nil
}

// Has implements Backend with the same rendezvous failover as Get. A down
// replica reads as absent, like every other presence failure in the stack.
func (r *Router) Has(key string) bool {
	limit := r.readRankLimit()
	for rank, i := range r.ring.Rank(key) {
		if rank >= limit {
			break
		}
		if r.replicas[i].Has(key) {
			return true
		}
	}
	return false
}

// GetBatch implements BatchBackend: per-replica sub-batches issued
// concurrently, replies merged. Keys the first wave could not produce —
// a failed sub-batch, or keys the owner simply does not hold — are
// retried in a second wave against each key's runner-up replica, so a
// down or still-draining owner costs one extra round trip per replica
// instead of the keys' hits. Keys unresolved after both waves degrade to
// missing (the per-key Gets that follow will re-fail and count misses)
// instead of failing the whole batch.
func (r *Router) GetBatch(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	remaining := keys
	limit := r.readRankLimit()
	for rank := 0; rank < limit && len(remaining) > 0; rank++ {
		groups := r.group(remaining, rank)
		results := make([]map[string][]byte, len(groups))
		var wg sync.WaitGroup
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, g []string) {
				defer wg.Done()
				m, err := getBatch(r.replicas[i], g)
				if err != nil {
					r.failures[i].Add(1)
					return
				}
				results[i] = m
			}(i, g)
		}
		wg.Wait()
		for _, m := range results {
			for k, v := range m {
				out[k] = v
			}
		}
		if rank+1 < limit {
			var next []string
			for _, k := range remaining {
				if _, ok := out[k]; !ok {
					next = append(next, k)
				}
			}
			remaining = next
		}
	}
	return out, nil
}

// HasBatch implements HasBatcher with the same two-wave split/merge/
// failover shape as GetBatch: keys the owner cannot answer for are probed
// on their runner-up, and a key absent everywhere reads as absent, which
// only costs re-executions whose identical bytes deduplicate.
func (r *Router) HasBatch(keys []string) (map[string]bool, error) {
	out := make(map[string]bool, len(keys))
	remaining := keys
	limit := r.readRankLimit()
	for rank := 0; rank < limit && len(remaining) > 0; rank++ {
		groups := r.group(remaining, rank)
		results := make([]map[string]bool, len(groups))
		var wg sync.WaitGroup
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, g []string) {
				defer wg.Done()
				m, err := hasBatch(r.replicas[i], g)
				if err != nil {
					r.failures[i].Add(1)
					return
				}
				results[i] = m
			}(i, g)
		}
		wg.Wait()
		for _, m := range results {
			for k, ok := range m {
				if ok {
					out[k] = true
				}
			}
		}
		if rank+1 < limit {
			var next []string
			for _, k := range remaining {
				if !out[k] {
					next = append(next, k)
				}
			}
			remaining = next
		}
	}
	return out, nil
}

// PutBatch implements BatchBackend: per-replica sub-batches issued
// concurrently. added sums the replicas that answered; a failed sub-batch
// is counted against its replica and reported in the joined error, so a
// push-merge surfaces partial placement instead of claiming success —
// while a buffered write path (WriteBuffer) just counts it and moves on.
func (r *Router) PutBatch(entries []Entry) (int, error) {
	added, _, err := r.putBatchPlaced(entries)
	return added, err
}

// putBatchPlaced implements placer: the lost count is exact per replica —
// a down instance loses its sub-batch's entries, the others lose nothing,
// successful overwrites on healthy replicas are never miscounted as lost.
func (r *Router) putBatchPlaced(entries []Entry) (added, lost int, err error) {
	groups := make([][]Entry, len(r.replicas))
	for _, e := range entries {
		i := r.ring.Owner(e.Key)
		groups[i] = append(groups[i], e)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []Entry) {
			defer wg.Done()
			n, lostG, err := putBatch(r.replicas[i], g)
			mu.Lock()
			defer mu.Unlock()
			added += n
			lost += lostG
			if err != nil {
				r.failures[i].Add(1)
				errs = append(errs, fmt.Errorf("store: router replica %d (%s): %w", i, r.ring.Members[i].Name, err))
			}
		}(i, g)
	}
	wg.Wait()
	r.lostWrites.Add(int64(lost))
	return added, lost, errors.Join(errs...)
}

// ForEach implements Backend over every replica in order. Remote replicas
// refuse enumeration (remote.ErrNotEnumerable) and that refusal surfaces.
func (r *Router) ForEach(fn func(key string, val []byte) error) error {
	for _, be := range r.replicas {
		if err := be.ForEach(fn); err != nil {
			return err
		}
	}
	return nil
}

// Len implements Backend as the sum of the replicas: the partition is
// disjoint by construction (transiently double-counting keys mid-drain),
// so no settled key is counted twice. An unreachable replica reads as
// empty and bounds the total from below.
func (r *Router) Len() int {
	n := 0
	for _, be := range r.replicas {
		n += be.Len()
	}
	return n
}

// Superseded sums the replicas' dead-duplicate counts.
func (r *Router) Superseded() int64 {
	var n int64
	for _, be := range r.replicas {
		if sp, ok := be.(superseder); ok {
			n += sp.Superseded()
		}
	}
	return n
}

// Degraded counts write entries that failed to land on their owner
// replica (plus any nested composite's own count) — the partial
// placements Stats.Degraded surfaces. Read-path failures are not
// included: they already read as misses.
func (r *Router) Degraded() int64 {
	n := r.lostWrites.Load()
	for _, be := range r.replicas {
		if d, ok := be.(degrader); ok {
			n += d.Degraded()
		}
	}
	return n
}

// Compact implements Compactor over every replica that supports it.
func (r *Router) Compact() (kept, dropped int, err error) {
	for _, be := range r.replicas {
		if c, ok := be.(Compactor); ok {
			k, d, cerr := c.Compact()
			kept += k
			dropped += d
			if cerr != nil {
				return kept, dropped, cerr
			}
		}
	}
	return kept, dropped, nil
}

// Close implements Backend, closing every replica.
func (r *Router) Close() error {
	errs := make([]error, len(r.replicas))
	for i, be := range r.replicas {
		errs[i] = be.Close()
	}
	return errs2err(errs)
}

// errs2err joins a slice of possibly-nil errors.
func errs2err(errs []error) error { return errors.Join(errs...) }

// hasBatch probes keys through the backend's batch path when it has one
// and per-key Has otherwise.
func hasBatch(be Backend, keys []string) (map[string]bool, error) {
	if hb, ok := be.(HasBatcher); ok {
		return hb.HasBatch(keys)
	}
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		if be.Has(k) {
			out[k] = true
		}
	}
	return out, nil
}
