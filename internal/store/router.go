package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Router spreads one content-addressed key space across several far
// backends — typically N independent stored instances — so the fleet's
// shared cache scales horizontally instead of funnelling every worker
// through one server. Each key is owned by exactly one replica, assigned
// by the same stable hash partition sharded prime passes use (ShardOf), so
// every process in the fleet routes every key identically and a replica
// holds a disjoint slice of the key space. This is what `-store
// URL1,URL2,…` mounts in the CLIs.
//
// Batch traffic stays batched: GetBatch / PutBatch / HasBatch split the
// request into per-replica sub-batches, issue them concurrently, and merge
// the replies — a whole fan-out still costs one round trip per *replica*,
// not per key.
//
// Failure discipline is per replica: when one instance is down its keys
// degrade to misses (reads) or counted write failures (writes) while the
// other replicas keep serving theirs — the PR-3 rule that a cache
// pathology can cost re-executions, never an answer. Degraded operations
// are counted per replica (Failures) so a sick instance is visible in the
// CLIs' diagnostics instead of hiding behind a silently colder cache;
// write entries that landed nowhere are additionally counted in Degraded
// (reads are not — a failed read is already visible as a miss).
type Router struct {
	replicas   []Backend
	failures   []atomic.Int64 // per-replica degraded operations (point or batch, read or write)
	lostWrites atomic.Int64   // write entries that failed to land (see Degraded)
}

// NewRouter routes the key space across the given backends by ShardOf.
// The replica order is part of the partition: every process of a fleet
// must list the same backends in the same order, or they will disagree
// about which replica owns a key (safe — content addressing makes double
// writes idempotent — but it wastes space and round trips). At least one
// backend is required; a single backend routes everything to it.
func NewRouter(replicas ...Backend) *Router {
	if len(replicas) == 0 {
		panic("store: NewRouter needs at least one backend")
	}
	return &Router{replicas: replicas, failures: make([]atomic.Int64, len(replicas))}
}

// Replicas returns the number of backends behind the router.
func (r *Router) Replicas() int { return len(r.replicas) }

// Failures returns a snapshot of per-replica degraded operations: point or
// batch calls that failed and fell back to miss/memory-only. A nonzero
// entry names the sick instance.
func (r *Router) Failures() []int64 {
	out := make([]int64, len(r.failures))
	for i := range r.failures {
		out[i] = r.failures[i].Load()
	}
	return out
}

// replicaOf returns the index of the replica owning key.
func (r *Router) replicaOf(key string) int { return ShardOf(key, len(r.replicas)) }

// group splits keys into per-replica sub-slices, preserving order.
func (r *Router) group(keys []string) [][]string {
	groups := make([][]string, len(r.replicas))
	for _, k := range keys {
		i := r.replicaOf(k)
		groups[i] = append(groups[i], k)
	}
	return groups
}

// Get implements Backend, routing the lookup to the key's owner. A down
// replica's error surfaces to the wrapping Store, which counts it and
// serves a miss.
func (r *Router) Get(key string) ([]byte, bool, error) {
	i := r.replicaOf(key)
	v, ok, err := r.replicas[i].Get(key)
	if err != nil {
		r.failures[i].Add(1)
	}
	return v, ok, err
}

// Put implements Backend, routing the write to the key's owner.
func (r *Router) Put(key string, val []byte) error {
	i := r.replicaOf(key)
	if err := r.replicas[i].Put(key, val); err != nil {
		r.failures[i].Add(1)
		r.lostWrites.Add(1)
		return fmt.Errorf("store: router replica %d: %w", i, err)
	}
	return nil
}

// Has implements Backend. A down replica reads as absent, like every other
// presence failure in the stack.
func (r *Router) Has(key string) bool {
	return r.replicas[r.replicaOf(key)].Has(key)
}

// GetBatch implements BatchBackend: per-replica sub-batches issued
// concurrently, replies merged. A failed sub-batch degrades its keys to
// missing (the per-key Gets that follow will re-fail and count misses)
// instead of failing the whole batch — one down replica must not cost the
// other replicas' hits.
func (r *Router) GetBatch(keys []string) (map[string][]byte, error) {
	groups := r.group(keys)
	results := make([]map[string][]byte, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []string) {
			defer wg.Done()
			m, err := getBatch(r.replicas[i], g)
			if err != nil {
				r.failures[i].Add(1)
				return
			}
			results[i] = m
		}(i, g)
	}
	wg.Wait()
	out := make(map[string][]byte, len(keys))
	for _, m := range results {
		for k, v := range m {
			out[k] = v
		}
	}
	return out, nil
}

// HasBatch implements HasBatcher with the same split/merge/degrade shape
// as GetBatch: a down replica's keys read as absent, which only costs
// re-executions whose identical bytes deduplicate.
func (r *Router) HasBatch(keys []string) (map[string]bool, error) {
	groups := r.group(keys)
	results := make([]map[string]bool, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []string) {
			defer wg.Done()
			m, err := hasBatch(r.replicas[i], g)
			if err != nil {
				r.failures[i].Add(1)
				return
			}
			results[i] = m
		}(i, g)
	}
	wg.Wait()
	out := make(map[string]bool, len(keys))
	for _, m := range results {
		for k, ok := range m {
			if ok {
				out[k] = true
			}
		}
	}
	return out, nil
}

// PutBatch implements BatchBackend: per-replica sub-batches issued
// concurrently. added sums the replicas that answered; a failed sub-batch
// is counted against its replica and reported in the joined error, so a
// push-merge surfaces partial placement instead of claiming success —
// while a buffered write path (WriteBuffer) just counts it and moves on.
func (r *Router) PutBatch(entries []Entry) (int, error) {
	added, _, err := r.putBatchPlaced(entries)
	return added, err
}

// putBatchPlaced implements placer: the lost count is exact per replica —
// a down instance loses its sub-batch's entries, the others lose nothing,
// successful overwrites on healthy replicas are never miscounted as lost.
func (r *Router) putBatchPlaced(entries []Entry) (added, lost int, err error) {
	groups := make([][]Entry, len(r.replicas))
	for _, e := range entries {
		i := r.replicaOf(e.Key)
		groups[i] = append(groups[i], e)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []Entry) {
			defer wg.Done()
			n, lostG, err := putBatch(r.replicas[i], g)
			mu.Lock()
			defer mu.Unlock()
			added += n
			lost += lostG
			if err != nil {
				r.failures[i].Add(1)
				errs = append(errs, fmt.Errorf("store: router replica %d: %w", i, err))
			}
		}(i, g)
	}
	wg.Wait()
	r.lostWrites.Add(int64(lost))
	return added, lost, errors.Join(errs...)
}

// ForEach implements Backend over every replica in order. Remote replicas
// refuse enumeration (remote.ErrNotEnumerable) and that refusal surfaces.
func (r *Router) ForEach(fn func(key string, val []byte) error) error {
	for _, be := range r.replicas {
		if err := be.ForEach(fn); err != nil {
			return err
		}
	}
	return nil
}

// Len implements Backend as the sum of the replicas: the partition is
// disjoint by construction, so no key is counted twice. An unreachable
// replica reads as empty and bounds the total from below.
func (r *Router) Len() int {
	n := 0
	for _, be := range r.replicas {
		n += be.Len()
	}
	return n
}

// Superseded sums the replicas' dead-duplicate counts.
func (r *Router) Superseded() int64 {
	var n int64
	for _, be := range r.replicas {
		if sp, ok := be.(superseder); ok {
			n += sp.Superseded()
		}
	}
	return n
}

// Degraded counts write entries that failed to land on their owner
// replica (plus any nested composite's own count) — the partial
// placements Stats.Degraded surfaces. Read-path failures are not
// included: they already read as misses.
func (r *Router) Degraded() int64 {
	n := r.lostWrites.Load()
	for _, be := range r.replicas {
		if d, ok := be.(degrader); ok {
			n += d.Degraded()
		}
	}
	return n
}

// Compact implements Compactor over every replica that supports it.
func (r *Router) Compact() (kept, dropped int, err error) {
	for _, be := range r.replicas {
		if c, ok := be.(Compactor); ok {
			k, d, cerr := c.Compact()
			kept += k
			dropped += d
			if cerr != nil {
				return kept, dropped, cerr
			}
		}
	}
	return kept, dropped, nil
}

// Close implements Backend, closing every replica.
func (r *Router) Close() error {
	errs := make([]error, len(r.replicas))
	for i, be := range r.replicas {
		errs[i] = be.Close()
	}
	return errors.Join(errs...)
}

// hasBatch probes keys through the backend's batch path when it has one
// and per-key Has otherwise.
func hasBatch(be Backend, keys []string) (map[string]bool, error) {
	if hb, ok := be.(HasBatcher); ok {
		return hb.HasBatch(keys)
	}
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		if be.Has(k) {
			out[k] = true
		}
	}
	return out, nil
}
