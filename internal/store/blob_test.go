package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
)

// blobMapBackend extends mapBackend with an in-memory blob surface, with
// the same injectable failure modes.
type blobMapBackend struct {
	*mapBackend
	mu    sync.Mutex
	blobs map[string][]byte
}

func newBlobMapBackend() *blobMapBackend {
	return &blobMapBackend{mapBackend: newMapBackend(), blobs: make(map[string][]byte)}
}

func (b *blobMapBackend) BlobGet(key string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mapBackend.down {
		return nil, false, errors.New("backend down")
	}
	v, ok := b.blobs[key]
	return v, ok, nil
}

func (b *blobMapBackend) BlobPut(key string, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mapBackend.down || b.mapBackend.failPuts {
		return errors.New("backend down")
	}
	b.blobs[key] = val
	return nil
}

func (b *blobMapBackend) BlobHas(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mapBackend.down {
		return false
	}
	_, ok := b.blobs[key]
	return ok
}

func (b *blobMapBackend) BlobLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.blobs)
}

func TestFileBlobsRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	fb, err := store.OpenFileBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("execution trace bytes \x00\x01\x02"), 100)
	if err := fb.BlobPut("k1", payload); err != nil {
		t.Fatal(err)
	}
	if err := fb.BlobPut("k0", []byte("small")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fb.BlobGet("k1")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("BlobGet: ok=%v err=%v equal=%v", ok, err, bytes.Equal(got, payload))
	}
	if !fb.BlobHas("k0") || fb.BlobHas("absent") {
		t.Fatal("BlobHas wrong")
	}
	if keys := fb.BlobKeys(); !sort.StringsAreSorted(keys) || len(keys) != 2 {
		t.Fatalf("BlobKeys = %v, want 2 sorted keys", keys)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: blobs are durable and byte-identical.
	fb2, err := store.OpenFileBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	got, ok, err = fb2.BlobGet("k1")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: ok=%v err=%v equal=%v", ok, err, bytes.Equal(got, payload))
	}
	if fb2.BlobLen() != 2 {
		t.Fatalf("BlobLen = %d, want 2", fb2.BlobLen())
	}

	// The blob log lives beside the result log, not inside it.
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Fatalf("result store sees %d entries from the blob log", st.Len())
	}
	if fi, err := filepath.Glob(filepath.Join(dir, "blobs", "*.ndjson")); err != nil || len(fi) != 1 {
		t.Fatalf("blob log not at blobs/: %v %v", fi, err)
	}
}

func TestTieredBlobsWriteBack(t *testing.T) {
	near, err := store.OpenFileBlobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	far := newBlobMapBackend()
	tb := &store.TieredBlobs{Near: near, Far: far}
	defer tb.Close()

	// A far-only blob is served and written back near.
	if err := far.BlobPut("k", []byte("fleet blob")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tb.BlobGet("k")
	if err != nil || !ok || string(v) != "fleet blob" {
		t.Fatalf("tiered get: %q ok=%v err=%v", v, ok, err)
	}
	if !near.BlobHas("k") {
		t.Fatal("far hit not written back to the near tier")
	}

	// A put lands in both tiers.
	if err := tb.BlobPut("k2", []byte("both")); err != nil {
		t.Fatal(err)
	}
	if !near.BlobHas("k2") || !far.BlobHas("k2") {
		t.Fatal("put did not land in both tiers")
	}
	if n := tb.BlobLen(); n != 2 {
		t.Fatalf("BlobLen = %d, want 2", n)
	}
	if keys := tb.BlobKeys(); len(keys) != 2 {
		t.Fatalf("BlobKeys = %v", keys)
	}
}

func TestStoreBlobCountersAndStatsLine(t *testing.T) {
	st := store.NewMemory(16)
	// Without a blob tier every surface is a silent no-op.
	st.BlobPut("k", []byte("x"))
	if _, ok := st.BlobGet("k"); ok || st.BlobHas("k") || st.BlobLen() != 0 || st.BlobKeys() != nil {
		t.Fatal("blob surface active without a tier")
	}

	fb, err := store.OpenFileBlobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetBlobs(fb)
	defer st.Close()
	payload := []byte("trace payload")
	st.BlobPut("k", payload)
	if v, ok := st.BlobGet("k"); !ok || !bytes.Equal(v, payload) {
		t.Fatal("blob round trip through Store failed")
	}
	s := st.Stats()
	if s.BlobStored != 1 || s.BlobFetched != 1 {
		t.Fatalf("blob counters: %+v", s)
	}
	if want := int64(2 * len(payload)); s.BlobBytes != want {
		t.Fatalf("BlobBytes = %d, want %d", s.BlobBytes, want)
	}
	line := s.String()
	for _, want := range []string{"blobStored=1", "blobFetched=1", fmt.Sprintf("blobBytes=%d", 2*len(payload))} {
		if !strings.Contains(line, want) {
			t.Errorf("stats line %q missing %q", line, want)
		}
	}
	// The CI patterns anchor on the historical prefix: it must survive.
	if !strings.Contains(line, "misses=0 stored=0 ") {
		t.Errorf("stats line %q broke the anchored prefix", line)
	}

	// A failed blob put is a counted put error, not a panic or a result.
	bad := newBlobMapBackend()
	bad.mapBackend.failPuts = true
	st2 := store.NewMemory(16)
	st2.SetBlobs(bad)
	st2.BlobPut("k", payload)
	if s := st2.Stats(); s.PutErrors != 1 || s.BlobStored != 0 {
		t.Fatalf("failed blob put: %+v", s)
	}
}

func TestRouterBlobPlacementAndFailover(t *testing.T) {
	a, b := newBlobMapBackend(), newBlobMapBackend()
	r := store.NewRouter(a, b)
	var _ store.BlobBackend = r

	// Realistic keys: content addresses, like every key the engine routes.
	keys := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		keys = append(keys, store.Key("blob-test", i))
	}
	for _, k := range keys {
		if err := r.BlobPut(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Placement: each blob lives on exactly the ring owner.
	if a.BlobLen()+b.BlobLen() != len(keys) || r.BlobLen() != len(keys) {
		t.Fatalf("placement: a=%d b=%d router=%d", a.BlobLen(), b.BlobLen(), r.BlobLen())
	}
	if a.BlobLen() == 0 || b.BlobLen() == 0 {
		t.Fatalf("degenerate split: a=%d b=%d", a.BlobLen(), b.BlobLen())
	}
	for _, k := range keys {
		v, ok, err := r.BlobGet(k)
		if err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("routed get %s: ok=%v err=%v", k, ok, err)
		}
		if !r.BlobHas(k) {
			t.Fatalf("routed has %s: false", k)
		}
	}

	// Failover: replicate everything onto both, kill a, reads still serve
	// from the runner-up.
	for _, k := range keys {
		if err := a.BlobPut(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
		if err := b.BlobPut(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	a.mapBackend.down = true
	for _, k := range keys {
		v, ok, err := r.BlobGet(k)
		if err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("failover get %s: ok=%v err=%v", k, ok, err)
		}
	}

	// A down owner's write is a counted loss surfaced as an error.
	lost := 0
	for _, k := range keys {
		if err := r.BlobPut(k, []byte("x")); err != nil {
			lost++
		}
	}
	if lost == 0 || r.Degraded() < int64(lost) {
		t.Fatalf("down-owner writes: lost=%d degraded=%d", lost, r.Degraded())
	}
}
