// Package store is a content-addressed result store for the deterministic
// simulation jobs of internal/runner: pure job values in, their measured
// results out, keyed by a canonical hash of the job plus a code-version
// salt. It is what makes re-runs incremental (a warm cache re-simulates
// nothing), searches memoized (duplicate candidate genomes are free), and
// sweeps shardable across processes (each process primes its slice of the
// key space into its own store; Merge folds the shards back together).
//
// Architecture: a Store is an in-memory LRU tier in front of a Backend.
// The LRU holds decoded values for the hot working set; the Backend is the
// durable tier — the shipped implementation appends NDJSON records to a
// file and keeps only a key→offset index in memory, so a store can hold far
// more results than RAM. The Backend interface is deliberately tiny so
// later scale steps can add remote or multi-backend sinks without touching
// any caller.
//
// Failure discipline: a cache can only ever cost a re-computation, never an
// answer. Corrupt or unreadable entries are misses (counted in
// Stats.Corrupt), and write failures degrade the store to memory-only
// (counted in Stats.PutErrors); no cache pathology is ever surfaced as an
// error to the simulation. Staleness is impossible by construction: every
// key is derived from a code-version salt (runner.CacheVersion), so results
// written by an older simulation semantics live under keys a newer binary
// never asks for.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Backend is the durable tier behind a Store. Implementations must be safe
// for concurrent use by multiple goroutines of one process. (Multiple
// processes should not share one file-backed backend; give each shard its
// own directory and fold them together with Merge, or point every process
// at one remote backend, which is built for exactly that.)
//
// Write semantics are per-key last-write-wins: Put overwrites any previous
// value, and when several writers race on one key the final state is
// whichever write landed last. That rule is safe here — and only here —
// because keys are content addresses: two correct writers of the same key
// computed the same bytes, so the order of their writes cannot change what
// a reader observes. A backend that sees differing bytes rewrite a key is
// watching a bug (or a missed CacheVersion bump) and should count it as a
// conflict rather than try to arbitrate.
type Backend interface {
	// Get returns the stored value for key. ok is false on any miss,
	// including corrupt or unreadable entries; err is reserved for
	// infrastructure failures worth counting, which are still misses.
	Get(key string) (val []byte, ok bool, err error)
	// Put durably stores val under key, overwriting any previous value
	// (last-write-wins; see the interface comment).
	Put(key string, val []byte) error
	// Has reports whether key is present, without reading the value.
	Has(key string) bool
	// ForEach visits every stored entry (used by Merge).
	ForEach(fn func(key string, val []byte) error) error
	// Len returns the number of stored entries.
	Len() int
	// Close releases the backend's resources.
	Close() error
}

// Stats counts a Store's traffic. A hit means a result was served without
// re-execution; every miss corresponds to one execution the caller had to
// perform. Corrupt counts entries that existed but could not be decoded
// (served as misses); PutErrors counts failed durable writes (the value
// stays available in the LRU tier); Superseded counts writes of a key that
// was already stored — dead duplicate log lines found at open, overwriting
// Puts, and Merge sources skipped because the destination already held the
// key. Superseded entries are expected (last-write-wins over content
// addresses), but a growing count is the signal to Compact. Degraded
// counts partial write placements the composite backends would otherwise
// hide — a Tiered far-tier write that failed while the near tier landed, a
// write sub-batch a down Router replica never took — so a fleet run that
// silently wrote nothing remote is visible on the stats line instead of
// succeeding. Read-path failures are not degradation; they already count
// as misses.
type Stats struct {
	Hits, Misses, Puts, Corrupt, PutErrors, Superseded, Degraded int64
	// Blob tier traffic (zero without one): payloads stored and fetched,
	// and raw payload bytes moved in both directions.
	BlobStored, BlobFetched, BlobBytes int64
}

// String renders the stats on one line (the form the CLIs print to stderr
// and CI greps: a warm run must report misses=0). New fields append at the
// end — CI patterns anchor on the existing prefix.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d stored=%d superseded=%d corrupt=%d putErrors=%d degraded=%d blobStored=%d blobFetched=%d blobBytes=%d",
		s.Hits, s.Misses, s.Puts, s.Superseded, s.Corrupt, s.PutErrors, s.Degraded, s.BlobStored, s.BlobFetched, s.BlobBytes)
}

// Entry is one key/value pair of a batch operation.
type Entry struct {
	Key string
	Val []byte
}

// BatchBackend is optionally implemented by backends that can serve many
// keys in one round trip — the remote client turns a GetBatch into a single
// gzipped /v1/mget instead of hundreds of point requests. Local file
// backends do not bother: their per-key calls are already cheap.
type BatchBackend interface {
	Backend
	// GetBatch returns the stored values for every key it finds; absent
	// keys are simply missing from the returned map. A batch failure
	// returns an error and callers fall back to per-key Gets.
	GetBatch(keys []string) (map[string][]byte, error)
	// PutBatch stores every entry (last-write-wins, like Put) and reports
	// how many keys were new to the backend.
	PutBatch(entries []Entry) (added int, err error)
}

// HasBatcher is optionally implemented by backends that can answer many
// presence probes in one round trip (the remote client's /v1/mhas): prime
// passes ask "which of these exist?" for whole fan-outs, and values would
// be wasted bytes on the wire.
type HasBatcher interface {
	// HasBatch reports presence for every key; keys absent from the map
	// are absent from the backend.
	HasBatch(keys []string) (map[string]bool, error)
}

// Compactor is optionally implemented by backends whose storage layout
// accumulates dead data — the NDJSON log appends a duplicate line on every
// overwrite — and can be rewritten to hold only the live record per key.
type Compactor interface {
	// Compact rewrites the backend's storage keeping only live entries,
	// returning the number of live entries kept and dead records dropped.
	Compact() (kept, dropped int, err error)
}

// superseder is optionally implemented by backends that track dead
// duplicate records (see Stats.Superseded).
type superseder interface {
	Superseded() int64
}

// degrader is optionally implemented by composite backends (Tiered,
// Router) that can partially fail a write — landing a value in some tiers
// or replicas but not others — and count those degraded write placements
// (see Stats.Degraded). Read-path failures are not degradation: they are
// already visible as misses.
type degrader interface {
	Degraded() int64
}

// placer is optionally implemented by composite backends (Tiered, Router)
// that can report batch write placement more precisely than the
// all-or-nothing BatchBackend surface: lost counts the entries known to
// have landed nowhere, which is what loss accounting needs — added alone
// cannot distinguish a failed write from a successful overwrite.
type placer interface {
	putBatchPlaced(entries []Entry) (added, lost int, err error)
}

// keyLister is optionally implemented by backends whose key set is cheap
// to enumerate without touching values (the NDJSON index). Tiered.Len uses
// it to count the exact union of disjoint tiers, and the migrator
// enumerates a draining replica's keys through it.
type keyLister interface {
	Keys() []string
}

// Deleter is optionally implemented by backends that can drop a key — the
// migrator's push-then-delete handoff needs it: a drained key is deleted
// from its old owner only after the new owner acknowledged the write, so
// at every instant the key is readable somewhere.
type Deleter interface {
	// Delete drops key, reporting whether it was present. Deleting an
	// absent key is a no-op (drains are idempotent).
	Delete(key string) (existed bool, err error)
}

// grouper is optionally implemented by placement-aware backends (Router)
// that spread keys across disjoint groups: GroupOf names the group owning
// a key, Groups the group count. Merge uses it to accumulate per-owner
// batches, so a shard-directory push travels as full per-replica PutBatch
// calls instead of every chunk fanning out to every replica.
type grouper interface {
	GroupOf(key string) int
	Groups() int
}

// Store is the two-tier content-addressed result store. Safe for concurrent
// use from a worker pool.
type Store struct {
	mu sync.Mutex
	//repro:guardedby mu
	lru *lruCache
	be  Backend // nil for a memory-only store

	// blobs is the optional trace-payload tier (see blob.go); set once at
	// mount, before concurrent use.
	blobs BlobBackend

	hits, misses, puts, corrupt, putErrors, superseded atomic.Int64
	blobStored, blobFetched, blobBytes                 atomic.Int64
}

// DefaultLRUEntries is the LRU tier's capacity when the caller passes 0.
const DefaultLRUEntries = 1 << 16

// New assembles a store from an LRU capacity (entries; 0 selects
// DefaultLRUEntries) and an optional backend (nil for memory-only).
func New(lruEntries int, be Backend) *Store {
	if lruEntries <= 0 {
		lruEntries = DefaultLRUEntries
	}
	return &Store{lru: newLRU(lruEntries), be: be}
}

// Open opens (creating if necessary) the NDJSON-backed store in dir.
func Open(dir string, lruEntries int) (*Store, error) {
	be, err := OpenNDJSON(dir)
	if err != nil {
		return nil, err
	}
	return New(lruEntries, be), nil
}

// NewMemory returns a backend-less store: pure in-process memoization,
// bounded by the LRU capacity.
func NewMemory(lruEntries int) *Store { return New(lruEntries, nil) }

// Get returns the value stored under key. Any failure to produce a decoded
// value — absent key, corrupt entry, unreadable backend — is a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil || key == "" {
		return nil, false
	}
	s.mu.Lock()
	v, ok := s.lru.get(key)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return v, true
	}
	if s.be != nil {
		v, ok, err := s.be.Get(key)
		if err != nil {
			s.corrupt.Add(1)
		}
		if ok {
			s.mu.Lock()
			s.lru.put(key, v)
			s.mu.Unlock()
			s.hits.Add(1)
			return v, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// Peek returns the value stored under key without touching the hit/miss
// books — for infrastructure reads (the remote server's overwrite conflict
// check) that would otherwise masquerade as cache traffic in Stats.
// Backend read failures simply read as absent.
func (s *Store) Peek(key string) ([]byte, bool) {
	if s == nil || key == "" {
		return nil, false
	}
	s.mu.Lock()
	v, ok := s.lru.get(key)
	s.mu.Unlock()
	if ok {
		return v, true
	}
	if s.be != nil {
		if v, ok, _ := s.be.Get(key); ok { //repro:degrade a failed infrastructure read is an absent key, and must not skew Stats
			return v, true
		}
	}
	return nil, false
}

// Has reports whether key is present in either tier, without counting a hit
// or a miss (used by prime passes to decide what still needs executing).
func (s *Store) Has(key string) bool {
	if s == nil || key == "" {
		return false
	}
	s.mu.Lock()
	_, ok := s.lru.get(key)
	s.mu.Unlock()
	if ok {
		return true
	}
	return s.be != nil && s.be.Has(key)
}

// Put stores val under key in both tiers. Durable-write failures are
// counted and otherwise ignored: the store degrades to memory-only rather
// than failing the computation that produced the value.
func (s *Store) Put(key string, val []byte) {
	if s == nil || key == "" {
		return
	}
	s.putResident(key, val)
	if s.be != nil {
		if err := s.be.Put(key, val); err != nil {
			s.putErrors.Add(1)
		}
	}
}

// putResident is the write both paths share — the synchronous Put above
// and the buffered WriteBuffer.Put: the value becomes LRU-resident (warm
// for in-process reads) and counted, durability handled by the caller.
func (s *Store) putResident(key string, val []byte) {
	s.mu.Lock()
	s.lru.put(key, val)
	s.mu.Unlock()
	s.puts.Add(1)
}

// Batched reports whether the backend can serve batch lookups in one round
// trip; callers use it to decide whether computing a fan-out's keys up
// front for Prefetch is worth anything.
func (s *Store) Batched() bool {
	if s == nil {
		return false
	}
	_, ok := s.be.(BatchBackend)
	return ok
}

// ProbeBatched reports whether the backend can answer batched presence
// probes; callers use it to decide whether computing a fan-out's keys up
// front for Present is worth anything.
func (s *Store) ProbeBatched() bool {
	if s == nil {
		return false
	}
	_, ok := s.be.(HasBatcher)
	return ok
}

// prefetchChunk bounds the number of keys per backend batch round trip so
// request bodies stay small however large the fan-out is.
const prefetchChunk = 512

// Prefetch warms the LRU tier with the given keys in as few backend round
// trips as the backend allows: a whole sweep's lookups become one gzipped
// mget against a remote store instead of one request per job. Keys already
// resident, keys absent from the backend, and batch failures all degrade
// silently to the per-key path — a prefetch can only save round trips,
// never change a result — and nothing is counted as a hit or miss here;
// the per-key Gets that follow do the counting.
//
// The returned set holds every key now known present (resident before or
// fetched by the batch); nil when the backend has no batch path. Callers
// that want presence without moving values use Present instead.
func (s *Store) Prefetch(keys []string) map[string]bool {
	if s == nil {
		return nil
	}
	bb, ok := s.be.(BatchBackend)
	if !ok {
		return nil
	}
	present := make(map[string]bool, len(keys))
	var missing []string
	s.mu.Lock()
	for _, k := range keys {
		if k == "" {
			continue
		}
		if _, resident := s.lru.get(k); resident {
			present[k] = true
		} else {
			missing = append(missing, k)
		}
	}
	s.mu.Unlock()
	for len(missing) > 0 {
		chunk := missing
		if len(chunk) > prefetchChunk {
			chunk = chunk[:prefetchChunk]
		}
		missing = missing[len(chunk):]
		vals, err := bb.GetBatch(chunk)
		if err != nil {
			return present // per-key Gets will retry (and count) each failure
		}
		s.mu.Lock()
		for k, v := range vals { //repro:unordered LRU insertion order only shifts eviction priority, never a result
			s.lru.put(k, v)
			present[k] = true
		}
		s.mu.Unlock()
	}
	return present
}

// Present returns the set of the given keys known present, answered from
// the LRU tier plus batched backend probes — no values move and nothing
// is counted as a hit or miss. Returns nil when the backend cannot batch
// presence probes; callers fall back to per-key Has. Prime passes use it
// to decide what a whole fan-out still needs to execute in one round
// trip. A batch failure leaves the remaining keys out of the set, which
// reads as absent — re-executing a present unit is safe, its identical
// bytes deduplicate.
func (s *Store) Present(keys []string) map[string]bool {
	if s == nil {
		return nil
	}
	hb, ok := s.be.(HasBatcher)
	if !ok {
		return nil
	}
	present := make(map[string]bool, len(keys))
	var missing []string
	s.mu.Lock()
	for _, k := range keys {
		if k == "" {
			continue
		}
		if _, resident := s.lru.get(k); resident {
			present[k] = true
		} else {
			missing = append(missing, k)
		}
	}
	s.mu.Unlock()
	for len(missing) > 0 {
		chunk := missing
		if len(chunk) > prefetchChunk {
			chunk = chunk[:prefetchChunk]
		}
		missing = missing[len(chunk):]
		m, err := hb.HasBatch(chunk)
		if err != nil {
			return present
		}
		for k, ok := range m {
			if ok {
				present[k] = true
			}
		}
	}
	return present
}

// Compact rewrites the backend's storage keeping only the live record per
// key (see Compactor). Backends without dead data to reclaim report their
// live count and zero dropped.
func (s *Store) Compact() (kept, dropped int, err error) {
	if s == nil || s.be == nil {
		return 0, 0, nil
	}
	if c, ok := s.be.(Compactor); ok {
		return c.Compact()
	}
	return s.be.Len(), 0, nil
}

// Len returns the number of durable entries (LRU-only for memory stores).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	if s.be != nil {
		return s.be.Len()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.len()
}

// Keys returns the backend's live key set when it is cheap to enumerate
// (keyLister: the NDJSON index), nil otherwise. The migrator uses it to
// find a draining replica's no-longer-owned slice without reading values.
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	if kl, ok := s.be.(keyLister); ok {
		return kl.Keys()
	}
	return nil
}

// Delete drops key from both tiers, reporting whether the durable tier
// held it. Backends without Deleter keep their entry (only the LRU copy
// goes); the migrator checks support up front via CanDelete.
func (s *Store) Delete(key string) (bool, error) {
	if s == nil || key == "" {
		return false, nil
	}
	s.mu.Lock()
	s.lru.delete(key)
	s.mu.Unlock()
	if d, ok := s.be.(Deleter); ok {
		return d.Delete(key)
	}
	return false, nil
}

// CanDelete reports whether the durable tier supports Delete — whether a
// drain of this store can actually hand keys off rather than copy them.
func (s *Store) CanDelete() bool {
	if s == nil {
		return false
	}
	_, ok := s.be.(Deleter)
	return ok
}

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Corrupt:     s.corrupt.Load(),
		PutErrors:   s.putErrors.Load(),
		Superseded:  s.superseded.Load(),
		BlobStored:  s.blobStored.Load(),
		BlobFetched: s.blobFetched.Load(),
		BlobBytes:   s.blobBytes.Load(),
	}
	if sp, ok := s.be.(superseder); ok {
		st.Superseded += sp.Superseded()
	}
	if d, ok := s.be.(degrader); ok {
		st.Degraded += d.Degraded()
	}
	return st
}

// Close closes the backend and the blob tier, if any. A blob tier that is
// the backend itself (a remote client serving both surfaces) closes once.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	var berr, blerr error
	if s.be != nil {
		berr = s.be.Close()
	}
	if c, ok := s.blobs.(io.Closer); ok && any(s.blobs) != any(s.be) {
		blerr = c.Close()
	}
	return errors.Join(berr, blerr)
}

// openMergeSrc opens one merge source directory; a variable so tests can
// inject failing sources (like nowFn for the clock).
var openMergeSrc = func(dir string) (Backend, error) { return OpenNDJSON(dir) }

// Merge folds every entry of the NDJSON stores in dirs into s (the shard
// fold: m processes prime disjoint key slices into their own directories,
// then one process merges them and replays the whole sweep from cache —
// or, with a remote backend, pushes a local shard store up to the fleet
// store). Keys already present in s are kept as-is and counted as
// superseded — entries are content-addressed, so a duplicate key carries
// an identical value. When the backend supports batching, entries travel
// in PutBatch chunks instead of one Put per key; when it is also
// placement-aware (grouper — the Router), entries accumulate in
// per-owner buffers so each flush is one full batch straight to one
// replica rather than every chunk fanning out across the fleet. Returns
// the number of entries added.
func (s *Store) Merge(dirs ...string) (int, error) {
	bb, batched := s.be.(BatchBackend)
	added := 0
	for _, dir := range dirs {
		src, err := openMergeSrc(dir)
		if err != nil {
			return added, fmt.Errorf("store: merge %s: %w", dir, err)
		}
		if batched {
			groups := 1
			groupOf := func(string) int { return 0 }
			if g, ok := s.be.(grouper); ok && g.Groups() > 1 {
				groups, groupOf = g.Groups(), g.GroupOf
			}
			chunks := make([][]Entry, groups)
			flush := func(gi int) error {
				chunk := chunks[gi]
				if len(chunk) == 0 {
					return nil
				}
				n, err := bb.PutBatch(chunk)
				if err != nil {
					return err
				}
				added += n
				s.puts.Add(int64(n))
				s.superseded.Add(int64(len(chunk) - n))
				chunks[gi] = chunk[:0]
				return nil
			}
			err = src.ForEach(func(key string, val []byte) error {
				gi := groupOf(key)
				chunks[gi] = append(chunks[gi], Entry{Key: key, Val: val})
				if len(chunks[gi]) >= prefetchChunk {
					return flush(gi)
				}
				return nil
			})
			if err == nil {
				for gi := range chunks {
					if err = flush(gi); err != nil {
						break
					}
				}
			}
		} else {
			err = src.ForEach(func(key string, val []byte) error {
				if s.Has(key) {
					s.superseded.Add(1)
					return nil
				}
				s.Put(key, val)
				added++
				return nil
			})
		}
		cerr := src.Close()
		if err != nil {
			return added, fmt.Errorf("store: merge %s: %w", dir, err)
		}
		if cerr != nil {
			return added, fmt.Errorf("store: merge %s: close: %w", dir, cerr)
		}
	}
	return added, nil
}

// Key returns the content address of a cacheable unit: the hex SHA-256 of
// the code-version salt and the canonical JSON encoding of v. Callers pass
// pure value types (structs of strings, ints and slices — never maps or
// pointers to mutable state), whose JSON encoding is deterministic, so the
// same logical job always lands on the same key in every process. An
// unencodable v returns "", which every consumer treats as "uncacheable".
func Key(salt string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return ""
	}
	h := sha256.New()
	h.Write([]byte(salt)) //repro:degrade hash.Hash.Write is documented to never error
	h.Write([]byte{0})    //repro:degrade hash.Hash.Write is documented to never error
	h.Write(b)            //repro:degrade hash.Hash.Write is documented to never error
	return hex.EncodeToString(h.Sum(nil))
}

// ParseShard parses the CLI shard notation "i/m" (1-based i, e.g. "2/3")
// into a 0-based shard index and shard count. The whole string must be
// consumed — "1/2x" or "1/2/3" are rejected, not silently truncated, so a
// typoed split fails loudly instead of mispriming the key space.
func ParseShard(s string) (index, count int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("store: bad shard %q: want i/m, e.g. 1/3", s)
	}
	i, err1 := strconv.Atoi(a)
	m, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("store: bad shard %q: want i/m, e.g. 1/3", s)
	}
	if m < 1 || i < 1 || i > m {
		return 0, 0, fmt.Errorf("store: bad shard %q: need 1 <= i <= m", s)
	}
	return i - 1, m, nil
}

// GetJSON fetches and decodes the value stored under key. Decode failures
// are corrupt entries: counted, reported as a miss, never an error.
func GetJSON[T any](s *Store, key string) (T, bool) {
	var v T
	b, ok := s.Get(key)
	if !ok {
		return v, false
	}
	if err := json.Unmarshal(b, &v); err != nil {
		s.corrupt.Add(1)
		s.hits.Add(-1) // reclassify: the raw bytes hit, the value did not
		s.misses.Add(1)
		var zero T
		return zero, false
	}
	return v, true
}

// PutJSON encodes v and stores it under key through any write surface — a
// Store for synchronous per-key writes, a WriteBuffer for batched ones.
// Unencodable values are dropped (the job simply stays uncached).
func PutJSON[T any](p Putter, key string, v T) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	p.Put(key, b)
}
