package store

import "container/list"

// lruCache is the in-memory front tier: a fixed-capacity map + recency list
// holding decoded values for the hot working set. Not safe for concurrent
// use; Store serializes access under its mutex.
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val []byte) {
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) delete(key string) {
	if e, ok := c.m[key]; ok {
		c.ll.Remove(e)
		delete(c.m, key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
