package store

import "sync"

// DefaultWriteBufferEntries is a WriteBuffer's flush threshold when the
// caller passes 0 — matched to prefetchChunk so write bodies stay the same
// size as read bodies.
const DefaultWriteBufferEntries = prefetchChunk

// Putter is the write surface shared by Store and WriteBuffer, so the JSON
// helpers (PutJSON) and the cached engine's hot path work against either:
// a synchronous per-key write, or a buffered one that travels in batches.
type Putter interface {
	// Put stores val under key; failures degrade (and are counted), never
	// surface.
	Put(key string, val []byte)
}

// WriteBuffer batches a Store's durable writes: Put lands in the LRU tier
// immediately (in-process reads see the value at once) while the backend
// write is deferred into a bounded buffer that flushes as one PutBatch per
// DefaultWriteBufferEntries — against a remote or routed backend, one
// gzipped mput per fan-out instead of one synchronous round trip per
// executed unit. This is the write-side mirror of Store.Prefetch.
//
// The caller owns the flush barrier: Flush (or Close) must run before the
// process needs the writes durable or visible to other processes — the
// cached engine flushes at the end of every fan-out, so a fan-out's folds
// and any following fan-out observe exactly what synchronous writes would
// have produced. A flush failure degrades like a failed Put: the values
// stay served from the LRU tier, the loss is counted in Stats.PutErrors,
// and nothing surfaces as an error into the simulation.
//
// Safe for concurrent use by a worker pool; Flush may run concurrently
// with Put (the in-flight chunk is snapshotted out under the lock).
type WriteBuffer struct {
	st  *Store
	cap int

	mu      sync.Mutex
	pending []Entry
}

// NewWriteBuffer returns a buffered write path into st flushing every
// capEntries writes (0 selects DefaultWriteBufferEntries). A nil st yields
// a no-op buffer, mirroring the nil-store discipline of Store itself.
func NewWriteBuffer(st *Store, capEntries int) *WriteBuffer {
	if capEntries <= 0 {
		capEntries = DefaultWriteBufferEntries
	}
	return &WriteBuffer{st: st, cap: capEntries}
}

// Put implements Putter: the value is resident (LRU) and counted
// immediately, the durable write deferred until the buffer fills or Flush
// runs. Memory-only stores have nothing to defer.
func (w *WriteBuffer) Put(key string, val []byte) {
	if w == nil || w.st == nil || key == "" {
		return
	}
	w.st.putResident(key, val)
	if w.st.be == nil {
		return
	}
	var full []Entry
	w.mu.Lock()
	w.pending = append(w.pending, Entry{Key: key, Val: val})
	if len(w.pending) >= w.cap {
		full = w.pending
		w.pending = nil
	}
	w.mu.Unlock()
	w.st.flushEntries(full)
}

// Flush drains every pending write in one backend batch (per-key writes
// when the backend cannot batch). Failures are counted, not returned — see
// the type comment.
func (w *WriteBuffer) Flush() {
	if w == nil || w.st == nil {
		return
	}
	w.mu.Lock()
	chunk := w.pending
	w.pending = nil
	w.mu.Unlock()
	w.st.flushEntries(chunk)
}

// Close flushes the buffer. The underlying store stays open — the buffer
// borrows it for one fan-out, it does not own it.
func (w *WriteBuffer) Close() error {
	w.Flush()
	return nil
}

// flushEntries pushes a buffered chunk to the backend through its batch
// path. A failed flush counts one PutError per entry that landed nowhere
// (composite backends report placement exactly — an entry a Tiered near
// tier absorbed is durable, not a put error); the lost values remain
// served from the LRU tier, the memory-only degradation of a failed
// synchronous Put.
func (s *Store) flushEntries(entries []Entry) {
	if len(entries) == 0 || s.be == nil {
		return
	}
	if _, lost, _ := putBatch(s.be, entries); lost > 0 { //repro:degrade counted: every entry that landed nowhere becomes a PutError
		s.putErrors.Add(int64(lost))
	}
}
