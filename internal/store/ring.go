package store

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Ring is the placement layer of the fleet store: a weighted rendezvous
// hash over named members, stamped with a monotonic epoch. It is the one
// object every process consults to answer "who owns this key?" — the
// Router routes through it, prime-shard passes partition through it
// (UniformRing), stored replicas serve it at /v1/ring so clients learn
// placement from any member instead of flag order, and the migrator
// streams keys between replicas when a new epoch changes the answer.
//
// Rendezvous (highest-random-weight) hashing gives the property that makes
// a fleet elastic: each member's score for a key depends only on the
// (member name, key) pair, so adding or removing a member never reshuffles
// keys among the surviving members — a key either stays put or moves
// to/from the changed member. Better still, the member ranking with the
// new member removed IS the old ranking, so a key that moved to a new
// member has its previous owner as runner-up (Rank[1]); the Router's
// failover reads exploit exactly that during a migration.
//
// Weights scale a member's share of the key space linearly (a weight-2
// member owns about twice a weight-1 member's keys), so heterogeneous
// replicas can carry proportional slices.
//
// The epoch orders placements in time: a resize publishes a new Ring with
// a strictly larger epoch, replicas echo their installed epoch on every
// reply, and a client holding a smaller epoch knows its placement is
// stale. Epoch 0 is the "flag ring" — placement derived from a CLI's URL
// list with no authority behind it.
type Ring struct {
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// Member is one named replica of a Ring. Name is the hashing identity —
// it, not the URL, decides placement, so a replica can move hosts without
// moving keys. URL is where the member is reachable (empty for purely
// logical members, e.g. shard partitions). Weight scales the member's
// share of the key space; NewRing normalizes non-positive weights to 1.
type Member struct {
	Name   string  `json:"name"`
	URL    string  `json:"url,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// NewRing validates and returns a ring over the given members: names must
// be non-empty and unique, and at least one member is required.
// Non-positive weights normalize to 1.
func NewRing(epoch uint64, members ...Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("store: ring needs at least one member")
	}
	seen := make(map[string]bool, len(members))
	ms := make([]Member, len(members))
	for i, m := range members {
		if m.Name == "" {
			return nil, fmt.Errorf("store: ring member %d has no name", i)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("store: duplicate ring member %q", m.Name)
		}
		seen[m.Name] = true
		if m.Weight <= 0 {
			m.Weight = 1
		}
		ms[i] = m
	}
	return &Ring{Epoch: epoch, Members: ms}, nil
}

// UniformRing returns the epoch-0 ring of m equal-weight logical members
// ("s1"…"sm") that prime-shard passes partition the key space with: shard
// i of m owns exactly the keys Owner assigns to member index i. Every
// process constructs the identical ring from m alone, so fleet shards
// agree on the partition with no coordination.
func UniformRing(m int) *Ring {
	if m < 1 {
		m = 1
	}
	members := make([]Member, m)
	for i := range members {
		members[i] = Member{Name: "s" + strconv.Itoa(i+1), Weight: 1}
	}
	return &Ring{Members: members}
}

// FlagRing returns the epoch-0 ring a bare URL list implies: one member
// per URL, named by the URL, equal weight, in list order. It is the
// placement fleets used before rings existed — every process must pass
// the same list — and remains the fallback when no replica serves an
// authoritative ring.
func FlagRing(urls ...string) *Ring {
	members := make([]Member, len(urls))
	for i, u := range urls {
		members[i] = Member{Name: u, URL: u, Weight: 1}
	}
	return &Ring{Members: members}
}

// Index returns the member index of the given name, or -1 when the name
// is not a member (a replica draining itself out of the fleet).
func (r *Ring) Index(name string) int {
	for i, m := range r.Members {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the member names in ring order (diagnostics).
func (r *Ring) Names() []string {
	out := make([]string, len(r.Members))
	for i, m := range r.Members {
		out[i] = m.Name
	}
	return out
}

// Validate re-checks an externally decoded ring (a /v1/ring body) against
// NewRing's invariants.
func (r *Ring) Validate() error {
	_, err := NewRing(r.Epoch, r.Members...)
	return err
}

// score is member mi's rendezvous score for key: -weight/log(u) with u a
// uniform (0,1) hash of (member name, key). Scores are independent across
// members — the property every elasticity guarantee above rests on — and
// weights scale expected ownership share linearly (weighted rendezvous
// hashing à la Thaler–Ravishankar).
func (r *Ring) score(mi int, key string) float64 {
	h := uint64(14695981039346656037) // FNV-64a offset basis
	const prime = 1099511628211
	name := r.Members[mi].Name
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime
	}
	h = (h ^ 0) * prime // separator: "ab"+"c" and "a"+"bc" must differ
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	// Map the hash to u ∈ (0,1): 53 mantissa bits, offset by ½ulp so u is
	// never 0 or 1 and log(u) is finite and negative.
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return -r.Members[mi].Weight / math.Log(u)
}

// Owner returns the index of the member owning key: the rendezvous
// score maximum, ties broken by member name so every process agrees.
func (r *Ring) Owner(key string) int {
	best, bestScore := 0, math.Inf(-1)
	for i := range r.Members {
		s := r.score(i, key)
		if s > bestScore || (s == bestScore && r.Members[i].Name < r.Members[best].Name) {
			best, bestScore = i, s
		}
	}
	return best
}

// Rank returns all member indexes in descending rendezvous order for key:
// Rank[0] is the owner, Rank[1] the runner-up a failover read tries next.
// Because member scores are mutually independent, Rank with any member
// deleted is the Rank of the ring without that member — which is why the
// runner-up of a freshly moved key is exactly its previous owner.
func (r *Ring) Rank(key string) []int {
	idx := make([]int, len(r.Members))
	scores := make([]float64, len(r.Members))
	for i := range r.Members {
		idx[i] = i
		scores[i] = r.score(i, key)
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return r.Members[idx[a]].Name < r.Members[idx[b]].Name
	})
	return idx
}

// ParseRingSpec parses the CLI ring notation: a comma-separated list of
// "name=url" members, each with an optional "*weight" suffix, e.g.
//
//	a=http://10.0.0.1:9200,b=http://10.0.0.2:9200*2
//
// into a ring at the given epoch. The whole spec must parse — a typoed
// member fails loudly instead of silently mis-placing the key space.
func ParseRingSpec(epoch uint64, spec string) (*Ring, error) {
	var members []Member
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("store: bad ring member %q: want name=url[*weight]", part)
		}
		weight := 1.0
		url := rest
		if u, w, ok := strings.Cut(rest, "*"); ok {
			f, err := strconv.ParseFloat(w, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("store: bad ring member %q: weight %q is not a positive number", part, w)
			}
			url, weight = u, f
		}
		members = append(members, Member{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url), Weight: weight})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("store: ring spec %q names no members", spec)
	}
	return NewRing(epoch, members...)
}

// String renders the ring for diagnostics: epoch and member names.
func (r *Ring) String() string {
	if r == nil {
		return "ring(nil)"
	}
	return fmt.Sprintf("ring(epoch=%d members=%s)", r.Epoch, strings.Join(r.Names(), ","))
}
