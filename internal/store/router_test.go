package store_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/store"
)

// mapBackend is a minimal in-memory Backend for routing and tiering tests,
// with injectable failure modes: down makes every operation fail (a dead
// replica), failPuts fails only writes (a full disk, a rejecting server).
type mapBackend struct {
	mu       sync.Mutex
	m        map[string][]byte
	down     bool
	failPuts bool
}

func newMapBackend() *mapBackend { return &mapBackend{m: make(map[string][]byte)} }

func (b *mapBackend) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil, false, errors.New("backend down")
	}
	v, ok := b.m[key]
	return v, ok, nil
}

func (b *mapBackend) Put(key string, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down || b.failPuts {
		return errors.New("backend down")
	}
	b.m[key] = val
	return nil
}

func (b *mapBackend) Has(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return false
	}
	_, ok := b.m[key]
	return ok
}

func (b *mapBackend) ForEach(fn func(key string, val []byte) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, v := range b.m {
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

func (b *mapBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

func (b *mapBackend) Close() error { return nil }

// batchMapBackend adds counted batch paths, so tests can assert traffic
// travelled batched rather than per key.
type batchMapBackend struct {
	*mapBackend
	mu         sync.Mutex
	putBatches []int // entry count of each PutBatch call
	getBatches int
	hasBatches int
}

func newBatchMapBackend() *batchMapBackend { return &batchMapBackend{mapBackend: newMapBackend()} }

func (b *batchMapBackend) GetBatch(keys []string) (map[string][]byte, error) {
	b.mu.Lock()
	b.getBatches++
	b.mu.Unlock()
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok, err := b.mapBackend.Get(k); err != nil {
			return nil, err
		} else if ok {
			out[k] = v
		}
	}
	return out, nil
}

func (b *batchMapBackend) PutBatch(entries []store.Entry) (int, error) {
	b.mu.Lock()
	b.putBatches = append(b.putBatches, len(entries))
	b.mu.Unlock()
	added := 0
	for _, e := range entries {
		isNew := !b.mapBackend.Has(e.Key)
		if err := b.mapBackend.Put(e.Key, e.Val); err != nil {
			return added, err
		}
		if isNew {
			added++
		}
	}
	return added, nil
}

func (b *batchMapBackend) HasBatch(keys []string) (map[string]bool, error) {
	b.mu.Lock()
	b.hasBatches++
	b.mu.Unlock()
	b.mapBackend.mu.Lock()
	defer b.mapBackend.mu.Unlock()
	if b.mapBackend.down {
		return nil, errors.New("backend down")
	}
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		if _, ok := b.mapBackend.m[k]; ok {
			out[k] = true
		}
	}
	return out, nil
}

func TestRouterImplementsBatchInterfaces(t *testing.T) {
	var _ store.Backend = (*store.Router)(nil)
	var _ store.BatchBackend = (*store.Router)(nil)
	var _ store.HasBatcher = (*store.Router)(nil)
	var _ store.Compactor = (*store.Router)(nil)
}

// TestRouterPartitionsKeySpace pins the routing invariant: every key lands
// on exactly the replica the ring assigns it, so all fleet processes agree
// on placement and replica key spaces stay disjoint.
func TestRouterPartitionsKeySpace(t *testing.T) {
	replicas := []*mapBackend{newMapBackend(), newMapBackend(), newMapBackend()}
	r := store.NewRouter(replicas[0], replicas[1], replicas[2])
	defer r.Close()

	const n = 120
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("v1", i)
		if err := r.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		owner := r.Ring().Owner(k)
		for ri, be := range replicas {
			if got := be.Has(k); got != (ri == owner) {
				t.Fatalf("key %d: replica %d has=%v, owner is %d", i, ri, got, owner)
			}
		}
		if v, ok, err := r.Get(k); !ok || err != nil || string(v) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("key %d: %q ok=%v err=%v", i, v, ok, err)
		}
		if !r.Has(k) {
			t.Fatalf("key %d: Has=false after Put", i)
		}
	}
	sum := 0
	for ri, be := range replicas {
		if be.Len() == 0 {
			t.Fatalf("replica %d never hit over %d keys — partition is degenerate", ri, n)
		}
		sum += be.Len()
	}
	if sum != n || r.Len() != n {
		t.Fatalf("sum of replicas %d, router Len %d, want %d (disjoint partition)", sum, r.Len(), n)
	}
}

// TestRouterBatchesSplitPerReplica pins that batch calls stay batched: one
// sub-batch per replica, merged replies, no per-key fallback on the healthy
// path.
func TestRouterBatchesSplitPerReplica(t *testing.T) {
	replicas := []*batchMapBackend{newBatchMapBackend(), newBatchMapBackend(), newBatchMapBackend()}
	r := store.NewRouter(replicas[0], replicas[1], replicas[2])
	defer r.Close()

	entries := make([]store.Entry, 60)
	keys := make([]string, len(entries))
	for i := range entries {
		keys[i] = store.Key("v1", i)
		entries[i] = store.Entry{Key: keys[i], Val: []byte(fmt.Sprintf(`{"i":%d}`, i))}
	}
	added, err := r.PutBatch(entries)
	if err != nil || added != len(entries) {
		t.Fatalf("PutBatch added=%d err=%v, want %d, nil", added, err, len(entries))
	}
	got, err := r.GetBatch(keys)
	if err != nil || len(got) != len(keys) {
		t.Fatalf("GetBatch returned %d err=%v, want %d", len(got), err, len(keys))
	}
	present, err := r.HasBatch(keys)
	if err != nil || len(present) != len(keys) {
		t.Fatalf("HasBatch returned %d err=%v, want %d", len(present), err, len(keys))
	}
	for ri, be := range replicas {
		if len(be.putBatches) != 1 || be.getBatches != 1 || be.hasBatches != 1 {
			t.Fatalf("replica %d saw putBatches=%v getBatches=%d hasBatches=%d, want one sub-batch each",
				ri, be.putBatches, be.getBatches, be.hasBatches)
		}
		if be.putBatches[0] != be.Len() {
			t.Fatalf("replica %d sub-batch carried %d entries for %d keys", ri, be.putBatches[0], be.Len())
		}
	}
}

// TestRouterDownReplicaDegradesToMiss is the failover discipline: with one
// of three replicas down, its keys read as misses and write as counted
// failures while the other replicas keep serving — never an error into the
// simulation, never lost hits on the healthy replicas.
func TestRouterDownReplicaDegradesToMiss(t *testing.T) {
	replicas := []*mapBackend{newMapBackend(), newMapBackend(), newMapBackend()}
	r := store.NewRouter(replicas[0], replicas[1], replicas[2])
	st := store.New(0, r)
	defer st.Close()

	const n = 60
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("v1", i)
		st.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	if s := st.Stats(); s.PutErrors != 0 {
		t.Fatalf("healthy puts failed: %+v", s)
	}

	const sick = 1
	replicas[sick].down = true
	// A fresh Store: the LRU of the priming store would mask the backend.
	cold := store.New(0, r)
	hits, misses := 0, 0
	for _, k := range keys {
		if _, ok := cold.Get(k); ok {
			hits++
		} else {
			misses++
		}
	}
	sickKeys := 0
	for _, k := range keys {
		if r.Ring().Owner(k) == sick {
			sickKeys++
		}
	}
	if misses != sickKeys || hits != n-sickKeys {
		t.Fatalf("hits=%d misses=%d, want %d and %d: exactly the down replica's keys degrade",
			hits, misses, n-sickKeys, sickKeys)
	}

	// Batch reads keep the healthy replicas' answers.
	got, err := r.GetBatch(keys)
	if err != nil || len(got) != n-sickKeys {
		t.Fatalf("GetBatch with a down replica: %d entries err=%v, want %d and nil", len(got), err, n-sickKeys)
	}
	present, err := r.HasBatch(keys)
	if err != nil || len(present) != n-sickKeys {
		t.Fatalf("HasBatch with a down replica: %d present err=%v, want %d and nil", len(present), err, n-sickKeys)
	}

	// A read-only outage is diagnosed per replica but is NOT degradation:
	// nothing was written, nothing was lost — only misses happened.
	fails := r.Failures()
	for ri, f := range fails {
		if (ri == sick) != (f > 0) {
			t.Fatalf("replica %d failures=%d (want >0 only for replica %d): %v", ri, f, sick, fails)
		}
	}
	if got := r.Degraded(); got != 0 {
		t.Fatalf("read-only failures counted as degraded writes: %d", got)
	}

	// Writes to the down replica are counted failures — exactly one lost
	// entry per down-replica key; the other replicas still take theirs.
	for _, k := range keys {
		cold.Put(k, []byte(`{"rewrite":true}`))
	}
	if s := cold.Stats(); s.PutErrors != int64(sickKeys) {
		t.Fatalf("putErrors=%d, want %d (one per down-replica key)", s.PutErrors, sickKeys)
	}
	if got := r.Degraded(); got != int64(sickKeys) {
		t.Fatalf("Degraded=%d, want exactly the %d lost writes", got, sickKeys)
	}

	// Recovery: the replica comes back, its keys are re-writable and
	// re-readable; nothing about the healthy replicas changed.
	replicas[sick].down = false
	for _, k := range keys {
		if r.Ring().Owner(k) == sick {
			if err := r.Put(k, []byte(`{"back":true}`)); err != nil {
				t.Fatalf("recovered replica rejected a write: %v", err)
			}
		}
	}
	if r.Len() != n {
		t.Fatalf("Len=%d after recovery, want %d", r.Len(), n)
	}
}

// TestRouterPutBatchReportsPartialPlacement pins that a half-failed batch
// write is not a silent success: added counts only landed entries and the
// error names the failing replica.
func TestRouterPutBatchReportsPartialPlacement(t *testing.T) {
	healthy, sick := newMapBackend(), newMapBackend()
	sick.failPuts = true
	r := store.NewRouter(healthy, sick)
	defer r.Close()

	entries := make([]store.Entry, 40)
	sickCount := 0
	for i := range entries {
		k := store.Key("v1", i)
		entries[i] = store.Entry{Key: k, Val: []byte(`{"v":1}`)}
		if r.Ring().Owner(k) == 1 {
			sickCount++
		}
	}
	added, err := r.PutBatch(entries)
	if err == nil {
		t.Fatal("partial placement must return an error")
	}
	if added != len(entries)-sickCount {
		t.Fatalf("added=%d, want %d (only the healthy replica's entries)", added, len(entries)-sickCount)
	}
	if healthy.Len() != added || sick.Len() != 0 {
		t.Fatalf("placement: healthy=%d sick=%d, want %d and 0", healthy.Len(), sick.Len(), added)
	}
	if got := r.Degraded(); got != int64(sickCount) {
		t.Fatalf("Degraded=%d, want exactly the %d entries the sick replica lost", got, sickCount)
	}

	// Precision under overwrites: re-batching the same entries lands the
	// healthy replica's as successful overwrites (added=0) — they must not
	// be miscounted as lost just because nothing was "added".
	before := r.Degraded()
	added, err = r.PutBatch(entries)
	if err == nil || added != 0 {
		t.Fatalf("overwrite re-batch: added=%d err=%v, want 0 and the sick replica's error", added, err)
	}
	if got := r.Degraded() - before; got != int64(sickCount) {
		t.Fatalf("overwrite re-batch lost %d, want %d: landed overwrites counted as lost", got, sickCount)
	}
}

// TestTieredOverRouterCountsLossesOnce pins the composed accounting: a
// Tiered near tier over a Router with one down replica absorbs every
// write locally (zero put errors), while Degraded reports exactly the
// entries the down replica never took — counted once, not once per layer,
// and never inflated by the healthy replica's successful overwrites.
func TestTieredOverRouterCountsLossesOnce(t *testing.T) {
	healthy, down := newBatchMapBackend(), newMapBackend()
	down.down = true
	router := store.NewRouter(healthy, down)
	nearDir := t.TempDir()
	near, err := store.OpenNDJSON(nearDir)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(0, store.NewTiered(near, router))
	defer st.Close()

	const n = 30
	wb := store.NewWriteBuffer(st, 0)
	downCount := 0
	for i := 0; i < n; i++ {
		k := store.Key("v1", i)
		if router.Ring().Owner(k) == 1 {
			downCount++
		}
		wb.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	wb.Flush()
	s := st.Stats()
	if s.PutErrors != 0 {
		t.Fatalf("putErrors=%d, want 0: the near tier landed every entry", s.PutErrors)
	}
	if s.Degraded != int64(downCount) {
		t.Fatalf("degraded=%d, want exactly the %d entries the down replica never took", s.Degraded, downCount)
	}
	if near.Len() != n || healthy.Len() != n-downCount {
		t.Fatalf("placement: near=%d healthy=%d, want %d and %d", near.Len(), healthy.Len(), n, n-downCount)
	}
}
