package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ndjsonName is the data file inside a store directory.
const ndjsonName = "results.ndjson"

// record is the wire form of one entry: one JSON object per line, the value
// embedded as raw JSON so the file stays greppable and mergeable with
// standard tools.
type record struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// span locates one record line inside the data file.
type span struct {
	off int64
	len int64
}

// NDJSON is the file Backend: an append-only newline-delimited JSON log
// with an in-memory key→offset index, so only the index lives in RAM and
// values are read on demand (the LRU tier above absorbs re-reads). Appends
// are serialized under a mutex; reads use ReadAt and need no lock on the
// file. One process owns a directory at a time — concurrent *processes*
// should prime separate directories (sharding) and Merge them.
//
// Robustness: a line that does not parse — a torn final append after a
// crash, hand-editing, version skew — is skipped at open and counted as
// corrupt on read; it can only cause a re-execution, never a wrong result.
type NDJSON struct {
	mu   sync.Mutex
	f    *os.File
	idx  map[string]span
	size int64
}

// OpenNDJSON opens (creating if necessary) the NDJSON backend in dir.
func OpenNDJSON(dir string) (*NDJSON, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, ndjsonName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	b := &NDJSON{f: f, idx: make(map[string]span)}
	if err := b.load(); err != nil {
		f.Close()
		return nil, err
	}
	return b, nil
}

// load scans the data file and rebuilds the index. Later records win, so an
// overwrite (or a merge of overlapping shards) resolves to the last append.
// Unparseable lines and a truncated trailing line are skipped.
func (b *NDJSON) load() error {
	r := bufio.NewReaderSize(b.f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A record is only valid once its newline landed; a torn tail is
			// ignored and overwritten by the next append.
			b.size = off
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", b.f.Name(), err)
		}
		n := int64(len(line))
		var rec record
		if jerr := json.Unmarshal(line, &rec); jerr == nil && rec.K != "" {
			b.idx[rec.K] = span{off: off, len: n}
		}
		off += n
	}
}

// Get implements Backend.
func (b *NDJSON) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	sp, ok := b.idx[key]
	b.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, sp.len)
	if _, err := b.f.ReadAt(buf, sp.off); err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	var rec record
	if err := json.Unmarshal(buf, &rec); err != nil || rec.K != key {
		return nil, false, fmt.Errorf("store: corrupt entry for %s", key)
	}
	return rec.V, true, nil
}

// Has implements Backend.
func (b *NDJSON) Has(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.idx[key]
	return ok
}

// Put implements Backend.
func (b *NDJSON) Put(key string, val []byte) error {
	line, err := json.Marshal(record{K: key, V: json.RawMessage(val)})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.f.WriteAt(line, b.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	b.idx[key] = span{off: b.size, len: int64(len(line))}
	b.size += int64(len(line))
	return nil
}

// ForEach implements Backend, visiting entries in unspecified order.
func (b *NDJSON) ForEach(fn func(key string, val []byte) error) error {
	b.mu.Lock()
	keys := make([]string, 0, len(b.idx))
	for k := range b.idx {
		keys = append(keys, k)
	}
	b.mu.Unlock()
	for _, k := range keys {
		v, ok, err := b.Get(k)
		if err != nil || !ok {
			continue // corrupt entries are misses everywhere, merges included
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Len implements Backend.
func (b *NDJSON) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.idx)
}

// Close implements Backend.
func (b *NDJSON) Close() error { return b.f.Close() }
