package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// nowFn is the clock age-based eviction reads; a variable so tests can
// pin it.
var nowFn = time.Now //repro:wallclock record ages drive eviction only, never canonical output

// ndjsonName is the data file inside a store directory.
const ndjsonName = "results.ndjson"

// ndjsonTmpName is the compaction scratch file; a leftover one (a crash
// between writing and renaming) is dead weight and removed at open.
const ndjsonTmpName = ndjsonName + ".tmp"

// record is the wire form of one entry: one JSON object per line, the value
// embedded as raw JSON so the file stays greppable and mergeable with
// standard tools. T is the write time in unix seconds (0 in logs written
// before lifecycles existed — such records never age out).
type record struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
	T int64           `json:"t,omitempty"`
}

// span locates one record line inside the data file, carrying the
// record's write time so age eviction never re-reads the log.
type span struct {
	off int64
	len int64
	t   int64
}

// NDJSON is the file Backend: an append-only newline-delimited JSON log
// with an in-memory key→offset index, so only the index lives in RAM and
// values are read on demand (the LRU tier above absorbs re-reads). Appends
// are serialized under a mutex; reads use ReadAt and need no lock on the
// file. One process owns a directory at a time — concurrent *processes*
// should prime separate directories (sharding) and Merge them, or share a
// remote store.
//
// The log is last-write-wins per key: an overwrite appends a fresh line and
// repoints the index, leaving the old line behind as dead data. Dead lines
// (and dead duplicates found when rebuilding the index at open) are counted
// as superseded, and Compact rewrites the file to shed them.
//
// Robustness: a line that does not parse — a torn final append after a
// crash, hand-editing, version skew — is skipped at open and counted as
// corrupt on read; it can only cause a re-execution, never a wrong result.
type NDJSON struct {
	mu         sync.Mutex
	f          *os.File // after a Compact this fd was born under the scratch name; path stays authoritative
	path       string
	idx        map[string]span
	size       int64
	liveBytes  int64 // bytes of live (indexed) lines; size-liveBytes is reclaimable
	superseded int64 // dead duplicate lines: overwrites + duplicates seen at open
	dead       int64 // unparseable lines skipped at open (reclaimable by Compact)
	deleted    int64 // lines de-indexed by Delete/Evict* since open (reclaimable by Compact)
}

// OpenNDJSON opens (creating if necessary) the NDJSON backend in dir.
func OpenNDJSON(dir string) (*NDJSON, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A stale compaction scratch file means a crash between write and
	// rename; the data file is still authoritative, the scratch is garbage.
	os.Remove(filepath.Join(dir, ndjsonTmpName)) //repro:degrade best-effort cleanup; the next Compact O_TRUNCs it anyway
	path := filepath.Join(dir, ndjsonName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	b := &NDJSON{f: f, path: path, idx: make(map[string]span)}
	if err := b.load(); err != nil {
		f.Close() //repro:degrade open already failed; the load error is the one to surface
		return nil, err
	}
	return b, nil
}

// load scans the data file and rebuilds the index. Later records win, so an
// overwrite (or a merge of overlapping shards) resolves to the last append;
// every earlier duplicate is counted as superseded instead of being
// silently re-indexed. Unparseable lines and a truncated trailing line are
// skipped (and counted as dead).
func (b *NDJSON) load() error {
	r := bufio.NewReaderSize(b.f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A record is only valid once its newline landed; a torn tail is
			// ignored and overwritten by the next append.
			b.size = off
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", b.path, err)
		}
		n := int64(len(line))
		var rec record
		if jerr := json.Unmarshal(line, &rec); jerr == nil && rec.K != "" {
			if old, dup := b.idx[rec.K]; dup {
				b.superseded++
				b.liveBytes -= old.len
			}
			b.idx[rec.K] = span{off: off, len: n, t: rec.T}
			b.liveBytes += n
		} else {
			b.dead++
		}
		off += n
	}
}

// Get implements Backend.
func (b *NDJSON) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	sp, ok := b.idx[key]
	f := b.f // Compact may swap the file; read the one the span indexes
	b.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, sp.len)
	if _, err := f.ReadAt(buf, sp.off); err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	var rec record
	if err := json.Unmarshal(buf, &rec); err != nil || rec.K != key {
		return nil, false, fmt.Errorf("store: corrupt entry for %s", key)
	}
	return rec.V, true, nil
}

// Has implements Backend.
func (b *NDJSON) Has(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.idx[key]
	return ok
}

// Put implements Backend, stamping the record with the write time so age
// eviction has something to age.
func (b *NDJSON) Put(key string, val []byte) error {
	now := nowFn().Unix()
	line, err := json.Marshal(record{K: key, V: json.RawMessage(val), T: now})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.f.WriteAt(line, b.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if old, dup := b.idx[key]; dup {
		b.superseded++ // the old line is dead weight until the next Compact
		b.liveBytes -= old.len
	}
	b.idx[key] = span{off: b.size, len: int64(len(line)), t: now}
	b.liveBytes += int64(len(line))
	b.size += int64(len(line))
	return nil
}

// Delete implements Deleter by de-indexing the key: the line stays in the
// log as dead weight until the next Compact, so a crash mid-drain can at
// worst resurrect an extra copy of a content-addressed value, never lose
// one.
func (b *NDJSON) Delete(key string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sp, ok := b.idx[key]
	if !ok {
		return false, nil
	}
	delete(b.idx, key)
	b.deleted++
	b.liveBytes -= sp.len
	return true, nil
}

// EvictOlderThan de-indexes every record written before cutoff, returning
// the eviction count. Records without a timestamp (logs written before
// lifecycles existed) never age out. Evicted lines are reclaimed by the
// next Compact.
func (b *NDJSON) EvictOlderThan(cutoff time.Time) int {
	c := cutoff.Unix()
	b.mu.Lock()
	defer b.mu.Unlock()
	evicted := 0
	for k, sp := range b.idx {
		if sp.t != 0 && sp.t < c {
			delete(b.idx, k)
			b.deleted++
			b.liveBytes -= sp.len
			evicted++
		}
	}
	return evicted
}

// EvictToSize de-indexes oldest-first records until the live bytes fit
// maxBytes, returning the eviction count. Untimestamped records order
// before timestamped ones (they are oldest by construction), ties by file
// offset. Evicting a result only ever costs its re-execution.
func (b *NDJSON) EvictToSize(maxBytes int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.liveBytes <= maxBytes {
		return 0
	}
	type aged struct {
		key string
		sp  span
	}
	entries := make([]aged, 0, len(b.idx))
	for k, sp := range b.idx {
		entries = append(entries, aged{k, sp})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].sp.t != entries[j].sp.t {
			return entries[i].sp.t < entries[j].sp.t
		}
		return entries[i].sp.off < entries[j].sp.off
	})
	evicted := 0
	for _, e := range entries {
		if b.liveBytes <= maxBytes {
			break
		}
		delete(b.idx, e.key)
		b.deleted++
		b.liveBytes -= e.sp.len
		evicted++
	}
	return evicted
}

// SizeBytes returns the log's total size on disk, dead weight included.
func (b *NDJSON) SizeBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size
}

// DeadBytes returns the reclaimable bytes: the log size minus the live
// lines. The stored lifecycle compacts when this crosses a fraction of
// the file.
func (b *NDJSON) DeadBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size - b.liveBytes
}

// ForEach implements Backend, visiting entries in ascending key order, so
// everything built by iterating a backend — merge logs, drain batches,
// snapshot listings — is a pure function of the live contents, not of Go's
// randomized map order.
func (b *NDJSON) ForEach(fn func(key string, val []byte) error) error {
	b.mu.Lock()
	keys := make([]string, 0, len(b.idx))
	for k := range b.idx {
		keys = append(keys, k)
	}
	b.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		v, ok, err := b.Get(k)
		if err != nil || !ok {
			continue // corrupt entries are misses everywhere, merges included
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Len implements Backend.
func (b *NDJSON) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.idx)
}

// Keys returns the live key set from the in-memory index, sorted — no
// values are read. Tiered.Len uses it to count the exact union of a near
// NDJSON tier and a far tier it cannot enumerate.
func (b *NDJSON) Keys() []string {
	b.mu.Lock()
	keys := make([]string, 0, len(b.idx))
	for k := range b.idx {
		keys = append(keys, k)
	}
	b.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Superseded returns the number of known-dead duplicate lines in the log
// (overwrites since open plus duplicates found while rebuilding the index).
func (b *NDJSON) Superseded() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.superseded
}

// Compact implements Compactor: it rewrites the log keeping only the live
// record per key, in stable (file-offset) order, and atomically renames the
// rewrite into place — a crash at any point leaves either the old complete
// file or the new complete file, never a torn mix (the scratch file a crash
// strands is removed at the next open). Records that fail validation on
// read-back are dropped like the corrupt misses they already were. Safe
// against concurrent Get/Put/Has on the same backend: the swap happens
// under the mutex, and a reader that raced the swap holds the old file
// handle, whose close turns its read into an ordinary counted miss.
func (b *NDJSON) Compact() (kept, dropped int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()

	path := b.path
	tmpPath := filepath.Join(filepath.Dir(path), ndjsonTmpName)
	// O_RDWR: after the rename this very descriptor becomes the backend's
	// data file (a rename never invalidates an open fd), so there is no
	// reopen window in which a failure could leave the backend writing to
	// the unlinked old inode.
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) //repro:degrade no-op after a successful rename; a stranded scratch is removed at next open

	// Stable rewrite order: live records by their current file offset, so
	// compacting is a pure function of the log's live contents.
	type liveEntry struct {
		key string
		sp  span
	}
	live := make([]liveEntry, 0, len(b.idx))
	for k, sp := range b.idx {
		live = append(live, liveEntry{k, sp})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].sp.off < live[j].sp.off })

	w := bufio.NewWriterSize(tmp, 1<<20)
	newIdx := make(map[string]span, len(live))
	var off int64
	for _, e := range live {
		buf := make([]byte, e.sp.len)
		if _, rerr := b.f.ReadAt(buf, e.sp.off); rerr != nil {
			dropped++
			continue
		}
		var rec record
		if jerr := json.Unmarshal(buf, &rec); jerr != nil || rec.K != e.key {
			dropped++
			continue
		}
		if _, werr := w.Write(buf); werr != nil {
			tmp.Close() //repro:degrade compact already failed; the write error is the one to surface
			return 0, 0, fmt.Errorf("store: compact: %w", werr)
		}
		newIdx[e.key] = span{off: off, len: e.sp.len, t: e.sp.t}
		off += e.sp.len
		kept++
	}
	if err := w.Flush(); err != nil {
		tmp.Close() //repro:degrade compact already failed; the flush error is the one to surface
		return 0, 0, fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //repro:degrade compact already failed; the sync error is the one to surface
		return 0, 0, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		tmp.Close() //repro:degrade compact already failed; the rename error is the one to surface
		return 0, 0, fmt.Errorf("store: compact: %w", err)
	}
	dropped += int(b.superseded) + int(b.dead) + int(b.deleted)
	b.f.Close() //repro:degrade the old unlinked fd; its data was fully rewritten and renamed over
	b.f = tmp   // now named `path`; the fd survived the rename
	b.idx = newIdx
	b.size = off
	b.liveBytes = off
	b.superseded = 0
	b.dead = 0
	b.deleted = 0
	return kept, dropped, nil
}

// Close implements Backend.
func (b *NDJSON) Close() error { return b.f.Close() }
