package store_test

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

// TestRingElasticity pins the property the whole migration design rests
// on: growing a ring by one member only moves keys TO the new member —
// every key the new member does not own keeps its old owner — and each
// moved key's runner-up under the new ring is exactly its old owner, so
// failover reads cover the mid-migration window.
func TestRingElasticity(t *testing.T) {
	two, err := store.NewRing(1, store.Member{Name: "a"}, store.Member{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	three, err := store.NewRing(2, store.Member{Name: "a"}, store.Member{Name: "b"}, store.Member{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	moved := 0
	for i := 0; i < n; i++ {
		k := store.Key("v1", i)
		oldOwner := two.Members[two.Owner(k)].Name
		rank := three.Rank(k)
		newOwner := three.Members[rank[0]].Name
		if newOwner == oldOwner {
			continue
		}
		moved++
		if newOwner != "c" {
			t.Fatalf("key %d moved from %s to %s: growth must only move keys to the new member", i, oldOwner, newOwner)
		}
		if runnerUp := three.Members[rank[1]].Name; runnerUp != oldOwner {
			t.Fatalf("key %d moved to c with runner-up %s, want its old owner %s", i, runnerUp, oldOwner)
		}
	}
	// A third member should take roughly a third of the key space; accept a
	// generous band so the test pins the property, not the hash.
	if moved < n/5 || moved > n/2 {
		t.Fatalf("growing 2→3 moved %d of %d keys, want roughly a third", moved, n)
	}
}

// TestRingWeights pins that weight scales ownership share roughly
// linearly: a weight-2 member owns about twice a weight-1 member's keys.
func TestRingWeights(t *testing.T) {
	ring, err := store.NewRing(1, store.Member{Name: "light", Weight: 1}, store.Member{Name: "heavy", Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	heavy := 0
	for i := 0; i < n; i++ {
		if ring.Members[ring.Owner(store.Key("v1", i))].Name == "heavy" {
			heavy++
		}
	}
	// Expected 2/3 ≈ 2000; accept a wide band.
	if heavy < n/2 || heavy > n*4/5 {
		t.Fatalf("weight-2 member owns %d of %d keys, want about two thirds", heavy, n)
	}
}

// TestRingOwnerIgnoresURL pins that the hashing identity is the member
// name: a replica can move hosts (URL change) without moving a single key.
func TestRingOwnerIgnoresURL(t *testing.T) {
	before, _ := store.NewRing(1, store.Member{Name: "a", URL: "http://h1:9200"}, store.Member{Name: "b", URL: "http://h2:9200"})
	after, _ := store.NewRing(2, store.Member{Name: "a", URL: "http://h3:9200"}, store.Member{Name: "b", URL: "http://h4:9200"})
	for i := 0; i < 200; i++ {
		k := store.Key("v1", i)
		if before.Owner(k) != after.Owner(k) {
			t.Fatal("changing a member URL moved keys; placement must hash the name only")
		}
	}
}

// TestRingValidation pins the loud-failure contract for malformed rings.
func TestRingValidation(t *testing.T) {
	if _, err := store.NewRing(1); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := store.NewRing(1, store.Member{Name: ""}); err == nil {
		t.Fatal("unnamed member accepted")
	}
	if _, err := store.NewRing(1, store.Member{Name: "a"}, store.Member{Name: "a"}); err == nil {
		t.Fatal("duplicate member name accepted")
	}
	r, err := store.NewRing(1, store.Member{Name: "a", Weight: -3})
	if err != nil || r.Members[0].Weight != 1 {
		t.Fatalf("non-positive weight must normalize to 1: %+v err=%v", r, err)
	}
	if r.Index("a") != 0 || r.Index("ghost") != -1 {
		t.Fatal("Index must find members by name and report absentees as -1")
	}
}

// TestParseRingSpec pins the CLI ring notation.
func TestParseRingSpec(t *testing.T) {
	ring, err := store.ParseRingSpec(3, "a=http://h1:9200, b=http://h2:9200*2")
	if err != nil {
		t.Fatal(err)
	}
	if ring.Epoch != 3 || len(ring.Members) != 2 {
		t.Fatalf("parsed %s, want epoch 3 with 2 members", ring)
	}
	if m := ring.Members[1]; m.Name != "b" || m.URL != "http://h2:9200" || m.Weight != 2 {
		t.Fatalf("member b parsed as %+v", m)
	}
	for _, bad := range []string{"", ",", "nourl", "=http://h:1", "a=", "a=u*zero", "a=u*-1", "a=u,a=v"} {
		if _, err := store.ParseRingSpec(1, bad); err == nil {
			t.Fatalf("ring spec %q accepted", bad)
		}
	}
}

// TestRouterFailoverReadsRunnerUp pins the rendezvous failover read: a key
// present only on its runner-up replica — exactly the state a drain in
// flight leaves a moved key in, or a down owner forces — is still readable
// through the router, point and batched, while writes keep going to the
// owner alone.
func TestRouterFailoverReadsRunnerUp(t *testing.T) {
	replicas := []*mapBackend{newMapBackend(), newMapBackend(), newMapBackend()}
	r := store.NewRouter(replicas[0], replicas[1], replicas[2])
	defer r.Close()

	const n = 60
	var keys []string
	for i := 0; i < n; i++ {
		k := store.Key("v1", i)
		keys = append(keys, k)
		// Plant the value on the runner-up only: the "old owner still holds
		// it, new owner not yet drained to" state.
		rank := r.Ring().Rank(k)
		replicas[rank[1]].m[k] = []byte(fmt.Sprintf(`{"i":%d}`, i))
	}
	for i, k := range keys {
		if v, ok, err := r.Get(k); !ok || err != nil || string(v) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("key %d on runner-up: %q ok=%v err=%v", i, v, ok, err)
		}
		if !r.Has(k) {
			t.Fatalf("key %d on runner-up: Has=false", i)
		}
	}
	got, err := r.GetBatch(keys)
	if err != nil || len(got) != n {
		t.Fatalf("GetBatch found %d of %d err=%v", len(got), n, err)
	}
	present, err := r.HasBatch(keys)
	if err != nil || len(present) != n {
		t.Fatalf("HasBatch found %d of %d err=%v", len(present), n, err)
	}
	// Keys beyond rank 2 are NOT probed: plant one on the last rank of a
	// 3-ring and it must read as a miss (bounded failover, not a broadcast).
	k := store.Key("v1", "deep")
	replicas[r.Ring().Rank(k)[2]].m[k] = []byte(`{"deep":true}`)
	if _, ok, _ := r.Get(k); ok {
		t.Fatal("rank-3 replica served a read; failover must stop at the runner-up")
	}
}

// TestRouterFailoverDownOwner pins that a down owner's keys stay readable
// when the runner-up holds them (a drained replica mid-decommission), and
// the failure is still counted against the owner.
func TestRouterFailoverDownOwner(t *testing.T) {
	replicas := []*mapBackend{newMapBackend(), newMapBackend(), newMapBackend()}
	r := store.NewRouter(replicas[0], replicas[1], replicas[2])
	defer r.Close()

	k := store.Key("v1", "x")
	rank := r.Ring().Rank(k)
	val := []byte(`{"x":1}`)
	replicas[rank[0]].m[k] = val
	replicas[rank[1]].m[k] = val
	replicas[rank[0]].down = true

	if v, ok, err := r.Get(k); !ok || err != nil || string(v) != string(val) {
		t.Fatalf("down owner with warm runner-up: %q ok=%v err=%v", v, ok, err)
	}
	if !r.Has(k) {
		t.Fatal("down owner with warm runner-up: Has=false")
	}
	if fails := r.Failures(); fails[rank[0]] == 0 {
		t.Fatalf("down owner's failure not counted: %v", fails)
	}
}
