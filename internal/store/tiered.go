package store

import "errors"

// Tiered composes two Backends into one: a fast near tier (typically the
// local NDJSON directory) in front of an authoritative far tier (typically
// the remote fleet store). Reads try the near tier first and write far-tier
// hits back into it, so a process pays one remote round trip per key ever;
// writes land in both tiers, so local results are durable even when the
// fleet store is unreachable and shared as soon as it is not. This is how
// `-cache DIR -store URL` compose in the CLIs.
//
// Like every Backend, each tier is last-write-wins per content-addressed
// key, so the tiers can only disagree transiently about presence, never
// about values.
type Tiered struct {
	near, far Backend
}

// NewTiered layers near in front of far. Both must be non-nil.
func NewTiered(near, far Backend) *Tiered {
	return &Tiered{near: near, far: far}
}

// Get implements Backend: near tier first, then far with write-back.
func (t *Tiered) Get(key string) ([]byte, bool, error) {
	if v, ok, _ := t.near.Get(key); ok {
		return v, true, nil
	}
	v, ok, err := t.far.Get(key)
	if ok {
		t.near.Put(key, v) // best-effort write-back; a failure just costs a future round trip
		return v, true, nil
	}
	return nil, false, err
}

// Put implements Backend, writing to both tiers. Either tier may fail
// independently; the value is durable if at least one write landed, and a
// combined error is returned (and counted once by the Store) only when
// both failed.
func (t *Tiered) Put(key string, val []byte) error {
	nerr := t.near.Put(key, val)
	ferr := t.far.Put(key, val)
	if nerr != nil && ferr != nil {
		return errors.Join(nerr, ferr)
	}
	return nil
}

// Has implements Backend.
func (t *Tiered) Has(key string) bool {
	return t.near.Has(key) || t.far.Has(key)
}

// ForEach implements Backend over the union of the tiers: every near entry,
// then every far entry not shadowed by the near tier. A far tier that
// cannot enumerate (the remote client) surfaces its error.
func (t *Tiered) ForEach(fn func(key string, val []byte) error) error {
	if err := t.near.ForEach(fn); err != nil {
		return err
	}
	return t.far.ForEach(func(key string, val []byte) error {
		if t.near.Has(key) {
			return nil
		}
		return fn(key, val)
	})
}

// Len implements Backend. The far tier is authoritative when reachable;
// the near tier bounds the count from below when it is not.
func (t *Tiered) Len() int {
	n, f := t.near.Len(), t.far.Len()
	if f > n {
		return f
	}
	return n
}

// GetBatch implements BatchBackend: near hits are served locally, the rest
// travel in one far-tier batch (when the far tier can batch) and are
// written back into the near tier.
func (t *Tiered) GetBatch(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	var missing []string
	for _, k := range keys {
		if v, ok, _ := t.near.Get(k); ok {
			out[k] = v
		} else {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	far, err := getBatch(t.far, missing)
	if err != nil {
		if len(out) > 0 {
			return out, nil // near hits still count; the rest degrade per-key
		}
		return nil, err
	}
	for k, v := range far {
		t.near.Put(k, v)
		out[k] = v
	}
	return out, nil
}

// PutBatch implements BatchBackend: the near tier takes per-key writes (it
// is local, and keys it already holds are skipped — re-merging a shard
// must not grow its append-only log), the far tier one batch when it can
// (the far side dedups identical rewrites itself).
func (t *Tiered) PutBatch(entries []Entry) (int, error) {
	for _, e := range entries {
		if !t.near.Has(e.Key) {
			t.near.Put(e.Key, e.Val)
		}
	}
	return putBatch(t.far, entries)
}

// HasBatch implements HasBatcher: near presence is answered locally, the
// rest in one far-tier probe when the far tier can batch.
func (t *Tiered) HasBatch(keys []string) (map[string]bool, error) {
	present := make(map[string]bool, len(keys))
	var missing []string
	for _, k := range keys {
		if t.near.Has(k) {
			present[k] = true
		} else {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return present, nil
	}
	if hb, ok := t.far.(HasBatcher); ok {
		far, err := hb.HasBatch(missing)
		if err != nil {
			return present, nil // near answers stand; absent-by-default is safe
		}
		for k, ok := range far {
			if ok {
				present[k] = true
			}
		}
		return present, nil
	}
	for _, k := range missing {
		if t.far.Has(k) {
			present[k] = true
		}
	}
	return present, nil
}

// Superseded sums the tiers' dead-duplicate counts.
func (t *Tiered) Superseded() int64 {
	var n int64
	if sp, ok := t.near.(superseder); ok {
		n += sp.Superseded()
	}
	if sp, ok := t.far.(superseder); ok {
		n += sp.Superseded()
	}
	return n
}

// Compact implements Compactor over whichever tiers support it.
func (t *Tiered) Compact() (kept, dropped int, err error) {
	for _, tier := range []Backend{t.near, t.far} {
		if c, ok := tier.(Compactor); ok {
			k, d, cerr := c.Compact()
			kept += k
			dropped += d
			if cerr != nil {
				return kept, dropped, cerr
			}
		}
	}
	return kept, dropped, nil
}

// Close implements Backend, closing both tiers.
func (t *Tiered) Close() error {
	return errors.Join(t.near.Close(), t.far.Close())
}

// getBatch fetches keys through the backend's batch path when it has one
// and per-key Gets otherwise.
func getBatch(be Backend, keys []string) (map[string][]byte, error) {
	if bb, ok := be.(BatchBackend); ok {
		return bb.GetBatch(keys)
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok, _ := be.Get(k); ok {
			out[k] = v
		}
	}
	return out, nil
}

// putBatch stores entries through the backend's batch path when it has one
// and per-key Puts otherwise, reporting how many keys were new.
func putBatch(be Backend, entries []Entry) (int, error) {
	if bb, ok := be.(BatchBackend); ok {
		return bb.PutBatch(entries)
	}
	added := 0
	for _, e := range entries {
		if !be.Has(e.Key) {
			added++
		}
		if err := be.Put(e.Key, e.Val); err != nil {
			return added, err
		}
	}
	return added, nil
}
