package store

import (
	"errors"
	"sync/atomic"
)

// Tiered composes two Backends into one: a fast near tier (typically the
// local NDJSON directory) in front of an authoritative far tier (typically
// the remote fleet store). Reads try the near tier first and write far-tier
// hits back into it, so a process pays one remote round trip per key ever;
// writes land in both tiers, so local results are durable even when the
// fleet store is unreachable and shared as soon as it is not. This is how
// `-cache DIR -store URL` compose in the CLIs.
//
// Like every Backend, each tier is last-write-wins per content-addressed
// key, so the tiers can only disagree transiently about presence, never
// about values.
type Tiered struct {
	near, far Backend
	degraded  atomic.Int64 // far-tier write failures the near tier absorbed
}

// NewTiered layers near in front of far. Both must be non-nil.
func NewTiered(near, far Backend) *Tiered {
	return &Tiered{near: near, far: far}
}

// Get implements Backend: near tier first, then far with write-back.
func (t *Tiered) Get(key string) ([]byte, bool, error) {
	if v, ok, _ := t.near.Get(key); ok { //repro:degrade a near-tier read failure degrades to a far-tier lookup
		return v, true, nil
	}
	v, ok, err := t.far.Get(key)
	if ok {
		t.near.Put(key, v) //repro:degrade best-effort write-back; a failure just costs a future round trip
		return v, true, nil
	}
	return nil, false, err
}

// Put implements Backend, writing to both tiers. Either tier may fail
// independently; the value is durable if at least one write landed, and a
// combined error is returned (and counted once by the Store) only when
// both failed. A far-tier failure the near tier absorbed is not silent:
// it is counted in Degraded (surfaced as Stats.Degraded), because a fleet
// prime pass whose every far write fails would otherwise "succeed" while
// sharing nothing.
func (t *Tiered) Put(key string, val []byte) error {
	nerr := t.near.Put(key, val)
	ferr := t.far.Put(key, val)
	if ferr != nil {
		t.countFarLoss(1)
	}
	if nerr != nil && ferr != nil {
		return errors.Join(nerr, ferr)
	}
	return nil
}

// countFarLoss records n far-tier write losses — unless the far tier
// counts its own (a Router), in which case Degraded's nested sum already
// carries them and counting here would double.
func (t *Tiered) countFarLoss(n int) {
	if _, selfCounting := t.far.(degrader); !selfCounting {
		t.degraded.Add(int64(n))
	}
}

// Has implements Backend.
func (t *Tiered) Has(key string) bool {
	return t.near.Has(key) || t.far.Has(key)
}

// ForEach implements Backend over the union of the tiers: every near entry,
// then every far entry not shadowed by the near tier. A far tier that
// cannot enumerate (the remote client) surfaces its error.
func (t *Tiered) ForEach(fn func(key string, val []byte) error) error {
	if err := t.near.ForEach(fn); err != nil {
		return err
	}
	return t.far.ForEach(func(key string, val []byte) error {
		if t.near.Has(key) {
			return nil
		}
		return fn(key, val)
	})
}

// Len implements Backend, counting the union of the tiers: the far count
// plus every near key the far tier does not hold. The tiers can be
// disjoint — a near tier primed while the fleet store was down, a far tier
// shared with other workers — so neither count alone (nor their max) is
// the union. Near keys are enumerated from the local index (cheap, no
// values move) and probed against the far tier in batches; when the near
// tier cannot list its keys, or the far probe fails, max(near, far) bounds
// the union from below as before.
func (t *Tiered) Len() int {
	n, f := t.near.Len(), t.far.Len()
	lower := n
	if f > lower {
		lower = f
	}
	kl, ok := t.near.(keyLister)
	if !ok {
		return lower
	}
	keys := kl.Keys()
	onlyNear := 0
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > prefetchChunk {
			chunk = chunk[:prefetchChunk]
		}
		keys = keys[len(chunk):]
		present, err := hasBatch(t.far, chunk)
		if err != nil {
			return lower // far probe failed; fall back to the old bound
		}
		for _, k := range chunk {
			if !present[k] {
				onlyNear++
			}
		}
	}
	return f + onlyNear
}

// GetBatch implements BatchBackend: near hits are served locally, the rest
// travel in one far-tier batch (when the far tier can batch) and are
// written back into the near tier.
func (t *Tiered) GetBatch(keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	var missing []string
	for _, k := range keys {
		if v, ok, _ := t.near.Get(k); ok { //repro:degrade a near-tier read failure degrades to the far batch below
			out[k] = v
		} else {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	far, err := getBatch(t.far, missing)
	if err != nil {
		if len(out) > 0 {
			return out, nil // near hits still count; the rest degrade per-key
		}
		return nil, err
	}
	// Walk the request order, not the reply map: write-backs land in the
	// near tier's log in a deterministic order.
	for _, k := range missing {
		if v, ok := far[k]; ok {
			t.near.Put(k, v) //repro:degrade best-effort write-back; a failure just costs a future round trip
			out[k] = v
		}
	}
	return out, nil
}

// PutBatch implements BatchBackend: the near tier takes per-key writes (it
// is local, and keys it already holds are skipped — re-merging a shard
// must not grow its append-only log), the far tier one batch when it can
// (the far side dedups identical rewrites itself). Like Put, far-tier
// write losses are counted in Degraded — the near writes landed, the
// fleet saw nothing — and the error is still returned so batch callers
// can abort or count.
func (t *Tiered) PutBatch(entries []Entry) (int, error) {
	added, _, err := t.putBatchPlaced(entries)
	return added, err
}

// putBatchPlaced implements placer. lost counts entries guaranteed
// durable in neither tier: with near and far failure sets unknowable per
// entry, only max(0, nearLost+farLost-len) entries must have failed both.
func (t *Tiered) putBatchPlaced(entries []Entry) (added, lost int, err error) {
	nearLost := 0
	for _, e := range entries {
		if t.near.Has(e.Key) {
			continue
		}
		if t.near.Put(e.Key, e.Val) != nil {
			nearLost++
		}
	}
	added, farLost, err := putBatch(t.far, entries)
	if farLost > 0 {
		t.countFarLoss(farLost)
	}
	if lost = nearLost + farLost - len(entries); lost < 0 {
		lost = 0
	}
	return added, lost, err
}

// HasBatch implements HasBatcher: near presence is answered locally, the
// rest in one far-tier probe when the far tier can batch.
func (t *Tiered) HasBatch(keys []string) (map[string]bool, error) {
	present := make(map[string]bool, len(keys))
	var missing []string
	for _, k := range keys {
		if t.near.Has(k) {
			present[k] = true
		} else {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return present, nil
	}
	far, err := hasBatch(t.far, missing)
	if err != nil {
		return present, nil // near answers stand; absent-by-default is safe
	}
	for k, ok := range far {
		if ok {
			present[k] = true
		}
	}
	return present, nil
}

// GroupOf implements grouper by delegating to the far tier: a merge
// through `-cache DIR -store FLEET` groups entries by their routed owner,
// and the near tier takes its per-key writes regardless of grouping.
func (t *Tiered) GroupOf(key string) int {
	if g, ok := t.far.(grouper); ok {
		return g.GroupOf(key)
	}
	return 0
}

// Groups implements grouper (see GroupOf).
func (t *Tiered) Groups() int {
	if g, ok := t.far.(grouper); ok {
		return g.Groups()
	}
	return 1
}

// Degraded returns the far-tier write failures the near tier absorbed
// (plus any nested composite's own count): writes that looked successful
// to the caller but never reached the fleet store.
func (t *Tiered) Degraded() int64 {
	n := t.degraded.Load()
	for _, tier := range []Backend{t.near, t.far} {
		if d, ok := tier.(degrader); ok {
			n += d.Degraded()
		}
	}
	return n
}

// Superseded sums the tiers' dead-duplicate counts.
func (t *Tiered) Superseded() int64 {
	var n int64
	if sp, ok := t.near.(superseder); ok {
		n += sp.Superseded()
	}
	if sp, ok := t.far.(superseder); ok {
		n += sp.Superseded()
	}
	return n
}

// Compact implements Compactor over whichever tiers support it.
func (t *Tiered) Compact() (kept, dropped int, err error) {
	for _, tier := range []Backend{t.near, t.far} {
		if c, ok := tier.(Compactor); ok {
			k, d, cerr := c.Compact()
			kept += k
			dropped += d
			if cerr != nil {
				return kept, dropped, cerr
			}
		}
	}
	return kept, dropped, nil
}

// Close implements Backend, closing both tiers.
func (t *Tiered) Close() error {
	return errors.Join(t.near.Close(), t.far.Close())
}

// getBatch fetches keys through the backend's batch path when it has one
// and per-key Gets otherwise.
func getBatch(be Backend, keys []string) (map[string][]byte, error) {
	if bb, ok := be.(BatchBackend); ok {
		return bb.GetBatch(keys)
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok, _ := be.Get(k); ok { //repro:degrade the per-key fallback reads a failed Get as a miss, like Store.Get
			out[k] = v
		}
	}
	return out, nil
}

// putBatch stores entries through the backend's batch path when it has one
// and per-key Puts otherwise, reporting how many keys were new (added) and
// how many entries are known to have failed to land on this backend
// (lost). The two are distinct: a successful overwrite is neither added
// nor lost — conflating them would count phantom adds (a key counted new
// before the Put that then failed) or phantom losses (a landed overwrite
// counted lost because added came back 0). Composite backends report
// placement exactly (placer); a plain batch backend's failure is
// all-or-nothing; the per-key fallback counts everything after the first
// failure as lost.
func putBatch(be Backend, entries []Entry) (added, lost int, err error) {
	if pl, ok := be.(placer); ok {
		return pl.putBatchPlaced(entries)
	}
	if bb, ok := be.(BatchBackend); ok {
		n, err := bb.PutBatch(entries)
		if err != nil {
			return n, len(entries), err // one request carried the whole batch
		}
		return n, 0, nil
	}
	landed := 0
	for _, e := range entries {
		isNew := !be.Has(e.Key)
		if err := be.Put(e.Key, e.Val); err != nil {
			return added, len(entries) - landed, err
		}
		landed++
		if isNew {
			added++
		}
	}
	return added, 0, nil
}
