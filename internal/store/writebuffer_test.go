package store_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestWriteBufferBatchesAndFlushes pins the buffered write path: values
// are readable in-process immediately, nothing reaches the backend until
// the flush barrier, and the flush is one PutBatch — not one write per
// key.
func TestWriteBufferBatchesAndFlushes(t *testing.T) {
	be := newBatchMapBackend()
	st := store.New(0, be)
	defer st.Close()
	wb := store.NewWriteBuffer(st, 0)

	keys := make([]string, 5)
	for i := range keys {
		keys[i] = store.Key("v1", i)
		wb.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	for i, k := range keys {
		if v, ok := st.Get(k); !ok || string(v) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("buffered key %d unreadable in-process: %q ok=%v", i, v, ok)
		}
	}
	if be.Len() != 0 {
		t.Fatalf("backend saw %d writes before the flush barrier", be.Len())
	}
	wb.Flush()
	if be.Len() != len(keys) {
		t.Fatalf("backend holds %d entries after flush, want %d", be.Len(), len(keys))
	}
	if len(be.putBatches) != 1 || be.putBatches[0] != len(keys) {
		t.Fatalf("flush issued batches %v, want one batch of %d", be.putBatches, len(keys))
	}
	if s := st.Stats(); s.Puts != int64(len(keys)) || s.PutErrors != 0 {
		t.Fatalf("stats %+v, want puts=%d putErrors=0", s, len(keys))
	}
	// An empty flush (and Close) is a no-op, not an empty request.
	wb.Flush()
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	if len(be.putBatches) != 1 {
		t.Fatalf("empty flushes issued batches: %v", be.putBatches)
	}
}

// TestWriteBufferAutoFlushAtCapacity pins the size bound: the buffer
// cannot grow past its capacity, it flushes a full chunk and keeps going.
func TestWriteBufferAutoFlushAtCapacity(t *testing.T) {
	be := newBatchMapBackend()
	st := store.New(0, be)
	defer st.Close()
	wb := store.NewWriteBuffer(st, 2)

	for i := 0; i < 5; i++ {
		wb.Put(store.Key("v1", i), []byte(`{"v":1}`))
	}
	wb.Flush()
	if got := fmt.Sprint(be.putBatches); got != "[2 2 1]" {
		t.Fatalf("batch sizes %v, want [2 2 1] (two full chunks, one tail)", be.putBatches)
	}
	if be.Len() != 5 {
		t.Fatalf("backend holds %d entries, want 5", be.Len())
	}
}

// TestWriteBufferFailedFlushDegrades pins the failure discipline: a failed
// flush counts its lost writes in PutErrors and the values stay served
// from the LRU tier — memory-only degradation, exactly like a failed
// synchronous Put.
func TestWriteBufferFailedFlushDegrades(t *testing.T) {
	be := newMapBackend()
	be.failPuts = true
	st := store.New(0, be)
	defer st.Close()
	wb := store.NewWriteBuffer(st, 0)

	keys := make([]string, 3)
	for i := range keys {
		keys[i] = store.Key("v1", i)
		wb.Put(keys[i], []byte(`{"v":1}`))
	}
	wb.Flush()
	s := st.Stats()
	if s.PutErrors != int64(len(keys)) {
		t.Fatalf("putErrors=%d, want %d (every buffered write lost)", s.PutErrors, len(keys))
	}
	if !strings.Contains(s.String(), "putErrors=3") {
		t.Fatalf("stats line must surface the loss: %s", s)
	}
	for i, k := range keys {
		if _, ok := st.Get(k); !ok {
			t.Fatalf("key %d lost from the LRU tier after failed flush", i)
		}
	}
	if be.Len() != 0 {
		t.Fatalf("failing backend stored %d entries", be.Len())
	}
}

// TestWriteBufferMemoryOnlyStore pins that a backend-less store needs no
// flush: puts land in the LRU and the buffer stays empty.
func TestWriteBufferMemoryOnlyStore(t *testing.T) {
	st := store.NewMemory(8)
	defer st.Close()
	wb := store.NewWriteBuffer(st, 0)
	k := store.Key("v1", "mem")
	wb.Put(k, []byte(`{"v":1}`))
	wb.Flush()
	if v, ok := st.Get(k); !ok || string(v) != `{"v":1}` {
		t.Fatalf("memory-only buffered put unreadable: %q ok=%v", v, ok)
	}
	// Nil-store discipline mirrors the Store's own.
	var none *store.WriteBuffer
	none.Put(k, nil)
	none.Flush()
	store.NewWriteBuffer(nil, 0).Put(k, []byte(`{}`))
}
