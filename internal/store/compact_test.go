package store_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
)

// dataFile is the NDJSON log inside a store directory.
func dataFile(dir string) string { return filepath.Join(dir, "results.ndjson") }

// TestSupersededCountedAtPutOpenAndMerge pins the duplicate-line
// accounting the log used to do silently: overwrites, duplicates found
// while rebuilding the index at open, and merge sources already present in
// the destination are all counted as superseded, and last-write-wins picks
// the final value everywhere.
func TestSupersededCountedAtPutOpenAndMerge(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := store.Key("v1", "unit")
	store.PutJSON(st, k, 1)
	store.PutJSON(st, k, 2)
	store.PutJSON(st, k, 3)
	if got := st.Stats().Superseded; got != 2 {
		t.Fatalf("overwrites: superseded=%d, want 2", got)
	}
	if v, ok := store.GetJSON[int](st, k); !ok || v != 3 {
		t.Fatalf("last write must win: %d ok=%v", v, ok)
	}
	st.Close()

	// Reopen: the two dead lines are rediscovered while indexing.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Superseded; got != 2 {
		t.Fatalf("open: superseded=%d, want 2", got)
	}
	if v, ok := store.GetJSON[int](st2, k); !ok || v != 3 {
		t.Fatalf("open picked the wrong duplicate: %d ok=%v", v, ok)
	}

	// Merge of an overlapping shard: the shared key is skipped and counted.
	other := t.TempDir()
	src, err := store.Open(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	store.PutJSON(src, k, 3)
	store.PutJSON(src, store.Key("v1", "fresh"), 4)
	src.Close()
	added, err := st2.Merge(other)
	if err != nil || added != 1 {
		t.Fatalf("merge added=%d err=%v, want 1", added, err)
	}
	if got := st2.Stats().Superseded; got != 3 {
		t.Fatalf("merge: superseded=%d, want 3 (2 dead lines + 1 skipped duplicate)", got)
	}
}

// TestCompactShedsDeadRecords is the core Compact contract: the rewritten
// log holds exactly the live record per key, the reclaimed bytes are gone,
// and the store keeps serving (including across a reopen).
func TestCompactShedsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10
	for round := 0; round < 4; round++ {
		for i := 0; i < keys; i++ {
			store.PutJSON(st, store.Key("v1", i), i*100+round)
		}
	}
	grown, err := os.Stat(dataFile(dir))
	if err != nil {
		t.Fatal(err)
	}

	kept, dropped, err := st.Compact()
	if err != nil || kept != keys || dropped != 3*keys {
		t.Fatalf("Compact = %d, %d, %v; want kept=%d dropped=%d", kept, dropped, err, keys, 3*keys)
	}
	compacted, err := os.Stat(dataFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("log did not shrink: %d → %d bytes", grown.Size(), compacted.Size())
	}
	if got := st.Stats().Superseded; got != 0 {
		t.Fatalf("superseded after compact = %d, want 0", got)
	}
	// The live store keeps serving the latest values through the new file.
	for i := 0; i < keys; i++ {
		if v, ok := store.GetJSON[int](st, store.Key("v1", i)); !ok || v != i*100+3 {
			t.Fatalf("key %d after compact: %d ok=%v", i, v, ok)
		}
	}
	// A second compact is a no-op.
	kept, dropped, err = st.Compact()
	if err != nil || kept != keys || dropped != 0 {
		t.Fatalf("idempotent Compact = %d, %d, %v", kept, dropped, err)
	}
	st.Close()

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != keys || st2.Stats().Superseded != 0 {
		t.Fatalf("reopen after compact: len=%d superseded=%d", st2.Len(), st2.Stats().Superseded)
	}
	for i := 0; i < keys; i++ {
		if v, ok := store.GetJSON[int](st2, store.Key("v1", i)); !ok || v != i*100+3 {
			t.Fatalf("key %d after reopen: %d ok=%v", i, v, ok)
		}
	}
}

// TestCompactCrashSafety simulates the two crash windows of the
// rename-into-place protocol: a stranded scratch file from a crash before
// the rename must be ignored and cleaned up at open, and the data file is
// never in a torn state — it is either the old complete log or the new
// one.
func TestCompactCrashSafety(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := store.Key("v1", "unit")
	store.PutJSON(st, k, 1)
	store.PutJSON(st, k, 2)
	st.Close()
	before, err := os.ReadFile(dataFile(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Crash window 1: scratch written (even garbage), rename never
	// happened. The log is untouched; open discards the scratch.
	tmp := dataFile(dir) + ".tmp"
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale compaction scratch not cleaned up at open")
	}
	after, err := os.ReadFile(dataFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("a crashed compaction modified the data file before its rename")
	}
	if v, ok := store.GetJSON[int](st2, k); !ok || v != 2 {
		t.Fatalf("value after crashed compaction: %d ok=%v", v, ok)
	}

	// Crash window 2 boundary: a completed Compact leaves no scratch and a
	// fully valid log.
	if _, _, err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("compaction left its scratch file behind")
	}
	st3, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if v, ok := store.GetJSON[int](st3, k); !ok || v != 2 {
		t.Fatalf("value after compaction+reopen: %d ok=%v", v, ok)
	}
}

// TestCompactDropsCorruptLines: unparseable lines ride along in the log as
// dead weight; compaction sheds them too.
func TestCompactDropsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	store.PutJSON(st, store.Key("v1", "good"), 1)
	st.Close()
	f, err := os.OpenFile(dataFile(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "this is not a record")
	f.Close()

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kept, dropped, err := st2.Compact()
	if err != nil || kept != 1 || dropped != 1 {
		t.Fatalf("Compact = %d, %d, %v; want 1 kept, 1 corrupt line dropped", kept, dropped, err)
	}
	data, err := os.ReadFile(dataFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("not a record")) {
		t.Fatal("corrupt line survived compaction")
	}
}

// TestCompactUnderConcurrentTraffic runs Get/Put/Has traffic while the log
// is compacted repeatedly; run under -race in CI. A reader that races the
// file swap may see a counted miss (its handle closed), but values are
// never wrong and counters never lie: hits+misses still equals the number
// of Gets.
func TestCompactUnderConcurrentTraffic(t *testing.T) {
	st, err := store.Open(t.TempDir(), 2) // tiny LRU keeps traffic on the backend
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const (
		workers = 4
		ops     = 150
		keys    = 11
	)
	var wg sync.WaitGroup
	var gets, puts int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			myGets, myPuts := int64(0), int64(0)
			for i := 0; i < ops; i++ {
				k := store.Key("v1", (w*ops+i)%keys)
				v, ok := store.GetJSON[int](st, k)
				myGets++
				if ok && v != (w*ops+i)%keys {
					t.Errorf("torn read: key %d gave %d", (w*ops+i)%keys, v)
					return
				}
				if !ok {
					store.PutJSON(st, k, (w*ops+i)%keys)
					myPuts++
				}
			}
			mu.Lock()
			gets += myGets
			puts += myPuts
			mu.Unlock()
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, _, err := st.Compact(); err != nil {
				t.Errorf("compact under traffic: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	s := st.Stats()
	if s.Hits+s.Misses != gets {
		t.Fatalf("counters drifted: hits=%d + misses=%d != gets=%d", s.Hits, s.Misses, gets)
	}
	if s.Puts != puts {
		t.Fatalf("puts=%d, want %d", s.Puts, puts)
	}
	for i := 0; i < keys; i++ {
		if v, ok := store.GetJSON[int](st, store.Key("v1", i)); !ok || v != i {
			t.Fatalf("key %d after the dust settled: %d ok=%v", i, v, ok)
		}
	}
}
