package store_test

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

// BenchmarkStoreGetPut is the local store's hot-path baseline: one Put and
// one Get per iteration through the full LRU+NDJSON stack, over a key
// space larger than the LRU tier so both tiers stay in play. Tracked in
// BENCH_store.json via scripts/bench_store.sh.
func BenchmarkStoreGetPut(b *testing.B) {
	st, err := store.Open(b.TempDir(), 256)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const keyspace = 1024
	keys := make([]string, keyspace)
	vals := make([][]byte, keyspace)
	for i := range keys {
		keys[i] = store.Key("bench", i)
		vals[i] = []byte(fmt.Sprintf(`{"sc":%d,"steps":%d}`, i, i*3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % keyspace
		st.Put(keys[j], vals[j])
		if _, ok := st.Get(keys[j]); !ok {
			b.Fatal("own write not visible")
		}
	}
	b.ReportMetric(float64(st.Stats().Puts), "puts")
}
