package store_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
)

func TestKeyDeterministicAndSaltSensitive(t *testing.T) {
	type unit struct {
		Algo string `json:"algo"`
		N    int    `json:"n"`
		Perm []int  `json:"perm"`
	}
	a := store.Key("v1", unit{"ya", 4, []int{0, 1, 2, 3}})
	b := store.Key("v1", unit{"ya", 4, []int{0, 1, 2, 3}})
	if a == "" || a != b {
		t.Fatalf("same value must give same non-empty key: %q vs %q", a, b)
	}
	if c := store.Key("v2", unit{"ya", 4, []int{0, 1, 2, 3}}); c == a {
		t.Fatal("code-version salt must change every key: stale entries would survive a version bump")
	}
	if c := store.Key("v1", unit{"ya", 4, []int{0, 1, 3, 2}}); c == a {
		t.Fatal("different content hashed to the same key")
	}
	if k := store.Key("v1", func() {}); k != "" {
		t.Fatalf("unencodable value must key to \"\" (uncacheable), got %q", k)
	}
}

func TestParseShardStrict(t *testing.T) {
	i, m, err := store.ParseShard("2/3")
	if err != nil || i != 1 || m != 3 {
		t.Fatalf("ParseShard(2/3) = %d,%d,%v; want 1,3,nil", i, m, err)
	}
	for _, bad := range []string{"", "1", "0/3", "4/3", "1/0", "1/2/3", "1/2x", "x/2", "-1/3", "1/-3"} {
		if _, _, err := store.ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestUniformRingPartitions(t *testing.T) {
	const m = 3
	ring := store.UniformRing(m)
	hit := make([]int, m)
	for i := 0; i < 500; i++ {
		k := store.Key("v1", i)
		s := ring.Owner(k)
		if s < 0 || s >= m {
			t.Fatalf("shard %d out of range [0,%d)", s, m)
		}
		if again := store.UniformRing(m).Owner(k); again != s {
			t.Fatal("shard assignment not deterministic across ring constructions")
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d never hit over 500 keys — partition is degenerate", s)
		}
	}
	for _, degenerate := range []int{1, 0, -2} {
		if store.UniformRing(degenerate).Owner("anything") != 0 {
			t.Fatal("m <= 1 must map every key to shard 0")
		}
	}
}

func TestStoreRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	type val struct {
		SC int `json:"sc"`
	}
	k := store.Key("v1", "job-1")
	if _, ok := store.GetJSON[val](st, k); ok {
		t.Fatal("empty store reported a hit")
	}
	store.PutJSON(st, k, val{SC: 42})
	got, ok := store.GetJSON[val](st, k)
	if !ok || got.SC != 42 {
		t.Fatalf("round trip failed: %+v ok=%v", got, ok)
	}
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("stats %+v, want hits=1 misses=1 stored=1", s)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the entry must have survived the process boundary.
	st2, err := store.Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, ok = store.GetJSON[val](st2, k)
	if !ok || got.SC != 42 {
		t.Fatalf("entry lost across reopen: %+v ok=%v", got, ok)
	}
	if st2.Len() != 1 {
		t.Fatalf("Len=%d, want 1", st2.Len())
	}
}

// TestCorruptEntriesAreMisses is the store's core failure discipline: a
// mangled data file may cost re-executions but never an error and never a
// wrong value.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	kGood, kBad := store.Key("v1", "good"), store.Key("v1", "bad")
	store.PutJSON(st, kBad, 1)
	store.PutJSON(st, kGood, 2)
	st.Close()

	// Load-time corruption: mangle the bad record's value into invalid JSON
	// and append both garbage and a torn (newline-less) tail. The mangled
	// line and the tail must be skipped; the intact line must survive.
	path := filepath.Join(dir, "results.ndjson")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	for li, line := range lines {
		if !bytes.Contains(line, []byte(kBad)) {
			continue
		}
		i := bytes.Index(line, []byte(`"v":`))
		line[i+len(`"v":`)] = 'x'
		lines[li] = line
	}
	data = bytes.Join(lines, []byte("\n"))
	data = append(data, []byte("not json at all\n{\"k\":\"torn")...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatalf("a corrupt file must still open: %v", err)
	}
	defer st2.Close()
	if _, ok := store.GetJSON[int](st2, kBad); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if v, ok := store.GetJSON[int](st2, kGood); !ok || v != 2 {
		t.Fatalf("intact entry after corrupt line lost: %v ok=%v", v, ok)
	}

	// Read-time corruption: truncate the data file under an open store with
	// a populated index and a cold LRU. Reads must degrade to counted
	// misses, not errors or torn values.
	st3, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if err := os.Truncate(path, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.GetJSON[int](st3, kGood); ok {
		t.Fatal("read past a truncated file served as a hit")
	}
	if st3.Stats().Corrupt == 0 {
		t.Fatalf("read-time corruption not counted: %+v", st3.Stats())
	}
}

func TestLRUEvictionIsNotDataLossWithBackend(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 2) // tiny LRU: the third insert evicts the first
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = store.Key("v1", i)
		store.PutJSON(st, keys[i], i*10)
	}
	for i, k := range keys {
		if v, ok := store.GetJSON[int](st, k); !ok || v != i*10 {
			t.Fatalf("key %d: got %v ok=%v — eviction from the LRU tier must fall back to the backend", i, v, ok)
		}
	}

	mem := store.NewMemory(2)
	for i, k := range keys {
		store.PutJSON(mem, k, i*10)
	}
	if _, ok := store.GetJSON[int](mem, keys[0]); ok {
		t.Fatal("memory-only store kept an entry past its LRU capacity")
	}
}

func TestMergeFoldsShardsOnce(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	shared := store.Key("v1", "both")
	for i, dir := range []string{dirA, dirB} {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		store.PutJSON(st, store.Key("v1", fmt.Sprintf("only-%d", i)), i)
		store.PutJSON(st, shared, 7)
		st.Close()
	}
	dst, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	added, err := dst.Merge(dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 || dst.Len() != 3 {
		t.Fatalf("added=%d len=%d, want 3 and 3 (shared key folded once)", added, dst.Len())
	}
	if v, ok := store.GetJSON[int](dst, shared); !ok || v != 7 {
		t.Fatalf("shared key: %v ok=%v", v, ok)
	}
	if _, err := dst.Merge(filepath.Join(dirA, "no-such-dir-file", "x")); err == nil {
		// Merge creates missing dirs (Open does), so point it at a path that
		// cannot be created instead.
		t.Log("merge of creatable path succeeds by design")
	}
}

// TestConcurrentAccess hammers one store from many goroutines; run under
// -race (CI does) this is the concurrency safety check for the worker pool.
func TestConcurrentAccess(t *testing.T) {
	st, err := store.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := store.Key("v1", i%37)
				if v, ok := store.GetJSON[int](st, k); ok && v != (i%37)*3 {
					t.Errorf("read tore: key %d gave %d", i%37, v)
					return
				}
				store.PutJSON(st, k, (i%37)*3)
			}
		}(g)
	}
	wg.Wait()
}
