package adversary_test

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/store"
)

// TestSearchWorstSurvivesStallingSeed is the regression test for the
// truncated-candidate scoring fix: a seeded schedule that stalls mid-run
// (solo order [0] abandons the system once process 0 halts, leaving n-1
// live processes) must be discarded — counted, never scored, and never
// aborting the whole search batch the way a hard error would.
func TestSearchWorstSurvivesStallingSeed(t *testing.T) {
	cfg := adversary.Quick()
	cfg.Seed = 11
	base, err := adversary.SearchWorst(runner.New(4), "peterson", 4, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Seeds = []machine.Spec{machine.SoloSpec([]int{0})}
	got, err := adversary.SearchWorst(runner.New(4), "peterson", 4, cfg)
	if err != nil {
		t.Fatalf("a stalling candidate aborted the search: %v", err)
	}
	if got.Discarded != base.Discarded+1 || got.Evaluated != base.Evaluated+1 {
		t.Fatalf("stalling seed not discarded: evaluated %d->%d, discarded %d->%d",
			base.Evaluated, got.Evaluated, base.Discarded, got.Discarded)
	}
	// The discard must not perturb the search outcome: same winner, same
	// cost, same fixed-policy table.
	if got.Origin != base.Origin || got.Report != base.Report || !reflect.DeepEqual(got.Fixed, base.Fixed) {
		t.Fatalf("discarded seed changed the outcome:\n%+v\nvs\n%+v", got, base)
	}
	fixed, ok := got.FixedBest()
	if !ok || got.Report.SC < fixed.Report.SC {
		t.Fatalf("floor violated after discard: found %d vs fixed %d (ok=%v)", got.Report.SC, fixed.Report.SC, ok)
	}
}

// TestFixedBestTieBreakIsSubmissionOrder pins the documented tie-break:
// equal SC costs resolve to the earliest submitted policy.
func TestFixedBestTieBreakIsSubmissionOrder(t *testing.T) {
	f := adversary.Found{Fixed: []adversary.PolicyResult{
		{Name: "skipped", Report: cost.Report{SC: 99}, Canonical: false},
		{Name: "first", Report: cost.Report{SC: 10}, Canonical: true},
		{Name: "second", Report: cost.Report{SC: 10}, Canonical: true},
		{Name: "weaker", Report: cost.Report{SC: 9}, Canonical: true},
	}}
	best, ok := f.FixedBest()
	if !ok || best.Name != "first" {
		t.Fatalf("tie must resolve to the first submitted policy, got %q (ok=%v)", best.Name, ok)
	}
	if _, ok := (adversary.Found{}).FixedBest(); ok {
		t.Fatal("empty Fixed table must report ok=false")
	}
}

// TestDuplicateSeedGenomesAreFree pins the incumbent tie-break from the
// other side: re-submitting an identical genome can never steal the win
// (strictly-greater keeps the earlier submission), so the search outcome is
// identical with and without the duplicate.
func TestDuplicateSeedGenomesAreFree(t *testing.T) {
	spec := machine.PrefixGreedySpec([]int{0, 1, 2, 3, 3, 2, 1, 0})
	cfg := adversary.Quick()
	cfg.Seed = 3
	cfg.Seeds = []machine.Spec{spec}
	once, err := adversary.SearchWorst(runner.New(2), "yang-anderson", 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seeds = []machine.Spec{spec, spec}
	twice, err := adversary.SearchWorst(runner.New(2), "yang-anderson", 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if twice.Evaluated != once.Evaluated+1 {
		t.Fatalf("duplicate seed not evaluated: %d vs %d", twice.Evaluated, once.Evaluated)
	}
	if twice.Origin != once.Origin || twice.Report != once.Report || !reflect.DeepEqual(twice.Spec, once.Spec) {
		t.Fatalf("duplicate genome changed the outcome:\n%+v\nvs\n%+v", twice, once)
	}
}

// TestSearchWorstCachedIsIdenticalAndMemoized: the whole search result must
// be byte-identical across (a) a plain engine, (b) a cold cached engine and
// (c) a warm cached engine at workers 1/4/8 — and the warm searches must
// re-simulate nothing at all.
func TestSearchWorstCachedIsIdenticalAndMemoized(t *testing.T) {
	cfg := adversary.Quick()
	cfg.Seed = 20060723
	want, err := adversary.SearchWorst(runner.New(2), "yang-anderson", 5, cfg)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cold, err := adversary.SearchWorst(runner.NewCached(runner.New(2), st), "yang-anderson", 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Fatalf("cold cached search differs from plain search:\n%+v\nvs\n%+v", cold, want)
	}
	missesAfterCold := st.Stats().Misses

	for _, w := range []int{1, 4, 8} {
		warm, err := adversary.SearchWorst(runner.NewCached(runner.New(w), st), "yang-anderson", 5, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(warm, want) {
			t.Fatalf("warm cached search (workers=%d) differs from plain search:\n%+v\nvs\n%+v", w, warm, want)
		}
	}
	if got := st.Stats().Misses; got != missesAfterCold {
		t.Fatalf("warm searches re-simulated %d candidates, want zero", got-missesAfterCold)
	}
}
