package adversary_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/runner"
	"repro/internal/store"
)

// BenchmarkSearchWorst measures one full quick-config schedule search —
// the adversary loop every tournament round and every -adversary
// experiment pays per (algorithm, n) cell: seeding with the fixed
// policies, then mutation/restart rounds over the engine's worker pool.
// Single-worker so the number measures the search's work, not the box's
// parallelism.
func BenchmarkSearchWorst(b *testing.B) {
	cfg := adversary.Quick()
	cfg.Seed = 7
	eng := runner.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.SearchWorst(eng, "peterson", 4, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchWorstWarm is the same search through a warmed
// content-addressed store: every candidate is a replay, so this isolates
// the search's own overhead (genome generation, dispatch, fold) plus
// cache lookups from schedule execution. The gap to BenchmarkSearchWorst
// is what the result store saves a fleet per duplicate search.
func BenchmarkSearchWorstWarm(b *testing.B) {
	cfg := adversary.Quick()
	cfg.Seed = 7
	st := store.New(0, nil)
	defer st.Close()
	eng := runner.NewCached(runner.New(1), st)
	if _, err := adversary.SearchWorst(eng, "peterson", 4, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.SearchWorst(eng, "peterson", 4, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
