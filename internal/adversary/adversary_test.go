package adversary_test

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/runner"
)

// TestSearchWorstDeterministicAcrossWorkers is the acceptance check from
// the runner seam: the whole search result — winner, fixed-policy table,
// evaluation counts — must be byte-identical at workers 1 (the sequential
// path), 4, and 8.
func TestSearchWorstDeterministicAcrossWorkers(t *testing.T) {
	cfg := adversary.Quick()
	cfg.Seed = 20060723
	var want adversary.Found
	for wi, w := range []int{1, 4, 8} {
		got, err := adversary.SearchWorst(runner.New(w), "yang-anderson", 6, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if wi == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d result differs from sequential:\n%+v\nvs\n%+v", w, got, want)
		}
	}
}

// TestSearchWorstBeatsFixedPolicies checks the search's floor: because the
// fixed policies seed the candidate pool, the found-worst execution costs
// at least as much as the best fixed policy at equal n — for every classic
// algorithm.
func TestSearchWorstBeatsFixedPolicies(t *testing.T) {
	eng := runner.New(0)
	cfg := adversary.Quick()
	cfg.Seed = 1
	for _, algo := range []string{"yang-anderson", "bakery", "peterson", "tas", "mcs"} {
		found, err := adversary.SearchWorst(eng, algo, 5, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		fixed, ok := found.FixedBest()
		if !ok {
			t.Fatalf("%s: no fixed policy completed", algo)
		}
		if found.Report.SC < fixed.Report.SC {
			t.Errorf("%s: found-worst SC=%d below best fixed policy %s SC=%d",
				algo, found.Report.SC, fixed.Name, fixed.Report.SC)
		}
		if found.Evaluated == 0 || len(found.Fixed) == 0 {
			t.Errorf("%s: empty search bookkeeping: %+v", algo, found)
		}
	}
}

// TestSearchWorstSpecReplays checks reproducibility of the winner: running
// the returned Spec afresh reproduces the reported cost exactly.
func TestSearchWorstSpecReplays(t *testing.T) {
	cfg := adversary.Quick()
	cfg.Seed = 7
	found, err := adversary.SearchWorst(runner.New(0), "bakery", 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := runner.ExecuteSchedule(runner.ScheduleJob{
		Algo: found.Algo, N: found.N, Sched: found.Spec, Horizon: cfg.Horizon,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.Canonical {
		t.Fatal("winning spec no longer completes canonically")
	}
	if r.Report != found.Report {
		t.Fatalf("replayed report %+v differs from found %+v", r.Report, found.Report)
	}
}
