// Package adversary searches for cost-maximizing executions. The paper's
// Ω(n log n) bound is proved by an adversary that *constructs* expensive
// canonical executions; the fixed policies in internal/machine are only as
// adversarial as their hand-written heuristics. This package closes the gap
// operationally: SearchWorst runs a seeded random-restart + local-mutation
// search over schedule prefixes and reports the empirically-worst canonical
// execution it can find, which by construction is at least as costly as the
// best fixed policy (the fixed policies seed the candidate pool).
//
// Determinism contract: every candidate is a pure runner.ScheduleJob — a
// value of (algorithm, n, scheduler spec, horizon) — evaluated on the
// shared worker pool and folded in submission order. Candidate generation
// for round r is a function of the seed, r, and the incumbent selected by
// the previous round's ordered fold, so the search result is byte-identical
// at every worker count.
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/perm"
	"repro/internal/runner"
)

// Config tunes the schedule search. The zero value selects defaults sized
// for full-scale experiments; Quick returns the reduced search used by
// -quick paths.
type Config struct {
	// Rounds is the number of mutation rounds after the seeding round.
	Rounds int
	// Restarts is the number of fresh random prefixes per round (the
	// random-restart half of the search).
	Restarts int
	// Mutants is the number of local mutations of the incumbent per round.
	Mutants int
	// PrefixLen is the decision-prefix length; 0 selects 4·n, long enough
	// to steer the whole contention phase of a canonical execution.
	PrefixLen int
	// Horizon is the per-candidate step budget; 0 selects the machine
	// default.
	Horizon int
	// Seed drives all candidate generation.
	Seed int64
	// Seeds are extra candidate schedules injected into the seeding round
	// after the fixed policies (origin "seed:<i>"): warm starts from a
	// previous search, known-expensive schedules, or — in tests — known-bad
	// ones. Like every candidate, a Seed that fails to complete a canonical
	// execution is discarded, never an error.
	Seeds []machine.Spec
}

// Quick returns a reduced search configuration for -quick paths and smoke
// tests.
func Quick() Config { return Config{Rounds: 2, Restarts: 4, Mutants: 4} }

func (c Config) withDefaults(n int) Config {
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Restarts <= 0 {
		c.Restarts = 8
	}
	if c.Mutants <= 0 {
		c.Mutants = 8
	}
	if c.PrefixLen <= 0 {
		c.PrefixLen = 4 * n
	}
	return c
}

// PolicyResult is one fixed policy's canonical-execution cost, reported so
// tournaments can print the found-worst schedule next to every hand-written
// adversary it beat.
type PolicyResult struct {
	Name      string
	Report    cost.Report
	Canonical bool
}

// Found is the outcome of one schedule search.
type Found struct {
	Algo string
	N    int
	// Spec reproduces the worst schedule found: hand it to a fresh run to
	// replay the execution.
	Spec machine.Spec
	// Origin tells where the winner came from: "fixed:<name>",
	// "seed:<i>" (a Config.Seeds warm start), "restart:<round>", or
	// "mutant:<round>".
	Origin string
	// Report is the worst canonical execution's cost.
	Report cost.Report
	// Fixed holds the seeding round's fixed-policy results in a stable
	// order.
	Fixed []PolicyResult
	// Evaluated counts all candidate evaluations; Discarded counts the
	// candidates rejected for not completing a canonical execution.
	Evaluated int
	Discarded int
}

// FixedBest returns the costliest canonical fixed policy, the baseline the
// search must match or beat. ok is false when no fixed policy completed.
//
// Tie-break: equal SC costs are resolved by submission order — the first
// policy in Fixed (the fixedCandidates listing order) wins, because the
// comparison is strictly greater-than. The incumbent update inside
// SearchWorst uses the same rule, so the reported winner is a deterministic
// function of the candidate sequence alone, independent of worker count.
func (f Found) FixedBest() (PolicyResult, bool) {
	var best PolicyResult
	ok := false
	for _, p := range f.Fixed {
		if p.Canonical && (!ok || p.Report.SC > best.Report.SC) {
			best, ok = p, true
		}
	}
	return best, ok
}

// candidate pairs a scheduler spec with its provenance.
type candidate struct {
	name   string // non-empty for fixed policies
	spec   machine.Spec
	origin string
}

// fixedCandidates returns the seeding round's hand-written policies. Two
// random schedules with decorrelated seeds are included so the baseline is
// not a single unlucky stream.
func fixedCandidates(n int, seed int64) []candidate {
	fixed := []candidate{
		{name: "round-robin", spec: machine.RoundRobinSpec()},
		{name: "progress-first", spec: machine.ProgressFirstSpec()},
		{name: "greedy-cost", spec: machine.GreedyCostSpec()},
		{name: "hold-cs", spec: machine.HoldCSSpec(n)},
		{name: "solo", spec: machine.SoloSpec(perm.Identity(n))},
		{name: "random-0", spec: machine.RandomSpec(runner.MixSeed(seed, -1, 0))},
		{name: "random-1", spec: machine.RandomSpec(runner.MixSeed(seed, -1, 1))},
	}
	for i := range fixed {
		fixed[i].origin = "fixed:" + fixed[i].name
	}
	return fixed
}

// randomPrefix draws a fresh decision prefix: the random-restart move.
func randomPrefix(rng *rand.Rand, n, length int) []int {
	p := make([]int, length)
	for i := range p {
		p[i] = rng.Intn(n)
	}
	return p
}

// mutate copies the incumbent's decision prefix (padding to length with
// random picks when the incumbent completed in fewer steps) and applies a
// small number of local edits: point rewrites and swaps.
func mutate(rng *rand.Rand, base []int, n, length int) []int {
	p := make([]int, length)
	copied := copy(p, base)
	for i := copied; i < length; i++ {
		p[i] = rng.Intn(n)
	}
	for edits := 1 + rng.Intn(3); edits > 0; edits-- {
		if rng.Intn(2) == 0 {
			p[rng.Intn(length)] = rng.Intn(n)
		} else {
			i, j := rng.Intn(length), rng.Intn(length)
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}

// Engine is the candidate-evaluation backend SearchWorst fans out on. Both
// *runner.Engine (plain execution) and *runner.CachedEngine (memoized
// through the content-addressed store, which makes fixed-policy seeds and
// re-proposed duplicate genomes free across rounds, searches and processes)
// satisfy it.
type Engine interface {
	RunSchedules(jobs []runner.ScheduleJob, fold func(runner.ScheduleResult) error) error
}

// SearchWorst hunts for the costliest canonical execution of the named
// algorithm at n processes. Candidates fan out over the engine's worker
// pool; the result is byte-identical at every worker count, and — because
// candidate evaluation is a pure function of the candidate — identical
// whether results come from execution or a warm result store.
func SearchWorst(eng Engine, algoName string, n int, cfg Config) (Found, error) {
	cfg = cfg.withDefaults(n)
	found := Found{Algo: algoName, N: n}

	// The incumbent: best canonical candidate so far, with the decision
	// sequence that produced it (the genome the next round mutates).
	var incumbent struct {
		ok        bool
		spec      machine.Spec
		origin    string
		report    cost.Report
		decisions []int
	}

	evaluate := func(cands []candidate, collectFixed bool) error {
		jobs := make([]runner.ScheduleJob, len(cands))
		for i, c := range cands {
			jobs[i] = runner.ScheduleJob{
				Algo: algoName, N: n, Sched: c.spec,
				Horizon: cfg.Horizon, KeepDecisions: cfg.PrefixLen,
			}
		}
		return eng.RunSchedules(jobs, func(r runner.ScheduleResult) error {
			c := cands[r.Index]
			if r.Err != nil {
				// Hard failures only: unknown algorithm, bad spec, ill-formed
				// step. Truncated candidates — including traces the cost
				// model rejects — arrive with Err nil and Canonical false
				// (runner.ExecuteSchedule classifies them as discards), so a
				// single bad schedule can never abort the batch.
				return fmt.Errorf("adversary: %s n=%d candidate %s: %w", algoName, n, c.origin, r.Err)
			}
			found.Evaluated++
			if collectFixed && c.name != "" {
				found.Fixed = append(found.Fixed, PolicyResult{Name: c.name, Report: r.Report, Canonical: r.Canonical})
			}
			if !r.Canonical {
				// Truncated or stalled: never score it, however cheap or
				// expensive its partial trace looks.
				found.Discarded++
				return nil
			}
			// Strictly-greater keeps the earliest submission on SC ties (the
			// documented tie-break, shared with Found.FixedBest).
			if !incumbent.ok || r.Report.SC > incumbent.report.SC {
				incumbent.ok = true
				incumbent.spec = c.spec
				incumbent.origin = c.origin
				incumbent.report = r.Report
				incumbent.decisions = r.Decisions
			}
			return nil
		})
	}

	// Round 0 seeds the pool: every fixed policy, the caller's warm-start
	// seeds, then fresh random prefixes.
	seedRound := fixedCandidates(n, cfg.Seed)
	for i, sp := range cfg.Seeds {
		seedRound = append(seedRound, candidate{spec: sp, origin: fmt.Sprintf("seed:%d", i)})
	}
	for i := 0; i < cfg.Restarts; i++ {
		rng := rand.New(rand.NewSource(runner.MixSeed(cfg.Seed, 0, int64(i))))
		seedRound = append(seedRound, candidate{
			spec:   machine.PrefixGreedySpec(randomPrefix(rng, n, cfg.PrefixLen)),
			origin: "restart:0",
		})
	}
	if err := evaluate(seedRound, true); err != nil {
		return found, err
	}

	for round := 1; round <= cfg.Rounds; round++ {
		var cands []candidate
		if incumbent.ok {
			for i := 0; i < cfg.Mutants; i++ {
				rng := rand.New(rand.NewSource(runner.MixSeed(cfg.Seed, int64(round), int64(i))))
				cands = append(cands, candidate{
					spec:   machine.PrefixGreedySpec(mutate(rng, incumbent.decisions, n, cfg.PrefixLen)),
					origin: fmt.Sprintf("mutant:%d", round),
				})
			}
		}
		for i := 0; i < cfg.Restarts; i++ {
			rng := rand.New(rand.NewSource(runner.MixSeed(cfg.Seed, int64(round), int64(cfg.Mutants+i))))
			cands = append(cands, candidate{
				spec:   machine.PrefixGreedySpec(randomPrefix(rng, n, cfg.PrefixLen)),
				origin: fmt.Sprintf("restart:%d", round),
			})
		}
		if err := evaluate(cands, false); err != nil {
			return found, err
		}
	}

	if !incumbent.ok {
		return found, fmt.Errorf("adversary: %s n=%d: no candidate completed a canonical execution (%d evaluated)", algoName, n, found.Evaluated)
	}
	found.Spec = incumbent.spec
	found.Origin = incumbent.origin
	found.Report = incumbent.report
	return found, nil
}
