// Package session is the composable core every experiment-facing binary
// and service is assembled from: one type owning the full lifecycle that
// cmd/experiments, cmd/tournament, cmd/observe, cmd/lowerbound,
// cmd/mutexsim and cmd/experimentd used to hand-build in their main
// functions — mount the result store (local directory, fleet, or tiered;
// see remote.MountFlags), wrap the cached execution engine, apply the
// shard assignment, enable trace capture, start the profiling hooks, and
// on Close flush everything and print the canonical end-of-run stats
// lines.
//
// The split is engine vs serving: everything below (machine, runner,
// store, remote) stays a library of pure values, and a Session is the one
// stateful object a process holds. A batch CLI opens one Session, runs its
// fan-outs on Session.Engine, and closes it. A long-running service
// (cmd/experimentd) opens one Session at startup and serves request-scoped
// work through Session.RunUnit, which is safe for any number of concurrent
// callers: the store is goroutine-safe, the engine's configuration is
// immutable, and identical in-flight units are coalesced so N simultaneous
// requests for one unit cost exactly one simulation — the same discipline
// remote.Client applies to point gets, lifted to whole units.
package session

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/prof"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/store"
)

// Config is everything a Session needs, as plain values — a process that
// wants the stack without a flag set (tests, examples, embedded services)
// fills it directly; CLIs bind it with FlagConfig.
type Config struct {
	// Prog prefixes every diagnostic line ("experiments: cache …").
	Prog string
	// CacheDir is the local result-store directory ("" = none).
	CacheDir string
	// StoreURL is the remote store URL list ("" = none); see remote.Mount.
	StoreURL string
	// Shard is the "i/m" prime-shard assignment ("" = normal run).
	Shard string
	// Merge is the comma-separated shard directories to fold in first.
	Merge string
	// Capture persists executed step traces into the store's blob tier.
	Capture bool
	// Parallel is the engine worker-pool size (0 = GOMAXPROCS).
	Parallel int
	// Prof holds the registered profiling flags (nil = no profiling).
	Prof *prof.Flags
	// Diag receives diagnostics and stats lines (nil = os.Stderr). The
	// data stream is never written here, so stdout stays byte-identical
	// across cold, warm, and sharded runs.
	Diag io.Writer
}

// Session is one mounted instance of the full stack. Open builds it,
// Close tears it down; in between it is safe for concurrent use.
type Session struct {
	cfg      Config
	diag     io.Writer
	cli      *remote.CLIStore
	eng      *runner.CachedEngine
	stopProf func()

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool

	coalesced atomic.Int64
}

// flight is one in-flight unit execution other requests coalesce onto.
type flight struct {
	done   chan struct{}
	report cost.Report
	err    error
}

// Open mounts the stack the config describes: profiling first (so the
// profile covers the mount), then the store tiers with their one canonical
// validation path, then the cached engine with shard and capture applied.
// Every error path tears down what was already built.
func Open(cfg Config) (*Session, error) {
	diag := cfg.Diag
	if diag == nil {
		diag = os.Stderr
	}
	stopProf := func() {}
	if cfg.Prof != nil {
		var err error
		if stopProf, err = cfg.Prof.Start(diag); err != nil {
			return nil, err
		}
	}
	cli, err := remote.MountFlags(diag, cfg.Prog, cfg.CacheDir, cfg.StoreURL, cfg.Shard, cfg.Merge)
	if err != nil {
		stopProf()
		return nil, err
	}
	if cfg.Capture && cli.Store == nil {
		cli.Close()
		stopProf()
		return nil, fmt.Errorf("-capture requires -cache or -store")
	}
	eng := runner.NewCached(runner.New(cfg.Parallel), cli.Store).
		WithShard(cli.ShardI, cli.ShardM).
		WithCapture(cfg.Capture)
	return &Session{
		cfg:      cfg,
		diag:     diag,
		cli:      cli,
		eng:      eng,
		stopProf: stopProf,
		inflight: make(map[string]*flight),
	}, nil
}

// Engine returns the session's cached execution engine — the handle batch
// drivers fan out through. Its configuration (store, shard, capture) is
// immutable; derived copies (WithCapture, WithShardRing) share the store.
func (s *Session) Engine() *runner.CachedEngine { return s.eng }

// Store returns the mounted result store (nil when no store flags were
// given).
func (s *Session) Store() *store.Store { return s.cli.Store }

// Ring returns the placement ring the mount routed by (nil for local-only
// and single-replica mounts).
func (s *Session) Ring() *store.Ring { return s.cli.Ring }

// Priming reports whether this session is a prime-only shard pass.
func (s *Session) Priming() bool { return s.cli.Priming() }

// Shard returns the prime-shard assignment (0, 0 for a normal run).
func (s *Session) Shard() (i, m int) { return s.cli.ShardI, s.cli.ShardM }

// Capturing reports whether executed step traces are being persisted.
func (s *Session) Capturing() bool { return s.eng.Capturing() }

// Coalesced returns how many RunJob calls were served by joining another
// request's in-flight execution instead of starting their own.
func (s *Session) Coalesced() int64 { return s.coalesced.Load() }

// RunJob executes one simulation unit through the session, request-scoped:
// hits are served from the store, misses execute on the calling goroutine,
// and identical in-flight units coalesce — the N-1 late arrivals wait for
// the leader and then read its stored result (one miss, N-1 hits), or
// share the leader's value directly when no store is mounted. Errors are
// never cached and never shared: a failed leader leaves followers to try
// (and surface the failure) themselves.
func (s *Session) RunJob(j runner.Job) (cost.Report, error) {
	k := j.CacheKey()
	for {
		s.mu.Lock()
		if f, ok := s.inflight[k]; ok {
			s.mu.Unlock()
			s.coalesced.Add(1)
			<-f.done
			if f.err != nil {
				// The leader failed; this request runs the unit itself so
				// every caller gets a first-hand verdict.
				continue
			}
			if s.Store() != nil {
				return s.eng.RunOne(j) // the leader's write makes this a hit
			}
			return f.report, nil
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[k] = f
		s.mu.Unlock()
		f.report, f.err = s.eng.RunOne(j)
		s.mu.Lock()
		delete(s.inflight, k)
		s.mu.Unlock()
		close(f.done)
		return f.report, f.err
	}
}

// Close flushes and tears the stack down in the canonical order: the
// end-of-run stats lines (the cache-traffic line CI greps `misses=0` off,
// one line per fleet replica, the stale-ring warning), then the store, then
// the profiling hooks. Idempotent — later calls return nil, so binaries can
// both defer it and call it explicitly before exiting.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cli.PrintStats(s.diag, s.cfg.Prog)
	err := s.cli.Close()
	s.stopProf()
	return err
}
