package session

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/perm"
	"repro/internal/runner"
)

// Unit is the wire form of one experiment request — the coordinates that
// fully determine a canonical simulation: algorithm, process count,
// scheduler name, seed, step budget. It is the request body cmd/experimentd
// accepts and the shape `mutexsim -json` serializes, so one unit means the
// same execution whether it arrives as flags or as JSON. An empty Sched
// means "round-robin"; Seed only parameterizes the "random" scheduler.
type Unit struct {
	Algo    string `json:"algo"`
	N       int    `json:"n"`
	Sched   string `json:"sched"`
	Seed    int64  `json:"seed"`
	Horizon int    `json:"horizon,omitempty"`
}

// Job resolves the unit into the runner's executable value. The scheduler
// name goes through machine.NamedSpec — the one name→spec mapping — and the
// seed is folded into the spec (not the Job's provenance field), so two
// units that construct behaviourally identical schedulers share one cache
// key and coalesce.
func (u Unit) Job() (runner.Job, error) {
	if u.N < 2 {
		return runner.Job{}, fmt.Errorf("n must be at least 2 (got %d)", u.N)
	}
	if u.Horizon < 0 {
		return runner.Job{}, fmt.Errorf("horizon must be non-negative (got %d)", u.Horizon)
	}
	sched := u.Sched
	if sched == "" {
		sched = "round-robin"
	}
	sp, err := machine.NamedSpec(sched, u.N, u.Seed)
	if err != nil {
		return runner.Job{}, err
	}
	return runner.Job{Algo: u.Algo, N: u.N, Sched: sp, Horizon: u.Horizon}, nil
}

// UnitResult is the canonical machine-readable answer for one unit: the
// unit echoed back (scheduler name normalized), the unit's content address
// in the result store — the key its captured trace lives under, feedable
// straight to `experiments -replay` or cmd/observe — and the cost report
// under every model. Serialized with encoding/json it is byte-identical
// between `mutexsim -json` and an experimentd response by construction:
// both marshal this struct.
type UnitResult struct {
	Unit
	Key        string      `json:"key"`
	Report     cost.Report `json:"report"`
	SCPerNLogN float64     `json:"scPerNLogN"`
}

// RunUnit resolves and executes one unit through RunJob — cached,
// coalesced, safe for concurrent request-scoped use.
func (s *Session) RunUnit(u Unit) (UnitResult, error) {
	j, err := u.Job()
	if err != nil {
		return UnitResult{}, err
	}
	rep, err := s.RunJob(j)
	if err != nil {
		return UnitResult{}, err
	}
	res := UnitResult{Unit: u, Key: j.CacheKey(), Report: rep}
	res.Sched = j.Sched.Kind
	if d := perm.NLogN(u.N); d > 0 {
		res.SCPerNLogN = float64(rep.SC) / d
	}
	return res, nil
}
