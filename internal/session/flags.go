package session

import (
	"flag"

	"repro/internal/prof"
)

// Flags binds the canonical store/engine/profiling flag surface — the
// quartet -cache/-store/-shard/-merge plus -capture, -parallel, and the
// pprof trio — onto one flag set. Every experiment-facing binary mounts
// this exact set through FlagConfig, so the help text, the accepted
// combinations, and the validation errors are identical across binaries by
// construction instead of by convention: flag-surface drift is now a
// compile-time impossibility rather than a review item.
type Flags struct {
	cacheDir *string
	storeURL *string
	shardArg *string
	mergeArg *string
	capture  *bool
	parallel *int
	prof     *prof.Flags
}

// FlagConfig registers the canonical flag set on fs. Parse fs before
// calling Config.
func FlagConfig(fs *flag.FlagSet) *Flags {
	return &Flags{
		cacheDir: fs.String("cache", "", "content-addressed result store directory (created if missing)"),
		storeURL: fs.String("store", "", "remote result-store URL(s), comma-separated (stored services, e.g. http://127.0.0.1:9200 or URL1,URL2 for a hash-routed fleet tier); with -cache, the directory becomes a local near tier"),
		shardArg: fs.String("shard", "", "i/m: prime only shard i of m's keys into the store and print no data output"),
		mergeArg: fs.String("merge", "", "comma-separated shard store directories to fold into the store before running"),
		capture:  fs.Bool("capture", false, "persist every executed unit's step trace into the store's blob tier (requires -cache or -store)"),
		parallel: fs.Int("parallel", 0, "worker pool size; 0 = GOMAXPROCS, 1 = sequential (identical output)"),
		prof:     prof.Register(fs),
	}
}

// Config resolves the parsed flags into the Session config for prog.
// Diag defaults to os.Stderr; override it on the returned value for tests.
func (f *Flags) Config(prog string) Config {
	return Config{
		Prog:     prog,
		CacheDir: *f.cacheDir,
		StoreURL: *f.storeURL,
		Shard:    *f.shardArg,
		Merge:    *f.mergeArg,
		Capture:  *f.capture,
		Parallel: *f.parallel,
		Prof:     f.prof,
	}
}
