package session

import (
	"io"
	"strings"
	"sync"
	"testing"
)

func openTest(t *testing.T, cfg Config) *Session {
	t.Helper()
	if cfg.Diag == nil {
		cfg.Diag = io.Discard
	}
	if cfg.Prog == "" {
		cfg.Prog = "sessiontest"
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRunUnitCoalesces is the session's concurrency contract: N goroutines
// requesting one unit against a mounted store cost exactly one simulation —
// one miss (the leader's execution) and N-1 hits (followers re-reading the
// leader's write) — in every interleaving, because a follower that arrives
// after the flight closed still finds the key stored.
func TestRunUnitCoalesces(t *testing.T) {
	s := openTest(t, Config{CacheDir: t.TempDir()})
	const workers = 16
	u := Unit{Algo: "yang-anderson", N: 16}

	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []UnitResult
	)
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := s.RunUnit(u)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if len(results) != workers {
		t.Fatalf("%d results, want %d", len(results), workers)
	}
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatalf("divergent results: %+v vs %+v", r, results[0])
		}
	}
	st := s.Store().Stats()
	gets := st.Hits + st.Misses
	if gets != workers {
		t.Fatalf("hits+misses = %d, want %d (every request must read the store exactly once)", gets, workers)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (one leader simulates, everyone else hits)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers-1)
	}
}

// TestRunJobCoalescesWithoutStore pins the store-less degradation: followers
// share the leader's in-memory report instead of re-reading anything.
func TestRunJobCoalescesWithoutStore(t *testing.T) {
	s := openTest(t, Config{})
	if s.Store() != nil {
		t.Fatal("no store flags, but a store mounted")
	}
	u := Unit{Algo: "bakery", N: 8}
	const workers = 8
	var wg sync.WaitGroup
	results := make([]UnitResult, workers)
	start := make(chan struct{})
	for i := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := s.RunUnit(u)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	close(start)
	wg.Wait()
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatalf("divergent results: %+v vs %+v", r, results[0])
		}
	}
}

// TestOpenValidation pins the canonical flag-combination errors every
// binary inherits (the binaries assert the same table through
// sessiontest.Run — this is the source of the exact text).
func TestOpenValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"merge-without-store", Config{Merge: "d1"}, "-merge requires -cache or -store"},
		{"shard-without-store", Config{Shard: "1/2"}, "-shard requires -cache or -store"},
		{"capture-without-store", Config{Capture: true}, "-capture requires -cache or -store"},
		{"bad-shard", Config{CacheDir: t.TempDir(), Shard: "0"}, `store: bad shard "0": want i/m, e.g. 1/3`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Diag = io.Discard
			s, err := Open(tc.cfg)
			if err == nil {
				s.Close()
				t.Fatalf("config %+v accepted; want %q", tc.cfg, tc.wantErr)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("error = %q, want %q", err, tc.wantErr)
			}
		})
	}
}

// TestUnitValidation pins the request-shape errors experimentd surfaces as
// 400s and the CLIs as flag errors.
func TestUnitValidation(t *testing.T) {
	if _, err := (Unit{Algo: "bakery", N: 1}).Job(); err == nil || !strings.Contains(err.Error(), "n must be at least 2") {
		t.Fatalf("n=1 error = %v", err)
	}
	if _, err := (Unit{Algo: "bakery", N: 4, Horizon: -1}).Job(); err == nil || !strings.Contains(err.Error(), "horizon must be non-negative") {
		t.Fatalf("horizon=-1 error = %v", err)
	}
	if _, err := (Unit{Algo: "bakery", N: 4, Sched: "nope"}).Job(); err == nil || !strings.Contains(err.Error(), `unknown scheduler "nope"`) {
		t.Fatalf("bad sched error = %v", err)
	}
	j, err := (Unit{Algo: "bakery", N: 4}).Job()
	if err != nil {
		t.Fatal(err)
	}
	if j.Sched.Kind != "round-robin" {
		t.Fatalf("empty sched resolved to %q, want round-robin", j.Sched.Kind)
	}
}

// TestSeedOnlyKeysRandomScheduler pins the coalescing consequence of
// folding the seed into the spec: two units differing only in seed share
// one cache key under a deterministic scheduler, and differ under random.
func TestSeedOnlyKeysRandomScheduler(t *testing.T) {
	j1, _ := Unit{Algo: "bakery", N: 4, Seed: 1}.Job()
	j2, _ := Unit{Algo: "bakery", N: 4, Seed: 2}.Job()
	if j1.CacheKey() != j2.CacheKey() {
		t.Fatal("round-robin units with different seeds should share a key")
	}
	r1, _ := Unit{Algo: "bakery", N: 4, Sched: "random", Seed: 1}.Job()
	r2, _ := Unit{Algo: "bakery", N: 4, Sched: "random", Seed: 2}.Job()
	if r1.CacheKey() == r2.CacheKey() {
		t.Fatal("random units with different seeds must not share a key")
	}
}

// TestCloseIdempotent pins the teardown contract binaries rely on when they
// both defer Close and call it explicitly.
func TestCloseIdempotent(t *testing.T) {
	s := openTest(t, Config{CacheDir: t.TempDir()})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}
