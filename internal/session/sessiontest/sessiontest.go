// Package sessiontest is the shared conformance table for every binary
// built on internal/session: one list of bad flag combinations with the
// exact error text the canonical validation path produces. Each cmd
// package's test calls Run with its own run function, so a binary that
// drifts off the session core — re-registering a flag, hand-rolling a
// validation — fails this table before any reviewer sees the divergence.
package sessiontest

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// tempDirToken marks an argument the harness replaces with a per-case
// temporary directory, so table cases can say "-cache <a real dir>"
// without hardcoding paths.
const tempDirToken = "@TMPDIR"

// cases are the canonical rejections. WantErr is matched as a substring
// of err.Error() — but the full text is asserted by the session package's
// own tests, so binaries inherit exactness transitively.
var cases = []struct {
	name    string
	args    []string
	wantErr string
}{
	{"unknown-flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined: -definitely-not-a-flag"},
	{"merge-without-store", []string{"-merge", "d1,d2"}, "-merge requires -cache or -store"},
	{"shard-without-store", []string{"-shard", "1/2"}, "-shard requires -cache or -store"},
	{"merge-and-shard", []string{"-cache", tempDirToken, "-merge", "d1", "-shard", "1/2"}, "-merge and -shard are mutually exclusive (merge replays the full run)"},
	{"capture-without-store", []string{"-capture"}, "-capture requires -cache or -store"},
	{"bad-shard-spec", []string{"-cache", tempDirToken, "-shard", "0"}, `store: bad shard "0": want i/m, e.g. 1/3`},
}

// Run drives every table case through one binary's run function. The
// binary must reject each invocation with the canonical error before
// producing any data output.
func Run(t *testing.T, run func(args []string, w io.Writer) error) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := make([]string, len(tc.args))
			for i, a := range tc.args {
				if a == tempDirToken {
					a = t.TempDir()
				}
				args[i] = a
			}
			var buf bytes.Buffer
			err := run(args, &buf)
			if err == nil {
				t.Fatalf("%v accepted; want error containing %q", args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("%v: error %q does not contain %q", args, err, tc.wantErr)
			}
			if buf.Len() != 0 {
				t.Fatalf("%v: wrote %d bytes of data output before failing validation", args, buf.Len())
			}
		})
	}
}
