package experiments_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
)

// TestWarmCacheRerunSimulatesNothing is the incremental-re-run acceptance
// check: with a shared result store, a second run of the full quick suite
// must produce byte-identical tables while executing zero simulations —
// every keyed unit (canonical jobs, sweep permutations, linearization
// trials, encoding ablations, schedule-search candidates) hits the store.
// Worker counts differ across the two runs to prove cache replay is as
// schedule-independent as execution.
func TestWarmCacheRerunSimulatesNothing(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	runAll := func(workers int) map[string]string {
		t.Helper()
		out := map[string]string{}
		cfg := experiments.Config{Quick: true, Seed: 20060723, Workers: workers, Cache: st}
		for _, e := range experiments.All() {
			tbl, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out[e.ID] = tbl.Format()
		}
		return out
	}

	cold := runAll(4)
	s := st.Stats()
	if s.Misses == 0 || s.Puts == 0 {
		t.Fatalf("cold run keyed nothing: %+v", s)
	}
	missesAfterCold := s.Misses

	warm := runAll(2)
	for id, want := range cold {
		if warm[id] != want {
			t.Errorf("%s: warm table differs from cold:\n--- cold\n%s\n--- warm\n%s", id, want, warm[id])
		}
	}
	if got := st.Stats().Misses; got != missesAfterCold {
		t.Errorf("warm re-run executed %d simulations (miss count %d -> %d), want zero",
			got-missesAfterCold, missesAfterCold, got)
	}
}
