// Package experiments regenerates every quantitative claim of the paper as
// a table, per the experiment index in DESIGN.md (E1–E9). The paper is a
// theory paper with no measured tables of its own; each experiment here
// checks the *shape* of a theorem, lemma, or positioning claim: who wins,
// growth exponents, boundedness of ratios.
//
// Each experiment returns a Table with a Pass verdict. cmd/experiments
// prints them; the root bench suite wraps them; EXPERIMENTS.md records a
// reference run.
//
// Every experiment is decomposed into a declarative slice of jobs — pure,
// seed-addressed units (algorithm name, n, scheduler spec, derived seed) —
// executed on the internal/runner worker pool, with a fold function
// rebuilding the table in job order. Because the fold order is fixed and
// every job derives its randomness from its own coordinates (runner.MixSeed)
// rather than a shared rng stream, the tables are byte-identical at every
// worker count, including Workers=1 (the sequential path).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/metastep"
	"repro/internal/perm"
	"repro/internal/program"
	"repro/internal/runner"
	"repro/internal/store"
)

// Config tunes experiment scale.
type Config struct {
	// Quick restricts sweeps to the smallest sizes (used by -short tests).
	Quick bool
	// Seed drives all sampled permutations and schedules.
	Seed int64
	// Workers bounds the worker pool experiments fan out on; 0 selects
	// GOMAXPROCS, 1 forces the sequential path. Tables are identical at
	// every setting.
	Workers int
	// Cache is the optional content-addressed result store. With a cache,
	// every simulation unit — canonical-execution jobs, sweep permutations,
	// per-trial linearization draws, schedule-search candidates — is keyed
	// and consulted before executing, so a warm re-run simulates nothing
	// and still folds byte-identical tables.
	Cache *store.Store
	// Shard/Shards select prime-only mode: with Shards = m > 0 and
	// Shard = i in [0, m), runs execute only shard i's missing keys into
	// Cache and produce no meaningful tables. m processes with disjoint
	// shards split one suite; store.Merge folds their caches back together
	// for a full replay.
	Shard, Shards int
	// Capture persists every executed unit's step log into Cache's blob
	// tier under the unit's own key (see runner.CachedEngine.WithCapture),
	// so any row of any table can later be replayed and inspected without
	// re-simulating. No effect without a Cache.
	Capture bool
	// Engine, when non-nil, is the pre-assembled cached engine every
	// experiment fans out on — the session core passes its own here — and
	// the Workers/Cache/Shard/Shards/Capture fields above are ignored.
	Engine *runner.CachedEngine
}

// eng returns the engine experiments fan out on.
func (cfg Config) eng() *runner.CachedEngine {
	if cfg.Engine != nil {
		return cfg.Engine
	}
	ce := runner.NewCached(runner.New(cfg.Workers), cfg.Cache)
	if cfg.Shards > 0 {
		ce = ce.WithShard(cfg.Shard, cfg.Shards)
	}
	return ce.WithCapture(cfg.Capture)
}

// ukey builds an experiment-unit store key from pure value parts under the
// shared code-version salt. Experiments key any unit whose output feeds a
// table but is not already keyed at a lower layer (jobs, schedule
// candidates and sweep permutations key themselves).
func ukey(parts any) string { return store.Key(runner.CacheVersion, parts) }

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper statement being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
	Pass   bool
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	verdict := "PASS"
	if !t.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", t.ID, t.Title, verdict)
	fmt.Fprintf(&b, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for c, h := range t.Header {
		widths[c] = len(h)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	b.WriteString("   ")
	line(t.Header)
	for _, row := range t.Rows {
		b.WriteString("   ")
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(cfg Config) (*Table, error)

// All returns the experiments in order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1LowerBound},
		{"E2", E2YangAndersonTightness},
		{"E3", E3EntryOrder},
		{"E4", E4EncodingLength},
		{"E5", E5DecodeInjectivity},
		{"E6", E6LinearizationCost},
		{"E7", E7AlgorithmComparison},
		{"E8", E8BusywaitFree},
		{"E9", E9InformationBound},
		{"E10", E10CCExtension},
		{"E11", E11EncodingAblation},
		{"E12", E12GrowthExponents},
		{"E13", E13FoundWorst},
	}
}

func algo(name string, n int) (program.Factory, error) {
	return runner.NewFactory(name, n)
}

func f2(v float64) string    { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string    { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string      { return fmt.Sprintf("%d", v) }
func u64toa(v uint64) string { return fmt.Sprintf("%d", v) }

// E1LowerBound — Theorem 7.5. For each n, sweep permutations through the
// verified pipeline and report max C(α_π). The shape check: the max cost,
// normalized by n·log₂ n, stays above a fixed constant (the cost grows at
// least as fast as n log n), and for exhaustive sweeps max |E_π| ≥ log₂ n!.
func E1LowerBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Ω(n log n) lower bound via the counting argument",
		Claim:  "Theorem 7.5: some canonical execution has C(α_π) = Ω(n log n)",
		Header: []string{"algo", "n", "perms", "sweep", "maxCost", "maxCost/(n·lg n)", "maxBits", "lg(n!)"},
		Pass:   true,
	}
	type job struct {
		algo       string
		n, k       int
		exhaustive bool
	}
	jobs := []job{
		{"yang-anderson", 2, 0, true}, {"yang-anderson", 3, 0, true},
		{"yang-anderson", 4, 0, true}, {"yang-anderson", 5, 0, true},
		{"peterson", 4, 0, true},
		{"yang-anderson", 8, 24, false}, {"yang-anderson", 12, 12, false},
	}
	if !cfg.Quick {
		jobs = append(jobs,
			job{"yang-anderson", 6, 0, true},
			job{"bakery", 5, 0, true},
			job{"yang-anderson", 16, 10, false},
			job{"yang-anderson", 24, 6, false},
			job{"yang-anderson", 32, 4, false},
		)
	}
	eng := cfg.eng()
	type out struct {
		kind  string
		stats core.SweepStats
	}
	err := runner.MapOrdered(eng.Engine, len(jobs), func(i int) (out, error) {
		j := jobs[i]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return out{}, err
		}
		o := out{kind: "sample"}
		if j.exhaustive {
			o.kind = "all S_n"
			o.stats, err = core.ExhaustiveSweepCached(eng, f)
		} else {
			o.stats, err = core.SweepCached(eng, f, perm.Sample(j.n, j.k, cfg.Seed+int64(j.n)))
		}
		if err != nil {
			return out{}, fmt.Errorf("E1 %s n=%d: %w", j.algo, j.n, err)
		}
		return o, nil
	}, func(i int, o out) error {
		j := jobs[i]
		lgFact := perm.Log2Factorial(j.n)
		ratio := float64(o.stats.MaxCost) / perm.NLogN(j.n)
		t.Rows = append(t.Rows, []string{
			j.algo, itoa(j.n), itoa(o.stats.Perms), o.kind, itoa(o.stats.MaxCost),
			f2(ratio), itoa(o.stats.MaxBits), f1(lgFact),
		})
		if ratio < 0.5 {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: max cost ratio %.2f below 0.5 — cost not growing like n log n", j.algo, j.n, ratio))
		}
		if j.exhaustive && float64(o.stats.MaxBits) < lgFact {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: max bits %d below log2(n!)=%.1f — impossible for an injective encoding", j.algo, j.n, o.stats.MaxBits, lgFact))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"every row passed the full pipeline verification (Theorems 5.5, 6.2, 7.4; Lemma 6.1)",
		"maxBits ≥ lg(n!) is the information-theoretic floor; maxCost tracks n·lg n, the Ω(n log n) of the title")
	return t, nil
}

// E2YangAndersonTightness — the bound is tight: Yang–Anderson's SC cost in
// canonical executions is O(n log n) under every scheduler tried.
func E2YangAndersonTightness(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Yang–Anderson O(n log n) tightness",
		Claim:  "§1/§2: Yang–Anderson [13] has O(n log n) SC cost in all canonical executions",
		Header: []string{"n", "scheduler", "SC", "SC/(n·lg n)", "accesses", "CC-RMR", "DSM-RMR"},
		Pass:   true,
	}
	ns := []int{2, 4, 8, 16, 32, 64}
	if !cfg.Quick {
		ns = append(ns, 128, 256)
	}
	var jobs []runner.Job
	for _, n := range ns {
		for _, spec := range []machine.Spec{
			machine.RoundRobinSpec(),
			machine.RandomSpec(cfg.Seed + int64(n)),
			machine.ProgressFirstSpec(),
		} {
			jobs = append(jobs, runner.Job{Algo: "yang-anderson", N: n, Sched: spec})
		}
	}
	const bound = 12.0
	err := cfg.eng().Run(jobs, func(r runner.Result) error {
		if r.Err != nil {
			return fmt.Errorf("E2 n=%d %s: %w", r.Job.N, r.Job.Sched, r.Err)
		}
		n := r.Job.N
		ratio := float64(r.Report.SC) / perm.NLogN(n)
		t.Rows = append(t.Rows, []string{
			itoa(n), r.Job.Sched.String(), itoa(r.Report.SC), f2(ratio),
			itoa(r.Report.SharedAccesses), itoa(r.Report.CCRMR), itoa(r.Report.DSMRMR),
		})
		if ratio > bound {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("n=%d %s: SC/(n lg n)=%.2f exceeds %.0f", n, r.Job.Sched, ratio, bound))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("tightness: the ratio stays below %.0f at every n — O(n log n), matching the lower bound", 12.0))
	return t, nil
}

// E3EntryOrder — Theorem 5.5: every linearization of the constructed
// (M_i, ≼_i) has critical sections in π order.
func E3EntryOrder(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "construction forces critical-section order π",
		Claim:  "Theorem 5.5: in any linearization of (M_i, ≼_i), processes enter in π order",
		Header: []string{"algo", "n", "perms", "linearizations", "violations"},
		Pass:   true,
	}
	type job struct {
		algo string
		n, k int // k random perms (0 = exhaustive)
	}
	jobs := []job{{"yang-anderson", 3, 0}, {"peterson", 3, 0}, {"bakery", 3, 0}, {"yang-anderson", 8, 6}}
	if !cfg.Quick {
		jobs = append(jobs, job{"yang-anderson", 4, 0}, job{"bakery", 4, 0}, job{"yang-anderson", 16, 3}, job{"bakery", 12, 3})
	}
	eng := cfg.eng()
	// count is a cached unit value: exported pure fields, exact JSON
	// round-trip.
	type count struct {
		Lins int `json:"l"`
		Bad  int `json:"b"`
	}
	type out struct {
		perms int
		count
	}
	err := runner.MapOrdered(eng.Engine, len(jobs), func(ri int) (out, error) {
		j := jobs[ri]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return out{}, err
		}
		var perms [][]int
		if j.k == 0 {
			perm.ForEach(j.n, func(pi []int) bool {
				perms = append(perms, append([]int(nil), pi...))
				return true
			})
		} else {
			perms = perm.Sample(j.n, j.k, cfg.Seed+int64(j.n))
		}
		o := out{perms: len(perms)}
		key := func(pi int) string {
			return ukey(struct {
				Op   string `json:"op"`
				Algo string `json:"algo"`
				N    int    `json:"n"`
				Perm []int  `json:"perm"`
				Seed int64  `json:"seed"`
				Row  int    `json:"row"`
				Idx  int    `json:"idx"`
			}{"E3", j.algo, j.n, perms[pi], cfg.Seed, ri, pi})
		}
		err = runner.CachedMap(eng, len(perms), key, func(pi int) (count, error) {
			p, err := core.Run(f, perms[pi])
			if err != nil {
				return count{}, fmt.Errorf("E3 %s n=%d pi=%v: %w", j.algo, j.n, perms[pi], err)
			}
			// core.Run already verified the decoded linearization; try
			// extra random linearizations of the same set, from an rng
			// addressed by this job's coordinates.
			rng := rand.New(rand.NewSource(runner.MixSeed(cfg.Seed, 3, int64(ri), int64(pi))))
			var c count
			for k := 0; k < 3; k++ {
				alpha, err := p.Result.Set.Lin(rng)
				if err != nil {
					return c, err
				}
				c.Lins++
				if !orderMatches(alpha.EntryOrder(), perms[pi]) {
					c.Bad++
				}
			}
			return c, nil
		}, func(_ int, c count) error {
			o.Lins += c.Lins
			o.Bad += c.Bad
			return nil
		})
		return o, err
	}, func(ri int, o out) error {
		j := jobs[ri]
		t.Rows = append(t.Rows, []string{j.algo, itoa(j.n), itoa(o.perms), itoa(o.Lins), itoa(o.Bad)})
		if o.Bad > 0 {
			t.Pass = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func orderMatches(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// E4EncodingLength — Theorem 6.2: |E_π| = O(C(α_π)). The bits-per-cost
// ratio stays bounded as n grows.
func E4EncodingLength(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "encoding length proportional to execution cost",
		Claim:  "Theorem 6.2: |E_π| = O(C), bits per unit cost bounded",
		Header: []string{"algo", "n", "perms", "meanBits", "meanCost", "max bits/cost"},
		Pass:   true,
	}
	const bound = 9.0
	ns := []int{2, 4, 8, 12}
	if !cfg.Quick {
		ns = append(ns, 16, 24, 32)
	}
	type job struct {
		algo string
		n    int
	}
	var jobs []job
	for _, name := range []string{"yang-anderson", "bakery"} {
		for _, n := range ns {
			jobs = append(jobs, job{name, n})
		}
	}
	eng := cfg.eng()
	err := runner.MapOrdered(eng.Engine, len(jobs), func(i int) (core.SweepStats, error) {
		j := jobs[i]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return core.SweepStats{}, err
		}
		stats, err := core.SweepCached(eng, f, perm.Sample(j.n, 6, cfg.Seed+int64(j.n)))
		if err != nil {
			return stats, fmt.Errorf("E4 %s n=%d: %w", j.algo, j.n, err)
		}
		return stats, nil
	}, func(i int, stats core.SweepStats) error {
		j := jobs[i]
		t.Rows = append(t.Rows, []string{
			j.algo, itoa(j.n), itoa(stats.Perms), f1(stats.MeanBits()), f1(stats.MeanCost()), f2(stats.MaxBitsPerCost),
		})
		if stats.MaxBitsPerCost > bound {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: bits/cost=%.2f exceeds %.0f", j.algo, j.n, stats.MaxBitsPerCost, bound))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "the ratio *decreases* with n: the per-metastep signature overhead amortizes, exactly as the Theorem 6.2 accounting predicts")
	return t, nil
}

// E5DecodeInjectivity — Theorem 7.4 plus the injectivity step of
// Theorem 7.5: decoding is exact and distinct permutations give distinct
// executions, n! in total.
func E5DecodeInjectivity(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "decode round-trip and n! distinct executions",
		Claim:  "Theorem 7.4: Decode(E_π) is a linearization of (M, ≼); {α_π} are pairwise distinct",
		Header: []string{"algo", "n", "n!", "decoded", "distinct"},
		Pass:   true,
	}
	maxN := 5
	if !cfg.Quick {
		maxN = 6
	}
	type job struct {
		algo string
		n    int
	}
	var jobs []job
	for _, name := range []string{"yang-anderson", "peterson", "bakery"} {
		for n := 2; n <= maxN; n++ {
			if name != "yang-anderson" && n > 4 && cfg.Quick {
				continue
			}
			jobs = append(jobs, job{name, n})
		}
	}
	eng := cfg.eng()
	err := runner.MapOrdered(eng.Engine, len(jobs), func(i int) (core.SweepStats, error) {
		j := jobs[i]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return core.SweepStats{}, err
		}
		stats, err := core.ExhaustiveSweepCached(eng, f)
		if err != nil {
			return stats, fmt.Errorf("E5 %s n=%d: %w", j.algo, j.n, err)
		}
		return stats, nil
	}, func(i int, stats core.SweepStats) error {
		j := jobs[i]
		t.Rows = append(t.Rows, []string{j.algo, itoa(j.n), u64toa(perm.Factorial(j.n)), itoa(stats.Perms), itoa(stats.Distinct)})
		if stats.Distinct != stats.Perms {
			t.Pass = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E6LinearizationCost — Lemma 6.1: every linearization of one (M, ≼) has
// the same SC cost.
func E6LinearizationCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "linearization cost invariance",
		Claim:  "Lemma 6.1: all linearizations of (M, ≼) have equal SC cost",
		Header: []string{"algo", "n", "perms", "linearizations/perm", "distinct costs"},
		Pass:   true,
	}
	ns := []int{3, 5}
	if !cfg.Quick {
		ns = append(ns, 8, 12)
	}
	type job struct {
		algo string
		n    int
	}
	var jobs []job
	for _, name := range []string{"yang-anderson", "bakery"} {
		for _, n := range ns {
			jobs = append(jobs, job{name, n})
		}
	}
	const trials = 4
	const perPerm = 12
	eng := cfg.eng()
	err := runner.MapOrdered(eng.Engine, len(jobs), func(ri int) (int, error) {
		j := jobs[ri]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return 0, err
		}
		worst := 1
		key := func(trial int) string {
			return ukey(struct {
				Op    string `json:"op"`
				Algo  string `json:"algo"`
				N     int    `json:"n"`
				Seed  int64  `json:"seed"`
				Row   int    `json:"row"`
				Trial int    `json:"trial"`
			}{"E6", j.algo, j.n, cfg.Seed, ri, trial})
		}
		err = runner.CachedMap(eng, trials, key, func(trial int) (int, error) {
			// Each trial draws its permutation and its linearizations from
			// an rng addressed by (experiment, row, trial).
			rng := rand.New(rand.NewSource(runner.MixSeed(cfg.Seed, 6, int64(ri), int64(trial))))
			pi := perm.Random(j.n, rng)
			p, err := core.Run(f, pi)
			if err != nil {
				return 0, fmt.Errorf("E6 %s n=%d: %w", j.algo, j.n, err)
			}
			costs := map[int]bool{p.Cost: true}
			for k := 0; k < perPerm; k++ {
				alpha, err := p.Result.Set.Lin(rng)
				if err != nil {
					return 0, err
				}
				c, err := cost.SCCost(f, alpha)
				if err != nil {
					return 0, err
				}
				costs[c] = true
			}
			return len(costs), nil
		}, func(_ int, distinct int) error {
			if distinct > worst {
				worst = distinct
			}
			return nil
		})
		return worst, err
	}, func(ri int, worst int) error {
		j := jobs[ri]
		t.Rows = append(t.Rows, []string{j.algo, itoa(j.n), itoa(trials), itoa(perPerm), itoa(worst)})
		if worst != 1 {
			t.Pass = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E7AlgorithmComparison — the related-work positioning (§2): canonical SC
// cost of bakery grows quadratically, Yang–Anderson quasi-linearly, and the
// RMW-based MCS linearly — the hierarchy the lower bound separates.
func E7AlgorithmComparison(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "algorithm cost comparison (canonical executions, progress-first scheduler)",
		Claim:  "§2: local-spin tournament O(n log n) vs bakery Θ(n²); RMW (MCS) reaches O(n)",
		Header: []string{"algo", "n", "SC", "SC/n", "SC/(n·lg n)", "SC/n²", "CC-RMR", "DSM-RMR"},
		Pass:   true,
	}
	ns := []int{4, 8, 16, 32}
	if !cfg.Quick {
		ns = append(ns, 64, 128)
	}
	var jobs []runner.Job
	for _, name := range []string{"yang-anderson", "peterson", "bakery", "dijkstra", "filter", "tas", "mcs"} {
		for _, n := range ns {
			if (name == "filter" || name == "dijkstra") && n > 32 {
				continue // Θ(n²)-per-passage algorithms: keep the sweep fast
			}
			jobs = append(jobs, runner.Job{Algo: name, N: n, Sched: machine.ProgressFirstSpec()})
		}
	}
	sc := map[string]map[int]int{}
	err := cfg.eng().Run(jobs, func(r runner.Result) error {
		if r.Err != nil {
			return fmt.Errorf("E7 %s n=%d: %w", r.Job.Algo, r.Job.N, r.Err)
		}
		name, n := r.Job.Algo, r.Job.N
		if sc[name] == nil {
			sc[name] = map[int]int{}
		}
		sc[name][n] = r.Report.SC
		t.Rows = append(t.Rows, []string{
			name, itoa(n), itoa(r.Report.SC),
			f2(float64(r.Report.SC) / float64(n)),
			f2(float64(r.Report.SC) / perm.NLogN(n)),
			f2(float64(r.Report.SC) / float64(n*n)),
			itoa(r.Report.CCRMR), itoa(r.Report.DSMRMR),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Shape checks at the largest n: bakery superlinear vs YA; MCS linear.
	nBig := ns[len(ns)-1]
	ya := float64(sc["yang-anderson"][nBig])
	bak := float64(sc["bakery"][nBig])
	mcs := float64(sc["mcs"][nBig])
	if bak < 2*ya {
		t.Pass = false
		t.Notes = append(t.Notes, fmt.Sprintf("n=%d: bakery SC=%.0f not clearly above yang-anderson SC=%.0f", nBig, bak, ya))
	}
	if mcs > ya {
		t.Pass = false
		t.Notes = append(t.Notes, fmt.Sprintf("n=%d: MCS SC=%.0f should beat yang-anderson SC=%.0f (RMW beats registers)", nBig, mcs, ya))
	}
	t.Notes = append(t.Notes, "who wins: mcs (RMW, O(n)) < yang-anderson (O(n log n)) < bakery (Θ(n²)) — the separation the paper proves cannot be closed with registers")
	return t, nil
}

// E8BusywaitFree — the Alur–Taubenfeld contrast [1]: under an adversary
// that parks the critical-section occupant, total shared accesses grow
// without bound while SC cost does not change at all.
func E8BusywaitFree(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "busywaiting is free in the SC model",
		Claim:  "§3.3/[1]: total accesses are unbounded; the SC model charges busywait reads once per state change",
		Header: []string{"delay", "steps", "accesses", "SC", "CC-RMR"},
		Pass:   true,
	}
	const n = 8
	delays := []int{0, 8, 64, 512}
	if !cfg.Quick {
		delays = append(delays, 4096)
	}
	jobs := make([]runner.Job, len(delays))
	for i, delay := range delays {
		jobs[i] = runner.Job{Algo: "yang-anderson", N: n, Sched: machine.HoldCSSpec(delay), Horizon: 40_000_000}
	}
	var scAt0 int
	err := cfg.eng().Run(jobs, func(r runner.Result) error {
		delay := r.Job.Sched.Delay
		if r.Err != nil {
			return fmt.Errorf("E8 delay=%d: %w", delay, r.Err)
		}
		if delay == 0 {
			scAt0 = r.Report.SC
		}
		t.Rows = append(t.Rows, []string{itoa(delay), itoa(r.Report.Steps), itoa(r.Report.SharedAccesses), itoa(r.Report.SC), itoa(r.Report.CCRMR)})
		if r.Report.SC != scAt0 {
			// SC may differ slightly across schedules; the requirement is
			// boundedness, not exact equality.
			if float64(r.Report.SC) > 1.5*float64(scAt0)+8 {
				t.Pass = false
				t.Notes = append(t.Notes, fmt.Sprintf("delay=%d: SC=%d grew with the delay (scAt0=%d)", delay, r.Report.SC, scAt0))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "accesses grow ~linearly with the hold delay; SC stays flat: exactly the discount the model is designed to give local spinning")
	return t, nil
}

// E9InformationBound — the counting core: over all of S_n, the *maximum*
// encoding length must reach log₂(n!) bits (and the average is Ω(n log n)
// too, footnote 10).
func E9InformationBound(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "measured encoding lengths vs the log₂(n!) floor",
		Claim:  "Theorem 7.5 proof: an injective encoding of S_n needs max (and mean) ≥ log₂ n! bits",
		Header: []string{"n", "n!", "lg(n!)", "n·lg n", "meanBits", "maxBits", "maxBits/lg(n!)"},
		Pass:   true,
	}
	maxN := 5
	if !cfg.Quick {
		maxN = 6
	}
	ns := make([]int, 0, maxN-1)
	for n := 2; n <= maxN; n++ {
		ns = append(ns, n)
	}
	eng := cfg.eng()
	err := runner.MapOrdered(eng.Engine, len(ns), func(i int) (core.SweepStats, error) {
		n := ns[i]
		f, err := algo("yang-anderson", n)
		if err != nil {
			return core.SweepStats{}, err
		}
		stats, err := core.ExhaustiveSweepCached(eng, f)
		if err != nil {
			return stats, fmt.Errorf("E9 n=%d: %w", n, err)
		}
		return stats, nil
	}, func(i int, stats core.SweepStats) error {
		n := ns[i]
		lg := perm.Log2Factorial(n)
		t.Rows = append(t.Rows, []string{
			itoa(n), u64toa(perm.Factorial(n)), f1(lg), f1(perm.NLogN(n)),
			f1(stats.MeanBits()), itoa(stats.MaxBits), f2(float64(stats.MaxBits) / lg),
		})
		if float64(stats.MaxBits) < lg {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("n=%d: maxBits=%d below lg(n!)=%.1f — encoding cannot be injective", n, stats.MaxBits, lg))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "the measured encodings sit far above the floor (the constant is generous); the floor is what forces Ω(n log n)")
	return t, nil
}

// Lemma52Acyclicity is an extra mechanical check used by tests: the
// explicit ≼ edges of a construction form a DAG.
func Lemma52Acyclicity(s *metastep.Set) error { return s.CheckAcyclic() }
