package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/perm"
)

// E13FoundWorst — the operational version of the paper's adversary. The
// Ω(n log n) proof *constructs* expensive canonical executions; E9–E12 only
// measure the five hand-written policies, so their lower-bound curves are
// only as adversarial as those heuristics. Here the schedule search of
// internal/adversary hunts for cost-maximizing executions directly and two
// shapes are checked:
//
//   - floor: the found-worst cost is ≥ the best fixed policy at equal n for
//     every algorithm (the fixed policies seed the candidate pool, so a
//     regression here means search scored a truncated run — the failure
//     mode ErrStalled exists to prevent);
//   - growth: for yang-anderson the found-worst cost normalized by n·lg n
//     stays above the E1 constant, i.e. searching harder than the fixed
//     policies keeps the empirical curve on (or above) the theory curve.
func E13FoundWorst(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "schedule search: empirically-worst canonical cost vs fixed policies and n·lg n",
		Claim:  "Theorem 7.5 operationally: searched-for executions cost at least the best fixed policy, tracking Ω(n log n)",
		Header: []string{"algo", "n", "fixed best", "policy", "found worst", "origin", "found/fixed", "found/(n·lg n)", "evaluated"},
		Pass:   true,
	}
	type cell struct {
		algo string
		n    int
	}
	algos := []string{"yang-anderson", "bakery"}
	ns := []int{4, 8}
	search := adversary.Quick()
	if !cfg.Quick {
		algos = append(algos, "peterson", "tas")
		ns = append(ns, 12)
		search = adversary.Config{}
	}
	search.Seed = cfg.Seed
	var cells []cell
	for _, a := range algos {
		for _, n := range ns {
			cells = append(cells, cell{a, n})
		}
	}
	// Cells run sequentially; each search fans its candidate evaluations
	// out over the engine, and is deterministic at every worker count.
	eng := cfg.eng()
	for _, c := range cells {
		if eng.Priming() {
			// The search is adaptive (round r depends on round r-1), so the
			// shard granule is the whole (algo, n) cell: one shard runs and
			// caches each search rather than every shard repeating it.
			cellKey := ukey(struct {
				Op    string `json:"op"`
				Algo  string `json:"algo"`
				N     int    `json:"n"`
				Seed  int64  `json:"seed"`
				Quick bool   `json:"quick"`
			}{"E13-cell", c.algo, c.n, cfg.Seed, cfg.Quick})
			if !eng.Owns(cellKey) {
				continue
			}
		}
		found, err := adversary.SearchWorst(eng, c.algo, c.n, search)
		if err != nil {
			return nil, fmt.Errorf("E13 %s n=%d: %w", c.algo, c.n, err)
		}
		fixed, ok := found.FixedBest()
		if !ok {
			return nil, fmt.Errorf("E13 %s n=%d: no fixed policy completed a canonical run", c.algo, c.n)
		}
		ratioFixed := float64(found.Report.SC) / float64(fixed.Report.SC)
		ratioNLogN := float64(found.Report.SC) / perm.NLogN(c.n)
		t.Rows = append(t.Rows, []string{
			c.algo, itoa(c.n), itoa(fixed.Report.SC), fixed.Name,
			itoa(found.Report.SC), found.Origin,
			f2(ratioFixed), f2(ratioNLogN), itoa(found.Evaluated),
		})
		if found.Report.SC < fixed.Report.SC {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: found worst %d below best fixed policy %d", c.algo, c.n, found.Report.SC, fixed.Report.SC))
		}
		if c.algo == "yang-anderson" && ratioNLogN < 0.5 {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("yang-anderson n=%d: found worst / (n·lg n) = %.2f below 0.5 — search fell under the theory curve", c.n, ratioNLogN))
		}
	}
	t.Notes = append(t.Notes,
		"found/fixed ≥ 1 by construction (fixed policies seed the pool); > 1 means search found a schedule no hand-written policy produces",
		"truncated or stalled candidates are discarded (machine.ErrStalled), never scored as cheap executions")
	return t, nil
}
