package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/encode"
	"repro/internal/perm"
	"repro/internal/runner"
)

// E10CCExtension — Section 8 claims the proof technique "extends with minor
// modifications to the cache coherent cost model". We measure the
// constructed executions α_π under the CC-RMR model and check their cost
// tracks the SC cost within a constant — evidence the same executions
// witness an Ω(n log n) bound in the CC model.
func E10CCExtension(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "constructed executions under the cache-coherent model",
		Claim:  "§8: the lower bound technique extends to the CC model; α_π's CC-RMR cost tracks its SC cost",
		Header: []string{"algo", "n", "perms", "maxSC", "maxCC", "CC/SC min", "CC/SC max"},
		Pass:   true,
	}
	ns := []int{2, 4, 8}
	if !cfg.Quick {
		ns = append(ns, 12, 16, 24)
	}
	type job struct {
		algo string
		n    int
	}
	var jobs []job
	for _, name := range []string{"yang-anderson", "bakery"} {
		for _, n := range ns {
			jobs = append(jobs, job{name, n})
		}
	}
	type rowOut struct {
		perms        int
		maxSC, maxCC int
		minR, maxR   float64
	}
	// permOut is a cached unit value: exported pure fields, exact JSON
	// round-trip.
	type permOut struct {
		SC int `json:"sc"`
		CC int `json:"cc"`
	}
	eng := cfg.eng()
	err := runner.MapOrdered(eng.Engine, len(jobs), func(ri int) (rowOut, error) {
		j := jobs[ri]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return rowOut{}, err
		}
		perms := perm.Sample(j.n, 6, cfg.Seed+int64(j.n)*31)
		o := rowOut{perms: len(perms), minR: 1e9}
		key := func(pi int) string {
			return ukey(struct {
				Op   string `json:"op"`
				Algo string `json:"algo"`
				N    int    `json:"n"`
				Perm []int  `json:"perm"`
			}{"E10", j.algo, j.n, perms[pi]})
		}
		err = runner.CachedMap(eng, len(perms), key, func(pi int) (permOut, error) {
			p, err := core.Run(f, perms[pi])
			if err != nil {
				return permOut{}, fmt.Errorf("E10 %s n=%d: %w", j.algo, j.n, err)
			}
			rep, err := cost.Measure(f, p.Decoded)
			if err != nil {
				return permOut{}, err
			}
			return permOut{SC: rep.SC, CC: rep.CCRMR}, nil
		}, func(_ int, po permOut) error {
			if po.SC > o.maxSC {
				o.maxSC = po.SC
			}
			if po.CC > o.maxCC {
				o.maxCC = po.CC
			}
			ratio := float64(po.CC) / float64(po.SC)
			if ratio < o.minR {
				o.minR = ratio
			}
			if ratio > o.maxR {
				o.maxR = ratio
			}
			return nil
		})
		return o, err
	}, func(ri int, o rowOut) error {
		j := jobs[ri]
		t.Rows = append(t.Rows, []string{
			j.algo, itoa(j.n), itoa(o.perms), itoa(o.maxSC), itoa(o.maxCC), f2(o.minR), f2(o.maxR),
		})
		// Tracking within a constant both ways: CC is neither vanishing
		// nor exploding relative to SC.
		if o.minR < 0.2 || o.maxR > 5 {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: CC/SC ratio range [%.2f, %.2f] is not a constant factor", j.algo, j.n, o.minR, o.maxR))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "the CC-RMR cost of every constructed execution stays within a constant factor of its SC cost, so max_π CC(α_π) inherits the Ω(n log n) growth")
	return t, nil
}

// E11EncodingAblation — DESIGN.md design choice: cells use self-delimiting
// Elias-γ signature counts instead of fixed-width fields. The ablation
// recomputes |E_π| under two alternatives — fixed 16-bit counts, and the
// paper's human-readable character table (8 bits per character) — and
// shows the γ codec is the only one whose bits/cost constant stays small,
// while all three remain O(C) (the theorem does not depend on the codec).
func E11EncodingAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "encoding codec ablation (Elias-γ vs fixed-width vs character table)",
		Claim:  "Theorem 6.2's accounting: signature counts must cost O(log k), not O(1) machine words",
		Header: []string{"algo", "n", "γ bits", "fixed16 bits", "chars×8 bits", "γ/C", "fixed16/C", "chars/C"},
		Pass:   true,
	}
	ns := []int{4, 8, 16}
	if !cfg.Quick {
		ns = append(ns, 32)
	}
	type job struct {
		algo string
		n    int
	}
	var jobs []job
	for _, name := range []string{"yang-anderson", "bakery"} {
		for _, n := range ns {
			jobs = append(jobs, job{name, n})
		}
	}
	// out is a cached unit value: exported pure fields, exact JSON
	// round-trip.
	type out struct {
		Gamma int `json:"g"`
		Fixed int `json:"f"`
		Chars int `json:"ch"`
		Cost  int `json:"c"`
	}
	eng := cfg.eng()
	key := func(ri int) string {
		return ukey(struct {
			Op   string `json:"op"`
			Algo string `json:"algo"`
			N    int    `json:"n"`
			Seed int64  `json:"seed"`
		}{"E11", jobs[ri].algo, jobs[ri].n, cfg.Seed})
	}
	err := runner.CachedMap(eng, len(jobs), key, func(ri int) (out, error) {
		j := jobs[ri]
		f, err := algo(j.algo, j.n)
		if err != nil {
			return out{}, err
		}
		pi := perm.Sample(j.n, 1, cfg.Seed+int64(j.n))[0]
		p, err := core.Run(f, pi)
		if err != nil {
			return out{}, fmt.Errorf("E11 %s n=%d: %w", j.algo, j.n, err)
		}
		o := out{Gamma: p.Encoding.BitLen, Cost: p.Cost}
		for _, col := range p.Encoding.Columns {
			for _, c := range col {
				o.Fixed += 3
				o.Chars += 8 * len(c.String())
				if c.Tag == encode.TagWSig {
					o.Fixed += 3 * 16
				}
				o.Chars += 8 // '#' separator
			}
			o.Fixed += 3
			o.Chars += 8 // '$'
		}
		return o, nil
	}, func(ri int, o out) error {
		j := jobs[ri]
		t.Rows = append(t.Rows, []string{
			j.algo, itoa(j.n), itoa(o.Gamma), itoa(o.Fixed), itoa(o.Chars),
			f2(float64(o.Gamma) / float64(o.Cost)),
			f2(float64(o.Fixed) / float64(o.Cost)),
			f2(float64(o.Chars) / float64(o.Cost)),
		})
		if o.Gamma >= o.Fixed {
			t.Pass = false
			t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: γ encoding (%d bits) not smaller than fixed-width (%d)", j.algo, j.n, o.Gamma, o.Fixed))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"all three codecs are O(C) — the lower bound is codec-independent — but γ has the smallest constant",
		"fixed-width pays 48 bits per signature regardless of metastep size; γ pays 2·lg(k)+O(1), matching the paper's O(k) amortization")
	return t, nil
}
