package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/encode"
	"repro/internal/perm"
)

// E10CCExtension — Section 8 claims the proof technique "extends with minor
// modifications to the cache coherent cost model". We measure the
// constructed executions α_π under the CC-RMR model and check their cost
// tracks the SC cost within a constant — evidence the same executions
// witness an Ω(n log n) bound in the CC model.
func E10CCExtension(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "constructed executions under the cache-coherent model",
		Claim:  "§8: the lower bound technique extends to the CC model; α_π's CC-RMR cost tracks its SC cost",
		Header: []string{"algo", "n", "perms", "maxSC", "maxCC", "CC/SC min", "CC/SC max"},
		Pass:   true,
	}
	ns := []int{2, 4, 8}
	if !cfg.Quick {
		ns = append(ns, 12, 16, 24)
	}
	for _, name := range []string{"yang-anderson", "bakery"} {
		for _, n := range ns {
			f, err := algo(name, n)
			if err != nil {
				return nil, err
			}
			perms := perm.Sample(n, 6, cfg.Seed+int64(n)*31)
			maxSC, maxCC := 0, 0
			minRatio, maxRatio := 1e9, 0.0
			for _, pi := range perms {
				p, err := core.Run(f, pi)
				if err != nil {
					return nil, fmt.Errorf("E10 %s n=%d: %w", name, n, err)
				}
				rep, err := cost.Measure(f, p.Decoded)
				if err != nil {
					return nil, err
				}
				if rep.SC > maxSC {
					maxSC = rep.SC
				}
				if rep.CCRMR > maxCC {
					maxCC = rep.CCRMR
				}
				ratio := float64(rep.CCRMR) / float64(rep.SC)
				if ratio < minRatio {
					minRatio = ratio
				}
				if ratio > maxRatio {
					maxRatio = ratio
				}
			}
			t.Rows = append(t.Rows, []string{
				name, itoa(n), itoa(len(perms)), itoa(maxSC), itoa(maxCC), f2(minRatio), f2(maxRatio),
			})
			// Tracking within a constant both ways: CC is neither vanishing
			// nor exploding relative to SC.
			if minRatio < 0.2 || maxRatio > 5 {
				t.Pass = false
				t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: CC/SC ratio range [%.2f, %.2f] is not a constant factor", name, n, minRatio, maxRatio))
			}
		}
	}
	t.Notes = append(t.Notes, "the CC-RMR cost of every constructed execution stays within a constant factor of its SC cost, so max_π CC(α_π) inherits the Ω(n log n) growth")
	return t, nil
}

// E11EncodingAblation — DESIGN.md design choice: cells use self-delimiting
// Elias-γ signature counts instead of fixed-width fields. The ablation
// recomputes |E_π| under two alternatives — fixed 16-bit counts, and the
// paper's human-readable character table (8 bits per character) — and
// shows the γ codec is the only one whose bits/cost constant stays small,
// while all three remain O(C) (the theorem does not depend on the codec).
func E11EncodingAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "encoding codec ablation (Elias-γ vs fixed-width vs character table)",
		Claim:  "Theorem 6.2's accounting: signature counts must cost O(log k), not O(1) machine words",
		Header: []string{"algo", "n", "γ bits", "fixed16 bits", "chars×8 bits", "γ/C", "fixed16/C", "chars/C"},
		Pass:   true,
	}
	ns := []int{4, 8, 16}
	if !cfg.Quick {
		ns = append(ns, 32)
	}
	for _, name := range []string{"yang-anderson", "bakery"} {
		for _, n := range ns {
			f, err := algo(name, n)
			if err != nil {
				return nil, err
			}
			pi := perm.Sample(n, 1, cfg.Seed+int64(n))[0]
			p, err := core.Run(f, pi)
			if err != nil {
				return nil, fmt.Errorf("E11 %s n=%d: %w", name, n, err)
			}
			gamma := p.Encoding.BitLen
			fixed, chars := 0, 0
			for _, col := range p.Encoding.Columns {
				for _, c := range col {
					fixed += 3
					chars += 8 * len(c.String())
					if c.Tag == encode.TagWSig {
						fixed += 3 * 16
					}
					chars += 8 // '#' separator
				}
				fixed += 3
				chars += 8 // '$'
			}
			t.Rows = append(t.Rows, []string{
				name, itoa(n), itoa(gamma), itoa(fixed), itoa(chars),
				f2(float64(gamma) / float64(p.Cost)),
				f2(float64(fixed) / float64(p.Cost)),
				f2(float64(chars) / float64(p.Cost)),
			})
			if gamma >= fixed {
				t.Pass = false
				t.Notes = append(t.Notes, fmt.Sprintf("%s n=%d: γ encoding (%d bits) not smaller than fixed-width (%d)", name, n, gamma, fixed))
			}
		}
	}
	t.Notes = append(t.Notes,
		"all three codecs are O(C) — the lower bound is codec-independent — but γ has the smallest constant",
		"fixed-width pays 48 bits per signature regardless of metastep size; γ pays 2·lg(k)+O(1), matching the paper's O(k) amortization")
	return t, nil
}
