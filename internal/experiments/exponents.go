package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/stats"
)

// E12GrowthExponents — the quantitative version of the §2 positioning and
// of the bound itself: fit measured canonical SC costs to power laws
// SC ≈ a·n^k and report the exponent per algorithm. The paper's claims
// translate to exponent bands:
//
//	mcs (RMW queue lock)    Θ(n)        k ≈ 1 (queue handoff: O(1)/passage)
//	tas (RMW test-and-set)  Θ(n²)       k ≈ 2 (every release wakes all waiters)
//	yang-anderson           Θ(n log n)  1 < k ≤ 1.45 over this n range (the
//	                                    log factor inflates a finite-range
//	                                    power fit; the direct c·n·lg n fit
//	                                    below is the sharper test)
//	bakery                  Θ(n²)       k ≈ 2
//	dijkstra                Ω(n²)       k in [1.8, 3] (restart-prone doorway)
//	filter                  ~n³ log-ish k ≈ 3.6 at these n (n passages ×
//	                                    Θ(n²) scans × re-checks)
//
// Yang–Anderson is additionally fit to c·n·lg n, whose relative deviation
// must stay small — the signature distinguishing n log n from any pure
// power in this range.
func E12GrowthExponents(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "fitted growth exponents of canonical SC cost",
		Claim:  "Θ-claims of §1/§2 as measured exponents: 1 (RMW) vs ~1.1 (n log n) vs 2 (bakery) vs 3 (filter)",
		Header: []string{"algo", "n range", "fit SC ≈ a·n^k", "k", "band", "ok"},
		Pass:   true,
	}
	type band struct {
		lo, hi float64
		ns     []int
	}
	nsBig := []int{4, 8, 16, 32, 64, 128}
	nsMid := []int{4, 8, 16, 32, 64}
	nsSmall := []int{4, 8, 16, 32}
	// On the truncated quick range the log factor inflates Yang–Anderson's
	// finite-range power fit further (lg n spans 2..5 instead of 2..7), so
	// the band's ceiling moves with the range.
	yaHi := 1.45
	if cfg.Quick {
		nsBig = nsSmall
		nsMid = nsSmall
		yaHi = 1.55
	}
	cases := []struct {
		algo string
		band band
	}{
		{"mcs", band{0.9, 1.1, nsBig}},
		{"tas", band{1.6, 2.2, nsBig}},
		{"yang-anderson", band{1.0, yaHi, nsBig}},
		{"bakery", band{1.8, 2.2, nsMid}},
		{"dijkstra", band{1.8, 3.0, nsSmall}},
		{"filter", band{2.5, 3.8, nsSmall}},
	}
	// One canonical-execution job per (algorithm, n); the fold collects the
	// measured SC costs per case in submission order, so the fitted points
	// are ordered by n exactly as the sequential loops produced them.
	type coord struct{ ci, n int }
	var coords []coord
	var jobs []runner.Job
	for ci, c := range cases {
		for _, n := range c.band.ns {
			coords = append(coords, coord{ci, n})
			jobs = append(jobs, runner.Job{Algo: c.algo, N: n, Sched: machine.ProgressFirstSpec()})
		}
	}
	pts := make([][]stats.Point, len(cases))
	err := cfg.eng().Run(jobs, func(r runner.Result) error {
		if r.Err != nil {
			return fmt.Errorf("E12 %s n=%d: %w", r.Job.Algo, r.Job.N, r.Err)
		}
		c := coords[r.Index]
		pts[c.ci] = append(pts[c.ci], stats.Point{N: c.n, Value: float64(r.Report.SC)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ya []stats.Point
	for ci, c := range cases {
		fit, err := stats.FitPower(pts[ci])
		if err != nil {
			return nil, err
		}
		if c.algo == "yang-anderson" {
			ya = pts[ci]
		}
		ok := fit.Exponent >= c.band.lo && fit.Exponent <= c.band.hi
		if !ok {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			c.algo,
			fmt.Sprintf("%d..%d", c.band.ns[0], c.band.ns[len(c.band.ns)-1]),
			fit.String(),
			f2(fit.Exponent),
			fmt.Sprintf("[%.1f, %.1f]", c.band.lo, c.band.hi),
			fmt.Sprintf("%v", ok),
		})
	}
	// Yang–Anderson against c·n·lg n directly, reusing the measured points
	// (the scheduler is deterministic, so re-running would reproduce them).
	nlogn, err := stats.FitNLogN(ya)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("yang-anderson vs c·n·lg n: %s — the n·log n shape directly", nlogn))
	if nlogn.MaxDev > 0.25 {
		t.Pass = false
		t.Notes = append(t.Notes, fmt.Sprintf("n·lg n fit deviation %.0f%% too large", 100*nlogn.MaxDev))
	}
	t.Notes = append(t.Notes, "exponent ordering mcs < yang-anderson < bakery < filter is the separation the lower bound proves necessary")
	return t, nil
}
