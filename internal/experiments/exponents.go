package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/stats"
)

// E12GrowthExponents — the quantitative version of the §2 positioning and
// of the bound itself: fit measured canonical SC costs to power laws
// SC ≈ a·n^k and report the exponent per algorithm. The paper's claims
// translate to exponent bands:
//
//	mcs (RMW queue lock)    Θ(n)        k ≈ 1 (queue handoff: O(1)/passage)
//	tas (RMW test-and-set)  Θ(n²)       k ≈ 2 (every release wakes all waiters)
//	yang-anderson           Θ(n log n)  fit to the log-corrected model
//	                                    a·n^k·lg n, where k ≈ 1 on any n
//	                                    range; a pure power fit would absorb
//	                                    the log factor into a range-dependent
//	                                    inflated exponent, which is why this
//	                                    row gets the corrected model instead
//	                                    of a widened band
//	bakery                  Θ(n²)       k ≈ 2
//	dijkstra                Ω(n²)       k in [1.8, 3] (restart-prone doorway)
//	filter                  ~n³ log-ish k ≈ 3.6 at these n (n passages ×
//	                                    Θ(n²) scans × re-checks)
//
// Yang–Anderson is additionally fit to c·n·lg n, whose relative deviation
// must stay small — the signature distinguishing n log n from any pure
// power in this range.
func E12GrowthExponents(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "fitted growth exponents of canonical SC cost",
		Claim:  "Θ-claims of §1/§2 as measured exponents: 1 (RMW) vs ~1.1 (n log n) vs 2 (bakery) vs 3 (filter)",
		Header: []string{"algo", "n range", "fit SC ≈ a·n^k", "k", "band", "ok"},
		Pass:   true,
	}
	type band struct {
		lo, hi float64
		ns     []int
		// logCorrected selects the a·n^k·lg n model: the right null
		// hypothesis for a Θ(n log n) algorithm, and the fix that lets the
		// band stay tight on the quick range instead of being widened to
		// absorb the log factor (which masked real regressions).
		logCorrected bool
	}
	nsBig := []int{4, 8, 16, 32, 64, 128}
	nsMid := []int{4, 8, 16, 32, 64}
	nsSmall := []int{4, 8, 16, 32}
	if cfg.Quick {
		nsBig = nsSmall
		nsMid = nsSmall
	}
	cases := []struct {
		algo string
		band band
	}{
		{"mcs", band{0.9, 1.1, nsBig, false}},
		{"tas", band{1.6, 2.2, nsBig, false}},
		{"yang-anderson", band{0.85, 1.15, nsBig, true}},
		{"bakery", band{1.8, 2.2, nsMid, false}},
		{"dijkstra", band{1.8, 3.0, nsSmall, false}},
		{"filter", band{2.5, 3.8, nsSmall, false}},
	}
	// One canonical-execution job per (algorithm, n); the fold collects the
	// measured SC costs per case in submission order, so the fitted points
	// are ordered by n exactly as the sequential loops produced them.
	type coord struct{ ci, n int }
	var coords []coord
	var jobs []runner.Job
	for ci, c := range cases {
		for _, n := range c.band.ns {
			coords = append(coords, coord{ci, n})
			jobs = append(jobs, runner.Job{Algo: c.algo, N: n, Sched: machine.ProgressFirstSpec()})
		}
	}
	pts := make([][]stats.Point, len(cases))
	eng := cfg.eng()
	err := eng.Run(jobs, func(r runner.Result) error {
		if r.Err != nil {
			return fmt.Errorf("E12 %s n=%d: %w", r.Job.Algo, r.Job.N, r.Err)
		}
		c := coords[r.Index]
		pts[c.ci] = append(pts[c.ci], stats.Point{N: c.n, Value: float64(r.Report.SC)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if eng.Priming() {
		// A prime pass skips folds, so there are no measured points to fit;
		// the merged replay fits them from cache.
		return t, nil
	}
	var ya []stats.Point
	for ci, c := range cases {
		var fit stats.PowerFit
		var fitStr string
		var err error
		if c.band.logCorrected {
			if fit, err = stats.FitPowerLog(pts[ci]); err != nil {
				return nil, err
			}
			fitStr = fmt.Sprintf("%.3g·n^%.2f·lg n (R²=%.3f)", fit.Scale, fit.Exponent, fit.R2)
		} else {
			if fit, err = stats.FitPower(pts[ci]); err != nil {
				return nil, err
			}
			fitStr = fit.String()
		}
		if c.algo == "yang-anderson" {
			ya = pts[ci]
		}
		ok := fit.Exponent >= c.band.lo && fit.Exponent <= c.band.hi
		if !ok {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			c.algo,
			fmt.Sprintf("%d..%d", c.band.ns[0], c.band.ns[len(c.band.ns)-1]),
			fitStr,
			f2(fit.Exponent),
			fmt.Sprintf("[%.2f, %.2f]", c.band.lo, c.band.hi),
			fmt.Sprintf("%v", ok),
		})
	}
	// Yang–Anderson against c·n·lg n directly, reusing the measured points
	// (the scheduler is deterministic, so re-running would reproduce them).
	nlogn, err := stats.FitNLogN(ya)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("yang-anderson vs c·n·lg n: %s — the n·log n shape directly", nlogn))
	if nlogn.MaxDev > 0.25 {
		t.Pass = false
		t.Notes = append(t.Notes, fmt.Sprintf("n·lg n fit deviation %.0f%% too large", 100*nlogn.MaxDev))
	}
	t.Notes = append(t.Notes, "exponent ordering mcs < yang-anderson < bakery < filter is the separation the lower bound proves necessary")
	return t, nil
}
