package experiments_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/runner"
)

// TestParallelTablesByteIdentical is the engine's acceptance check: every
// experiment, run at -parallel 1 (the sequential path), 4, and 8, must
// produce byte-identical Table.Format() output. Quick scale keeps this
// affordable in every test mode.
func TestParallelTablesByteIdentical(t *testing.T) {
	workerCounts := []int{1, 4, 8}
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var want string
			for _, w := range workerCounts {
				cfg := experiments.Config{Quick: true, Seed: 20060723, Workers: w}
				tbl, err := e.Run(cfg)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", e.ID, w, err)
				}
				got := tbl.Format()
				if w == workerCounts[0] {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s: workers=%d output differs from workers=%d:\n--- workers=%d\n%s\n--- workers=%d\n%s",
						e.ID, w, workerCounts[0], workerCounts[0], want, w, got)
				}
			}
		})
	}
}

// TestParallelSweepStatsIdentical checks the core layer directly: SweepOn
// and ExhaustiveSweepOn aggregate to identical SweepStats at every worker
// count for fixed seeds.
func TestParallelSweepStatsIdentical(t *testing.T) {
	f, err := mutex.New(mutex.NameYangAnderson, 5)
	if err != nil {
		t.Fatal(err)
	}
	perms := perm.Sample(5, 40, 20060723)

	base, err := core.SweepOn(runner.New(1), f, perms)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := core.SweepOn(runner.New(w), f, perms)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got != base {
			t.Errorf("SweepOn workers=%d stats %+v differ from sequential %+v", w, got, base)
		}
	}

	exBase, err := core.ExhaustiveSweepOn(runner.New(1), f)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := core.ExhaustiveSweepOn(runner.New(w), f)
		if err != nil {
			t.Fatalf("exhaustive workers=%d: %v", w, err)
		}
		if got != exBase {
			t.Errorf("ExhaustiveSweepOn workers=%d stats %+v differ from sequential %+v", w, got, exBase)
		}
	}
}
