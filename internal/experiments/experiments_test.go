package experiments_test

import (
	"testing"

	"repro/internal/experiments"
)

// TestAllExperimentsPass runs every experiment (quick scale under -short)
// and requires a PASS verdict: each is a machine-check of a paper claim.
func TestAllExperimentsPass(t *testing.T) {
	cfg := experiments.Config{Quick: testing.Short(), Seed: 20060723} // the TR's date
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			t.Logf("\n%s", tbl.Format())
			if !tbl.Pass {
				t.Errorf("%s failed its shape check", e.ID)
			}
		})
	}
}
