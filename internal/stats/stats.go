// Package stats provides the small amount of statistics the experiment
// harness needs: least-squares fits of power laws (cost ≈ a·n^k) and of
// n·log n growth, used to turn cost sweeps into measured exponents that can
// be compared against the paper's Θ(·) claims.
package stats

import (
	"fmt"
	"math"
)

// Point is one (n, value) measurement.
type Point struct {
	N     int
	Value float64
}

// PowerFit is the result of fitting value ≈ a · n^k by least squares on
// log-log coordinates.
type PowerFit struct {
	Exponent float64 // k
	Scale    float64 // a
	R2       float64 // coefficient of determination in log space
}

// String renders the fit.
func (f PowerFit) String() string {
	return fmt.Sprintf("%.3g·n^%.2f (R²=%.3f)", f.Scale, f.Exponent, f.R2)
}

// FitPower fits value ≈ a·n^k over the points. It requires at least two
// points with positive n and value.
func FitPower(points []Point) (PowerFit, error) {
	var xs, ys []float64
	for _, p := range points {
		if p.N <= 0 || p.Value <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.N)))
		ys = append(ys, math.Log(p.Value))
	}
	if len(xs) < 2 {
		return PowerFit{}, fmt.Errorf("stats: need at least 2 positive points, have %d", len(xs))
	}
	slope, intercept, r2 := leastSquares(xs, ys)
	return PowerFit{Exponent: slope, Scale: math.Exp(intercept), R2: r2}, nil
}

// FitPowerLog fits value ≈ a · n^k · lg₂(n): the log-corrected power law.
// For a quantity that truly grows as Θ(n log n) the corrected exponent k
// stays ≈ 1 on any n range, whereas a pure power fit absorbs the log factor
// into an inflated, range-dependent exponent (lg n spans 2..5 on a
// truncated quick range vs 2..7 at full scale). Points need n ≥ 2 so the
// log correction is positive.
func FitPowerLog(points []Point) (PowerFit, error) {
	var xs, ys []float64
	for _, p := range points {
		if p.N < 2 || p.Value <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.N)))
		ys = append(ys, math.Log(p.Value)-math.Log(math.Log2(float64(p.N))))
	}
	if len(xs) < 2 {
		return PowerFit{}, fmt.Errorf("stats: need at least 2 positive points with n ≥ 2, have %d", len(xs))
	}
	slope, intercept, r2 := leastSquares(xs, ys)
	return PowerFit{Exponent: slope, Scale: math.Exp(intercept), R2: r2}, nil
}

// NLogNFit is the result of fitting value ≈ c · n·log₂(n).
type NLogNFit struct {
	C float64 // the constant
	// MaxDev is the maximum relative deviation of any point from c·n·lg n;
	// a bounded MaxDev across a wide n range is the "Θ(n log n) shape".
	MaxDev float64
}

// String renders the fit.
func (f NLogNFit) String() string {
	return fmt.Sprintf("%.2f·n·lg n (max dev %.1f%%)", f.C, 100*f.MaxDev)
}

// FitNLogN fits value ≈ c·(n·lg n) by least squares through the origin and
// reports the worst relative deviation.
func FitNLogN(points []Point) (NLogNFit, error) {
	var num, den float64
	kept := 0
	for _, p := range points {
		if p.N < 2 {
			continue
		}
		x := float64(p.N) * math.Log2(float64(p.N))
		num += x * p.Value
		den += x * x
		kept++
	}
	if kept < 2 || den == 0 {
		return NLogNFit{}, fmt.Errorf("stats: need at least 2 points with n ≥ 2, have %d", kept)
	}
	c := num / den
	fit := NLogNFit{C: c}
	for _, p := range points {
		if p.N < 2 {
			continue
		}
		pred := c * float64(p.N) * math.Log2(float64(p.N))
		dev := math.Abs(p.Value-pred) / pred
		if dev > fit.MaxDev {
			fit.MaxDev = dev
		}
	}
	return fit, nil
}

// leastSquares returns slope, intercept, and R² of a simple linear fit.
func leastSquares(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}
