package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestFitPowerExact(t *testing.T) {
	// value = 3·n².
	var pts []stats.Point
	for _, n := range []int{2, 4, 8, 16, 32} {
		pts = append(pts, stats.Point{N: n, Value: 3 * float64(n*n)})
	}
	fit, err := stats.FitPower(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-2) > 1e-9 || math.Abs(fit.Scale-3) > 1e-6 || fit.R2 < 0.9999 {
		t.Fatalf("fit = %v, want 3·n^2", fit)
	}
}

func TestFitPowerNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []stats.Point
	for n := 2; n <= 256; n *= 2 {
		noise := 1 + 0.1*(rng.Float64()-0.5)
		pts = append(pts, stats.Point{N: n, Value: 5 * math.Pow(float64(n), 1.5) * noise})
	}
	fit, err := stats.FitPower(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-1.5) > 0.1 {
		t.Fatalf("exponent %.3f, want ≈1.5", fit.Exponent)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R² = %.4f too low for 5%% noise", fit.R2)
	}
}

func TestFitPowerProperty(t *testing.T) {
	// For any positive (a, k) in a reasonable range, fitting exact data
	// recovers them.
	err := quick.Check(func(aRaw, kRaw uint8) bool {
		a := 0.5 + float64(aRaw%50)
		k := 0.25 + float64(kRaw%12)/4.0
		var pts []stats.Point
		for _, n := range []int{2, 3, 5, 8, 13, 21, 34} {
			pts = append(pts, stats.Point{N: n, Value: a * math.Pow(float64(n), k)})
		}
		fit, err := stats.FitPower(pts)
		return err == nil && math.Abs(fit.Exponent-k) < 1e-6 && fit.R2 > 0.999999
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerErrors(t *testing.T) {
	if _, err := stats.FitPower(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := stats.FitPower([]stats.Point{{N: 4, Value: 1}}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := stats.FitPower([]stats.Point{{N: -1, Value: 1}, {N: 0, Value: 2}}); err == nil {
		t.Fatal("nonpositive points accepted")
	}
}

func TestFitPowerLogRecoversNLogN(t *testing.T) {
	// Exact 3·n·lg n data: the log-corrected exponent must be 1 on both a
	// truncated "quick" range and a wide range — the property E12 uses to
	// keep one tight band across scales.
	for _, ns := range [][]int{{4, 8, 16, 32}, {4, 8, 16, 32, 64, 128}} {
		var pts []stats.Point
		for _, n := range ns {
			pts = append(pts, stats.Point{N: n, Value: 3 * float64(n) * math.Log2(float64(n))})
		}
		fit, err := stats.FitPowerLog(pts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Exponent-1) > 1e-9 || math.Abs(fit.Scale-3) > 1e-6 {
			t.Fatalf("range %v: fit = %v, want 3·n^1·lg n", ns, fit)
		}
	}
	// Contrast: a pure power fit of the same quick-range data inflates the
	// exponent well above 1 — the regression E12's old widened band masked.
	var pts []stats.Point
	for _, n := range []int{4, 8, 16, 32} {
		pts = append(pts, stats.Point{N: n, Value: 3 * float64(n) * math.Log2(float64(n))})
	}
	pure, err := stats.FitPower(pts)
	if err != nil {
		t.Fatal(err)
	}
	if pure.Exponent < 1.2 {
		t.Fatalf("pure power exponent %.2f on n·lg n data should be inflated above 1.2", pure.Exponent)
	}
}

func TestFitPowerLogErrors(t *testing.T) {
	if _, err := stats.FitPowerLog(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	// n=1 points carry no log signal (lg 1 = 0) and must be excluded.
	if _, err := stats.FitPowerLog([]stats.Point{{N: 1, Value: 3}, {N: 2, Value: 4}}); err == nil {
		t.Fatal("fit with a single usable point accepted")
	}
}

func TestFitNLogNExact(t *testing.T) {
	var pts []stats.Point
	for _, n := range []int{2, 4, 8, 16, 64} {
		pts = append(pts, stats.Point{N: n, Value: 7 * float64(n) * math.Log2(float64(n))})
	}
	fit, err := stats.FitNLogN(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.C-7) > 1e-9 || fit.MaxDev > 1e-9 {
		t.Fatalf("fit = %v, want 7·n·lg n exactly", fit)
	}
}

func TestFitNLogNDetectsQuadratic(t *testing.T) {
	// Quadratic data should show a large deviation from any c·n·lg n fit.
	var pts []stats.Point
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		pts = append(pts, stats.Point{N: n, Value: float64(n * n)})
	}
	fit, err := stats.FitNLogN(pts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.MaxDev < 0.5 {
		t.Fatalf("quadratic data fit n·lg n with max dev %.2f; the fit cannot discriminate", fit.MaxDev)
	}
}

func TestStringForms(t *testing.T) {
	f, err := stats.FitPower([]stats.Point{{N: 2, Value: 4}, {N: 4, Value: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if f.String() == "" {
		t.Fatal("empty PowerFit string")
	}
	g, err := stats.FitNLogN([]stats.Point{{N: 2, Value: 2}, {N: 4, Value: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if g.String() == "" {
		t.Fatal("empty NLogNFit string")
	}
}
