// Package rmw implements mutual exclusion algorithms that use atomic
// read-modify-write primitives (test-and-set, fetch-and-store,
// compare-and-swap) — the "stronger memory primitives" and comparison-based
// shared objects the paper mentions in Sections 1 and 8 as extensions of
// its lower bound.
//
// These algorithms are outside the register-only model of the lower-bound
// pipeline (internal/construct rejects them) but run on the same simulator
// and cost models, providing the comparison points for experiment E7.
package rmw

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/program"
)

// TestAndSet builds a test-and-test-and-set lock: processes spin (a
// single-register read busywait, SC-bounded) until the lock register reads
// 0, then attempt an atomic test-and-set; on failure they return to
// spinning. The RMW attempts are charged per attempt.
func TestAndSet(n int) (*mutex.Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("rmw: tas: n must be ≥ 1, got %d", n)
	}
	layout := mutex.NewLayout()
	lock := layout.Reg("L", 0, -1)

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("tas/%d", i))
		x := b.Var("x")
		b.Try()
		b.Label("retry")
		b.Spin(lock, x, program.Eq(x, program.Const(0)))
		b.RMW(model.RMWTestAndSet, lock, nil, nil, x)
		b.If(program.Ne(x, program.Const(0)), "retry")
		b.Enter()
		b.Exit()
		b.Write(lock, program.Const(0))
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("rmw: tas: %w", err)
		}
		progs[i] = p
	}
	return mutex.NewFactory(fmt.Sprintf("tas(n=%d)", n), layout, progs), nil
}

// MCS builds the Mellor-Crummey–Scott queue lock [11 in the paper]: the
// classic local-spin algorithm for machines with fetch-and-store and
// compare-and-swap. Each process spins only on its own flag register, so
// its SC and DSM-RMR costs are O(1) per passage — the O(n) total baseline
// that register-only algorithms provably cannot reach (that gap is the
// paper's point).
//
// Registers: tail (queue tail, holds id+1 or 0), and per process i:
// next[i] (successor id+1 or 0) and locked[i] (1 while waiting). Process
// ids are stored as i+1 so 0 means nil.
func MCS(n int) (*mutex.Factory, error) {
	if n < 1 {
		return nil, fmt.Errorf("rmw: mcs: n must be ≥ 1, got %d", n)
	}
	layout := mutex.NewLayout()
	tail := layout.Reg("tail", 0, -1)
	nextBase := model.RegID(layout.Len())
	for i := 0; i < n; i++ {
		layout.Reg(fmt.Sprintf("next[%d]", i), 0, i)
	}
	lockedBase := model.RegID(layout.Len())
	for i := 0; i < n; i++ {
		layout.Reg(fmt.Sprintf("locked[%d]", i), 0, i)
	}

	progs := make([]*program.Program, n)
	for i := 0; i < n; i++ {
		b := program.NewBuilder(fmt.Sprintf("mcs/%d", i))
		me := program.Const(model.Value(i + 1))
		myNext := nextBase + model.RegID(i)
		myLocked := lockedBase + model.RegID(i)
		pred := b.Var("pred")
		s := b.Var("s")
		w := b.Var("w")

		b.Try()
		b.Write(myNext, program.Const(0))
		b.RMW(model.RMWFetchAndStore, tail, me, nil, pred)
		b.If(program.Eq(pred, program.Const(0)), "acquired")
		b.Write(myLocked, program.Const(1))
		// next[pred-1] := me. next array starts at nextBase.
		b.WriteX(program.Add(program.Const(model.Value(nextBase)-1), pred), me)
		b.Spin(myLocked, w, program.Eq(w, program.Const(0)))
		b.Label("acquired")
		b.Enter()
		b.Exit()
		b.Read(myNext, s)
		b.If(program.Ne(s, program.Const(0)), "handoff")
		// No known successor: try to swing tail back to 0.
		b.RMW(model.RMWCompareAndSwap, tail, me, program.Const(0), w)
		b.If(program.Eq(w, me), "released") // CAS succeeded (old value was me)
		// A successor is enqueueing: wait for it to announce itself.
		b.Spin(myNext, s, program.Ne(s, program.Const(0)))
		b.Label("handoff")
		b.WriteX(program.Add(program.Const(model.Value(lockedBase)-1), s), program.Const(0))
		b.Label("released")
		b.Rem()
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("rmw: mcs: %w", err)
		}
		progs[i] = p
	}
	return mutex.NewFactory(fmt.Sprintf("mcs(n=%d)", n), layout, progs), nil
}
