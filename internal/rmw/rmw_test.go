package rmw_test

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/mutex"
	"repro/internal/rmw"
	"repro/internal/verify"
)

func TestRMWLocksSolveMutex(t *testing.T) {
	builders := map[string]func(int) (*mutex.Factory, error){
		"tas": rmw.TestAndSet,
		"mcs": rmw.MCS,
	}
	for name, build := range builders {
		for _, n := range []int{1, 2, 3, 5, 8, 16, 32} {
			for seed := int64(0); seed < 8; seed++ {
				t.Run(fmt.Sprintf("%s/n=%d/seed=%d", name, n, seed), func(t *testing.T) {
					f, err := build(n)
					if err != nil {
						t.Fatal(err)
					}
					exec, err := machine.RunCanonical(f, machine.NewRandom(seed), 0)
					if err != nil {
						t.Fatal(err)
					}
					if err := verify.MutexExecution(f, exec); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestFactoriesReportRMW(t *testing.T) {
	tas, err := rmw.TestAndSet(2)
	if err != nil {
		t.Fatal(err)
	}
	if !tas.UsesRMW() {
		t.Fatal("TAS factory must report RMW usage")
	}
	mcs, err := rmw.MCS(2)
	if err != nil {
		t.Fatal(err)
	}
	if !mcs.UsesRMW() {
		t.Fatal("MCS factory must report RMW usage")
	}
}

// TestMCSQueueHandoff: under round-robin all processes pile onto the queue;
// the lock must hand off in queue order without lost wakeups.
func TestMCSQueueHandoff(t *testing.T) {
	f, err := rmw.MCS(6)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MutexExecution(f, exec); err != nil {
		t.Fatal(err)
	}
	// Round-robin enqueues 0..5 in order; MCS is FIFO, so entries follow.
	want := []int{0, 1, 2, 3, 4, 5}
	got := exec.EntryOrder()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MCS handoff order %v, want FIFO %v", got, want)
		}
	}
}

// TestMCSLocalSpin: MCS spins only on the process's own locked flag, so
// under the HoldCS adversary SC cost stays bounded while accesses grow.
func TestMCSLocalSpin(t *testing.T) {
	var scBase int
	for i, delay := range []int{0, 200} {
		f, err := rmw.MCS(4)
		if err != nil {
			t.Fatal(err)
		}
		exec, err := machine.RunCanonical(f, machine.NewHoldCS(delay), 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cost.Measure(f, exec)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			scBase = rep.SC
			continue
		}
		if rep.SC > 2*scBase {
			t.Fatalf("MCS SC grew from %d to %d under contention: not local-spin", scBase, rep.SC)
		}
		if rep.SharedAccesses < 5*scBase {
			t.Fatalf("expected accesses (%d) to dwarf SC (%d) under delay", rep.SharedAccesses, rep.SC)
		}
	}
}

func TestInvalidN(t *testing.T) {
	if _, err := rmw.TestAndSet(0); err == nil {
		t.Fatal("TAS n=0 accepted")
	}
	if _, err := rmw.MCS(-1); err == nil {
		t.Fatal("MCS n=-1 accepted")
	}
}
