// Package decode implements the decoding step of the proof (Section 7,
// Figure 3): given only the encoding E_π (a bitstring) and the algorithm A
// (its transition function δ), it reconstructs an execution α_π that is a
// linearization of the constructed (M, ≼) — without ever seeing π or the
// metastep set.
//
// Uniqueness of decoding is what powers the counting argument of
// Theorem 7.5: Decode is a deterministic function from encodings to
// executions, and the n! constructed executions are pairwise distinct, so
// some encoding must be at least log₂(n!) = Ω(n log n) bits long; by
// Theorem 6.2 the corresponding execution costs Ω(n log n).
//
// The decoder maintains a growing execution α (replayed through live
// automata, so every process's pending step δ(α, i) is available) and
// repeatedly executes a minimal unexecuted metastep:
//
//   - C, SR and PR cells execute immediately (critical steps and
//     standalone reads are singleton metasteps);
//   - R and W cells park the process at its pending register until the
//     register's signature — carried by the winner's cell — matches:
//     the right number of writers are parked, the right number of parked
//     readers would change state on the winner's value, and the right
//     number of prereads have executed. Then the whole write metastep is
//     emitted: non-winning writes, the winning write, the reads.
package decode

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/encode"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/program"
)

// ErrRMW is returned when the algorithm uses RMW primitives.
var ErrRMW = errors.New("decode: algorithm uses RMW primitives; the decoder requires registers only")

type status uint8

const (
	stNeedCell status = iota
	stParked
	stDone
)

// signature is the parsed cell signature for one register's minimum
// unexecuted write metastep.
type signature struct {
	winner int // process holding the winning write
	pr     int // |pread(m)|
	r      int // |read(m)|
	w      int // |write(m)| + 1
}

// Decode reconstructs a linearization of the constructed metastep set from
// the encoding bits alone. bitLen is the exact bit length of the encoding.
func Decode(f program.Factory, bits []byte, bitLen int) (model.Execution, error) {
	if f.UsesRMW() {
		return nil, ErrRMW
	}
	n := f.N()
	cols, err := encode.ParseBits(bits, bitLen, n)
	if err != nil {
		return nil, err
	}

	rep := machine.NewReplayer(f)
	var alpha model.Execution
	apply := func(step model.Step) error {
		done, err := rep.Apply(step)
		if err != nil {
			return err
		}
		alpha = append(alpha, done)
		return nil
	}

	pc := make([]int, n)
	st := make([]status, n)
	readers := make(map[model.RegID][]int)
	writers := make(map[model.RegID][]int)
	sigs := make(map[model.RegID]*signature)
	prDone := make(map[model.RegID]int)

	for round := 0; ; round++ {
		if round > 16*(len(alpha)+n+4) {
			return nil, fmt.Errorf("decode: no progress after %d rounds (decoder stuck at %d steps)", round, len(alpha))
		}
		progress := false
		allDone := true

		// Phase 1 (Figure 3, lines 6-37): compute pending steps for every
		// process whose previous metastep has executed, and either execute
		// its singleton metastep or park it at its register.
		for i := 0; i < n; i++ {
			if st[i] != stNeedCell {
				if st[i] != stDone {
					allDone = false
				}
				continue
			}
			allDone = false
			if pc[i] >= len(cols[i]) {
				if !rep.Halted(i) {
					return nil, fmt.Errorf("decode: process %d out of cells but not halted (pending %v)", i, rep.PendingStep(i))
				}
				st[i] = stDone
				progress = true
				continue
			}
			cell := cols[i][pc[i]]
			pc[i]++
			if rep.Halted(i) {
				return nil, fmt.Errorf("decode: process %d halted with cells remaining", i)
			}
			pending := rep.PendingStep(i)
			switch cell.Tag {
			case encode.TagC:
				if pending.Kind != model.KindCrit {
					return nil, fmt.Errorf("decode: process %d: cell C but pending step %v", i, pending)
				}
				if err := apply(pending); err != nil {
					return nil, err
				}
				progress = true
			case encode.TagSR, encode.TagPR:
				if pending.Kind != model.KindRead {
					return nil, fmt.Errorf("decode: process %d: cell %v but pending step %v", i, cell.Tag, pending)
				}
				if cell.Tag == encode.TagPR {
					prDone[pending.Reg]++
				}
				if err := apply(pending); err != nil {
					return nil, err
				}
				progress = true
			case encode.TagR:
				if pending.Kind != model.KindRead {
					return nil, fmt.Errorf("decode: process %d: cell R but pending step %v", i, pending)
				}
				readers[pending.Reg] = append(readers[pending.Reg], i)
				st[i] = stParked
				progress = true
			case encode.TagW, encode.TagWSig:
				if pending.Kind != model.KindWrite {
					return nil, fmt.Errorf("decode: process %d: cell %v but pending step %v", i, cell.Tag, pending)
				}
				if cell.Tag == encode.TagWSig {
					if old := sigs[pending.Reg]; old != nil {
						return nil, fmt.Errorf("decode: register %d: signature from process %d while process %d's is unresolved", pending.Reg, i, old.winner)
					}
					sigs[pending.Reg] = &signature{winner: i, pr: cell.Pr, r: cell.R, w: cell.W}
				}
				writers[pending.Reg] = append(writers[pending.Reg], i)
				st[i] = stParked
				progress = true
			default:
				return nil, fmt.Errorf("decode: process %d: unexpected tag %v", i, cell.Tag)
			}
		}
		if allDone {
			return alpha, nil
		}

		// Phase 2 (Figure 3, lines 38-45): for each register whose
		// signature is known, test whether the parked processes complete
		// the metastep; if so, emit it.
		regs := make([]model.RegID, 0, len(sigs))
		for reg := range sigs {
			regs = append(regs, reg)
		}
		sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
		for _, reg := range regs {
			sig := sigs[reg]
			if prDone[reg] != sig.pr || len(writers[reg]) != sig.w {
				continue
			}
			winVal := rep.PendingStep(sig.winner).Val
			// R_ℓ: parked readers the winner's value would awaken
			// (Figure 3, line 21). Readers it would not are parts of later
			// metasteps on this register and stay parked.
			var rl []int
			for _, q := range readers[reg] {
				if rep.Automaton(q).WouldChangeState(winVal) {
					rl = append(rl, q)
				}
			}
			if len(rl) != sig.r {
				continue
			}
			// Emit: non-winning writes (ascending process), the winning
			// write, then the reads (ascending process).
			ws := append([]int(nil), writers[reg]...)
			sort.Ints(ws)
			for _, q := range ws {
				if q == sig.winner {
					continue
				}
				if err := apply(rep.PendingStep(q)); err != nil {
					return nil, err
				}
			}
			if err := apply(rep.PendingStep(sig.winner)); err != nil {
				return nil, err
			}
			sort.Ints(rl)
			for _, q := range rl {
				if err := apply(rep.PendingStep(q)); err != nil {
					return nil, err
				}
			}
			// Unpark the metastep's processes; other parked readers stay.
			for _, q := range ws {
				st[q] = stNeedCell
			}
			inRl := make(map[int]bool, len(rl))
			for _, q := range rl {
				st[q] = stNeedCell
				inRl[q] = true
			}
			var still []int
			for _, q := range readers[reg] {
				if !inRl[q] {
					still = append(still, q)
				}
			}
			readers[reg] = still
			writers[reg] = nil
			delete(sigs, reg)
			prDone[reg] = 0
			progress = true
		}

		if !progress {
			return nil, fmt.Errorf("decode: stuck: %d steps decoded, parked readers=%v writers=%v sigs=%v", len(alpha), readers, writers, describeSigs(sigs))
		}
	}
}

func describeSigs(sigs map[model.RegID]*signature) string {
	out := ""
	for reg, s := range sigs {
		out += fmt.Sprintf("r%d:{win=%d pr=%d r=%d w=%d} ", reg, s.winner, s.pr, s.r, s.w)
	}
	return out
}
