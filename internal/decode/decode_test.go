package decode_test

import (
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/decode"
	"repro/internal/encode"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/rmw"
)

func pipelineBits(t testing.TB, algoName string, pi []int) (*mutex.Factory, *construct.Result, *encode.Encoding) {
	t.Helper()
	f, err := mutex.New(algoName, len(pi))
	if err != nil {
		t.Fatal(err)
	}
	res, err := construct.Construct(f, pi)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encode.Encode(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	return f, res, enc
}

// TestDecodeDeterministic: decoding the same bits twice yields identical
// executions (the decoder is the injectivity witness, so it must be a
// function).
func TestDecodeDeterministic(t *testing.T) {
	f, _, enc := pipelineBits(t, mutex.NameYangAnderson, []int{2, 0, 1, 3})
	a, err := decode.Decode(f, enc.Bits, enc.BitLen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decode.Decode(f, enc.Bits, enc.BitLen)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("decoder is nondeterministic")
	}
}

// TestDecodeUsesOnlyBits: decoding with a *fresh* factory instance (no
// shared state with the construction) succeeds — the decoder's only inputs
// are the bits and δ.
func TestDecodeUsesOnlyBits(t *testing.T) {
	_, res, enc := pipelineBits(t, mutex.NameBakery, []int{3, 1, 0, 2})
	fresh, err := mutex.New(mutex.NameBakery, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decode.Decode(fresh, enc.Bits, enc.BitLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Set.CheckLinearization(dec); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRejectsCorruptedBits: flipping bits must produce an error, not
// a silently wrong execution that still parses. (Some flips may produce a
// different valid-looking table; the decoder must then fail one of its
// pending-step consistency checks. A flip can at worst produce a decode of
// a DIFFERENT valid encoding — with 3-bit tags that requires a consistent
// table, which the pending-step checks make overwhelmingly unlikely; we
// assert error or inequality.)
func TestDecodeRejectsCorruptedBits(t *testing.T) {
	f, _, enc := pipelineBits(t, mutex.NameYangAnderson, []int{1, 2, 0})
	orig, err := decode.Decode(f, enc.Bits, enc.BitLen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	flips := 0
	for trial := 0; trial < 40; trial++ {
		pos := rng.Intn(enc.BitLen)
		bits := append([]byte(nil), enc.Bits...)
		bits[pos/8] ^= 1 << (7 - pos%8)
		dec, err := decode.Decode(f, bits, enc.BitLen)
		if err == nil && dec.Equal(orig) {
			t.Fatalf("bit flip at %d decoded to the original execution", pos)
		}
		if err != nil {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("no corruption was ever detected across 40 flips")
	}
}

// TestDecodeRejectsTruncation.
func TestDecodeRejectsTruncation(t *testing.T) {
	f, _, enc := pipelineBits(t, mutex.NameYangAnderson, []int{0, 1})
	if _, err := decode.Decode(f, enc.Bits, enc.BitLen-5); err == nil {
		t.Fatal("truncated encoding accepted")
	}
}

// TestDecodeRejectsRMW.
func TestDecodeRejectsRMW(t *testing.T) {
	f, err := rmw.TestAndSet(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decode.Decode(f, []byte{0}, 3); err == nil {
		t.Fatal("RMW factory accepted")
	}
}

// TestDecodeWrongAlgorithm: bits encoded against one algorithm must not
// silently decode against another (the cell stream will not match the
// other algorithm's pending steps).
func TestDecodeWrongAlgorithm(t *testing.T) {
	_, _, enc := pipelineBits(t, mutex.NameBakery, []int{1, 0, 2})
	other, err := mutex.New(mutex.NameYangAnderson, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decode.Decode(other, enc.Bits, enc.BitLen); err == nil {
		t.Fatal("bakery encoding decoded against yang-anderson")
	}
}

// TestDecodeAllPermsMatchesConstruction: for every π in S_4, the decoded
// execution is a linearization of that π's construction — and of no other
// π's (entry orders differ).
func TestDecodeAllPermsMatchesConstruction(t *testing.T) {
	f, err := mutex.New(mutex.NameYangAnderson, 4)
	if err != nil {
		t.Fatal(err)
	}
	perm.ForEach(4, func(pi []int) bool {
		res, err := construct.Construct(f, pi)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := encode.Encode(res.Set)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := decode.Decode(f, enc.Bits, enc.BitLen)
		if err != nil {
			t.Fatalf("pi=%v: %v", pi, err)
		}
		got := dec.EntryOrder()
		for k := range pi {
			if got[k] != pi[k] {
				t.Fatalf("pi=%v decoded with entry order %v", pi, got)
			}
		}
		return true
	})
}
