package program_test

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/program"
)

// randomProgram builds a random but structurally valid program: a mix of
// reads, writes, local assignments, forward branches and a terminal halt.
// Backward branches are only emitted around a read (so every loop contains
// a shared step and the local-cycle validator stays satisfied).
func randomProgram(rng *rand.Rand, regs int) *program.Program {
	b := program.NewBuilder("fuzz")
	vars := []program.VarRef{b.Var("a"), b.Var("b"), b.Var("c")}
	rv := func() program.VarRef { return vars[rng.Intn(len(vars))] }
	re := func() program.Expr {
		switch rng.Intn(3) {
		case 0:
			return program.Const(int64(rng.Intn(7)))
		case 1:
			return rv()
		default:
			return program.Add(rv(), program.Const(int64(rng.Intn(5))))
		}
	}
	reg := func() model.RegID { return model.RegID(rng.Intn(regs)) }

	blocks := 3 + rng.Intn(5)
	for k := 0; k < blocks; k++ {
		switch rng.Intn(4) {
		case 0:
			b.Read(reg(), rv())
		case 1:
			b.Write(reg(), re())
		case 2:
			b.Let(rv(), re())
		case 3:
			// A bounded spin: wait until the register is below 7, which
			// the all-zero register file satisfies immediately on replay,
			// but which still exercises the spin machinery.
			v := rv()
			b.Spin(reg(), v, program.Lt(v, program.Const(7)))
		}
	}
	b.Halt()
	return b.MustBuild()
}

// TestFuzzInterpreterInvariants drives random programs with random register
// contents and checks the interpreter's structural invariants:
//
//   - PendingStep is pure and stable between Feeds;
//   - Clone produces an equal StateKey and diverges independently;
//   - the automaton state is always normalized (pending step is shared);
//   - replaying the same value sequence gives identical state trajectories.
func TestFuzzInterpreterInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const regs = 4
	for trial := 0; trial < 200; trial++ {
		p := randomProgram(rng, regs)
		a1 := program.NewAutomaton(p, 0)
		a2 := program.NewAutomaton(p, 0)
		if a1.StateKey() != a2.StateKey() {
			t.Fatal("fresh automata differ")
		}
		var fed []model.Value
		for step := 0; step < 60 && !a1.Halted(); step++ {
			s1 := a1.PendingStep()
			if s1 != a1.PendingStep() {
				t.Fatal("PendingStep unstable")
			}
			if !s1.IsShared() && s1.Kind != model.KindCrit {
				t.Fatalf("non-normalized pending step %v", s1)
			}
			c := a1.Clone()
			if c.StateKey() != a1.StateKey() {
				t.Fatal("clone key differs")
			}
			v := model.Value(rng.Intn(9))
			fed = append(fed, v)
			a1.Feed(v)
			// The clone must be unaffected by the original's Feed.
			if c.Halted() != false && !a1.Halted() {
				t.Fatal("clone halted spuriously")
			}
		}
		// Replay the same values through a2: trajectories must agree.
		for _, v := range fed {
			if a2.Halted() {
				t.Fatal("replay halted early")
			}
			a2.Feed(v)
		}
		if a1.StateKey() != a2.StateKey() || a1.Halted() != a2.Halted() {
			t.Fatalf("trial %d: same inputs, different states:\n%s\n%s\n%s", trial, a1.StateKey(), a2.StateKey(), p.Disassemble())
		}
	}
}

// TestFuzzSpinFreedom: for random programs, whenever the pending step is a
// read whose WouldChangeState(v) is false, feeding v must leave the
// StateKey unchanged — Definition 3.1 as an executable invariant.
func TestFuzzSpinFreedom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randomProgram(rng, 3)
		a := program.NewAutomaton(p, 1)
		for step := 0; step < 50 && !a.Halted(); step++ {
			s := a.PendingStep()
			v := model.Value(rng.Intn(10))
			if s.Kind == model.KindRead {
				would := a.WouldChangeState(v)
				before := a.StateKey()
				a.Feed(v)
				changed := a.StateKey() != before
				if changed != would {
					t.Fatalf("trial %d: WouldChangeState(%d)=%v but Feed changed=%v\n%s", trial, v, would, changed, p.Disassemble())
				}
			} else {
				a.Feed(v)
			}
		}
	}
}
