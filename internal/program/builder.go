package program

import (
	"fmt"

	"repro/internal/model"
)

// Builder assembles a Program with symbolic labels and named variables.
// All emit methods record the first error encountered and turn subsequent
// calls into no-ops; Build returns the error. This keeps algorithm
// definitions free of per-call error handling.
type Builder struct {
	name      string
	instrs    []Instr
	varIndex  map[string]int
	varNames  []string
	labels    map[string]int
	fixups    []fixup
	nextLabel string // label to attach to the next emitted instruction
	autoLabel int
	err       error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		varIndex: make(map[string]int),
		labels:   make(map[string]int),
	}
}

// Var returns a reference to the named local variable, creating it on first
// use. Variables start at zero.
func (b *Builder) Var(name string) VarRef {
	if ix, ok := b.varIndex[name]; ok {
		return VarRef{Index: ix, Name: name}
	}
	ix := len(b.varNames)
	b.varIndex[name] = ix
	b.varNames = append(b.varNames, name)
	return VarRef{Index: ix, Name: name}
}

// Label declares a label at the position of the next emitted instruction.
func (b *Builder) Label(name string) {
	if b.err != nil {
		return
	}
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.instrs)
	if b.nextLabel == "" {
		b.nextLabel = name
	}
}

// AutoLabel returns a fresh unique label name; useful for emitting loops
// from helper functions without colliding with user labels.
func (b *Builder) AutoLabel(prefix string) string {
	b.autoLabel++
	return fmt.Sprintf("%s$%d", prefix, b.autoLabel)
}

func (b *Builder) emit(in Instr) {
	if b.err != nil {
		return
	}
	in.Label = b.nextLabel
	b.nextLabel = ""
	b.instrs = append(b.instrs, in)
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("program %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Read emits a read of register reg into variable dst.
func (b *Builder) Read(reg model.RegID, dst VarRef) {
	b.emit(Instr{Op: OpCRead, Reg: reg, Dst: dst.Index})
}

// Write emits a write of expression val to register reg.
func (b *Builder) Write(reg model.RegID, val Expr) {
	b.emit(Instr{Op: OpCWrite, Reg: reg, Val: val})
}

// ReadX emits a read with an indirect register operand: the register index
// is the value of regExpr at execution time.
func (b *Builder) ReadX(regExpr Expr, dst VarRef) {
	b.emit(Instr{Op: OpCRead, RegX: regExpr, Dst: dst.Index})
}

// WriteX emits a write with an indirect register operand.
func (b *Builder) WriteX(regExpr Expr, val Expr) {
	b.emit(Instr{Op: OpCWrite, RegX: regExpr, Val: val})
}

// RMW emits an atomic read-modify-write on reg, storing the value read into
// dst. arg1/arg2 follow the conventions of model.RMWKind (CAS: expected,
// new; FAS/FAA: operand, unused).
func (b *Builder) RMW(kind model.RMWKind, reg model.RegID, arg1, arg2 Expr, dst VarRef) {
	if arg1 == nil {
		arg1 = Const(0)
	}
	if arg2 == nil {
		arg2 = Const(0)
	}
	b.emit(Instr{Op: OpCRMW, RMW: kind, Reg: reg, Val: arg1, Val2: arg2, Dst: dst.Index})
}

// Let emits a local assignment dst = val.
func (b *Builder) Let(dst VarRef, val Expr) {
	b.emit(Instr{Op: OpCLet, Dst: dst.Index, Val: val})
}

// If emits a conditional jump to label when cond is nonzero.
func (b *Builder) If(cond Expr, label string) {
	b.emit(Instr{Op: OpCIf, Cond: cond})
	if b.err == nil {
		b.fixups = append(b.fixups, fixup{instr: len(b.instrs) - 1, label: label})
	}
}

// Goto emits an unconditional jump to label.
func (b *Builder) Goto(label string) {
	b.emit(Instr{Op: OpCGoto})
	if b.err == nil {
		b.fixups = append(b.fixups, fixup{instr: len(b.instrs) - 1, label: label})
	}
}

// Crit emits a critical step.
func (b *Builder) Crit(kind model.CritKind) {
	b.emit(Instr{Op: OpCCrit, Crit: kind})
}

// Try emits try_i.
func (b *Builder) Try() { b.Crit(model.CritTry) }

// Enter emits enter_i.
func (b *Builder) Enter() { b.Crit(model.CritEnter) }

// Exit emits exit_i.
func (b *Builder) Exit() { b.Crit(model.CritExit) }

// Rem emits rem_i.
func (b *Builder) Rem() { b.Crit(model.CritRem) }

// Halt emits a halt instruction.
func (b *Builder) Halt() {
	b.emit(Instr{Op: OpCHalt})
}

// Spin emits a single-register busywait: repeatedly read reg into dst until
// the predicate `until` (an expression over locals, normally involving dst)
// becomes true. Because the loop body contains no other state change, the
// automaton's state is unchanged while the predicate stays false — exactly
// the bounded-cost busywait the state change cost model permits (§3.3).
func (b *Builder) Spin(reg model.RegID, dst VarRef, until Expr) {
	label := b.AutoLabel("spin")
	b.Label(label)
	b.Read(reg, dst)
	b.If(Not(until), label)
}

// Build resolves labels, validates, and returns the immutable Program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.nextLabel != "" {
		return nil, fmt.Errorf("program %q: label %q declared past the last instruction", b.name, b.nextLabel)
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q", b.name, f.label)
		}
		b.instrs[f.instr].Target = target
	}
	p := &Program{Name: b.name, Instrs: b.instrs, VarNames: b.varNames}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; algorithm constructors use it
// because a failure is a programming bug, not a runtime condition.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
