// Package program implements the deterministic process automata of the
// paper's shared-memory framework (Section 3.1) as interpreted register
// programs.
//
// A Program is a straight-line list of instructions over local variables
// and shared registers. The interpreter (Automaton) exposes exactly the
// interface the paper's proofs require of a process automaton p_i:
//
//   - a deterministic transition function δ: PendingStep() computes the next
//     shared-memory or critical step from the current state;
//   - Feed applies the result of a step, advancing the state;
//   - Clone copies the state, which is how the construction's SC(α, µ, i)
//     oracle asks "would p_i change state if it read value v?";
//   - StateKey is a canonical fingerprint of the state, which is what the
//     state change cost model (Definition 3.1) charges on.
//
// Local computation (Let/If/Goto) is not a step in the paper's model, so the
// interpreter folds it into the transition function: after every Feed the
// automaton runs local instructions eagerly until the program counter rests
// on a shared-memory or critical instruction. A busywait loop written as
//
//	loop: Read r -> x ; If x == 0 goto loop
//
// therefore returns to a state identical to the pre-read state whenever the
// value read is unchanged, which makes SC-model accounting (free re-reads of
// a single unchanged register) an exact consequence of StateKey comparison.
// Builder.Spin emits exactly this pattern.
package program

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// OpCode enumerates instruction kinds.
type OpCode uint8

// Instruction opcodes.
const (
	// OpCRead reads a shared register into a local variable.
	OpCRead OpCode = iota
	// OpCWrite writes the value of an expression to a shared register.
	OpCWrite
	// OpCRMW applies an atomic read-modify-write primitive to a register,
	// storing the value read into a local variable. Only used by the
	// comparison-primitive extension; the register-only model never emits it.
	OpCRMW
	// OpCCrit performs a critical step (try/enter/exit/rem).
	OpCCrit
	// OpCLet assigns an expression to a local variable (local, not a step).
	OpCLet
	// OpCIf jumps to Target when Cond is nonzero (local, not a step).
	OpCIf
	// OpCGoto jumps unconditionally (local, not a step).
	OpCGoto
	// OpCHalt stops the process; the automaton is halted forever after.
	OpCHalt
)

func (o OpCode) String() string {
	switch o {
	case OpCRead:
		return "read"
	case OpCWrite:
		return "write"
	case OpCRMW:
		return "rmw"
	case OpCCrit:
		return "crit"
	case OpCLet:
		return "let"
	case OpCIf:
		return "if"
	case OpCGoto:
		return "goto"
	case OpCHalt:
		return "halt"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Instr is a single program instruction. Field usage by opcode:
//
//	OpCRead:  Reg (or RegX), Dst
//	OpCWrite: Reg (or RegX), Val
//	OpCRMW:   Reg (or RegX), Dst, RMW, Val (arg1), Val2 (arg2)
//	OpCCrit:  Crit
//	OpCLet:   Dst, Val
//	OpCIf:    Cond, Target
//	OpCGoto:  Target
//	OpCHalt:  —
//
// When RegX is non-nil the register operand is computed from the local
// environment at access time (indirect addressing, e.g. Yang–Anderson's
// write to P[rival] where rival was read from a register). Which register a
// pending step accesses is still a deterministic function of the process
// state, as the model requires.
type Instr struct {
	Op     OpCode
	Reg    model.RegID
	RegX   Expr // dynamic register operand; overrides Reg when non-nil
	Dst    int  // local variable index
	Val    Expr
	Val2   Expr
	Cond   Expr
	Target int
	Crit   model.CritKind
	RMW    model.RMWKind
	Label  string // informational: label attached to this instruction, if any
}

// regOf resolves the instruction's register operand in the environment.
//
//repro:hotpath
func (in Instr) regOf(env []model.Value) model.RegID {
	if in.RegX != nil {
		return model.RegID(in.RegX.Eval(env))
	}
	return in.Reg
}

// IsLocal reports whether the instruction is local computation rather than a
// step of the paper's model.
//
//repro:hotpath
func (in Instr) IsLocal() bool {
	return in.Op == OpCLet || in.Op == OpCIf || in.Op == OpCGoto
}

// Program is an immutable instruction sequence with variable metadata.
// Build one with a Builder. A Program is shared by all automata running it;
// only the Automaton carries mutable state.
type Program struct {
	Name     string
	Instrs   []Instr
	VarNames []string
}

// NumVars returns the number of local variables.
func (p *Program) NumVars() int { return len(p.VarNames) }

// Disassemble renders the program as readable text, one instruction per
// line, with labels and jump targets resolved to line numbers.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q (%d vars)\n", p.Name, len(p.VarNames))
	for i, in := range p.Instrs {
		label := ""
		if in.Label != "" {
			label = in.Label + ":"
		}
		fmt.Fprintf(&b, "%4d %-12s ", i, label)
		reg := fmt.Sprintf("r%d", in.Reg)
		if in.RegX != nil {
			reg = fmt.Sprintf("r[%s]", in.RegX)
		}
		switch in.Op {
		case OpCRead:
			fmt.Fprintf(&b, "read  %s -> %s", reg, p.VarNames[in.Dst])
		case OpCWrite:
			fmt.Fprintf(&b, "write %s <- %s", reg, in.Val)
		case OpCRMW:
			fmt.Fprintf(&b, "rmw   %s %s (%s, %s) -> %s", in.RMW, reg, in.Val, in.Val2, p.VarNames[in.Dst])
		case OpCCrit:
			fmt.Fprintf(&b, "crit  %s", in.Crit)
		case OpCLet:
			fmt.Fprintf(&b, "let   %s = %s", p.VarNames[in.Dst], in.Val)
		case OpCIf:
			fmt.Fprintf(&b, "if    %s goto %d", in.Cond, in.Target)
		case OpCGoto:
			fmt.Fprintf(&b, "goto  %d", in.Target)
		case OpCHalt:
			fmt.Fprintf(&b, "halt")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural well-formedness:
//   - every jump target is in range;
//   - variable indices are in range;
//   - there is no cycle consisting solely of local instructions (such a
//     cycle would make the folded transition function diverge, i.e. the
//     automaton would not be a valid process of the model).
func (p *Program) Validate() error {
	n := len(p.Instrs)
	if n == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	for i, in := range p.Instrs {
		switch in.Op {
		case OpCIf, OpCGoto:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("program %q: instr %d: jump target %d out of range [0,%d)", p.Name, i, in.Target, n)
			}
		}
		switch in.Op {
		case OpCRead, OpCRMW, OpCLet:
			if in.Dst < 0 || in.Dst >= len(p.VarNames) {
				return fmt.Errorf("program %q: instr %d: variable index %d out of range", p.Name, i, in.Dst)
			}
		}
	}
	// Local-only cycle detection: build the local control-flow graph where
	// a local instruction at i has edges to its possible successors, and
	// non-local instructions are sinks. DFS with colors.
	const (
		white, gray, black = 0, 1, 2
	)
	color := make([]byte, n)
	var visit func(i int) error
	visit = func(i int) error {
		if i >= n {
			return nil
		}
		if !p.Instrs[i].IsLocal() {
			return nil
		}
		switch color[i] {
		case gray:
			return fmt.Errorf("program %q: local-instruction cycle through instr %d (transition function would diverge)", p.Name, i)
		case black:
			return nil
		}
		color[i] = gray
		in := p.Instrs[i]
		succs := []int{}
		switch in.Op {
		case OpCLet:
			succs = append(succs, i+1)
		case OpCGoto:
			succs = append(succs, in.Target)
		case OpCIf:
			succs = append(succs, i+1, in.Target)
		}
		for _, s := range succs {
			if s < n {
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		color[i] = black
		return nil
	}
	for i := range p.Instrs {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Automaton is a running instance of a Program for one process: the paper's
// deterministic process automaton. Its state is (pc, local variables,
// halted); the state is always normalized so that pc rests on a non-local
// instruction (or the automaton is halted).
type Automaton struct {
	prog   *Program
	proc   int
	pc     int
	env    []model.Value
	halted bool

	// scratch is a reusable pre-state snapshot buffer for FeedChanged and
	// WouldChangeState, so the per-step state-change test of the SC cost
	// model allocates nothing in steady state. It is never part of the
	// automaton's state: Clone and CopyFrom ignore it.
	scratch []model.Value
}

// maxLocalOps bounds the number of local instructions executed during one
// normalization; exceeding it indicates a diverging transition function
// (which Validate should have rejected).
const maxLocalOps = 1_000_000

// NewAutomaton creates an automaton for process proc in its initial state.
func NewAutomaton(p *Program, proc int) *Automaton {
	a := &Automaton{
		prog: p,
		proc: proc,
		env:  make([]model.Value, p.NumVars()),
	}
	a.normalize()
	return a
}

// Proc returns the process index this automaton runs as.
func (a *Automaton) Proc() int { return a.proc }

// Program returns the underlying program.
func (a *Automaton) Program() *Program { return a.prog }

// Halted reports whether the process has executed Halt.
//
//repro:hotpath
func (a *Automaton) Halted() bool { return a.halted }

// PC returns the current (normalized) program counter; for debugging.
func (a *Automaton) PC() int { return a.pc }

// Env returns a copy of the local variable environment; for debugging.
func (a *Automaton) Env() []model.Value {
	out := make([]model.Value, len(a.env))
	copy(out, a.env)
	return out
}

// normalize runs local instructions until pc rests on a non-local
// instruction or the program ends (which halts the automaton).
//
//repro:hotpath
func (a *Automaton) normalize() {
	for ops := 0; ; ops++ {
		if ops > maxLocalOps {
			panic(a.badState("local instructions diverge"))
		}
		if a.pc >= len(a.prog.Instrs) {
			a.halted = true
			return
		}
		in := a.prog.Instrs[a.pc]
		switch in.Op {
		case OpCLet:
			a.env[in.Dst] = in.Val.Eval(a.env)
			a.pc++
		case OpCGoto:
			a.pc = in.Target
		case OpCIf:
			if in.Cond.Eval(a.env) != 0 {
				a.pc = in.Target
			} else {
				a.pc++
			}
		case OpCHalt:
			a.halted = true
			return
		default:
			return
		}
	}
}

// PendingStep computes δ(state): the next step the process will take.
// The returned step has Proc filled in; for reads the Val field is
// meaningless until the step is executed. Calling PendingStep repeatedly
// without Feed returns the same step; it does not mutate state.
// PendingStep panics if the automaton is halted.
//
//repro:hotpath
func (a *Automaton) PendingStep() model.Step {
	if a.halted {
		panic(a.badState("PendingStep on halted automaton"))
	}
	in := a.prog.Instrs[a.pc]
	switch in.Op {
	case OpCRead:
		return model.Step{Proc: a.proc, Kind: model.KindRead, Reg: in.regOf(a.env)}
	case OpCWrite:
		return model.Step{Proc: a.proc, Kind: model.KindWrite, Reg: in.regOf(a.env), Val: in.Val.Eval(a.env)}
	case OpCRMW:
		return model.Step{
			Proc: a.proc, Kind: model.KindRMW, Reg: in.regOf(a.env), RMW: in.RMW,
			Arg1: in.Val.Eval(a.env), Arg2: in.Val2.Eval(a.env),
		}
	case OpCCrit:
		return model.Step{Proc: a.proc, Kind: model.KindCrit, Crit: in.Crit}
	default:
		panic(a.badState("PendingStep at non-normalized instruction"))
	}
}

// Feed applies the result of executing the pending step and advances the
// state. For reads and RMWs, v is the value read; for writes and critical
// steps v is ignored. Feed then re-normalizes.
//
//repro:hotpath
func (a *Automaton) Feed(v model.Value) {
	if a.halted {
		panic(a.badState("Feed on halted automaton"))
	}
	in := a.prog.Instrs[a.pc]
	switch in.Op {
	case OpCRead, OpCRMW:
		a.env[in.Dst] = v
		a.pc++
	case OpCWrite, OpCCrit:
		a.pc++
	default:
		panic(a.badState("Feed at non-step instruction"))
	}
	a.normalize()
}

// badState formats a machine-invariant panic message, naming the program,
// process, pc and (when in range) the instruction there.
//
//repro:hotpath-ok cold panic path: formats invariant violations off the hot path, never reached in a steady-state run
func (a *Automaton) badState(what string) string {
	at := "end of program"
	if a.pc < len(a.prog.Instrs) {
		at = a.prog.Instrs[a.pc].Op.String()
	}
	return fmt.Sprintf("program %q: process %d: %s at pc=%d (%s)", a.prog.Name, a.proc, what, a.pc, at)
}

// Clone returns an independent copy of the automaton in the same state.
//
//repro:hotpath-ok allocates by design; reached from hot copyFrom only on first seeding or a shape change, never steady state
func (a *Automaton) Clone() *Automaton {
	env := make([]model.Value, len(a.env))
	copy(env, a.env)
	return &Automaton{prog: a.prog, proc: a.proc, pc: a.pc, env: env, halted: a.halted}
}

// CopyFrom overwrites this automaton's state with src's, reusing the
// receiver's buffers when shapes allow — the zero-alloc counterpart of
// Clone for schedulers that re-seed one scratch automaton per lookahead
// instead of allocating a fresh copy per candidate decision.
//
//repro:hotpath
func (a *Automaton) CopyFrom(src *Automaton) {
	a.prog, a.proc, a.pc, a.halted = src.prog, src.proc, src.pc, src.halted
	if cap(a.env) < len(src.env) {
		a.env = make([]model.Value, len(src.env))
	}
	a.env = a.env[:len(src.env)]
	copy(a.env, src.env)
}

// snapshot records the automaton's current state into the reusable scratch
// buffer and returns (pc, halted) — everything stateChangedSince needs.
//
//repro:hotpath
func (a *Automaton) snapshot() (pc int, halted bool) {
	if cap(a.scratch) < len(a.env) {
		a.scratch = make([]model.Value, len(a.env))
	}
	a.scratch = a.scratch[:len(a.env)]
	copy(a.scratch, a.env)
	return a.pc, a.halted
}

// stateChangedSince reports whether the automaton state differs from the
// snapshot. Comparing (pc, env, halted) directly is exactly StateKey
// inequality — StateKey is injective on those fields — without building
// either string.
//
//repro:hotpath
func (a *Automaton) stateChangedSince(pc int, halted bool) bool {
	if a.pc != pc || a.halted != halted {
		return true
	}
	for i, v := range a.env {
		if v != a.scratch[i] {
			return true
		}
	}
	return false
}

// FeedChanged is Feed plus the SC cost model's question: it applies the
// result of the pending step and reports whether the automaton's state
// (pc, locals, halted) changed across it. It is the allocation-free
// replacement for the StateKey-before/StateKey-after comparison on the
// simulator's per-step hot path.
//
//repro:hotpath
func (a *Automaton) FeedChanged(v model.Value) bool {
	pc, halted := a.snapshot()
	a.Feed(v)
	return a.stateChangedSince(pc, halted)
}

// StateKey returns a canonical fingerprint of the automaton state. Two
// automata for the same program have equal StateKeys iff they are in the
// same state. The state change cost model charges a shared-memory step
// exactly when the StateKey changes across it.
func (a *Automaton) StateKey() string {
	var b strings.Builder
	b.Grow(8 + 8*len(a.env))
	if a.halted {
		b.WriteByte('H')
	}
	b.WriteString(strconv.Itoa(a.pc))
	for _, v := range a.env {
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return b.String()
}

// WouldChangeState reports whether feeding value v to the pending read (or
// RMW) would change the automaton's state. This is the paper's SC(α, m, i)
// helper (Figure 1): process p_i, whose state is st(α, i), changes state
// upon reading v exactly when this returns true. It panics if the pending
// step is not a read or RMW.
//
//repro:hotpath
func (a *Automaton) WouldChangeState(v model.Value) bool {
	in := a.prog.Instrs[a.pc]
	if in.Op != OpCRead && in.Op != OpCRMW {
		panic(a.badState("WouldChangeState at non-read instruction"))
	}
	// Speculatively feed, compare, and roll back through the scratch
	// snapshot — the schedulers that poll every pending read per decision
	// (ProgressFirst, GreedyCost) ask this O(n) times per step, so it must
	// not clone or build state strings.
	pc, halted := a.snapshot()
	a.Feed(v)
	changed := a.stateChangedSince(pc, halted)
	a.pc, a.halted = pc, halted
	copy(a.env, a.scratch)
	return changed
}
