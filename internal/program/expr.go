package program

import (
	"fmt"

	"repro/internal/model"
)

// Expr is a side-effect-free expression over a process's local variables.
// Expressions are evaluated by the interpreter when computing written
// values, branch conditions and spin predicates. Booleans are represented
// as 0 (false) and 1 (true), C-style.
type Expr interface {
	// Eval evaluates the expression in the given local environment.
	// Every implementation is on the simulator's per-step hot path: the
	// interpreter evaluates written values, branch conditions and spin
	// predicates through this method on every step of every run.
	//
	//repro:hotpath
	Eval(env []model.Value) model.Value
	// String renders the expression for disassembly and error messages.
	String() string
}

// ConstExpr is a literal value.
type ConstExpr struct{ V model.Value }

// Eval returns the literal.
//
//repro:hotpath
func (c ConstExpr) Eval([]model.Value) model.Value { return c.V }

// String renders the literal.
func (c ConstExpr) String() string { return fmt.Sprintf("%d", c.V) }

// Const returns a literal expression.
func Const(v model.Value) Expr { return ConstExpr{V: v} }

// VarRef is a reference to a local variable. VarRefs are created by
// Builder.Var and are also usable directly as expressions.
type VarRef struct {
	Index int
	Name  string
}

// Eval reads the variable from the environment.
//
//repro:hotpath
func (v VarRef) Eval(env []model.Value) model.Value { return env[v.Index] }

// String renders the variable name.
func (v VarRef) String() string { return v.Name }

// BinOp enumerates binary operators available to programs.
type BinOp uint8

// Binary operators. Comparison and logical operators yield 0 or 1.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

// BinExpr applies a binary operator to two subexpressions.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// Eval evaluates both operands and applies the operator. Division and
// modulus by zero yield zero rather than panicking: a deterministic
// automaton must have a total transition function.
//
//repro:hotpath
func (b BinExpr) Eval(env []model.Value) model.Value {
	l := b.L.Eval(env)
	r := b.R.Eval(env)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0
		}
		return l / r
	case OpMod:
		if r == 0 {
			return 0
		}
		return l % r
	case OpEq:
		return b2v(l == r)
	case OpNe:
		return b2v(l != r)
	case OpLt:
		return b2v(l < r)
	case OpLe:
		return b2v(l <= r)
	case OpGt:
		return b2v(l > r)
	case OpGe:
		return b2v(l >= r)
	case OpAnd:
		return b2v(l != 0 && r != 0)
	case OpOr:
		return b2v(l != 0 || r != 0)
	default:
		panic(badBinOp(b.Op))
	}
}

// badBinOp formats the unknown-operator panic message.
//
//repro:hotpath-ok cold panic path: reached only on a corrupt BinOp, never in a steady-state run
func badBinOp(op BinOp) string {
	return fmt.Sprintf("program: unknown binary operator %d", op)
}

// String renders the expression with full parenthesisation.
func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, binOpNames[b.Op], b.R)
}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

// Eval returns 1 if the operand is zero, else 0.
//
//repro:hotpath
func (n NotExpr) Eval(env []model.Value) model.Value { return b2v(n.E.Eval(env) == 0) }

// String renders !(e).
func (n NotExpr) String() string { return fmt.Sprintf("!%s", n.E) }

//repro:hotpath
func b2v(b bool) model.Value {
	if b {
		return 1
	}
	return 0
}

// Convenience constructors. They keep algorithm definitions readable:
// Eq(x, Const(0)) rather than BinExpr{Op: OpEq, …}.

// Add returns l + r.
func Add(l, r Expr) Expr { return BinExpr{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return BinExpr{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return BinExpr{Op: OpMul, L: l, R: r} }

// Eq returns l == r (0 or 1).
func Eq(l, r Expr) Expr { return BinExpr{Op: OpEq, L: l, R: r} }

// Ne returns l != r (0 or 1).
func Ne(l, r Expr) Expr { return BinExpr{Op: OpNe, L: l, R: r} }

// Lt returns l < r (0 or 1).
func Lt(l, r Expr) Expr { return BinExpr{Op: OpLt, L: l, R: r} }

// Le returns l <= r (0 or 1).
func Le(l, r Expr) Expr { return BinExpr{Op: OpLe, L: l, R: r} }

// Gt returns l > r (0 or 1).
func Gt(l, r Expr) Expr { return BinExpr{Op: OpGt, L: l, R: r} }

// Ge returns l >= r (0 or 1).
func Ge(l, r Expr) Expr { return BinExpr{Op: OpGe, L: l, R: r} }

// And returns l && r (0 or 1).
func And(l, r Expr) Expr { return BinExpr{Op: OpAnd, L: l, R: r} }

// Or returns l || r (0 or 1).
func Or(l, r Expr) Expr { return BinExpr{Op: OpOr, L: l, R: r} }

// Not returns !e (0 or 1).
func Not(e Expr) Expr { return NotExpr{E: e} }
