package program_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/program"
)

// buildSpinner returns a program that spins on register 0 until it reads
// nonzero, then writes 1 to register 1 and halts.
func buildSpinner(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("spinner")
	x := b.Var("x")
	b.Spin(0, x, program.Ne(x, program.Const(0)))
	b.Write(1, program.Const(1))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSpinStateUnchanged: the defining SC-model property — reading an
// unawaited value leaves the automaton state identical.
func TestSpinStateUnchanged(t *testing.T) {
	a := program.NewAutomaton(buildSpinner(t), 0)
	before := a.StateKey()
	step := a.PendingStep()
	if step.Kind != model.KindRead || step.Reg != 0 {
		t.Fatalf("pending %v, want read of r0", step)
	}
	for i := 0; i < 5; i++ {
		a.Feed(0) // value not awaited
		if got := a.StateKey(); got != before {
			t.Fatalf("state changed across a failed spin read: %q -> %q", before, got)
		}
	}
	a.Feed(7) // awaited
	if got := a.StateKey(); got == before {
		t.Fatal("state did not change when the awaited value arrived")
	}
	if next := a.PendingStep(); next.Kind != model.KindWrite || next.Reg != 1 {
		t.Fatalf("after spin, pending %v, want write r1", next)
	}
}

// TestWouldChangeState matches Feed behaviour exactly.
func TestWouldChangeState(t *testing.T) {
	a := program.NewAutomaton(buildSpinner(t), 0)
	if a.WouldChangeState(0) {
		t.Fatal("value 0 must not change state")
	}
	if !a.WouldChangeState(3) {
		t.Fatal("value 3 must change state")
	}
	// The oracle must not itself mutate state.
	if a.StateKey() != program.NewAutomaton(buildSpinner(t), 0).StateKey() {
		t.Fatal("WouldChangeState mutated the automaton")
	}
}

// TestCloneIndependence: clones evolve independently.
func TestCloneIndependence(t *testing.T) {
	a := program.NewAutomaton(buildSpinner(t), 0)
	c := a.Clone()
	c.Feed(9)
	if a.StateKey() == c.StateKey() {
		t.Fatal("clone shares state with the original")
	}
	if a.Proc() != c.Proc() {
		t.Fatal("clone lost its process index")
	}
}

// TestLocalFolding: Let/If/Goto run inside the transition function; the
// automaton only ever rests on shared or critical instructions.
func TestLocalFolding(t *testing.T) {
	b := program.NewBuilder("folding")
	x := b.Var("x")
	y := b.Var("y")
	b.Let(x, program.Const(21))
	b.Let(y, program.Add(x, x))
	b.Write(0, y)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := program.NewAutomaton(p, 2)
	step := a.PendingStep()
	if step.Kind != model.KindWrite || step.Val != 42 || step.Proc != 2 {
		t.Fatalf("pending %v, want write_2(r0,42)", step)
	}
	a.Feed(0)
	if !a.Halted() {
		t.Fatal("automaton should halt after the write")
	}
}

// TestMultiVarBusywaitChargesEveryRead: a two-register wait loop passes
// through distinct states (the program counter distinguishes the reads), so
// every read changes state — the SC model's single-variable-only rule.
func TestMultiVarBusywaitChargesEveryRead(t *testing.T) {
	b := program.NewBuilder("two-var-wait")
	f := b.Var("f")
	v := b.Var("v")
	b.Label("wait")
	b.Read(0, f)
	b.If(program.Eq(f, program.Const(0)), "done")
	b.Read(1, v)
	b.If(program.Eq(v, program.Const(1)), "wait")
	b.Label("done")
	b.Write(2, program.Const(1))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := program.NewAutomaton(p, 0)
	// Drive the loop with unchanging values f=1, v=1: each read flips
	// between the two read sites, changing state every time.
	for i := 0; i < 6; i++ {
		before := a.StateKey()
		step := a.PendingStep()
		if step.Kind != model.KindRead {
			t.Fatalf("iteration %d: pending %v", i, step)
		}
		a.Feed(1)
		if a.StateKey() == before {
			t.Fatalf("iteration %d: two-variable busywait read did not change state", i)
		}
	}
}

// TestSingleVarReadIfLoopIsFree: the same loop on ONE register written with
// Read+If (not the Spin helper) still has the free-re-read property,
// because normalization returns to the identical state.
func TestSingleVarReadIfLoopIsFree(t *testing.T) {
	b := program.NewBuilder("manual-spin")
	x := b.Var("x")
	b.Label("loop")
	b.Read(0, x)
	b.If(program.Eq(x, program.Const(0)), "loop")
	b.Write(1, x)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := program.NewAutomaton(p, 0)
	before := a.StateKey()
	a.Feed(0)
	if a.StateKey() != before {
		t.Fatal("manual single-register spin read changed state on unchanged value")
	}
}

// TestIndirectAddressing: RegX computes the register from locals.
func TestIndirectAddressing(t *testing.T) {
	b := program.NewBuilder("indirect")
	i := b.Var("i")
	v := b.Var("v")
	b.Let(i, program.Const(5))
	b.ReadX(program.Add(i, program.Const(2)), v)
	b.WriteX(i, v)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := program.NewAutomaton(p, 0)
	if step := a.PendingStep(); step.Reg != 7 {
		t.Fatalf("indirect read resolves to r%d, want r7", step.Reg)
	}
	a.Feed(33)
	if step := a.PendingStep(); step.Reg != 5 || step.Val != 33 {
		t.Fatalf("indirect write resolves to %v, want write r5 <- 33", step)
	}
}

// TestBuilderErrors covers label and validation failures.
func TestBuilderErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := program.NewBuilder("bad")
		b.Goto("nowhere")
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for undefined label")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := program.NewBuilder("bad")
		b.Label("l")
		b.Halt()
		b.Label("l")
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for duplicate label")
		}
	})
	t.Run("trailing label", func(t *testing.T) {
		b := program.NewBuilder("bad")
		b.Halt()
		b.Label("end")
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for label past the last instruction")
		}
	})
	t.Run("local cycle", func(t *testing.T) {
		b := program.NewBuilder("divergent")
		b.Label("l")
		b.Goto("l")
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for local-instruction cycle (diverging transition function)")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := program.NewBuilder("empty").Build(); err == nil {
			t.Fatal("want error for empty program")
		}
	})
}

// TestDisassemble sanity-checks the textual listing.
func TestDisassemble(t *testing.T) {
	p := buildSpinner(t)
	text := p.Disassemble()
	for _, want := range []string{"spinner", "read", "write r1", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

// TestExprEvaluation covers every operator, including division by zero
// (total function semantics).
func TestExprEvaluation(t *testing.T) {
	env := []model.Value{6, 3, 0}
	x := program.VarRef{Index: 0, Name: "x"}
	y := program.VarRef{Index: 1, Name: "y"}
	z := program.VarRef{Index: 2, Name: "z"}
	cases := []struct {
		expr program.Expr
		want model.Value
	}{
		{program.Add(x, y), 9},
		{program.Sub(x, y), 3},
		{program.Mul(x, y), 18},
		{program.BinExpr{Op: program.OpDiv, L: x, R: y}, 2},
		{program.BinExpr{Op: program.OpDiv, L: x, R: z}, 0}, // total: no panic
		{program.BinExpr{Op: program.OpMod, L: x, R: z}, 0},
		{program.BinExpr{Op: program.OpMod, L: x, R: program.Const(4)}, 2},
		{program.Eq(x, program.Const(6)), 1},
		{program.Ne(x, y), 1},
		{program.Lt(y, x), 1},
		{program.Le(x, x), 1},
		{program.Gt(y, x), 0},
		{program.Ge(z, y), 0},
		{program.And(x, z), 0},
		{program.Or(z, y), 1},
		{program.Not(z), 1},
		{program.Not(x), 0},
	}
	for _, c := range cases {
		if got := c.expr.Eval(env); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

// TestExprComparisonProperties: quick-check the comparison operators agree
// with Go's.
func TestExprComparisonProperties(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		env := []model.Value{a, b}
		x := program.VarRef{Index: 0, Name: "a"}
		y := program.VarRef{Index: 1, Name: "b"}
		return program.Lt(x, y).Eval(env) == boolVal(a < b) &&
			program.Le(x, y).Eval(env) == boolVal(a <= b) &&
			program.Eq(x, y).Eval(env) == boolVal(a == b) &&
			program.Add(x, y).Eval(env) == a+b
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func boolVal(b bool) model.Value {
	if b {
		return 1
	}
	return 0
}

// TestStateKeyInjective: quick-check different (pc-reachable) variable
// values give different keys.
func TestStateKeyInjective(t *testing.T) {
	p := buildSpinner(t)
	err := quick.Check(func(v1, v2 int64) bool {
		if v1 == v2 {
			return true
		}
		if v1 == 0 || v2 == 0 {
			return true // 0 does not advance the spin
		}
		a1 := program.NewAutomaton(p, 0)
		a2 := program.NewAutomaton(p, 0)
		a1.Feed(v1)
		a2.Feed(v2)
		return a1.StateKey() != a2.StateKey()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPendingStepPure: repeated PendingStep calls neither mutate state nor
// disagree with each other.
func TestPendingStepPure(t *testing.T) {
	a := program.NewAutomaton(buildSpinner(t), 0)
	s1 := a.PendingStep()
	k1 := a.StateKey()
	s2 := a.PendingStep()
	if s1 != s2 || a.StateKey() != k1 {
		t.Fatal("PendingStep is not pure")
	}
}

// TestHaltedPanics: using a halted automaton is a programming error.
func TestHaltedPanics(t *testing.T) {
	b := program.NewBuilder("quick-halt")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := program.NewAutomaton(p, 0)
	if !a.Halted() {
		t.Fatal("automaton should halt immediately")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PendingStep on halted automaton should panic")
		}
	}()
	a.PendingStep()
}

// TestProgramUsesRMW detects RMW instructions.
func TestProgramUsesRMW(t *testing.T) {
	b := program.NewBuilder("with-rmw")
	x := b.Var("x")
	b.RMW(model.RMWTestAndSet, 0, nil, nil, x)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !program.ProgramUsesRMW(p) {
		t.Fatal("RMW not detected")
	}
	if program.ProgramUsesRMW(buildSpinner(t)) {
		t.Fatal("false RMW detection")
	}
}
