package program

import "repro/internal/model"

// Factory describes an n-process shared-memory algorithm: how many
// registers it uses, their initial values, and the program each process
// runs. Mutex algorithms (internal/mutex, internal/rmw) implement Factory;
// the simulator (internal/machine), the lower-bound construction
// (internal/construct) and the decoder (internal/decode) consume it.
type Factory interface {
	// Name identifies the algorithm, e.g. "yang-anderson".
	Name() string
	// N returns the number of processes.
	N() int
	// NumRegisters returns the size of the shared register file.
	NumRegisters() int
	// InitialValues returns initial register values, or nil for all-zero.
	// When non-nil, its length must equal NumRegisters().
	InitialValues() []model.Value
	// Program returns the program process i runs (0 <= i < N()).
	// Programs may be shared across calls; they are immutable.
	Program(i int) *Program
	// UsesRMW reports whether any program uses read-modify-write
	// primitives. The paper's register-only lower bound pipeline rejects
	// such algorithms; the simulator accepts them.
	UsesRMW() bool
}

// NewAutomata instantiates a fresh automaton per process for the factory.
func NewAutomata(f Factory) []*Automaton {
	out := make([]*Automaton, f.N())
	for i := range out {
		out[i] = NewAutomaton(f.Program(i), i)
	}
	return out
}

// NewRegisters creates the factory's initial register file.
func NewRegisters(f Factory) *model.Registers {
	return model.NewRegisters(f.NumRegisters(), f.InitialValues())
}

// ProgramUsesRMW reports whether a program contains any RMW instruction;
// factories can implement UsesRMW with it.
func ProgramUsesRMW(p *Program) bool {
	for _, in := range p.Instrs {
		if in.Op == OpCRMW {
			return true
		}
	}
	return false
}
