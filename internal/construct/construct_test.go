package construct_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/verify"
)

func mustAlgo(t testing.TB, name string, n int) *mutex.Factory {
	t.Helper()
	f, err := mutex.New(name, n)
	if err != nil {
		t.Fatalf("mutex.New(%s, %d): %v", name, n, err)
	}
	return f
}

// TestTheorem55EntryOrder: in every linearization of the constructed
// (M_n, ≼_n), processes enter their critical sections in exactly the order
// π — exhaustively over S_n for small n, for all register algorithms.
func TestTheorem55EntryOrder(t *testing.T) {
	algos := []string{mutex.NameYangAnderson, mutex.NamePeterson, mutex.NameBakery}
	for _, name := range algos {
		for n := 1; n <= 4; n++ {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				f := mustAlgo(t, name, n)
				perm.ForEach(n, func(pi []int) bool {
					res, err := construct.Construct(f, pi)
					if err != nil {
						t.Fatalf("Construct(%v): %v", pi, err)
					}
					alpha, err := res.Linearize()
					if err != nil {
						t.Fatalf("Linearize(%v): %v", pi, err)
					}
					if err := verify.MutexExecution(f, alpha); err != nil {
						t.Fatalf("pi=%v: %v\n%s", pi, err, alpha)
					}
					if err := verify.EntryOrder(alpha, pi); err != nil {
						t.Fatalf("pi=%v: %v", pi, err)
					}
					return true
				})
			})
		}
	}
}

// TestTheorem55RandomLinearizations: the entry-order guarantee holds for
// random linearizations too, not just the canonical one.
func TestTheorem55RandomLinearizations(t *testing.T) {
	f := mustAlgo(t, mutex.NameYangAnderson, 5)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		pi := perm.Random(5, rng)
		res, err := construct.Construct(f, pi)
		if err != nil {
			t.Fatalf("Construct(%v): %v", pi, err)
		}
		for k := 0; k < 5; k++ {
			alpha, err := res.Set.Lin(rng)
			if err != nil {
				t.Fatalf("Lin: %v", err)
			}
			if err := verify.MutexExecution(f, alpha); err != nil {
				t.Fatalf("pi=%v trial=%d: %v", pi, k, err)
			}
			if err := verify.EntryOrder(alpha, pi); err != nil {
				t.Fatalf("pi=%v trial=%d: %v", pi, k, err)
			}
		}
	}
}

// TestLemma61LinearizationCostInvariant: all linearizations of (M, ≼) have
// the same state change cost.
func TestLemma61LinearizationCostInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{mutex.NameYangAnderson, mutex.NameBakery} {
		for _, n := range []int{3, 5} {
			f := mustAlgo(t, name, n)
			pi := perm.Random(n, rng)
			res, err := construct.Construct(f, pi)
			if err != nil {
				t.Fatalf("Construct: %v", err)
			}
			want, err := res.Cost()
			if err != nil {
				t.Fatalf("Cost: %v", err)
			}
			for k := 0; k < 8; k++ {
				alpha, err := res.Set.Lin(rng)
				if err != nil {
					t.Fatalf("Lin: %v", err)
				}
				got, err := cost.SCCost(f, alpha)
				if err != nil {
					t.Fatalf("SCCost: %v", err)
				}
				if got != want {
					t.Fatalf("%s n=%d pi=%v: linearization %d has SC=%d, canonical has %d (Lemma 6.1 violated)", name, n, pi, k, got, want)
				}
			}
		}
	}
}

// TestLemma54Projections: a process cannot distinguish linearizations —
// its projection is identical in every linearization of the final set.
func TestLemma54Projections(t *testing.T) {
	f := mustAlgo(t, mutex.NameYangAnderson, 4)
	rng := rand.New(rand.NewSource(3))
	pi := []int{2, 0, 3, 1}
	res, err := construct.Construct(f, pi)
	if err != nil {
		t.Fatalf("Construct: %v", err)
	}
	canonical, err := res.Linearize()
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	canonExec, _, err := machine.ReplayExecution(f, canonical)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for k := 0; k < 6; k++ {
		alpha, err := res.Set.Lin(rng)
		if err != nil {
			t.Fatalf("Lin: %v", err)
		}
		filled, _, err := machine.ReplayExecution(f, alpha)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		for i := 0; i < 4; i++ {
			if !canonExec.Project(i).Equal(filled.Project(i)) {
				t.Fatalf("projection of process %d differs between linearizations (Lemma 5.4 violated)", i)
			}
		}
	}
}

// TestConstructRejectsRMW: the register-only model rejects RMW algorithms.
func TestConstructRejectsRMW(t *testing.T) {
	// Build a tiny RMW factory inline via the rmw package in the
	// experiments; here we simulate with the interface check on a
	// register algorithm — covered in the core package tests. Just check
	// the permutation validation path.
	f := mustAlgo(t, mutex.NameYangAnderson, 3)
	if _, err := construct.Construct(f, []int{0, 1}); err == nil {
		t.Fatal("want error for wrong-length permutation")
	}
	if _, err := construct.Construct(f, []int{0, 1, 1}); err == nil {
		t.Fatal("want error for non-permutation")
	}
}

// TestConstructionGrowth: the construction's cost grows like the subject
// algorithm's canonical cost — sanity on sizes for a sweep of n.
func TestConstructionGrowth(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		f := mustAlgo(t, mutex.NameYangAnderson, n)
		res, err := construct.Construct(f, perm.Identity(n))
		if err != nil {
			t.Fatalf("Construct(n=%d): %v", n, err)
		}
		c, err := res.Cost()
		if err != nil {
			t.Fatalf("Cost: %v", err)
		}
		t.Logf("n=%d metasteps=%d steps=%d SC=%d SC/(n log n)=%.2f",
			n, res.Set.Len(), res.Set.TotalSteps(), c, float64(c)/perm.NLogN(n))
		if c < n {
			t.Errorf("n=%d: SC=%d is implausibly small", n, c)
		}
	}
}
