package construct_test

import (
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/metastep"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/perm"
)

// Direct checks of the prefix lemmas of Section 5.3 (Lemmas 5.8 and 5.10)
// in the form the decoder actually relies on (Lemma 7.2). A "prefix" N of
// M is a downward-closed subset (Definition 5.6); we sample prefixes by
// cutting canonical and random topological orders.
//
// Note on fidelity: the TR states Lemma 5.8 for γ^W_i over *any* prefix;
// read literally, that admits prefixes in which an earlier chain metastep
// of p_i is still outside N, where the equality can fail (p_i's write was
// folded into a later write metastep precisely because the earlier one
// already preceded p_i's chain). The decoder only evaluates these
// quantities when p_i's pending metastep is its *first* chain element
// outside N — membership of a chain in a downward-closed set is always a
// chain prefix — and in that anchored form the lemmas hold; that is what
// we test (and what Lemma 7.2's proof uses).

// prefixesOf returns sampled prefixes of the set as membership slices.
func prefixesOf(t *testing.T, s *metastep.Set, rng *rand.Rand, k int) [][]bool {
	t.Helper()
	var out [][]bool
	for i := 0; i < k; i++ {
		var order []metastep.ID
		var err error
		if i%2 == 0 {
			order, err = s.TopoOrder(nil, nil)
		} else {
			order, err = s.TopoOrder(nil, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(order) + 1)
		in := make([]bool, s.Len())
		for _, id := range order[:cut] {
			in[id] = true
		}
		out = append(out, in)
	}
	return out
}

// gammaW returns γ^W(N, ℓ): the minimum write metastep on ℓ not in N
// (creation order is the total order, Lemma 5.3).
func gammaW(s *metastep.Set, in []bool, reg model.RegID) metastep.ID {
	for _, id := range s.WritesOn(reg) {
		if !in[id] {
			return id
		}
	}
	return metastep.None
}

// nextInChain returns process i's first chain metastep outside N
// (its pending metastep when N is the executed set), or None.
func nextInChain(s *metastep.Set, in []bool, i int) metastep.ID {
	for _, id := range s.Chain(i) {
		if !in[id] {
			return id
		}
	}
	return metastep.None
}

// TestChainMembershipIsPrefix: in a downward-closed N, each process's
// executed chain elements form a prefix of its chain — the structural fact
// that anchors the lemmas below.
func TestChainMembershipIsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	f, err := mutex.New(mutex.NameYangAnderson, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := construct.Construct(f, perm.Random(5, rng))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Set
	for _, in := range prefixesOf(t, s, rng, 20) {
		for i := 0; i < 5; i++ {
			seenOut := false
			for _, id := range s.Chain(i) {
				if !in[id] {
					seenOut = true
				} else if seenOut {
					t.Fatalf("process %d: chain element m%d in N after an element outside N", i, id)
				}
			}
		}
	}
}

// TestLemma58Anchored: if p_i's pending metastep is a write metastep on ℓ
// in which p_i performs a write, then it IS the minimum write metastep on ℓ
// outside N — so the decoder's parked writers always belong to the
// signature being matched.
func TestLemma58Anchored(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	checked := 0
	for _, name := range []string{mutex.NameYangAnderson, mutex.NameBakery, mutex.NamePeterson, mutex.NameDijkstra} {
		for _, n := range []int{3, 4, 5} {
			f, err := mutex.New(name, n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := construct.Construct(f, perm.Random(n, rng))
			if err != nil {
				t.Fatal(err)
			}
			s := res.Set
			for _, in := range prefixesOf(t, s, rng, 16) {
				for i := 0; i < n; i++ {
					next := nextInChain(s, in, i)
					if next == metastep.None {
						continue
					}
					m := s.Meta(next)
					if m.Type != metastep.TypeWrite {
						continue
					}
					step, ok := m.StepOf(i)
					if !ok || step.Kind != model.KindWrite {
						continue
					}
					checked++
					if got := gammaW(s, in, m.Reg); got != next {
						t.Fatalf("%s n=%d: anchored Lemma 5.8 violated: p%d pending write metastep m%d on r%d, but γ^W(N)=m%d",
							name, n, i, next, m.Reg, got)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no instances exercised")
	}
	t.Logf("anchored Lemma 5.8 checked on %d instances", checked)
}

// TestLemma510Anchored: if p_i's pending metastep is a standalone read on ℓ
// that is a preread of some write metastep w, then w is the minimum write
// metastep on ℓ outside N — so the decoder's preread counter always counts
// toward the next signature on that register, never a later one.
func TestLemma510Anchored(t *testing.T) {
	rng := rand.New(rand.NewSource(510))
	checked := 0
	for _, name := range []string{mutex.NameYangAnderson, mutex.NameBakery, mutex.NameDijkstra, mutex.NameFilter} {
		for _, n := range []int{3, 4, 5} {
			f, err := mutex.New(name, n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := construct.Construct(f, perm.Random(n, rng))
			if err != nil {
				t.Fatal(err)
			}
			s := res.Set
			for _, in := range prefixesOf(t, s, rng, 16) {
				for i := 0; i < n; i++ {
					next := nextInChain(s, in, i)
					if next == metastep.None {
						continue
					}
					m := s.Meta(next)
					if m.Type != metastep.TypeRead || m.PreadOf == metastep.None {
						continue
					}
					checked++
					if got := gammaW(s, in, m.Reg); got != m.PreadOf {
						t.Fatalf("%s n=%d: anchored Lemma 5.10 violated: p%d pending preread m%d belongs to m%d but γ^W(N,r%d)=m%d",
							name, n, i, next, m.PreadOf, m.Reg, got)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no preread instances arose in the sampled prefixes")
	}
	t.Logf("anchored Lemma 5.10 checked on %d instances", checked)
}
