// Package construct implements the construction step of the lower bound
// proof (Section 5, Figure 1): given a livelock-free mutual exclusion
// algorithm A and a permutation π ∈ S_n, it builds a set of metasteps M and
// partial order ≼ whose every linearization is an execution of A in which
// the n processes each complete one critical section, in exactly the order
// π — while every process remains invisible to all lower-indexed (in π)
// processes.
//
// Invisibility is achieved by the two insertion rules of Figure 1:
//
//   - a higher-indexed process's write is inserted as a non-winning write
//     into the minimum not-yet-ordered write metastep on the same register,
//     so a lower-indexed process's write immediately overwrites it;
//   - a higher-indexed process's read is inserted into the minimum
//     not-yet-ordered write metastep whose value would change the reader's
//     state (the SC oracle), so the read happens after that write and the
//     reader never observes intermediate values; standalone reads become
//     prereads ordered before the next write metastep on the register.
//
// The package requires the algorithm to use only registers (the paper's
// model); factories using RMW primitives are rejected.
package construct

import (
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/metastep"
	"repro/internal/model"
	"repro/internal/perm"
	"repro/internal/program"
)

// ErrRMW is returned when the algorithm uses read-modify-write primitives,
// which are outside the register-only model of the lower bound.
var ErrRMW = errors.New("construct: algorithm uses RMW primitives; the lower-bound construction requires registers only")

// Result is the output of the construction: the metastep set with its
// partial order, and bookkeeping used by encoding and the experiments.
type Result struct {
	// Set is (M, ≼) after the final stage.
	Set *metastep.Set
	// Perm is the permutation π the construction was run for.
	Perm []int
	// Factory is the algorithm A.
	Factory program.Factory
	// StageSets[i] is a snapshot boundary: the number of metasteps that
	// existed after stage i (prefix counts into Set). Metasteps are only
	// appended and joined, never removed, so Set restricted to IDs below
	// StageSets[i] is NOT (M_i, ≼_i) — later stages may join existing
	// metasteps — but the count is useful diagnostics.
	StageSets []int
	// Iterations is the total number of Generate loop iterations.
	Iterations int
}

// maxIterations bounds one process's Generate loop. A livelock-free
// algorithm terminates (Section 5.1): exceeding the bound means the
// algorithm or the construction is broken.
func maxIterations(n int) int { return 4000 + 400*n }

// Construct runs the n-stage construction (Figure 1, procedure Construct)
// for algorithm f and permutation pi.
func Construct(f program.Factory, pi []int) (*Result, error) {
	return ConstructPartial(f, pi, len(pi))
}

// ConstructPartial runs only the first `stages` stages, producing
// (M_i, ≼_i) for i = stages: the intermediate objects of Section 5 that
// Lemma 5.4 and Theorem 5.5 quantify over. Construct is the stages = n
// case.
func ConstructPartial(f program.Factory, pi []int, stages int) (*Result, error) {
	if f.UsesRMW() {
		return nil, ErrRMW
	}
	n := f.N()
	if len(pi) != n || !perm.IsPermutation(pi) {
		return nil, fmt.Errorf("construct: pi=%v is not a permutation of 0..%d", pi, n-1)
	}
	if stages < 0 || stages > n {
		return nil, fmt.Errorf("construct: stages=%d out of range [0,%d]", stages, n)
	}
	r := &Result{
		Set:     metastep.NewSet(n),
		Perm:    append([]int(nil), pi...),
		Factory: f,
	}
	for stage := 0; stage < stages; stage++ {
		if err := r.generate(pi[stage]); err != nil {
			return nil, fmt.Errorf("construct: stage %d (process %d): %w", stage, pi[stage], err)
		}
		r.StageSets = append(r.StageSets, r.Set.Len())
	}
	if err := r.Set.CheckAcyclic(); err != nil {
		return nil, fmt.Errorf("construct: %w (Lemma 5.2 violated)", err)
	}
	return r, nil
}

// generate implements procedure Generate(M, ≼, j) of Figure 1: it runs
// process j against the current metastep set until j completes its critical
// and exit sections (its rem step), inserting j's steps so that j stays
// invisible to the processes already in the set.
func (r *Result) generate(j int) error {
	s := r.Set
	last := metastep.None // m′: the metastep modified or created last
	limit := maxIterations(s.N())

	for iter := 0; ; iter++ {
		if iter > limit {
			return fmt.Errorf("iteration limit %d exceeded; algorithm may not be livelock-free in the constructed schedule", limit)
		}
		r.Iterations++

		// α ← Plin(M, ≼, m′); e ← δ(α, j).
		alpha, err := s.Plin(last, nil)
		if err != nil {
			return err
		}
		rep := machine.NewReplayer(r.Factory)
		if _, err := rep.ApplyAll(alpha); err != nil {
			return fmt.Errorf("replaying Plin prefix: %w", err)
		}
		if rep.Halted(j) {
			return fmt.Errorf("process %d halted before performing rem", j)
		}
		e := rep.PendingStep(j)

		anc := s.AncestorsOf(last)
		notOrdered := func(id metastep.ID) bool { return !anc[id] }

		switch e.Kind {
		case model.KindWrite:
			// mw ← min write metastep on ℓ with µ ⋠ m′ (they are totally
			// ordered in creation order, Lemma 5.3).
			mw := metastep.None
			for _, id := range s.WritesOn(e.Reg) {
				if notOrdered(id) {
					mw = id
					break
				}
			}
			if mw != metastep.None {
				s.JoinWrite(mw, e)
				if last != metastep.None {
					s.AddEdge(last, mw)
				}
				last = mw
			} else {
				m := s.NewWriteMeta(e)
				// Mr ← maximal read metasteps on ℓ with µ ⋠ m′: they become
				// prereads, ordered before m, so their readers never see
				// the new value.
				mr := r.maximalUnordered(s.ReadsOn(e.Reg), anc)
				if len(mr) > 0 {
					s.SetPread(m.ID, mr)
					for _, µ := range mr {
						s.AddEdge(µ, m.ID)
					}
				}
				if last != metastep.None {
					s.AddEdge(last, m.ID)
				}
				last = m.ID
			}

		case model.KindRead:
			// msw ← min write metastep on ℓ with µ ⋠ m′ whose value would
			// change p_j's state (the SC oracle of Figure 1).
			msw := metastep.None
			aut := rep.Automaton(j)
			for _, id := range s.WritesOn(e.Reg) {
				if !notOrdered(id) {
					continue
				}
				if aut.WouldChangeState(s.Meta(id).Value()) {
					msw = id
					break
				}
			}
			if msw != metastep.None {
				s.JoinRead(msw, e)
				if last != metastep.None {
					s.AddEdge(last, msw)
				}
				last = msw
			} else {
				// No future write changes p_j's state: p_j reads the
				// current value. Livelock freedom guarantees this read
				// itself changes p_j's state (else it would be stuck
				// forever); verify it to fail fast on broken inputs.
				cur := rep.Registers().Read(e.Reg)
				if !aut.WouldChangeState(cur) {
					return fmt.Errorf("process %d would busywait forever on r%d=%d with no future write changing its state (livelock)", j, e.Reg, cur)
				}
				m := s.NewReadMeta(e)
				if last != metastep.None {
					s.AddEdge(last, m.ID)
				}
				last = m.ID
			}

		case model.KindCrit:
			m := s.NewCritMeta(e)
			if last != metastep.None {
				s.AddEdge(last, m.ID)
			}
			last = m.ID
			if e.Crit == model.CritRem {
				return nil
			}

		default:
			return ErrRMW
		}
	}
}

// maximalUnordered returns the ≼-maximal elements among the candidates not
// in anc. A candidate is non-maximal if it precedes another candidate.
func (r *Result) maximalUnordered(candidates []metastep.ID, anc []bool) []metastep.ID {
	var unordered []metastep.ID
	for _, id := range candidates {
		if !anc[id] {
			unordered = append(unordered, id)
		}
	}
	if len(unordered) <= 1 {
		return unordered
	}
	maximal := make([]metastep.ID, 0, len(unordered))
	for _, c := range unordered {
		isMax := true
		for _, d := range unordered {
			if c != d && r.Set.Reaches(c, d) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal = append(maximal, c)
		}
	}
	return maximal
}

// Linearize returns the canonical linearization α_π of the constructed
// (M, ≼).
func (r *Result) Linearize() (model.Execution, error) {
	return r.Set.Lin(nil)
}

// Cost returns the state change cost C(α) of the canonical linearization.
// By Lemma 6.1 every linearization has the same cost; tests check this.
func (r *Result) Cost() (int, error) {
	alpha, err := r.Linearize()
	if err != nil {
		return 0, err
	}
	_, sc, err := machine.ReplayExecution(r.Factory, alpha)
	if err != nil {
		return 0, err
	}
	return sc, nil
}
