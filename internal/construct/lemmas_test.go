package construct_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/construct"
	"repro/internal/machine"
	"repro/internal/metastep"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/perm"
)

// This file checks the construction's structural lemmas (Section 5.2/5.3)
// directly on constructed metastep sets, for all register algorithms over
// exhaustive small S_n and seeded larger samples.

func lemmaCases(t *testing.T) []*construct.Result {
	t.Helper()
	var out []*construct.Result
	rng := rand.New(rand.NewSource(55))
	for _, name := range []string{mutex.NameYangAnderson, mutex.NamePeterson, mutex.NameBakery, mutex.NameDijkstra, mutex.NameFilter} {
		for _, n := range []int{2, 3, 4} {
			f, err := mutex.New(name, n)
			if err != nil {
				t.Fatal(err)
			}
			pi := perm.Random(n, rng)
			res, err := construct.Construct(f, pi)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			out = append(out, res)
		}
	}
	// One larger instance.
	f, err := mutex.YangAnderson(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := construct.Construct(f, perm.Random(8, rng))
	if err != nil {
		t.Fatal(err)
	}
	return append(out, res)
}

// TestLemma52PartialOrder: ≼_i is a partial order (the explicit edges form
// a DAG) — checked at every stage, not just the end.
func TestLemma52PartialOrder(t *testing.T) {
	f, err := mutex.YangAnderson(5)
	if err != nil {
		t.Fatal(err)
	}
	pi := []int{4, 2, 0, 3, 1}
	for stages := 0; stages <= 5; stages++ {
		res, err := construct.ConstructPartial(f, pi, stages)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if err := res.Set.CheckAcyclic(); err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
	}
}

// TestLemma53WriteTotalOrder: for every register, the write metasteps are
// totally ordered by ≼, in creation order.
func TestLemma53WriteTotalOrder(t *testing.T) {
	for _, res := range lemmaCases(t) {
		s := res.Set
		regs := map[model.RegID]bool{}
		for id := 0; id < s.Len(); id++ {
			m := s.Meta(metastep.ID(id))
			if m.Type == metastep.TypeWrite {
				regs[m.Reg] = true
			}
		}
		for reg := range regs {
			writes := s.WritesOn(reg)
			for k := 0; k+1 < len(writes); k++ {
				if !s.Reaches(writes[k], writes[k+1]) {
					t.Fatalf("%s pi=%v: writes on r%d not totally ordered: m%d ⋠ m%d",
						res.Factory.Name(), res.Perm, reg, writes[k], writes[k+1])
				}
			}
		}
	}
}

// TestProcessChainsAreChains: every process's metasteps are totally ordered
// (the property that makes "p's j'th metastep" — and hence the encoding's
// column layout — well defined).
func TestProcessChainsAreChains(t *testing.T) {
	for _, res := range lemmaCases(t) {
		s := res.Set
		for i := 0; i < s.N(); i++ {
			chain := s.Chain(i)
			for k := 0; k+1 < len(chain); k++ {
				if !s.Reaches(chain[k], chain[k+1]) {
					t.Fatalf("%s pi=%v: process %d's chain not ordered at position %d",
						res.Factory.Name(), res.Perm, i, k)
				}
			}
		}
	}
}

// TestPrereadsPrecedeTheirWrite: every preread is ordered before its write
// metastep, and no read metastep is a preread of two writes.
func TestPrereadsPrecedeTheirWrite(t *testing.T) {
	for _, res := range lemmaCases(t) {
		s := res.Set
		owner := map[metastep.ID]metastep.ID{}
		for id := 0; id < s.Len(); id++ {
			m := s.Meta(metastep.ID(id))
			for _, pr := range m.Pread {
				if prev, dup := owner[pr]; dup {
					t.Fatalf("read metastep m%d is a preread of both m%d and m%d", pr, prev, m.ID)
				}
				owner[pr] = m.ID
				if !s.Reaches(pr, m.ID) {
					t.Fatalf("preread m%d not ordered before m%d", pr, m.ID)
				}
				if back := s.Meta(pr).PreadOf; back != m.ID {
					t.Fatalf("PreadOf back-pointer of m%d is %d, want %d", pr, back, m.ID)
				}
			}
		}
	}
}

// TestLemma54AcrossStages: for i ≤ j ≤ k, process π_i's projection is
// identical in linearizations of (M_j, ≼_j) and (M_k, ≼_k) — lower-indexed
// processes cannot tell whether higher-indexed ones exist.
func TestLemma54AcrossStages(t *testing.T) {
	for _, name := range []string{mutex.NameYangAnderson, mutex.NameBakery} {
		n := 5
		f, err := mutex.New(name, n)
		if err != nil {
			t.Fatal(err)
		}
		pi := []int{2, 4, 1, 0, 3}
		projections := make([]map[int]string, n+1) // stage -> proc -> projection
		for stages := 1; stages <= n; stages++ {
			res, err := construct.ConstructPartial(f, pi, stages)
			if err != nil {
				t.Fatal(err)
			}
			alpha, err := res.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			filled, _, err := machine.ReplayExecution(f, alpha)
			if err != nil {
				t.Fatal(err)
			}
			projections[stages] = map[int]string{}
			for s := 0; s < stages; s++ {
				projections[stages][pi[s]] = filled.Project(pi[s]).String()
			}
		}
		for j := 1; j <= n; j++ {
			for k := j + 1; k <= n; k++ {
				for s := 0; s < j; s++ {
					proc := pi[s]
					if projections[j][proc] != projections[k][proc] {
						t.Fatalf("%s: process %d distinguishes stage %d from stage %d (Lemma 5.4)\nstage %d: %s\nstage %d: %s",
							name, proc, j, k, j, projections[j][proc], k, projections[k][proc])
					}
				}
			}
		}
	}
}

// TestTheorem55AtEveryStage: in any linearization of (M_i, ≼_i), the first
// i processes of π complete their critical sections in π order.
func TestTheorem55AtEveryStage(t *testing.T) {
	f, err := mutex.New(mutex.NameYangAnderson, 5)
	if err != nil {
		t.Fatal(err)
	}
	pi := []int{3, 0, 4, 2, 1}
	for stages := 1; stages <= 5; stages++ {
		res, err := construct.ConstructPartial(f, pi, stages)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := res.Linearize()
		if err != nil {
			t.Fatal(err)
		}
		got := alpha.EntryOrder()
		if len(got) != stages {
			t.Fatalf("stages=%d: %d entries", stages, len(got))
		}
		for s := 0; s < stages; s++ {
			if got[s] != pi[s] {
				t.Fatalf("stages=%d: entry order %v, want prefix of %v", stages, got, pi)
			}
		}
	}
}

// TestEveryStepChargedInLinearizations: in a constructed linearization,
// every shared step changes the acting process's state (the accounting
// behind Theorem 6.2: cost equals the number of contained steps).
func TestEveryStepChargedInLinearizations(t *testing.T) {
	for _, res := range lemmaCases(t) {
		alpha, err := res.Linearize()
		if err != nil {
			t.Fatal(err)
		}
		shared := 0
		for _, s := range alpha {
			if s.IsShared() {
				shared++
			}
		}
		cost, err := res.Cost()
		if err != nil {
			t.Fatal(err)
		}
		if cost != shared {
			t.Fatalf("%s pi=%v: cost %d ≠ shared steps %d — some constructed step was free",
				res.Factory.Name(), res.Perm, cost, shared)
		}
	}
}

// TestConstructDeterministic: the construction is a deterministic function
// of (algorithm, π).
func TestConstructDeterministic(t *testing.T) {
	f, err := mutex.New(mutex.NameBakery, 4)
	if err != nil {
		t.Fatal(err)
	}
	pi := []int{1, 3, 0, 2}
	a, err := construct.Construct(f, pi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := construct.Construct(f, pi)
	if err != nil {
		t.Fatal(err)
	}
	la, err := a.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if !la.Equal(lb) {
		t.Fatal("construction is nondeterministic")
	}
}

// TestConstructPartialValidation covers the stages bounds.
func TestConstructPartialValidation(t *testing.T) {
	f, err := mutex.New(mutex.NameYangAnderson, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, stages := range []int{-1, 4} {
		if _, err := construct.ConstructPartial(f, []int{0, 1, 2}, stages); err == nil {
			t.Fatalf("stages=%d accepted", stages)
		}
	}
	res, err := construct.ConstructPartial(f, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Len() != 0 {
		t.Fatalf("zero stages produced %d metasteps", res.Set.Len())
	}
}

func ExampleConstruct() {
	f, _ := mutex.YangAnderson(3)
	res, _ := construct.Construct(f, []int{2, 0, 1})
	alpha, _ := res.Linearize()
	fmt.Println("entries:", alpha.EntryOrder())
	// Output: entries: [2 0 1]
}
