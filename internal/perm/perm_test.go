package perm_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

func TestFactorial(t *testing.T) {
	cases := map[int]uint64{0: 1, 1: 1, 2: 2, 5: 120, 10: 3628800, 20: 2432902008176640000}
	for n, want := range cases {
		if got := perm.Factorial(n); got != want {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFactorialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Factorial(21) should panic (overflows uint64)")
		}
	}()
	perm.Factorial(21)
}

func TestLog2Factorial(t *testing.T) {
	for _, n := range []int{2, 5, 10, 100} {
		got := perm.Log2Factorial(n)
		if n <= 20 {
			want := math.Log2(float64(perm.Factorial(n)))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("Log2Factorial(%d) = %v, want %v", n, got, want)
			}
		}
		// Stirling sandwich: n lg n - n lg e ≤ lg n! ≤ n lg n.
		upper := float64(n) * math.Log2(float64(n))
		lower := upper - float64(n)*math.Log2(math.E)
		if got > upper+1e-9 || got < lower-1e-9 {
			t.Errorf("Log2Factorial(%d)=%v outside Stirling bounds [%v, %v]", n, got, lower, upper)
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 0; n <= 6; n++ {
		want := uint64(0)
		perm.ForEach(n, func(p []int) bool {
			if got := perm.Rank(p); got != want {
				t.Fatalf("n=%d: Rank(%v) = %d, want %d (lexicographic enumeration order)", n, p, got, want)
			}
			back := perm.Unrank(n, want)
			for i := range p {
				if back[i] != p[i] {
					t.Fatalf("n=%d rank=%d: Unrank = %v, want %v", n, want, back, p)
				}
			}
			want++
			return true
		})
		if n > 0 && want != perm.Factorial(n) {
			t.Fatalf("n=%d: enumerated %d permutations, want %d", n, want, perm.Factorial(n))
		}
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unrank(3, 6) should panic")
		}
	}()
	perm.Unrank(3, 6)
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	perm.ForEach(5, func([]int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop after %d, want 7", count)
	}
}

func TestInverse(t *testing.T) {
	p := []int{2, 0, 3, 1}
	inv := perm.Inverse(p)
	for pos, v := range p {
		if inv[v] != pos {
			t.Fatalf("Inverse(%v) = %v: inv[%d] = %d, want %d", p, inv, v, inv[v], pos)
		}
	}
}

func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	err := quick.Check(func(seed int64) bool {
		n := 1 + int(seed%12+12)%12
		p := perm.Random(n, rng)
		back := perm.Inverse(perm.Inverse(p))
		for i := range p {
			if back[i] != p[i] {
				return false
			}
		}
		return perm.IsPermutation(p)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsPermutation(t *testing.T) {
	cases := []struct {
		p    []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1, 0, 2}, true},
		{[]int{1, 1, 2}, false},
		{[]int{0, 3}, false},
		{[]int{-1, 0}, false},
	}
	for _, c := range cases {
		if got := perm.IsPermutation(c.p); got != c.want {
			t.Errorf("IsPermutation(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSampleExhaustsSmallSn(t *testing.T) {
	got := perm.Sample(3, 100, 1)
	if len(got) != 6 {
		t.Fatalf("Sample(3, 100) returned %d perms, want all 6", len(got))
	}
	seen := map[uint64]bool{}
	for _, p := range got {
		seen[perm.Rank(p)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Sample(3, 100) returned duplicates: %v", got)
	}
}

func TestSampleSeededDeterministic(t *testing.T) {
	a := perm.Sample(30, 5, 42)
	b := perm.Sample(30, 5, 42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different samples")
			}
		}
		if !perm.IsPermutation(a[i]) {
			t.Fatalf("sample %v is not a permutation", a[i])
		}
	}
}

func TestNLogN(t *testing.T) {
	if got := perm.NLogN(1); got != 0 {
		t.Errorf("NLogN(1) = %v, want 0", got)
	}
	if got := perm.NLogN(8); math.Abs(got-24) > 1e-9 {
		t.Errorf("NLogN(8) = %v, want 24", got)
	}
}

func TestIdentity(t *testing.T) {
	id := perm.Identity(4)
	for i, v := range id {
		if v != i {
			t.Fatalf("Identity(4) = %v", id)
		}
	}
}
