// Package perm provides the permutation machinery of the counting argument
// in Section 7.3: enumeration and seeded sampling of S_n, Lehmer-code
// ranking/unranking, and the information-theoretic quantity log₂(n!) that
// any encoding distinguishing all of S_n must reach.
package perm

import (
	"fmt"
	"math"
	"math/rand"
)

// MaxExact is the largest n for which n! fits in a uint64 (20! < 2^64 < 21!).
const MaxExact = 20

// Factorial returns n! for 0 <= n <= MaxExact; it panics beyond that
// (callers use Log2Factorial for large n).
func Factorial(n int) uint64 {
	if n < 0 || n > MaxExact {
		panic(fmt.Sprintf("perm: Factorial(%d) out of exact range [0,%d]", n, MaxExact))
	}
	f := uint64(1)
	for i := 2; i <= n; i++ {
		f *= uint64(i)
	}
	return f
}

// Log2Factorial returns log₂(n!) = Σ_{k=2}^{n} log₂ k, the minimum number of
// bits needed to uniquely identify an element of S_n. By Stirling's formula
// this is n log₂ n − Θ(n): the Ω(n log n) of the paper's title.
func Log2Factorial(n int) float64 {
	s := 0.0
	for k := 2; k <= n; k++ {
		s += math.Log2(float64(k))
	}
	return s
}

// NLogN returns n·log₂(n) (0 for n < 2), the normalization used when
// reporting cost ratios.
func NLogN(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n))
}

// Identity returns the identity permutation of size n.
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Inverse returns π⁻¹: Inverse(p)[p[k]] = k. The paper writes π⁻¹(i) for the
// position of process i in π.
func Inverse(p []int) []int {
	inv := make([]int, len(p))
	for k, v := range p {
		inv[v] = k
	}
	return inv
}

// IsPermutation reports whether p is a permutation of 0..len(p)-1.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Rank returns the lexicographic rank of the permutation (its Lehmer code
// evaluated in the factorial number system), in [0, n!). n must be at most
// MaxExact.
func Rank(p []int) uint64 {
	n := len(p)
	if n > MaxExact {
		panic(fmt.Sprintf("perm: Rank: n=%d exceeds exact range %d", n, MaxExact))
	}
	var rank uint64
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank += uint64(smaller) * Factorial(n-1-i)
	}
	return rank
}

// Unrank returns the permutation of size n with the given lexicographic
// rank; the inverse of Rank.
func Unrank(n int, rank uint64) []int {
	if n > MaxExact {
		panic(fmt.Sprintf("perm: Unrank: n=%d exceeds exact range %d", n, MaxExact))
	}
	if n > 0 && rank >= Factorial(n) {
		panic(fmt.Sprintf("perm: Unrank: rank %d out of range for n=%d", rank, n))
	}
	avail := Identity(n)
	p := make([]int, 0, n)
	for i := 0; i < n; i++ {
		f := Factorial(n - 1 - i)
		k := rank / f
		rank %= f
		p = append(p, avail[k])
		avail = append(avail[:k], avail[k+1:]...)
	}
	return p
}

// ForEach calls fn for every permutation of size n in lexicographic order,
// stopping early if fn returns false. The slice passed to fn is reused;
// copy it if it must be retained.
func ForEach(n int, fn func(p []int) bool) {
	p := Identity(n)
	for {
		if !fn(p) {
			return
		}
		// Next permutation in lexicographic order (classic pivot algorithm).
		i := n - 2
		for i >= 0 && p[i] >= p[i+1] {
			i--
		}
		if i < 0 {
			return
		}
		j := n - 1
		for p[j] <= p[i] {
			j--
		}
		p[i], p[j] = p[j], p[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			p[l], p[r] = p[r], p[l]
		}
	}
}

// Random returns a uniformly random permutation of size n from the rng.
func Random(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

// Sample returns k permutations of size n drawn from a seeded source. When
// n is small enough that S_n has at most k elements, it returns all of S_n
// instead (deduplicated, deterministic).
func Sample(n, k int, seed int64) [][]int {
	if n <= MaxExact && Factorial(n) <= uint64(k) {
		var all [][]int
		ForEach(n, func(p []int) bool {
			cp := make([]int, n)
			copy(cp, p)
			all = append(all, cp)
			return true
		})
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, k)
	for i := range out {
		out[i] = rng.Perm(n)
	}
	return out
}
