// Package repro is the public API of this reproduction of Fan & Lynch,
// "An Ω(n log n) Lower Bound on the Cost of Mutual Exclusion" (PODC 2006).
//
// It exposes three layers:
//
//  1. A deterministic shared-memory simulator: mutual exclusion algorithms
//     (Yang–Anderson, Peterson, bakery, and RMW-based locks) run as
//     register automata under explicit, seeded schedulers, with exact cost
//     accounting in the state change (SC), cache-coherent and DSM models.
//
//  2. The paper's proof pipeline, executable: Construct (Section 5) builds,
//     for any permutation π, a metastep partial order whose linearizations
//     make processes enter their critical sections in π order while
//     staying invisible to lower-indexed processes; Encode (Section 6)
//     compresses it to O(C) bits; Decode (Section 7) reconstructs the
//     execution from the bits alone. Prove runs all three and
//     machine-checks Theorems 5.5, 6.2 and 7.4 and Lemma 6.1.
//
//  3. Experiment drivers that regenerate every quantitative claim in
//     EXPERIMENTS.md, including the Theorem 7.5 counting argument:
//     n! distinct decodable executions force max |E_π| ≥ log₂ n! bits and
//     hence Ω(n log n) state change cost.
//
// Quick start:
//
//	algo, _ := repro.NewAlgorithm(repro.AlgoYangAnderson, 8)
//	exec, _ := repro.RunCanonical(algo, repro.NewRoundRobin())
//	report, _ := repro.MeasureCost(algo, exec)
//	fmt.Println(report) // SC, CC-RMR, DSM-RMR, total accesses
//
//	proof, _ := repro.Prove(algo, []int{3, 1, 4, 0, 2, 6, 5, 7})
//	fmt.Println(proof.Cost, proof.Encoding.BitLen)
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/perm"
	"repro/internal/program"
	"repro/internal/rmw"
	"repro/internal/verify"
)

// Algorithm is an n-process shared-memory algorithm: the paper's "system"
// of deterministic process automata plus registers.
type Algorithm = program.Factory

// Execution is a finite execution, represented by its step sequence.
type Execution = model.Execution

// Step is a single process step.
type Step = model.Step

// Scheduler is the adversary choosing which process steps next.
type Scheduler = machine.Scheduler

// CostReport aggregates an execution's cost under all supported models.
type CostReport = cost.Report

// Proof is a verified run of the paper's Construct→Encode→Decode pipeline
// for one permutation.
type Proof = core.Pipeline

// SweepStats aggregates proofs over many permutations.
type SweepStats = core.SweepStats

// Algorithm names accepted by NewAlgorithm.
const (
	// AlgoYangAnderson is the local-spin tournament of [13]: O(n log n)
	// SC cost in every canonical execution (the bound's tightness witness).
	AlgoYangAnderson = mutex.NameYangAnderson
	// AlgoPeterson is a tournament of two-process Peterson locks
	// (busywaits on two registers; not local-spin).
	AlgoPeterson = mutex.NamePeterson
	// AlgoBakery is Lamport's bakery (Θ(n²) canonical SC cost).
	AlgoBakery = mutex.NameBakery
	// AlgoNaive is an intentionally unsafe lock for checker validation.
	AlgoNaive = mutex.NameNaive
	// AlgoDekker is Dekker's two-process algorithm (n must be 2).
	AlgoDekker = mutex.NameDekker
	// AlgoDijkstra is Dijkstra's 1965 algorithm (deadlock-free, Θ(n²)).
	AlgoDijkstra = mutex.NameDijkstra
	// AlgoFilter is Peterson's n-process filter lock (Θ(n²) per passage).
	AlgoFilter = mutex.NameFilter
	// AlgoBakeryScribble is the bakery plus one inert shared write after
	// the exit section's last read; it forces the construction's
	// hidden-write gadget (see DESIGN.md, reproduction findings).
	AlgoBakeryScribble = mutex.NameBakeryScribble
	// AlgoTAS is a test-and-test-and-set lock (RMW extension model).
	AlgoTAS = "tas"
	// AlgoMCS is the MCS queue lock (RMW extension model; O(1) RMR per
	// passage — the gap registers provably cannot close).
	AlgoMCS = "mcs"
)

func init() {
	mutex.Register(AlgoTAS, rmw.TestAndSet)
	mutex.Register(AlgoMCS, rmw.MCS)
}

// Algorithms returns all registered algorithm names, sorted.
func Algorithms() []string { return mutex.Names() }

// NewAlgorithm builds an n-process instance of a named algorithm.
func NewAlgorithm(name string, n int) (Algorithm, error) {
	return mutex.New(name, n)
}

// NewRoundRobin returns the fair cyclic scheduler.
func NewRoundRobin() Scheduler { return machine.NewRoundRobin() }

// NewRandomScheduler returns a seeded uniform scheduler.
func NewRandomScheduler(seed int64) Scheduler { return machine.NewRandom(seed) }

// NewSolo returns the contention-free scheduler running processes one at a
// time in the given order.
func NewSolo(order []int) Scheduler { return machine.NewSolo(order) }

// NewProgressFirst returns the scheduler that prefers processes whose next
// step changes their state (a polite cache-coherent machine).
func NewProgressFirst() Scheduler { return machine.NewProgressFirst() }

// NewHoldCS returns the adversary that starves the critical-section
// occupant for delay scheduling decisions (experiment E8).
func NewHoldCS(delay int) Scheduler { return machine.NewHoldCS(delay) }

// NewGreedyCost returns the cost-maximizing adversary: a one-step lookahead
// on a cloned system picks the process whose step maximizes incremental SC
// cost, with a starvation bound so canonical runs always complete. It is
// the strongest fixed policy and the completion tail of the schedule search
// behind experiment E13 and cmd/tournament.
func NewGreedyCost() Scheduler { return machine.NewGreedyCost() }

// NewSchedulerByName builds a scheduler from its name: "round-robin",
// "random", "solo", "progress-first", "hold-cs" or "greedy-cost". seed
// parameterizes "random"; n parameterizes "solo" (identity order) and
// "hold-cs" (delay).
func NewSchedulerByName(name string, n int, seed int64) (Scheduler, error) {
	sp, err := machine.NamedSpec(name, n, seed)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return sp.New()
}

// RunCanonical runs a canonical execution (every process completes exactly
// one critical section) under the scheduler.
func RunCanonical(a Algorithm, s Scheduler) (Execution, error) {
	return machine.RunCanonical(a, s, 0)
}

// MeasureCost replays the execution and reports its cost under every model.
func MeasureCost(a Algorithm, exec Execution) (CostReport, error) {
	return cost.Measure(a, exec)
}

// VerifyMutex checks the execution is a replayable, well-formed, mutually
// exclusive canonical execution of the algorithm.
func VerifyMutex(a Algorithm, exec Execution) error {
	return verify.MutexExecution(a, exec)
}

// Prove runs the paper's full pipeline (Construct → Encode → Decode) for
// one permutation with all theorem checks enabled.
func Prove(a Algorithm, pi []int) (*Proof, error) {
	return core.Run(a, pi)
}

// ProveAll runs the pipeline over all n! permutations (small n only) and
// checks the Theorem 7.5 injectivity.
func ProveAll(a Algorithm) (SweepStats, error) {
	return core.ExhaustiveSweep(a)
}

// ProveSample runs the pipeline over k seeded-random permutations.
func ProveSample(a Algorithm, k int, seed int64) (SweepStats, error) {
	return core.Sweep(a, perm.Sample(a.N(), k, seed))
}

// InformationBound returns log₂(n!): the bits any encoding scheme needs to
// distinguish all of S_n, and the source of the Ω(n log n).
func InformationBound(n int) float64 { return core.InformationBound(n) }

// NLogN returns n·log₂ n, the normalization used in cost-ratio reports.
func NLogN(n int) float64 { return perm.NLogN(n) }
