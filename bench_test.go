// Benchmarks regenerating every experiment of DESIGN.md (one per table,
// BenchmarkE1…E9) plus micro-benchmarks of the pipeline stages. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report the headline quantity of their table as
// a custom metric alongside timing, so a bench run reproduces the paper's
// shape claims end to end.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encode"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/perm"
	"repro/internal/runner"
)

// benchExperiment runs one experiment per iteration and fails the bench if
// its shape check fails.
func benchExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 20060723}
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !tbl.Pass {
			b.Fatalf("%s failed:\n%s", tbl.ID, tbl.Format())
		}
	}
}

// BenchmarkE1LowerBound — Theorem 7.5: max C(α_π) = Ω(n log n).
func BenchmarkE1LowerBound(b *testing.B) { benchExperiment(b, experiments.E1LowerBound) }

// BenchmarkE2YangAndersonCost — tightness: O(n log n) canonical SC cost.
func BenchmarkE2YangAndersonCost(b *testing.B) {
	benchExperiment(b, experiments.E2YangAndersonTightness)
}

// BenchmarkE3EntryOrder — Theorem 5.5: critical sections in π order.
func BenchmarkE3EntryOrder(b *testing.B) { benchExperiment(b, experiments.E3EntryOrder) }

// BenchmarkE4EncodingLength — Theorem 6.2: |E_π| = O(C).
func BenchmarkE4EncodingLength(b *testing.B) { benchExperiment(b, experiments.E4EncodingLength) }

// BenchmarkE5DecodeRoundTrip — Theorem 7.4 + injectivity.
func BenchmarkE5DecodeRoundTrip(b *testing.B) { benchExperiment(b, experiments.E5DecodeInjectivity) }

// BenchmarkE6LinearizationCost — Lemma 6.1: cost invariance.
func BenchmarkE6LinearizationCost(b *testing.B) {
	benchExperiment(b, experiments.E6LinearizationCost)
}

// BenchmarkE7AlgorithmComparison — §2 positioning: bakery/tournament/MCS.
func BenchmarkE7AlgorithmComparison(b *testing.B) {
	benchExperiment(b, experiments.E7AlgorithmComparison)
}

// BenchmarkE8BusywaitFree — Alur–Taubenfeld contrast: unbounded accesses,
// bounded SC.
func BenchmarkE8BusywaitFree(b *testing.B) { benchExperiment(b, experiments.E8BusywaitFree) }

// BenchmarkE9InformationBound — the log₂(n!) floor.
func BenchmarkE9InformationBound(b *testing.B) {
	benchExperiment(b, experiments.E9InformationBound)
}

// --- Micro-benchmarks of the pipeline stages and the simulator ---

func benchAlgos() []string {
	return []string{repro.AlgoYangAnderson, repro.AlgoBakery}
}

// BenchmarkSimulateCanonical measures the simulator: one canonical
// execution per iteration, reporting SC cost per n.
func BenchmarkSimulateCanonical(b *testing.B) {
	for _, name := range benchAlgos() {
		for _, n := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				f, err := repro.NewAlgorithm(name, n)
				if err != nil {
					b.Fatal(err)
				}
				var sc int
				for i := 0; i < b.N; i++ {
					exec, err := machine.RunCanonical(f, machine.NewRoundRobin(), 0)
					if err != nil {
						b.Fatal(err)
					}
					rep, err := repro.MeasureCost(f, exec)
					if err != nil {
						b.Fatal(err)
					}
					sc = rep.SC
				}
				b.ReportMetric(float64(sc), "SC-cost")
				b.ReportMetric(float64(sc)/perm.NLogN(n), "SC/(n·lgn)")
			})
		}
	}
}

// BenchmarkConstruct measures the construction step alone.
func BenchmarkConstruct(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f, err := repro.NewAlgorithm(repro.AlgoYangAnderson, n)
			if err != nil {
				b.Fatal(err)
			}
			pi := perm.Sample(n, 1, 99)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := construct.Construct(f, pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeDecode measures encode+decode round-trips, reporting the
// encoding size.
func BenchmarkEncodeDecode(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f, err := repro.NewAlgorithm(repro.AlgoYangAnderson, n)
			if err != nil {
				b.Fatal(err)
			}
			pi := perm.Sample(n, 1, 7)[0]
			res, err := construct.Construct(f, pi)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var bits int
			for i := 0; i < b.N; i++ {
				enc, err := encode.Encode(res.Set)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := decode.Decode(f, enc.Bits, enc.BitLen); err != nil {
					b.Fatal(err)
				}
				bits = enc.BitLen
			}
			b.ReportMetric(float64(bits), "bits")
		})
	}
}

// BenchmarkSweepWorkers compares sequential and parallel sweep throughput
// on the runner engine: the same fixed permutation sample swept at
// workers=1 (the sequential path) and at GOMAXPROCS. The outputs are
// byte-identical (see internal/experiments determinism tests); only the
// wall time differs, by roughly the core count on an unloaded machine.
func BenchmarkSweepWorkers(b *testing.B) {
	f, err := repro.NewAlgorithm(repro.AlgoYangAnderson, 8)
	if err != nil {
		b.Fatal(err)
	}
	perms := perm.Sample(8, 24, 20060723)
	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1] // single-core machine: nothing to compare against
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := runner.New(w)
			var maxCost int
			for i := 0; i < b.N; i++ {
				stats, err := core.SweepOn(eng, f, perms)
				if err != nil {
					b.Fatal(err)
				}
				maxCost = stats.MaxCost
			}
			b.ReportMetric(float64(maxCost), "maxSC")
		})
	}
}

// BenchmarkExperimentsWorkers runs the full quick-scale experiment suite
// at workers=1 vs GOMAXPROCS — the before/after of parallelizing E1–E12.
func BenchmarkExperimentsWorkers(b *testing.B) {
	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1]
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := experiments.Config{Quick: true, Seed: 20060723, Workers: w}
			for i := 0; i < b.N; i++ {
				for _, e := range experiments.All() {
					tbl, err := e.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if !tbl.Pass {
						b.Fatalf("%s failed:\n%s", tbl.ID, tbl.Format())
					}
				}
			}
		})
	}
}

// BenchmarkFullPipeline measures Prove end to end with all verification.
func BenchmarkFullPipeline(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f, err := repro.NewAlgorithm(repro.AlgoYangAnderson, n)
			if err != nil {
				b.Fatal(err)
			}
			pi := perm.Sample(n, 1, 3)[0]
			var cost int
			for i := 0; i < b.N; i++ {
				p, err := repro.Prove(f, pi)
				if err != nil {
					b.Fatal(err)
				}
				cost = p.Cost
			}
			b.ReportMetric(float64(cost), "SC-cost")
		})
	}
}
