package main

import (
	"bytes"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/remote"
	"repro/internal/store"
)

// syncBuffer lets the test read run's output while run is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run([]string{"-dir", t.TempDir(), "-compact", t.TempDir()}, &buf); err == nil {
		t.Fatal("-dir combined with -compact accepted")
	}
	if err := run([]string{"-dir", t.TempDir(), "stray"}, &buf); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run([]string{"-addr", "not-an-address", "-dir", t.TempDir()}, &buf); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestCompactMaintenanceMode pins the offline maintenance flag: it rewrites
// the log in place, reports the reclaim, and exits.
func TestCompactMaintenanceMode(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := store.Key("v1", "unit")
	for i := 0; i < 4; i++ {
		store.PutJSON(st, k, 9)
	}
	st.Close()

	var buf bytes.Buffer
	if err := run([]string{"-compact", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if want := "kept=1 dropped=3"; !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("compact report %q does not contain %q", buf.String(), want)
	}
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if v, ok := store.GetJSON[int](st2, k); !ok || v != 9 || st2.Len() != 1 {
		t.Fatalf("after maintenance compact: v=%d ok=%v len=%d", v, ok, st2.Len())
	}
}

// TestServeScrapeableAddressAndCleanShutdown boots the real binary path on
// an ephemeral port, scrapes the advertised address the way a script
// would, talks the protocol through a real client, and shuts down cleanly.
func TestServeScrapeableAddressAndCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	testShutdown = make(chan struct{})
	defer func() { testShutdown = nil }()

	var buf syncBuffer
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-dir", dir}, &buf) }()

	addrRE := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	var url string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if m := addrRE.FindStringSubmatch(buf.String()); m != nil {
			url = m[1]
			break
		}
	}
	if url == "" {
		t.Fatalf("no scrapeable address in output: %q", buf.String())
	}

	cl, err := remote.NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	k := store.Key("v1", "served")
	if err := cl.Put(k, []byte(`{"sc":1}`)); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(k); !ok || err != nil || string(v) != `{"sc":1}` {
		t.Fatalf("round trip through stored: %q ok=%v err=%v", v, ok, err)
	}

	close(testShutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stored did not shut down")
	}

	// Durability across the service lifecycle: a fresh serve finds the entry.
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if v, ok := st.Get(k); !ok || string(v) != `{"sc":1}` {
		t.Fatalf("entry lost across shutdown: %q ok=%v", v, ok)
	}
}
