// Command stored serves one authoritative content-addressed result store
// over HTTP, so any number of worker processes — CI shards, tournament
// searchers, laptop runs — share a single cache instead of priming private
// directories and merging after the fact. The protocol is documented in
// internal/remote; clients mount the store with the `-store URL` flag of
// cmd/experiments and cmd/tournament.
//
// Usage:
//
//	stored -dir /var/result-store                  # serve on 127.0.0.1:9200
//	stored -dir DIR -addr 0.0.0.0:9200             # fleet-reachable
//	stored -dir DIR -name a -ring 'a=URL,b=URL*2' -epoch 1
//	                                               # serve as ring member "a"
//	                                               # of a weighted fleet
//	stored -rebalance -ring 'a=U1,b=U2,c=U3' -epoch 2
//	                                               # re-place a live fleet:
//	                                               # install the ring on every
//	                                               # member, then drain each
//	stored -drain DIR -name a -ring SPEC -epoch N  # offline: push DIR's keys
//	                                               # that a no longer owns to
//	                                               # their owners, then exit
//	stored -compact DIR                            # maintenance: rewrite the
//	                                               # NDJSON log dropping dead
//	                                               # records, then exit
//
// Lifecycle: -max-bytes and -max-age bound the store (oldest results are
// evicted first; an evicted result only ever costs its re-execution), and
// the log auto-compacts whenever superseded+dead bytes cross -compact-frac
// of the file. Both run on the -maintain cadence while serving.
//
// The first stdout line is "stored: listening on http://ADDR" (with the
// resolved port when -addr ends in :0), so scripts can scrape the address.
// SIGINT/SIGTERM drain the listener and close the store cleanly. A running
// server can also be compacted in place via POST /v1/compact, and joins
// ring-based placement via GET/POST /v1/ring and POST /v1/drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/remote"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stored:", err)
		os.Exit(1)
	}
}

// testShutdown, when non-nil, substitutes for process signals so tests can
// stop a serving run.
var testShutdown chan struct{}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stored", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:9200", "listen address")
		dir        = fs.String("dir", "", "store directory (created if missing)")
		lruEntries = fs.Int("lru", 0, "LRU tier capacity in entries; 0 = default")
		compactDir = fs.String("compact", "", "maintenance mode: compact the store in DIR and exit")

		name     = fs.String("name", "", "this replica's ring member name (hashing identity; required for -drain and to serve drains)")
		ringSpec = fs.String("ring", "", "placement ring spec: name=url[*weight],… (see store.ParseRingSpec)")
		epoch    = fs.Uint64("epoch", 0, "ring epoch for -ring (a resize must use a larger epoch than the fleet's current one)")

		drainDir  = fs.String("drain", "", "offline migration: push every key in DIR that -name no longer owns under -ring to its owner, then exit")
		rebalance = fs.Bool("rebalance", false, "live migration: install -ring on every member, drain each, then exit")

		maxBytes    = fs.Int64("max-bytes", 0, "evict oldest results when the live log exceeds this many bytes; 0 = unbounded")
		maxAge      = fs.Duration("max-age", 0, "evict results older than this; 0 = keep forever")
		compactFrac = fs.Float64("compact-frac", 0.5, "auto-compact when reclaimable bytes exceed this fraction of the log")
		maintain    = fs.Duration("maintain", time.Minute, "lifecycle cadence: how often eviction and auto-compaction run while serving")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var ring *store.Ring
	if *ringSpec != "" {
		var err error
		if ring, err = store.ParseRingSpec(*epoch, *ringSpec); err != nil {
			return err
		}
		if *name != "" && ring.Index(*name) == -1 && *drainDir == "" {
			return fmt.Errorf("-name %q is not a member of -ring %s (only a decommissioning -drain may be outside it)", *name, ring)
		}
	}

	if *rebalance {
		if ring == nil {
			return fmt.Errorf("-rebalance requires -ring (and the -epoch the fleet should move to)")
		}
		if err := remote.Rebalance(ring, w); err != nil {
			return err
		}
		fmt.Fprintf(w, "stored: rebalanced fleet onto %s\n", ring)
		return nil
	}

	if *drainDir != "" {
		if ring == nil || *name == "" {
			return fmt.Errorf("-drain requires -ring and -name (whose keys stay put)")
		}
		if *dir != "" {
			return fmt.Errorf("-drain is a maintenance mode; it does not combine with -dir")
		}
		st, err := store.Open(*drainDir, *lruEntries)
		if err != nil {
			return err
		}
		defer st.Close()
		dr, err := remote.DrainStore(st, ring, *name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "stored: drained %s as %q: moved=%d deleted=%d kept=%d\n",
			*drainDir, *name, dr.Moved, dr.Deleted, dr.Kept)
		return nil
	}

	if *compactDir != "" {
		if *dir != "" {
			return fmt.Errorf("-compact is a maintenance mode; it does not combine with -dir")
		}
		st, err := store.Open(*compactDir, *lruEntries)
		if err != nil {
			return err
		}
		defer st.Close()
		kept, dropped, err := st.Compact()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "stored: compacted %s: kept=%d dropped=%d\n", *compactDir, kept, dropped)
		return nil
	}

	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-dir is required (or -compact/-drain DIR, or -rebalance, for maintenance)")
	}
	// Open the backend directly (not store.Open) to keep the NDJSON handle:
	// the lifecycle loop drives eviction and byte accounting through it.
	be, err := store.OpenNDJSON(*dir)
	if err != nil {
		return err
	}
	st := store.New(*lruEntries, be)
	blobs, err := store.OpenFileBlobs(*dir)
	if err != nil {
		st.Close() //repro:degrade error-path teardown; the open failure below is the one to surface
		return err
	}
	st.SetBlobs(blobs)
	defer st.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stored: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(w, "stored: serving %s (%d entries)\n", *dir, st.Len())

	handler := remote.NewServer(st)
	if *name != "" {
		handler.SetSelf(*name)
	}
	if ring != nil {
		if err := handler.InstallRing(ring); err != nil {
			return err
		}
		fmt.Fprintf(w, "stored: placement %s\n", ring)
	}

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Lifecycle loop: age/size eviction and auto-compaction on a cadence.
	// Eviction only de-indexes (an evicted result costs its re-execution,
	// nothing more); compaction reclaims the dead bytes eviction and
	// overwrites leave behind, through the server's locked compact so it
	// cannot race a put's check-then-write.
	maintainDone := make(chan struct{})
	go func() {
		defer close(maintainDone)
		ticker := time.NewTicker(*maintain)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-testShutdown:
				return
			case <-ticker.C:
			}
			if *maxAge > 0 {
				if n := be.EvictOlderThan(time.Now().Add(-*maxAge)); n > 0 {
					fmt.Fprintf(w, "stored: evicted %d entries older than %s\n", n, *maxAge)
				}
			}
			if *maxBytes > 0 {
				if n := be.EvictToSize(*maxBytes); n > 0 {
					fmt.Fprintf(w, "stored: evicted %d entries to fit %d bytes\n", n, *maxBytes)
				}
			}
			if size := be.SizeBytes(); size > 0 && *compactFrac > 0 {
				if frac := float64(be.DeadBytes()) / float64(size); frac > *compactFrac {
					kept, dropped, err := handler.CompactStore()
					if err != nil {
						fmt.Fprintf(w, "stored: auto-compact failed: %v\n", err)
						continue
					}
					fmt.Fprintf(w, "stored: auto-compacted (%.0f%% dead): kept=%d dropped=%d\n", frac*100, kept, dropped)
				}
			}
		}
	}()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	case <-testShutdown:
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-maintainDone
	fmt.Fprintf(w, "stored: drained, %d entries stored\n", st.Len())
	return nil
}
