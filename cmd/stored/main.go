// Command stored serves one authoritative content-addressed result store
// over HTTP, so any number of worker processes — CI shards, tournament
// searchers, laptop runs — share a single cache instead of priming private
// directories and merging after the fact. The protocol is documented in
// internal/remote; clients mount the store with the `-store URL` flag of
// cmd/experiments and cmd/tournament.
//
// Usage:
//
//	stored -dir /var/result-store                  # serve on 127.0.0.1:9200
//	stored -dir DIR -addr 0.0.0.0:9200             # fleet-reachable
//	stored -compact DIR                            # maintenance: rewrite the
//	                                               # NDJSON log dropping dead
//	                                               # records, then exit
//
// The first stdout line is "stored: listening on http://ADDR" (with the
// resolved port when -addr ends in :0), so scripts can scrape the address.
// SIGINT/SIGTERM drain the listener and close the store cleanly. A running
// server can also be compacted in place via POST /v1/compact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/remote"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stored:", err)
		os.Exit(1)
	}
}

// testShutdown, when non-nil, substitutes for process signals so tests can
// stop a serving run.
var testShutdown chan struct{}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stored", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:9200", "listen address")
		dir        = fs.String("dir", "", "store directory (created if missing)")
		lruEntries = fs.Int("lru", 0, "LRU tier capacity in entries; 0 = default")
		compactDir = fs.String("compact", "", "maintenance mode: compact the store in DIR and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *compactDir != "" {
		if *dir != "" {
			return fmt.Errorf("-compact is a maintenance mode; it does not combine with -dir")
		}
		st, err := store.Open(*compactDir, *lruEntries)
		if err != nil {
			return err
		}
		defer st.Close()
		kept, dropped, err := st.Compact()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "stored: compacted %s: kept=%d dropped=%d\n", *compactDir, kept, dropped)
		return nil
	}

	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-dir is required (or -compact DIR for maintenance)")
	}
	st, err := store.Open(*dir, *lruEntries)
	if err != nil {
		return err
	}
	defer st.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stored: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(w, "stored: serving %s (%d entries)\n", *dir, st.Len())

	srv := &http.Server{Handler: remote.NewServer(st)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	case <-testShutdown:
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintf(w, "stored: drained, %d entries stored\n", st.Len())
	return nil
}
