package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/session/sessiontest"
)

// TestSessionFlagValidation drives the shared bad-combination table: this
// binary must reject exactly what every other session-backed binary
// rejects, with the same words.
func TestSessionFlagValidation(t *testing.T) { sessiontest.Run(t, run) }

// TestJSONCachedOutputUnchanged pins the -json path's determinism through
// the store: a warm re-run serves the unit from cache and prints the same
// single JSON line as the cold run and as a store-less run.
func TestJSONCachedOutputUnchanged(t *testing.T) {
	base := []string{"-algo", "mcs", "-n", "6", "-json"}
	dir := t.TempDir()
	var plain, cold, warm bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	withCache := append(append([]string{}, base...), "-cache", dir)
	if err := run(withCache, &cold); err != nil {
		t.Fatal(err)
	}
	if err := run(withCache, &warm); err != nil {
		t.Fatal(err)
	}
	if plain.String() != cold.String() || cold.String() != warm.String() {
		t.Fatalf("outputs diverged:\nplain: %swith cache (cold): %swith cache (warm): %s", plain.String(), cold.String(), warm.String())
	}
	if n := strings.Count(warm.String(), "\n"); n != 1 {
		t.Fatalf("-json printed %d lines, want exactly 1", n)
	}
}

// TestTextOutputStoreIndifferent pins the human-readable path: the views
// always execute, so a mounted store must not change a single byte.
func TestTextOutputStoreIndifferent(t *testing.T) {
	base := []string{"-algo", "yang-anderson", "-n", "3", "-steps", "-timeline", "-summary"}
	var plain, cached bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-cache", t.TempDir()), &cached); err != nil {
		t.Fatal(err)
	}
	if plain.String() != cached.String() {
		t.Fatalf("text output changed under -cache:\n%s\nvs\n%s", cached.String(), plain.String())
	}
}
