package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives a tiny canonical run for every scheduler the flag
// accepts, including the new greedy-cost adversary, and checks the verdict
// line.
func TestRunSmoke(t *testing.T) {
	for _, sched := range []string{"round-robin", "random", "solo", "progress-first", "hold-cs", "greedy-cost"} {
		var buf bytes.Buffer
		if err := run([]string{"-algo", "yang-anderson", "-n", "3", "-sched", sched}, &buf); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		out := buf.String()
		if !strings.Contains(out, "verify     ok") {
			t.Fatalf("%s: verification did not pass:\n%s", sched, out)
		}
		if !strings.Contains(out, "scheduler  ") || !strings.Contains(out, "SC=") {
			t.Fatalf("%s: missing report lines:\n%s", sched, out)
		}
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "no-such-algo"}, &buf); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-sched", "no-such-sched"}, &buf); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}
