// Command mutexsim runs a mutual exclusion algorithm on the deterministic
// shared-memory simulator under a chosen scheduler and reports the cost of
// the canonical execution under every cost model, plus the verification
// verdicts.
//
// Usage:
//
//	mutexsim -algo bakery -n 16 -sched round-robin
//	mutexsim -algo yang-anderson -n 64 -sched random -seed 7
//	mutexsim -algo naive -n 2 -sched round-robin      # watch the checker catch it
//	mutexsim -algo mcs -n 8 -json                     # the canonical machine-readable
//	                                                  # unit result (one JSON line —
//	                                                  # byte-identical to an experimentd
//	                                                  # response for the same unit)
//
// It is built on the session core (internal/session), so the canonical
// store and profiling flags work here too: `-cache DIR` / `-store URL`
// memoize the unit in -json mode (a warm re-run simulates nothing),
// -capture persists the executed step trace for cmd/observe, and
// -cpuprofile/-memprofile/-trace profile the run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mutexsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mutexsim", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		algoName  = fs.String("algo", repro.AlgoYangAnderson, "algorithm (one of: "+strings.Join(repro.Algorithms(), ", ")+", tas, mcs)")
		n         = fs.Int("n", 8, "number of processes")
		schedName = fs.String("sched", "round-robin", "scheduler: round-robin, random, solo, progress-first, hold-cs, greedy-cost")
		seed      = fs.Int64("seed", 1, "seed for the random scheduler")
		rawSteps  = fs.Bool("steps", false, "print the raw step sequence")
		timeline  = fs.Bool("timeline", false, "print the per-process timeline (glyphs: T/E/X/Q crit, w write, r charged read, · free read)")
		summary   = fs.Bool("summary", false, "print per-process cost summary")
		asJSON    = fs.Bool("json", false, "emit the canonical unit result as one JSON line (the cached, servable form; experimentd returns the same bytes)")
	)
	sf := session.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	s, err := session.Open(sf.Config("mutexsim"))
	if err != nil {
		return err
	}
	defer s.Close()

	u := session.Unit{Algo: *algoName, N: *n, Sched: *schedName, Seed: *seed}
	if *asJSON {
		// The servable path: the unit goes through the session — cached,
		// coalesced, capturable — and the result is the canonical wire form.
		res, err := s.RunUnit(u)
		if err != nil {
			return err
		}
		return json.NewEncoder(w).Encode(res)
	}

	// The human-readable views need the execution itself (entry order,
	// verification, timeline), which the result store does not carry, so
	// this path always executes — through the same Job value the cached
	// path would key.
	j, err := u.Job()
	if err != nil {
		return err
	}
	f, err := runner.NewFactory(j.Algo, j.N)
	if err != nil {
		return err
	}
	sched, err := j.Sched.New()
	if err != nil {
		return err
	}
	res, exec, _ := runner.ExecuteTraced(j)
	if res.Err != nil {
		return res.Err
	}
	rep := res.Report
	fmt.Fprintf(w, "algorithm  %s\n", f.Name())
	fmt.Fprintf(w, "scheduler  %s\n", sched.Name())
	fmt.Fprintf(w, "cost       %s\n", rep)
	fmt.Fprintf(w, "           SC/(n·lg n) = %.2f   SC/n² = %.2f\n",
		float64(rep.SC)/repro.NLogN(*n), float64(rep.SC)/float64(*n**n))
	fmt.Fprintf(w, "entries    %v\n", exec.EntryOrder())
	if err := repro.VerifyMutex(f, exec); err != nil {
		fmt.Fprintf(w, "verify     FAIL: %v\n", err)
	} else {
		fmt.Fprintf(w, "verify     ok (replayable, well-formed, mutual exclusion, canonical)\n")
	}
	if *rawSteps {
		fmt.Fprintf(w, "\ntrace (%d steps):\n%s\n", len(exec), exec)
	}
	if *timeline {
		out, err := trace.Timeline(f, exec, trace.Options{ShowFree: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s", out)
	}
	if *summary {
		out, err := trace.Summary(f, exec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s", out)
	}
	return nil
}
