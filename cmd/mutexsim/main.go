// Command mutexsim runs a mutual exclusion algorithm on the deterministic
// shared-memory simulator under a chosen scheduler and reports the cost of
// the canonical execution under every cost model, plus the verification
// verdicts.
//
// Usage:
//
//	mutexsim -algo bakery -n 16 -sched round-robin
//	mutexsim -algo yang-anderson -n 64 -sched random -seed 7
//	mutexsim -algo naive -n 2 -sched round-robin      # watch the checker catch it
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mutexsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mutexsim", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		algoName  = fs.String("algo", repro.AlgoYangAnderson, "algorithm (one of: "+strings.Join(repro.Algorithms(), ", ")+")")
		n         = fs.Int("n", 8, "number of processes")
		schedName = fs.String("sched", "round-robin", "scheduler: round-robin, random, solo, progress-first, hold-cs, greedy-cost")
		seed      = fs.Int64("seed", 1, "seed for the random scheduler")
		rawTrace  = fs.Bool("trace", false, "print the raw step sequence")
		timeline  = fs.Bool("timeline", false, "print the per-process timeline (glyphs: T/E/X/Q crit, w write, r charged read, · free read)")
		summary   = fs.Bool("summary", false, "print per-process cost summary")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	f, err := repro.NewAlgorithm(*algoName, *n)
	if err != nil {
		return err
	}
	sched, err := repro.NewSchedulerByName(*schedName, *n, *seed)
	if err != nil {
		return err
	}
	exec, err := repro.RunCanonical(f, sched)
	if err != nil {
		return err
	}
	rep, err := repro.MeasureCost(f, exec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "algorithm  %s\n", f.Name())
	fmt.Fprintf(w, "scheduler  %s\n", sched.Name())
	fmt.Fprintf(w, "cost       %s\n", rep)
	fmt.Fprintf(w, "           SC/(n·lg n) = %.2f   SC/n² = %.2f\n",
		float64(rep.SC)/repro.NLogN(*n), float64(rep.SC)/float64(*n**n))
	fmt.Fprintf(w, "entries    %v\n", exec.EntryOrder())
	if err := repro.VerifyMutex(f, exec); err != nil {
		fmt.Fprintf(w, "verify     FAIL: %v\n", err)
	} else {
		fmt.Fprintf(w, "verify     ok (replayable, well-formed, mutual exclusion, canonical)\n")
	}
	if *rawTrace {
		fmt.Fprintf(w, "\ntrace (%d steps):\n%s\n", len(exec), exec)
	}
	if *timeline {
		out, err := trace.Timeline(f, exec, trace.Options{ShowFree: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s", out)
	}
	if *summary {
		out, err := trace.Summary(f, exec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s", out)
	}
	return nil
}
