// Command mutexsim runs a mutual exclusion algorithm on the deterministic
// shared-memory simulator under a chosen scheduler and reports the cost of
// the canonical execution under every cost model, plus the verification
// verdicts.
//
// Usage:
//
//	mutexsim -algo bakery -n 16 -sched round-robin
//	mutexsim -algo yang-anderson -n 64 -sched random -seed 7
//	mutexsim -algo naive -n 2 -sched round-robin      # watch the checker catch it
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mutexsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName  = flag.String("algo", repro.AlgoYangAnderson, "algorithm (one of: "+strings.Join(repro.Algorithms(), ", ")+")")
		n         = flag.Int("n", 8, "number of processes")
		schedName = flag.String("sched", "round-robin", "scheduler: round-robin, random, solo, progress-first, hold-cs")
		seed      = flag.Int64("seed", 1, "seed for the random scheduler")
		rawTrace  = flag.Bool("trace", false, "print the raw step sequence")
		timeline  = flag.Bool("timeline", false, "print the per-process timeline (glyphs: T/E/X/Q crit, w write, r charged read, · free read)")
		summary   = flag.Bool("summary", false, "print per-process cost summary")
	)
	flag.Parse()

	f, err := repro.NewAlgorithm(*algoName, *n)
	if err != nil {
		return err
	}
	sched, err := repro.NewSchedulerByName(*schedName, *n, *seed)
	if err != nil {
		return err
	}
	exec, err := repro.RunCanonical(f, sched)
	if err != nil {
		return err
	}
	rep, err := repro.MeasureCost(f, exec)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm  %s\n", f.Name())
	fmt.Printf("scheduler  %s\n", sched.Name())
	fmt.Printf("cost       %s\n", rep)
	fmt.Printf("           SC/(n·lg n) = %.2f   SC/n² = %.2f\n",
		float64(rep.SC)/repro.NLogN(*n), float64(rep.SC)/float64(*n**n))
	fmt.Printf("entries    %v\n", exec.EntryOrder())
	if err := repro.VerifyMutex(f, exec); err != nil {
		fmt.Printf("verify     FAIL: %v\n", err)
	} else {
		fmt.Printf("verify     ok (replayable, well-formed, mutual exclusion, canonical)\n")
	}
	if *rawTrace {
		fmt.Printf("\ntrace (%d steps):\n%s\n", len(exec), exec)
	}
	if *timeline {
		out, err := trace.Timeline(f, exec, trace.Options{ShowFree: true})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s", out)
	}
	if *summary {
		out, err := trace.Summary(f, exec)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s", out)
	}
	return nil
}
