package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/session"
	"repro/internal/session/sessiontest"
)

// TestSessionFlagValidation drives the shared bad-combination table: the
// daemon inherits exactly the CLI binaries' flag surface and rejections.
func TestSessionFlagValidation(t *testing.T) { sessiontest.Run(t, run) }

func testDaemon(t *testing.T, cfg session.Config, queue, inflight int) (*daemon, *httptest.Server) {
	t.Helper()
	cfg.Prog = "experimentd"
	if cfg.Diag == nil {
		cfg.Diag = io.Discard
	}
	s, err := session.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	d := newDaemon(s, queue, inflight, 256)
	srv := httptest.NewServer(d)
	t.Cleanup(srv.Close)
	return d, srv
}

func postRun(t *testing.T, url string, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRunMatchesSessionEncoding pins the byte-identity contract: the
// response body is exactly encoding/json of session.UnitResult plus the
// trailing newline — the same bytes `mutexsim -json` writes for the unit.
func TestRunMatchesSessionEncoding(t *testing.T) {
	_, srv := testDaemon(t, session.Config{CacheDir: t.TempDir()}, 8, 2)
	code, body := postRun(t, srv.URL, `{"algo":"mcs","n":8,"seed":1}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	ref, err := session.Open(session.Config{Prog: "ref", Diag: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	res, err := ref.RunUnit(session.Unit{Algo: "mcs", N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(res); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Fatalf("response bytes diverge from the CLI encoding:\n%q\nvs\n%q", body, want.String())
	}

	// A warm repeat answers the same bytes from the store.
	code, again := postRun(t, srv.URL, `{"algo":"mcs","n":8,"seed":1}`)
	if code != http.StatusOK || again != body {
		t.Fatalf("warm response diverged (status %d):\n%q\nvs\n%q", code, again, body)
	}
}

// TestConcurrentRequestsCoalesce is the serving form of the session's
// coalescing contract: N simultaneous requests for one unit produce N
// identical responses and exactly one simulation (misses=1 on /v1/stats).
func TestConcurrentRequestsCoalesce(t *testing.T) {
	_, srv := testDaemon(t, session.Config{CacheDir: t.TempDir()}, 64, 4)
	const workers = 12
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies []string
		start  = make(chan struct{})
	)
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, body := postRun(t, srv.URL, `{"algo":"yang-anderson","n":16}`)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, body)
				return
			}
			mu.Lock()
			bodies = append(bodies, body)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(bodies) != workers {
		t.Fatalf("%d responses, want %d", len(bodies), workers)
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatalf("divergent responses:\n%q\nvs\n%q", b, bodies[0])
		}
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsReply
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store.Misses != 1 {
		t.Fatalf("store misses = %d, want 1 (one leader simulates)", stats.Store.Misses)
	}
	if got := stats.Store.Hits + stats.Store.Misses; got != workers {
		t.Fatalf("hits+misses = %d, want %d", got, workers)
	}
	if stats.Served != workers {
		t.Fatalf("served = %d, want %d", stats.Served, workers)
	}
}

// TestAdmissionBackpressure pins the 429 path: with the admission queue
// held full, the next request is refused immediately with Retry-After —
// no waiting, no unbounded buffering.
func TestAdmissionBackpressure(t *testing.T) {
	d, srv := testDaemon(t, session.Config{CacheDir: t.TempDir()}, 2, 1)
	d.admit <- struct{}{} // occupy the whole queue deterministically
	d.admit <- struct{}{}
	resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(`{"algo":"bakery","n":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if d.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", d.rejected.Load())
	}
	<-d.admit
	<-d.admit
	if code, body := postRun(t, srv.URL, `{"algo":"bakery","n":4}`); code != http.StatusOK {
		t.Fatalf("after release: status %d: %s", code, body)
	}
}

// TestRejectsBadUnits pins the 400 surface: malformed JSON, unknown
// fields, out-of-range coordinates, unknown names.
func TestRejectsBadUnits(t *testing.T) {
	_, srv := testDaemon(t, session.Config{}, 8, 2)
	for _, tc := range []struct {
		body string
		want string
	}{
		{`garbage`, "bad unit"},
		{`{"algo":"bakery","n":4,"bogus":1}`, "bad unit"},
		{`{"algo":"bakery","n":1}`, "n must be at least 2"},
		{`{"algo":"bakery","n":4,"horizon":-1}`, "horizon must be non-negative"},
		{`{"algo":"bakery","n":4,"sched":"nope"}`, `unknown scheduler "nope"`},
		{`{"algo":"nope","n":4}`, "unknown algorithm"},
		{fmt.Sprintf(`{"algo":"bakery","n":%d}`, 257), "exceeds -max-n"},
	} {
		code, body := postRun(t, srv.URL, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.body, code, body)
			continue
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("%s: body %q does not name %q", tc.body, body, tc.want)
		}
	}
}

// TestMetricsSurface scrapes /v1/metrics and checks the exposition carries
// the daemon's partition and the store block under the experimentd prefix.
func TestMetricsSurface(t *testing.T) {
	_, srv := testDaemon(t, session.Config{CacheDir: t.TempDir()}, 8, 2)
	if code, body := postRun(t, srv.URL, `{"algo":"bakery","n":4}`); code != http.StatusOK {
		t.Fatalf("run failed: %d %s", code, body)
	}
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not the exposition format", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{
		`experimentd_requests_total{endpoint="run"} 1`,
		`experimentd_served_total 1`,
		`experimentd_store_misses_total 1`,
		`experimentd_queue_limit 8`,
		`experimentd_request_duration_seconds_bucket{endpoint="run",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}

// TestServeDrain boots the real run() on an ephemeral port, drives one
// request through it, and shuts it down via the test hook — the signal
// path minus the signal.
func TestServeDrain(t *testing.T) {
	testShutdown = make(chan struct{})
	defer func() { testShutdown = nil }()

	out := &lockedBuffer{}
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-cache", t.TempDir()}, out) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no listening line published; output so far: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "experimentd: listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.HasPrefix(addr, "http://") {
		t.Fatalf("scraped address %q is not a URL", addr)
	}
	if code, body := postRun(t, addr, `{"algo":"bakery","n":4}`); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	close(testShutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain")
	}
	if !strings.Contains(out.String(), "experimentd: drained, served=1") {
		t.Fatalf("drain line missing from output: %q", out.String())
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer: the serving run writes
// its stdout lines while the test polls for them.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
