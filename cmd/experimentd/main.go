// Command experimentd serves the experiment engine as an always-on HTTP
// service: clients POST a simulation unit (algorithm, process count,
// scheduler, seed, horizon) and get back the canonical unit result — the
// exact bytes `mutexsim -json` prints for the same unit, by construction:
// both marshal session.UnitResult through encoding/json.
//
// Usage:
//
//	experimentd -cache DIR                        # serve on 127.0.0.1:9300
//	experimentd -store URL1,URL2 -addr :9300      # fleet-backed, reachable
//	experimentd -cache DIR -capture -queue 128    # capture traces, deeper queue
//
//	curl -d '{"algo":"mcs","n":8}' http://127.0.0.1:9300/v1/run
//
// It is one session.Session behind a bounded front door:
//
//   - Admission is bounded: at most -queue requests are in the house
//     (waiting or executing) and at most -inflight execute at once; a
//     request beyond the queue depth is refused immediately with 429 and a
//     Retry-After header, so overload degrades to fast refusals instead of
//     unbounded memory growth. //repro:degrade
//   - Identical in-flight units coalesce: N simultaneous requests for one
//     unit cost exactly one simulation (the session's RunJob discipline),
//     and a warm unit costs zero — served straight from the store.
//   - GET /v1/metrics is the same Prometheus text surface cmd/stored
//     serves, under the experimentd_* prefix; GET /v1/stats is the JSON
//     form workload drivers (cmd/loadgen) diff for hit rates.
//
// The first stdout line is "experimentd: listening on http://ADDR" (with
// the resolved port when -addr ends in :0), so scripts can scrape the
// address. SIGINT/SIGTERM drain in-flight requests, close the session
// (flushing the store and printing the canonical cache-stats line), then
// exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/remote"
	"repro/internal/session"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experimentd:", err)
		os.Exit(1)
	}
}

// testShutdown, when non-nil, substitutes for process signals so tests can
// stop a serving run.
var testShutdown chan struct{}

// dmetricEndpoints partitions the daemon's latency histograms; order is
// the exposition order.
var dmetricEndpoints = [...]string{"run", "stats", "metrics", "other"}

// dmetricEndpointIndex classifies a request path into dmetricEndpoints.
func dmetricEndpointIndex(path string) int {
	switch path {
	case "/v1/run":
		return 0
	case "/v1/stats":
		return 1
	case "/v1/metrics":
		return 2
	default:
		return 3
	}
}

// daemon is the HTTP face of one session: the handler state cmd/experimentd
// serves and its tests drive directly.
type daemon struct {
	s    *session.Session
	mux  *http.ServeMux
	lat  *remote.LatencySet
	maxN int

	// admit bounds the requests in the house (waiting + executing);
	// exec bounds the ones simulating. Both are token channels so the
	// counters are exact under racing requests.
	admit chan struct{}
	exec  chan struct{}

	rejected atomic.Int64 // 429s issued
	served   atomic.Int64 // /v1/run responses written
}

// newDaemon assembles the handler around an open session.
func newDaemon(s *session.Session, queue, inflight, maxN int) *daemon {
	d := &daemon{
		s:     s,
		mux:   http.NewServeMux(),
		lat:   remote.NewLatencySet("experimentd", dmetricEndpoints[:]),
		maxN:  maxN,
		admit: make(chan struct{}, queue),
		exec:  make(chan struct{}, inflight),
	}
	d.mux.HandleFunc("POST /v1/run", d.handleRun)
	d.mux.HandleFunc("GET /v1/stats", d.handleStats)
	d.mux.HandleFunc("GET /v1/metrics", d.handleMetrics)
	return d
}

// ServeHTTP dispatches, timing every request into its endpoint's latency
// histogram — the same discipline remote.Server applies.
func (d *daemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //repro:wallclock request latency feeds the metrics surface only, never canonical output
	d.mux.ServeHTTP(w, r)
	d.lat.Observe(dmetricEndpointIndex(r.URL.Path), time.Since(start)) //repro:wallclock request latency feeds the metrics surface only, never canonical output
}

// handleRun serves POST /v1/run: admit (or refuse), take an execution
// slot, run the unit through the session, answer with the canonical
// one-line JSON result.
func (d *daemon) handleRun(w http.ResponseWriter, r *http.Request) {
	select {
	case d.admit <- struct{}{}:
		defer func() { <-d.admit }()
	default:
		// Full house: refuse now, cheaply, instead of queueing without
		// bound. The client backs off and retries.
		d.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "experimentd: admission queue full", http.StatusTooManyRequests)
		return
	}

	var u session.Unit
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		http.Error(w, "experimentd: bad unit: "+err.Error(), http.StatusBadRequest)
		return
	}
	if u.N > d.maxN {
		http.Error(w, fmt.Sprintf("experimentd: n=%d exceeds -max-n %d", u.N, d.maxN), http.StatusBadRequest)
		return
	}

	d.exec <- struct{}{}
	res, err := d.s.RunUnit(u)
	<-d.exec
	if err != nil {
		// Every unit error is deterministic — a malformed shape, an unknown
		// name, an algorithm the checker rejects — a property of the request,
		// not of the server, so the whole surface is a 400.
		http.Error(w, "experimentd: "+err.Error(), http.StatusBadRequest)
		return
	}
	d.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(res); err != nil {
		_ = err //repro:degrade a response-write failure means the client hung up
	}
}

// statsReply is the JSON stats surface workload drivers diff: the store's
// counters (zero-valued without a store) plus the daemon's own.
type statsReply struct {
	Store     store.Stats `json:"store"`
	Entries   int         `json:"entries"`
	Coalesced int64       `json:"coalesced"`
	Rejected  int64       `json:"rejected"`
	Served    int64       `json:"served"`
}

// handleStats serves GET /v1/stats.
func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	rep := statsReply{
		Coalesced: d.s.Coalesced(),
		Rejected:  d.rejected.Load(),
		Served:    d.served.Load(),
	}
	if st := d.s.Store(); st != nil {
		rep.Store = st.Stats()
		rep.Entries = st.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rep); err != nil {
		_ = err //repro:degrade a response-write failure means the client hung up
	}
}

// handleMetrics serves GET /v1/metrics — the stored exposition surface,
// under the daemon's prefix.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := remote.StartExposition(w)
	defer e.Flush() //repro:degrade a response-write failure means the scraper hung up
	d.lat.Write(e)
	e.Gauge("experimentd_queue_depth", "Admitted requests in the house (waiting or executing).", int64(len(d.admit)))
	e.Gauge("experimentd_queue_limit", "Admission bound (-queue).", int64(cap(d.admit)))
	e.Gauge("experimentd_inflight", "Units executing right now.", int64(len(d.exec)))
	e.Counter("experimentd_rejected_total", "Requests refused with 429 at admission.", d.rejected.Load())
	e.Counter("experimentd_served_total", "Unit results answered.", d.served.Load())
	e.Counter("experimentd_coalesced_total", "Requests served by joining an identical in-flight unit.", d.s.Coalesced())
	if st := d.s.Store(); st != nil {
		e.Gauge("experimentd_entries", "Result entries in the mounted store.", int64(st.Len()))
		e.StoreStats("experimentd", st.Stats())
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experimentd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		addr     = fs.String("addr", "127.0.0.1:9300", "listen address")
		queue    = fs.Int("queue", 64, "admission bound: requests in the house (waiting + executing) before 429")
		inflight = fs.Int("inflight", 0, "units executing at once; 0 = GOMAXPROCS")
		maxN     = fs.Int("max-n", 256, "largest accepted process count (bounds one request's work)")
	)
	sf := session.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *queue < 1 {
		return fmt.Errorf("-queue must be at least 1 (got %d)", *queue)
	}
	if *inflight == 0 {
		*inflight = runtime.GOMAXPROCS(0)
	}
	if *inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1 (got %d)", *inflight)
	}
	if *maxN < 2 {
		return fmt.Errorf("-max-n must be at least 2 (got %d)", *maxN)
	}
	s, err := session.Open(sf.Config("experimentd"))
	if err != nil {
		return err
	}
	defer s.Close()
	if s.Priming() {
		// The canonical validation accepted the shard spec; the refusal here
		// is the daemon's own: a prime pass is a batch mode, and a serving
		// process that silently dropped other shards' units would look like
		// a cache that forgets.
		s.Close()
		return fmt.Errorf("-shard is a batch priming mode; a serving daemon cannot shard")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "experimentd: listening on http://%s\n", ln.Addr())
	if st := s.Store(); st != nil {
		fmt.Fprintf(w, "experimentd: store mounted (%d entries)\n", st.Len())
	} else {
		fmt.Fprintf(w, "experimentd: no store mounted; every unit simulates (pass -cache and/or -store)\n")
	}

	d := newDaemon(s, *queue, *inflight, *maxN)
	srv := &http.Server{Handler: d, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	case <-testShutdown:
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintf(w, "experimentd: drained, served=%d coalesced=%d rejected=%d\n",
		d.served.Load(), d.s.Coalesced(), d.rejected.Load())
	return s.Close()
}
