// Reprolint statically enforces the repo's reproducibility contracts:
// deterministic output paths, zero-allocation hot loops, degrade-to-miss
// error discipline in the store layers, and mutex-guarded field access.
//
// Run standalone:
//
//	reprolint ./...
//
// or as a vet tool, which integrates with the build cache:
//
//	go vet -vettool=$(scripts/lint.sh -print) ./...
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:]))
}
