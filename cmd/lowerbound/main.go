// Command lowerbound runs the paper's proof pipeline — Construct (§5),
// Encode (§6), Decode (§7) — for one algorithm and permutation, verifying
// every theorem along the way, and prints the resulting cost and encoding
// statistics.
//
// Usage:
//
//	lowerbound -algo yang-anderson -n 8 [-perm 3,1,4,0,2,6,5,7] [-seed 1] [-v]
//	lowerbound -algo yang-anderson -n 4 -all
//
// With -all it sweeps every permutation of S_n (n ≤ 8) and checks the n!
// injectivity of Theorem 7.5.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		algoName = fs.String("algo", repro.AlgoYangAnderson, "algorithm (one of: "+strings.Join(repro.Algorithms(), ", ")+")")
		n        = fs.Int("n", 4, "number of processes")
		permSpec = fs.String("perm", "", "comma-separated permutation of 0..n-1 (default: seeded random)")
		seed     = fs.Int64("seed", 1, "seed for the random permutation")
		all      = fs.Bool("all", false, "sweep all n! permutations and check injectivity")
		verbose  = fs.Bool("v", false, "print the encoding table and the decoded execution")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	f, err := repro.NewAlgorithm(*algoName, *n)
	if err != nil {
		return err
	}

	if *all {
		stats, err := repro.ProveAll(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "algorithm      %s\n", f.Name())
		fmt.Fprintf(w, "permutations   %d (all of S_%d)\n", stats.Perms, *n)
		fmt.Fprintf(w, "distinct execs %d (injectivity %v)\n", stats.Distinct, stats.Distinct == stats.Perms)
		fmt.Fprintf(w, "cost           min=%d mean=%.1f max=%d\n", stats.MinCost, stats.MeanCost(), stats.MaxCost)
		fmt.Fprintf(w, "encoding bits  mean=%.1f max=%d\n", stats.MeanBits(), stats.MaxBits)
		fmt.Fprintf(w, "lower bound    log2(n!)=%.1f bits  n*lg(n)=%.1f\n", repro.InformationBound(*n), repro.NLogN(*n))
		fmt.Fprintf(w, "max bits/cost  %.2f (Theorem 6.2 constant)\n", stats.MaxBitsPerCost)
		return nil
	}

	pi, err := parsePerm(*permSpec, *n, *seed)
	if err != nil {
		return err
	}
	proof, err := repro.Prove(f, pi)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "algorithm   %s\n", f.Name())
	fmt.Fprintf(w, "perm        %v\n", proof.Perm)
	fmt.Fprintf(w, "metasteps   %d (%d steps, %d construct iterations)\n",
		proof.Result.Set.Len(), proof.Result.Set.TotalSteps(), proof.Result.Iterations)
	fmt.Fprintf(w, "cost C      %d (SC model; every linearization, Lemma 6.1)\n", proof.Cost)
	fmt.Fprintf(w, "|E_pi|      %d bits (%.2f bits/cost, Theorem 6.2)\n", proof.Encoding.BitLen, proof.BitsPerCost())
	fmt.Fprintf(w, "entry order %v (= perm, Theorem 5.5)\n", proof.Decoded.EntryOrder())
	fmt.Fprintf(w, "verified    decode round-trip is a linearization (Theorem 7.4)\n")
	if *verbose {
		fmt.Fprintf(w, "\nencoding table:\n%s\n", proof.Encoding)
		fmt.Fprintf(w, "\ndecoded execution (%d steps):\n%s\n", len(proof.Decoded), proof.Decoded)
	}
	return nil
}

func parsePerm(spec string, n int, seed int64) ([]int, error) {
	if spec == "" {
		return rand.New(rand.NewSource(seed)).Perm(n), nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("perm has %d entries, want %d", len(parts), n)
	}
	pi := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("perm entry %q: %w", p, err)
		}
		pi[i] = v
	}
	return pi, nil
}
