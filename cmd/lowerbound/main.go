// Command lowerbound runs the paper's proof pipeline — Construct (§5),
// Encode (§6), Decode (§7) — for one algorithm and permutation, verifying
// every theorem along the way, and prints the resulting cost and encoding
// statistics.
//
// Usage:
//
//	lowerbound -algo yang-anderson -n 8 [-perm 3,1,4,0,2,6,5,7] [-seed 1] [-v]
//	lowerbound -algo yang-anderson -n 4 -all
//
// With -all it sweeps every permutation of S_n (n ≤ 8) and checks the n!
// injectivity of Theorem 7.5.
//
// It is built on the session core (internal/session), so the canonical
// store and profiling flags work here too: with `-cache DIR` or
// `-store URL` the proof's statistics (and the whole -all sweep's) are
// memoized under their content address, so a warm re-run proves nothing
// twice and prints byte-identical output; -cpuprofile/-memprofile/-trace
// profile the pipeline. -v renders the encoding table and decoded
// execution, which always runs the pipeline.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

// provePayload is the cached portion of one proof pipeline run — exactly
// the pure values the report prints, so a warm run renders byte-identical
// lines from the store without re-proving.
type provePayload struct {
	Metasteps  int   `json:"metasteps"`
	Steps      int   `json:"steps"`
	Iterations int   `json:"iterations"`
	Cost       int   `json:"cost"`
	Bits       int   `json:"bits"`
	EntryOrder []int `json:"entryOrder"`
}

// bitsPerCost mirrors core.Pipeline.BitsPerCost for the cached values.
func (p provePayload) bitsPerCost() float64 {
	if p.Cost == 0 {
		return 0
	}
	return float64(p.Bits) / float64(p.Cost)
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		algoName = fs.String("algo", repro.AlgoYangAnderson, "algorithm (one of: "+strings.Join(repro.Algorithms(), ", ")+")")
		n        = fs.Int("n", 4, "number of processes")
		permSpec = fs.String("perm", "", "comma-separated permutation of 0..n-1 (default: seeded random)")
		seed     = fs.Int64("seed", 1, "seed for the random permutation")
		all      = fs.Bool("all", false, "sweep all n! permutations and check injectivity")
		verbose  = fs.Bool("v", false, "print the encoding table and the decoded execution")
	)
	sf := session.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	s, err := session.Open(sf.Config("lowerbound"))
	if err != nil {
		return err
	}
	defer s.Close()

	f, err := repro.NewAlgorithm(*algoName, *n)
	if err != nil {
		return err
	}

	if *all {
		stats, err := sweepStats(s, f.Name(), *n, func() (repro.SweepStats, error) { return repro.ProveAll(f) })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "algorithm      %s\n", f.Name())
		fmt.Fprintf(w, "permutations   %d (all of S_%d)\n", stats.Perms, *n)
		fmt.Fprintf(w, "distinct execs %d (injectivity %v)\n", stats.Distinct, stats.Distinct == stats.Perms)
		fmt.Fprintf(w, "cost           min=%d mean=%.1f max=%d\n", stats.MinCost, stats.MeanCost(), stats.MaxCost)
		fmt.Fprintf(w, "encoding bits  mean=%.1f max=%d\n", stats.MeanBits(), stats.MaxBits)
		fmt.Fprintf(w, "lower bound    log2(n!)=%.1f bits  n*lg(n)=%.1f\n", repro.InformationBound(*n), repro.NLogN(*n))
		fmt.Fprintf(w, "max bits/cost  %.2f (Theorem 6.2 constant)\n", stats.MaxBitsPerCost)
		return nil
	}

	pi, err := parsePerm(*permSpec, *n, *seed)
	if err != nil {
		return err
	}
	p, proof, err := provePayloadFor(s, f, pi, *verbose)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "algorithm   %s\n", f.Name())
	fmt.Fprintf(w, "perm        %v\n", pi)
	fmt.Fprintf(w, "metasteps   %d (%d steps, %d construct iterations)\n",
		p.Metasteps, p.Steps, p.Iterations)
	fmt.Fprintf(w, "cost C      %d (SC model; every linearization, Lemma 6.1)\n", p.Cost)
	fmt.Fprintf(w, "|E_pi|      %d bits (%.2f bits/cost, Theorem 6.2)\n", p.Bits, p.bitsPerCost())
	fmt.Fprintf(w, "entry order %v (= perm, Theorem 5.5)\n", p.EntryOrder)
	fmt.Fprintf(w, "verified    decode round-trip is a linearization (Theorem 7.4)\n")
	if *verbose {
		fmt.Fprintf(w, "\nencoding table:\n%s\n", proof.Encoding)
		fmt.Fprintf(w, "\ndecoded execution (%d steps):\n%s\n", len(proof.Decoded), proof.Decoded)
	}
	return nil
}

// provePayloadFor resolves one proof's printable statistics: from the
// session's store when it holds them, by running the pipeline otherwise
// (writing back on success). -v always runs — its views need the full
// proof, which the store deliberately does not carry.
func provePayloadFor(s *session.Session, f repro.Algorithm, pi []int, verbose bool) (provePayload, *repro.Proof, error) {
	key := ""
	if st := s.Store(); st != nil {
		key = store.Key(runner.CacheVersion, struct {
			Op   string `json:"op"`
			Algo string `json:"algo"`
			N    int    `json:"n"`
			Perm []int  `json:"perm"`
		}{"prove", f.Name(), len(pi), pi})
		if !verbose {
			if p, ok := store.GetJSON[provePayload](st, key); ok {
				return p, nil, nil
			}
		}
	}
	proof, err := repro.Prove(f, pi)
	if err != nil {
		return provePayload{}, nil, err
	}
	p := provePayload{
		Metasteps:  proof.Result.Set.Len(),
		Steps:      proof.Result.Set.TotalSteps(),
		Iterations: proof.Result.Iterations,
		Cost:       proof.Cost,
		Bits:       proof.Encoding.BitLen,
		EntryOrder: proof.Decoded.EntryOrder(),
	}
	if key != "" {
		store.PutJSON(s.Store(), key, p)
	}
	return p, proof, nil
}

// sweepStats resolves one -all sweep's statistics through the store:
// SweepStats is a pure value struct, so its JSON round-trips exactly and a
// warm sweep prints byte-identical lines from cache.
func sweepStats(s *session.Session, algo string, n int, prove func() (repro.SweepStats, error)) (repro.SweepStats, error) {
	key := ""
	if st := s.Store(); st != nil {
		key = store.Key(runner.CacheVersion, struct {
			Op   string `json:"op"`
			Algo string `json:"algo"`
			N    int    `json:"n"`
		}{"sweep", algo, n})
		if stats, ok := store.GetJSON[repro.SweepStats](st, key); ok {
			return stats, nil
		}
	}
	stats, err := prove()
	if err != nil {
		return repro.SweepStats{}, err
	}
	if key != "" {
		store.PutJSON(s.Store(), key, stats)
	}
	return stats, nil
}

func parsePerm(spec string, n int, seed int64) ([]int, error) {
	if spec == "" {
		return rand.New(rand.NewSource(seed)).Perm(n), nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("perm has %d entries, want %d", len(parts), n)
	}
	pi := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("perm entry %q: %w", p, err)
		}
		pi[i] = v
	}
	return pi, nil
}
