package main

import (
	"bytes"
	"testing"

	"repro/internal/session/sessiontest"
)

// TestSessionFlagValidation drives the shared bad-combination table: this
// binary must reject exactly what every other session-backed binary
// rejects, with the same words.
func TestSessionFlagValidation(t *testing.T) { sessiontest.Run(t, run) }

// TestCachedOutputUnchanged pins the session port's contract: adding
// -cache changes nothing on stdout — cold and warm runs print the same
// bytes as a store-less run, for both the single-proof and -all paths.
func TestCachedOutputUnchanged(t *testing.T) {
	for _, base := range [][]string{
		{"-algo", "yang-anderson", "-n", "4", "-seed", "3"},
		{"-algo", "bakery", "-n", "4", "-all"},
	} {
		dir := t.TempDir()
		var plain, cold, warm bytes.Buffer
		if err := run(base, &plain); err != nil {
			t.Fatal(err)
		}
		withCache := append(append([]string{}, base...), "-cache", dir)
		if err := run(withCache, &cold); err != nil {
			t.Fatal(err)
		}
		if err := run(withCache, &warm); err != nil {
			t.Fatal(err)
		}
		if plain.String() != cold.String() {
			t.Fatalf("%v: cold cached output diverged from store-less output:\n%s\nvs\n%s", base, cold.String(), plain.String())
		}
		if cold.String() != warm.String() {
			t.Fatalf("%v: warm output diverged from cold:\n%s\nvs\n%s", base, warm.String(), cold.String())
		}
	}
}
