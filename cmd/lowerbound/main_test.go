package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmokeSingle exercises the single-permutation proof pipeline path.
func TestRunSmokeSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "yang-anderson", "-n", "4", "-perm", "2,0,3,1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"perm        [2 0 3 1]", "entry order [2 0 3 1]", "Theorem 7.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSmokeAll exercises the exhaustive-sweep path at a tiny n.
func TestRunSmokeAll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "yang-anderson", "-n", "3", "-all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"permutations   6 (all of S_3)", "injectivity true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadPerm(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "4", "-perm", "0,1"}, &buf); err == nil {
		t.Fatal("wrong-length permutation accepted")
	}
	if err := run([]string{"-n", "2", "-perm", "a,b"}, &buf); err == nil {
		t.Fatal("non-numeric permutation accepted")
	}
}
