package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/remote"
	"repro/internal/store"
)

// TestRemoteStoreFleetTournament is the fleet-store acceptance at the
// tournament level: concurrent shard searches against one stored service,
// then a replay through the shared store that reproduces the cold NDJSON
// stream byte for byte without executing a simulation — and a push-merge
// of a local shard directory up to the fleet store.
func TestRemoteStoreFleetTournament(t *testing.T) {
	grid := []string{"-quick", "-algos", "yang-anderson,peterson", "-ns", "4,5", "-ndjson"}
	withGrid := func(extra ...string) []string { return append(grid[:len(grid):len(grid)], extra...) }

	var cold bytes.Buffer
	if err := run(withGrid("-parallel", "1"), &cold); err != nil {
		t.Fatal(err)
	}

	authoritative, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer authoritative.Close()
	srv := remote.NewServer(authoritative)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two concurrent shard searchers share the store; cells are partitioned
	// at the (algo, n) granule so neither prints to the data stream.
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, 2)
	errs := make([]error, 2)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(withGrid("-store", ts.URL, "-shard", fmt.Sprintf("%d/2", i+1), "-parallel", "4"), &outs[i])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("shard %d/2: %v", i+1, errs[i])
		}
		if outs[i].Len() != 0 {
			t.Fatalf("shard %d/2 wrote to the data stream: %q", i+1, outs[i].String())
		}
	}
	if srv.Conflicts() != 0 {
		t.Fatalf("conflicts=%d, want 0", srv.Conflicts())
	}

	entries := authoritative.Len()
	req := srv.Requests()
	var replay bytes.Buffer
	if err := run(withGrid("-store", ts.URL, "-parallel", "8"), &replay); err != nil {
		t.Fatal(err)
	}
	if replay.String() != cold.String() {
		t.Fatalf("fleet replay differs from cold:\n%s\nvs\n%s", replay.String(), cold.String())
	}
	reqAfter := srv.Requests()
	if reqAfter.Put != req.Put || reqAfter.MPut != req.MPut || authoritative.Len() != entries {
		t.Fatalf("warm fleet replay wrote to the store: put %d→%d mput %d→%d entries %d→%d",
			req.Put, reqAfter.Put, req.MPut, reqAfter.MPut, entries, authoritative.Len())
	}

	// Push-merge: a locally primed shard directory folds up into a fresh
	// fleet store through the batched put path, and the replay matches.
	localDir := t.TempDir()
	var buf bytes.Buffer
	if err := run(withGrid("-cache", localDir, "-parallel", "4"), &buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	ts2 := httptest.NewServer(remote.NewServer(fresh))
	defer ts2.Close()
	var pushed bytes.Buffer
	if err := run(withGrid("-store", ts2.URL, "-merge", localDir, "-parallel", "4"), &pushed); err != nil {
		t.Fatal(err)
	}
	if pushed.String() != cold.String() {
		t.Fatalf("push-merged replay differs from cold:\n%s\nvs\n%s", pushed.String(), cold.String())
	}
	if fresh.Len() == 0 {
		t.Fatal("push-merge stored nothing in the fleet store")
	}
}

// TestTournamentStoreFlagValidation pins -store's loud failure modes.
func TestTournamentStoreFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-store", "not a url"}, &buf); err == nil {
		t.Fatal("malformed -store URL accepted")
	}
	if err := run([]string{"-store", "http://127.0.0.1:1"}, &buf); err == nil {
		t.Fatal("unreachable -store URL accepted")
	}
	if err := run([]string{"-store", "http://127.0.0.1:1", "-merge", "x"}, &buf); err == nil {
		t.Fatal("unreachable -store with -merge accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("error paths wrote to the data stream: %q", buf.String())
	}
}
