package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestRunQuickSmoke drives the full run() path on a tiny grid and checks
// every streamed line parses as a row with sane fields.
func TestRunQuickSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-algos", "yang-anderson", "-ns", "4", "-ndjson"}, &buf); err != nil {
		t.Fatal(err)
	}
	var policies, searches, summaries int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r row
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("unparseable row %q: %v", line, err)
		}
		if r.Algo != "yang-anderson" || r.N != 4 {
			t.Fatalf("row for wrong cell: %+v", r)
		}
		switch r.Type {
		case "policy":
			policies++
		case "search":
			searches++
			if r.SC <= 0 || !r.Canonical {
				t.Fatalf("bad search row: %+v", r)
			}
		case "summary":
			summaries++
		default:
			t.Fatalf("unknown row type %q", r.Type)
		}
	}
	if policies == 0 || searches != 1 || summaries != 1 {
		t.Fatalf("row counts: %d policies, %d searches, %d summaries", policies, searches, summaries)
	}
}

// TestRunDeterministicAcrossWorkers is the tentpole acceptance criterion:
// the whole tournament output — streamed rows and summary table — is
// byte-identical at workers 1 (sequential), 4, and 8.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, w := range []int{1, 4, 8} {
		var buf bytes.Buffer
		args := []string{"-quick", "-algos", "yang-anderson,bakery", "-ns", "4,6", "-parallel", fmt.Sprint(w)}
		if err := run(args, &buf); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Errorf("tournament output differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s\n--- workers=8\n%s",
			outputs[0], outputs[1], outputs[2])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ns", "one"}, &buf); err == nil {
		t.Fatal("bad -ns accepted")
	}
	if err := run([]string{"-algos", ""}, &buf); err == nil {
		t.Fatal("empty -algos accepted")
	}
	if err := run([]string{"-algos", "no-such-algo", "-ns", "4", "-quick"}, &buf); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestCacheShardMergeByteIdentical is the store acceptance at the
// tournament level: a warm-cache replay and a sharded-then-merged replay
// must both reproduce the cold NDJSON stream byte for byte, and prime
// passes must write nothing to the data stream.
func TestCacheShardMergeByteIdentical(t *testing.T) {
	// Cheap enough (seconds) to run in every mode — CI's -short pass is the
	// only automated coverage of tournament's -cache/-merge byte-identity.
	grid := []string{"-quick", "-algos", "yang-anderson,peterson", "-ns", "4,5", "-ndjson"}
	var cold bytes.Buffer
	if err := run(append(grid[:len(grid):len(grid)], "-parallel", "1"), &cold); err != nil {
		t.Fatal(err)
	}

	warmDir := t.TempDir()
	for _, w := range []int{4, 1} {
		var buf bytes.Buffer
		if err := run(append(grid[:len(grid):len(grid)], "-cache", warmDir, "-parallel", fmt.Sprint(w)), &buf); err != nil {
			t.Fatalf("warm workers=%d: %v", w, err)
		}
		if buf.String() != cold.String() {
			t.Fatalf("cached run (workers=%d) differs from cold:\n%s\nvs\n%s", w, buf.String(), cold.String())
		}
	}

	const m = 3
	var dirs []string
	for i := 1; i <= m; i++ {
		dir := t.TempDir()
		dirs = append(dirs, dir)
		var buf bytes.Buffer
		if err := run(append(grid[:len(grid):len(grid)], "-cache", dir, "-shard", fmt.Sprintf("%d/%d", i, m)), &buf); err != nil {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("shard %d/%d wrote to the data stream: %q", i, m, buf.String())
		}
	}
	var merged bytes.Buffer
	if err := run(append(grid[:len(grid):len(grid)], "-cache", t.TempDir(), "-merge", strings.Join(dirs, ",")), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.String() != cold.String() {
		t.Fatalf("sharded-then-merged output differs from cold:\n%s\nvs\n%s", merged.String(), cold.String())
	}
}

func TestTournamentShardFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-shard", "1/2"}, &buf); err == nil {
		t.Fatal("-shard without -cache accepted")
	}
	if err := run([]string{"-merge", "x"}, &buf); err == nil {
		t.Fatal("-merge without -cache accepted")
	}
	if err := run([]string{"-cache", t.TempDir(), "-shard", "3/2"}, &buf); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := run([]string{"-cache", t.TempDir(), "-shard", "1/2/3"}, &buf); err == nil {
		t.Fatal("trailing garbage in -shard accepted")
	}
}
