// Command tournament runs the adversarial schedule-search grid: for every
// algorithm × n it evaluates the fixed scheduling policies and then hunts
// for worse schedules with the random-restart + local-mutation search of
// internal/adversary, streaming one NDJSON row per evaluation and closing
// with the empirically-worst cost per (algo, n) next to the n·lg n
// reference curve.
//
// Usage:
//
//	tournament                         # default grid, GOMAXPROCS workers
//	tournament -quick                  # reduced grid and search effort
//	tournament -algos yang-anderson,bakery -ns 4,8,16
//	tournament -parallel 1             # sequential path — same bytes
//	tournament -ndjson                 # machine-readable rows only, summary included as rows
//
// Caching and sharding (see README "The result store"):
//
//	tournament -cache DIR              # memoize candidate evaluations; warm
//	                                   # re-runs search without simulating
//	tournament -cache D1 -shard 1/3    # run only shard 1's (algo, n) cells,
//	                                   # caching their evaluations; no stdout
//	tournament -cache DIR -merge D1,D2,D3
//	                                   # fold shard stores into DIR and replay
//	                                   # the full grid from cache
//
// Fleet-shared caching (see README "The remote store"):
//
//	tournament -store http://ci-store:9200       # share one authoritative
//	                                             # store across processes
//	tournament -store URL1,URL2                  # hash-routed fleet tier over
//	                                             # several stored instances
//	tournament -store URL -shard 1/3             # search only shard 1's cells,
//	                                             # caching into the fleet store
//	tournament -cache DIR -store URL             # DIR as a local near tier
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/perm"
	"repro/internal/runner"
	"repro/internal/session"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tournament:", err)
		os.Exit(1)
	}
}

// row is the NDJSON wire form of one evaluation (or summary line).
type row struct {
	Type      string  `json:"type"` // "policy", "search", or "summary"
	Algo      string  `json:"algo"`
	N         int     `json:"n"`
	Adversary string  `json:"adversary"`
	Origin    string  `json:"origin,omitempty"`
	SC        int     `json:"sc"`
	Steps     int     `json:"steps"`
	Shared    int     `json:"shared"`
	CCRMR     int     `json:"ccRmr"`
	DSMRMR    int     `json:"dsmRmr"`
	Canonical bool    `json:"canonical"`
	PerNLogN  float64 `json:"scPerNLogN,omitempty"`
	Evaluated int     `json:"evaluated,omitempty"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tournament", flag.ContinueOnError)
	fs.SetOutput(os.Stderr) // diagnostics and usage must not corrupt the data stream on w
	var (
		quick    = fs.Bool("quick", false, "reduced grid and search effort")
		algosCSV = fs.String("algos", "yang-anderson,peterson,bakery,tas,mcs", "comma-separated algorithms")
		nsCSV    = fs.String("ns", "", "comma-separated process counts (default 4,8,16; with -quick 4,8)")
		seed     = fs.Int64("seed", 20060723, "seed for all candidate generation")
		ndjson   = fs.Bool("ndjson", false, "emit the summary as NDJSON rows instead of an aligned table")
	)
	sf := session.FlagConfig(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	s, err := session.Open(sf.Config("tournament"))
	if err != nil {
		return err
	}
	defer s.Close()
	eng := s.Engine()
	priming := eng.Priming()

	algos := splitCSV(*algosCSV)
	if len(algos) == 0 {
		return fmt.Errorf("no algorithms selected")
	}
	nsSpec := *nsCSV
	if nsSpec == "" {
		nsSpec = "4,8,16"
		if *quick {
			nsSpec = "4,8"
		}
	}
	var ns []int
	for _, s := range splitCSV(nsSpec) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			return fmt.Errorf("bad process count %q", s)
		}
		ns = append(ns, n)
	}

	search := adversary.Config{}
	if *quick {
		search = adversary.Quick()
	}
	search.Seed = *seed

	enc := json.NewEncoder(w)
	var summaries []row
	for _, algo := range algos {
		for _, n := range ns {
			if priming {
				// Deterministic cell partition: every (algo, n) search cell
				// belongs to exactly one shard, keyed like any other unit.
				// The search itself is adaptive, so the whole cell — not its
				// individual candidates — is the sharding granule.
				cellKey := store.Key(runner.CacheVersion, struct {
					Op    string `json:"op"`
					Algo  string `json:"algo"`
					N     int    `json:"n"`
					Seed  int64  `json:"seed"`
					Quick bool   `json:"quick"`
				}{"cell", algo, n, *seed, *quick})
				if !eng.Owns(cellKey) {
					continue
				}
			}
			found, err := adversary.SearchWorst(eng, algo, n, search)
			if err != nil {
				return err
			}
			if priming {
				fmt.Fprintf(os.Stderr, "tournament: primed %s n=%d (%d evaluations)\n", algo, n, found.Evaluated)
				continue
			}
			for _, p := range found.Fixed {
				r := row{
					Type: "policy", Algo: algo, N: n, Adversary: p.Name,
					SC: p.Report.SC, Steps: p.Report.Steps, Shared: p.Report.SharedAccesses,
					CCRMR: p.Report.CCRMR, DSMRMR: p.Report.DSMRMR, Canonical: p.Canonical,
				}
				if err := enc.Encode(r); err != nil {
					return err
				}
			}
			sr := row{
				Type: "search", Algo: algo, N: n, Adversary: "search-worst", Origin: found.Origin,
				SC: found.Report.SC, Steps: found.Report.Steps, Shared: found.Report.SharedAccesses,
				CCRMR: found.Report.CCRMR, DSMRMR: found.Report.DSMRMR, Canonical: true,
				PerNLogN: perNLogN(found.Report.SC, n), Evaluated: found.Evaluated,
			}
			if err := enc.Encode(sr); err != nil {
				return err
			}
			fixed, ok := found.FixedBest()
			if !ok {
				return fmt.Errorf("%s n=%d: no fixed policy completed a canonical run", algo, n)
			}
			if found.Report.SC < fixed.Report.SC {
				return fmt.Errorf("%s n=%d: search result %d below best fixed policy %d — truncated execution scored?", algo, n, found.Report.SC, fixed.Report.SC)
			}
			sum := sr
			sum.Type = "summary"
			sum.Origin = found.Origin
			summaries = append(summaries, sum)
		}
	}

	if priming {
		return nil
	}
	if *ndjson {
		for _, s := range summaries {
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Fprintf(w, "\nempirically-worst canonical SC cost per (algo, n), vs the n·lg n reference:\n")
	fmt.Fprintf(w, "%-14s %4s %12s %-18s %8s %14s\n", "algo", "n", "worst SC", "origin", "n·lg n", "SC/(n·lg n)")
	for _, s := range summaries {
		fmt.Fprintf(w, "%-14s %4d %12d %-18s %8.1f %14.2f\n",
			s.Algo, s.N, s.SC, s.Origin, perm.NLogN(s.N), s.PerNLogN)
	}
	fmt.Fprintf(w, "\nreading the table: a flat SC/(n·lg n) column is the Θ(n log n) shape (yang-anderson);\n")
	fmt.Fprintf(w, "growing ratios are the super-n·log n algorithms the bound separates; mcs (RMW) shrinks below it.\n")
	return nil
}

func perNLogN(sc, n int) float64 {
	if d := perm.NLogN(n); d > 0 {
		return float64(sc) / d
	}
	return 0
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
